"""Compiler front-end benchmark: emits ``BENCH_compiler.json``.

Three sections:

* **compile** — programs/second over the benchmark sweep (every store
  workload under SINGLE_BANK/CB/CB_DUP), cold (every program built and
  compiled from source) versus warm (the same sweep read back through a
  persistent artifact store by a fresh-memory cache).  ``warm_speedup``
  is the headline, gated at 3x — the same claim ``BENCH_serve.json``
  holds for the store, restated in compiler terms.  The section also
  reports the front-end node statistics the hash-consing build contexts
  collect (created nodes, cons hits, hit rate) summed over the sweep's
  builds.
* **memory** — peak RSS of a subprocess that does nothing but the cold
  sweep: a clean ceiling unpolluted by the pytest harness, gated
  absolutely at :data:`RSS_CEILING_MB`.
* **payload** — per-task pickled bytes on the worker dispatch paths:
  a coalesced serve group fat (every member carrying its own recipe
  dict) versus lightened (members stripped to per-instance fields, the
  head's recipe swapped for a content-address ref —
  :func:`~repro.serve.jobs.lighten_group`), plus the live
  ``supervised_map`` dispatch accounting
  (:func:`~repro.evaluation.parallel.payload_stats`) for the lightened
  group.  The reduction is gated: hash-first dispatch must stay far
  below the inline-recipe baseline.

The pytest entry point doubles as the regression gate: machine-neutral
ratios (``warm_speedup``, ``reduction_percent``) are compared against
the committed JSON with a tolerance; absolute wall-clock throughput is
recorded for trend reading but not gated — it tracks the host.

Run either way:

    python benchmarks/bench_compiler.py
    pytest benchmarks/bench_compiler.py -q
"""

import json
import multiprocessing
import pickle
import shutil
import tempfile
import time
from pathlib import Path

from repro.evaluation.parallel import (
    payload_stats,
    reset_payload_stats,
    supervised_map,
)
from repro.evaluation.runner import _compile_cached
from repro.fuzz.generator import generate_recipe
from repro.partition.strategies import Strategy
from repro.serve.jobs import execute_group, lighten_group
from repro.serve.protocol import validate_job
from repro.serve.store import ArtifactStore, CompileCache, process_compile_cache
from repro.workloads.registry import get_workload

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_compiler.json"

#: the compile sweep both throughput legs time
WORKLOADS = ("fir_32_1", "iir_1_1", "mult_4_4", "latnrm_8_1",
             "lmsfir_8_1", "fir_256_64")
STRATEGIES = (Strategy.SINGLE_BANK, Strategy.CB, Strategy.CB_DUP)

#: warm rounds (the minimum is reported; round 1 pays page-cache warmup)
WARM_ROUNDS = 3

#: the warm headline gate: store reads must beat recompiling by 3x
WARM_SPEEDUP_GATE = 3.0

#: absolute peak-RSS ceiling for the cold sweep, in MiB
RSS_CEILING_MB = 512

#: minimum payload shrink of a lightened serve group vs the fat one
PAYLOAD_REDUCTION_GATE = 40.0

#: allowed relative drop of the gated ratios vs the committed baseline
REGRESSION_TOLERANCE = 0.25

#: coalesced members in the payload group (a realistic fan-out)
PAYLOAD_GROUP = 16


# ---------------------------------------------------------------------
# Compile throughput: cold vs warm programs/s + node statistics
# ---------------------------------------------------------------------
def _sweep(cache):
    for name in WORKLOADS:
        workload = get_workload(name)
        for strategy in STRATEGIES:
            _compile_cached(workload, strategy, None, cache)


def _node_totals():
    """Front-end node statistics summed over one build of each sweep
    workload (every build runs under its own hash-consing context)."""
    created = hits = 0
    for name in WORKLOADS:
        stats = get_workload(name).build().node_stats
        created += stats["nodes_created"]
        hits += stats["cons_hits"]
    total = created + hits
    return {
        "created": created,
        "cons_hits": hits,
        "cons_hit_rate": round(hits / total, 4) if total else 0.0,
    }


def bench_compile(root):
    store_dir = str(Path(root) / "store")
    programs = len(WORKLOADS) * len(STRATEGIES)

    cold_cache = CompileCache(store=ArtifactStore(store_dir))
    start = time.perf_counter()
    _sweep(cold_cache)
    cold_s = time.perf_counter() - start
    assert cold_cache.store.misses == programs

    warm_s = None
    for _ in range(WARM_ROUNDS):
        warm_cache = CompileCache(store=ArtifactStore(store_dir))
        start = time.perf_counter()
        _sweep(warm_cache)
        elapsed = time.perf_counter() - start
        warm_s = elapsed if warm_s is None else min(warm_s, elapsed)
        assert warm_cache.store.misses == 0

    return {
        "workloads": list(WORKLOADS),
        "strategies": [s.name for s in STRATEGIES],
        "programs": programs,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "cold_programs_per_s": round(programs / cold_s, 2),
        "warm_programs_per_s": round(programs / warm_s, 2),
        "warm_speedup": round(cold_s / warm_s, 3),
        "nodes": _node_totals(),
    }


# ---------------------------------------------------------------------
# Memory: peak RSS of the cold sweep in a clean subprocess
# ---------------------------------------------------------------------
def _rss_probe(_arg):
    """Worker body: run the cold sweep (no store) and report this
    process's peak RSS in MiB.  Top level so the spawn context can
    pickle it."""
    import resource

    _sweep({})
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def bench_memory():
    context = multiprocessing.get_context("spawn")
    with context.Pool(1) as pool:
        peak_mb = pool.map(_rss_probe, [None])[0]
    return {
        "peak_rss_mb": round(peak_mb, 1),
        "ceiling_mb": RSS_CEILING_MB,
    }


# ---------------------------------------------------------------------
# Payload: fat vs lightened serve groups, live dispatch accounting
# ---------------------------------------------------------------------
def _payload_group(seed=11):
    """A coalesced group whose members each carry their own copy of one
    full recipe body — the inline-recipe baseline the lightener beats."""
    recipe = generate_recipe(seed).to_dict()
    return [
        validate_job({
            "kind": "recipe",
            # deep copy per job: real submissions decode from separate
            # JSON lines, nothing is object-shared
            "recipe": json.loads(json.dumps(recipe)),
            "strategy": "CB",
            "id": "job-%d" % index,
        })
        for index in range(PAYLOAD_GROUP)
    ]


def bench_payload(root):
    cache_dir = str(Path(root) / "payload-store")
    jobs = _payload_group()
    fat_task = (jobs, cache_dir, 64)
    fat_bytes = len(pickle.dumps(fat_task))

    store = process_compile_cache(cache_dir).store
    light = lighten_group(jobs, store=store)
    light_task = (light, cache_dir, 64)
    light_bytes = len(pickle.dumps(light_task))

    # drive lightened groups through the real supervised pool (two
    # tasks, two workers — one task would take the serial shortcut) so
    # the per-task accounting reflects live wire bytes
    other = lighten_group(_payload_group(seed=13), store=store)
    reset_payload_stats()
    results = supervised_map(
        execute_group,
        [light_task, (other, cache_dir, 64)],
        jobs=2,
    )
    stats = payload_stats()
    for group_results in results:
        assert all(result["ok"] for result in group_results)

    return {
        "group_jobs": PAYLOAD_GROUP,
        "fat_task_bytes": fat_bytes,
        "light_task_bytes": light_bytes,
        "reduction_percent": round(100.0 * (1.0 - light_bytes / fat_bytes), 1),
        "supervised_tasks": stats["tasks"],
        "supervised_bytes_per_task": round(stats["bytes_per_task"], 1),
    }


def collect():
    root = tempfile.mkdtemp(prefix="bench-compiler-")
    try:
        return {
            "compile": bench_compile(root),
            "memory": bench_memory(),
            "payload": bench_payload(root),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def assert_no_regression(baseline, report, tolerance=REGRESSION_TOLERANCE):
    """The machine-neutral ratios may not silently collapse: the warm
    compile speedup and the payload reduction must stay within
    *tolerance* of the committed numbers."""
    old_speedup = baseline.get("compile", {}).get("warm_speedup")
    if old_speedup:
        new = report["compile"]["warm_speedup"]
        assert new >= old_speedup * (1.0 - tolerance), (
            "warm compile speedup regressed: %.2fx, was %.2fx"
            % (new, old_speedup)
        )
    old_reduction = baseline.get("payload", {}).get("reduction_percent")
    if old_reduction:
        new = report["payload"]["reduction_percent"]
        assert new >= old_reduction * (1.0 - tolerance), (
            "payload reduction regressed: %.1f%%, was %.1f%%"
            % (new, old_reduction)
        )


def main():
    report = collect()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print("wrote %s" % OUTPUT)
    return report


def test_compiler_trajectory():
    """Regenerate the JSON and hold the compiler claims: warm store
    reads beat cold compiles by at least 3x, the cold sweep fits under
    the RSS ceiling, hash-consing sees real sharing, lightened dispatch
    payloads stay far below the inline-recipe baseline, and neither
    committed ratio has regressed."""
    baseline = json.loads(OUTPUT.read_text()) if OUTPUT.exists() else None
    report = main()
    assert report["compile"]["warm_speedup"] >= WARM_SPEEDUP_GATE
    assert report["compile"]["nodes"]["cons_hit_rate"] > 0.0
    assert report["memory"]["peak_rss_mb"] <= RSS_CEILING_MB
    assert report["payload"]["light_task_bytes"] < report["payload"]["fat_task_bytes"]
    assert report["payload"]["reduction_percent"] >= PAYLOAD_REDUCTION_GATE
    assert report["payload"]["supervised_tasks"] >= 1
    if baseline is not None:
        assert_no_regression(baseline, report)


if __name__ == "__main__":
    main()
