"""Benchmark the software-pipelining extension (paper Figure 1's idiom).

The paper's hand-written FIR inner loop is a single long instruction:
the MAC consumes the registers loaded by the *previous* iteration while
two parallel moves fetch the next operands.  The plain compaction
schedule cannot reach that (the MAC flows from this iteration's loads);
`CompileOptions(software_pipelining=True)` restores it mechanically.

Run:  pytest benchmarks/bench_pipelining.py --benchmark-only -s
"""

import pytest

from repro.compiler import CompileOptions, compile_module
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator
from repro.workloads.registry import KERNELS

KERNEL_SET = [
    "fir_256_64",
    "fir_32_1",
    "mult_10_10",
    "latnrm_32_64",
    "lmsfir_32_64",
    "iir_4_64",
]


def _cycles(name, software_pipelining):
    workload = KERNELS[name]
    compiled = compile_module(
        workload.build(),
        CompileOptions(
            strategy=Strategy.CB, software_pipelining=software_pipelining
        ),
    )
    simulator = Simulator(compiled.program)
    result = simulator.run()
    workload.verify(simulator)
    return result.cycles


@pytest.mark.parametrize("name", KERNEL_SET)
def test_pipelining_never_regresses(benchmark, name):
    piped = benchmark.pedantic(_cycles, args=(name, True), rounds=1, iterations=1)
    plain = _cycles(name, False)
    benchmark.extra_info["plain_cycles"] = plain
    benchmark.extra_info["pipelined_cycles"] = piped
    benchmark.extra_info["speedup"] = round(plain / piped, 2)
    assert piped <= plain


def test_pipelining_report(benchmark, capsys):
    def collect():
        return {name: (_cycles(name, False), _cycles(name, True)) for name in KERNEL_SET}

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Software pipelining (CB partitioning, paper Fig. 1 idiom)")
        print("%-14s %9s %10s %8s" % ("kernel", "plain", "pipelined", "speedup"))
        for name, (plain, piped) in rows.items():
            print(
                "%-14s %9d %10d %7.2fx" % (name, plain, piped, plain / piped)
            )
    # The flagship: FIR's inner loop halves, as in the paper's example.
    plain, piped = rows["fir_256_64"]
    assert plain / piped > 1.6

@pytest.mark.parametrize("name", ["fir_256_64", "lmsfir_32_64"])
def test_unroll_vs_pipelining(benchmark, name):
    """Loop unrolling raises cross-iteration memory parallelism without
    restructuring; software pipelining goes further on MAC loops whose
    recurrence serializes unrolled copies."""
    from repro.compiler import CompileOptions

    workload = KERNELS[name]

    def cycles(**opts):
        compiled = compile_module(
            workload.build(), CompileOptions(strategy=Strategy.CB, **opts)
        )
        sim = Simulator(compiled.program)
        result = sim.run()
        workload.verify(sim)
        return result.cycles

    plain = benchmark.pedantic(cycles, rounds=1, iterations=1)
    unrolled = cycles(unroll_factor=4)
    piped = cycles(software_pipelining=True)
    benchmark.extra_info["plain"] = plain
    benchmark.extra_info["unroll4"] = unrolled
    benchmark.extra_info["pipelined"] = piped
    assert unrolled <= plain
    assert piped <= plain
