"""Serving-layer benchmark: emits ``BENCH_serve.json``.

Three sections:

* **store** — the persistent artifact store's reason to exist: the same
  compile sweep (every benchmark workload under SINGLE_BANK/CB/CB_DUP)
  cold (empty store, every pair compiles) versus warm (fresh process
  memory, every pair unpickles from disk).  ``warm_speedup`` is the
  headline, gated at 3x: reading a compiled program back must be at
  least that much faster than recompiling it, or the store is overhead.
* **service** — an in-process :class:`~repro.serve.service.SimService`
  under a ~120-job mixed load (workloads x strategies x backends,
  recipes, per-instance writes) driven through the real socket path by
  :class:`~repro.serve.client.ServeClient`.  Reports sustained req/s and
  client-observed p50/p99 latency, and asserts the contract the numbers
  rest on: zero rejected submissions at the default queue limit and
  every result **bit-identical** (state digest) to a direct
  :func:`~repro.serve.jobs.execute_job` run of the same job.
* **service_journaled** — the same load with the write-ahead journal
  enabled (crash-safe serving), gated: journaling may cost at most 10%
  of sustained req/s (``journal_throughput_ratio`` ≥ 0.9), and every
  accepted job must have a completed journal record afterwards.

The pytest entry point doubles as the regression gate: machine-neutral
claims (``warm_speedup``, bit-identity, zero rejections) are asserted
absolutely, and ``warm_speedup`` is additionally compared against the
committed JSON with a tolerance so a store-layer regression cannot land
silently.  Absolute latencies are recorded for trend reading but not
gated — they track the host, not the code.

Run either way:

    python benchmarks/bench_serve.py
    pytest benchmarks/bench_serve.py -q
"""

import asyncio
import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.evaluation.runner import _compile_cached
from repro.partition.strategies import Strategy
from repro.serve.client import ServeClient
from repro.serve.jobs import execute_job
from repro.serve.protocol import validate_job
from repro.serve.service import SimService
from repro.serve.store import ArtifactStore, CompileCache
from repro.workloads.registry import get_workload

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: the compile sweep both store legs time
STORE_WORKLOADS = ("fir_32_1", "iir_1_1", "mult_4_4", "latnrm_8_1",
                   "lmsfir_8_1", "fir_256_64")
STORE_STRATEGIES = (Strategy.SINGLE_BANK, Strategy.CB, Strategy.CB_DUP)

#: warm rounds (the minimum is reported; round 1 pays page-cache warmup)
WARM_ROUNDS = 3

#: the warm-cache headline gate: unpickling must beat recompiling by 3x
WARM_SPEEDUP_GATE = 3.0

#: allowed relative drop of warm_speedup against the committed baseline
REGRESSION_TOLERANCE = 0.25

#: write-ahead journaling may cost at most 10% of sustained req/s
JOURNAL_THROUGHPUT_GATE = 0.9


# ---------------------------------------------------------------------
# Store: cold vs warm compile sweep
# ---------------------------------------------------------------------
def _sweep(cache):
    for name in STORE_WORKLOADS:
        workload = get_workload(name)
        for strategy in STORE_STRATEGIES:
            _compile_cached(workload, strategy, None, cache)


def bench_store(root):
    store_dir = str(Path(root) / "store")
    pairs = len(STORE_WORKLOADS) * len(STORE_STRATEGIES)

    cold_cache = CompileCache(store=ArtifactStore(store_dir))
    start = time.perf_counter()
    _sweep(cold_cache)
    cold_s = time.perf_counter() - start
    assert cold_cache.store.misses == pairs

    warm_s = None
    for _ in range(WARM_ROUNDS):
        # a fresh CompileCache per round = a fresh process's first sweep:
        # empty memory tier, every lookup satisfied from disk
        warm_cache = CompileCache(store=ArtifactStore(store_dir))
        start = time.perf_counter()
        _sweep(warm_cache)
        elapsed = time.perf_counter() - start
        warm_s = elapsed if warm_s is None else min(warm_s, elapsed)
        assert warm_cache.store.hits == pairs
        assert warm_cache.store.misses == 0

    return {
        "workloads": list(STORE_WORKLOADS),
        "strategies": [s.name for s in STORE_STRATEGIES],
        "compiles": pairs,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 3),
        "store_bytes": ArtifactStore(store_dir).total_bytes(),
    }


# ---------------------------------------------------------------------
# Service: mixed load over the socket
# ---------------------------------------------------------------------
def _job_mix():
    """~115 mixed jobs: repeats drive coalescing, strategy/backend/
    recipe/writes variety drives distinct compile groups."""
    jobs = []
    for repeat in range(6):
        for name in ("fir_32_1", "iir_1_1", "mult_4_4", "latnrm_8_1"):
            for strategy in ("SINGLE_BANK", "CB", "CB_DUP"):
                jobs.append({"kind": "run", "workload": name,
                             "strategy": strategy})
        for backend in ("interp", "fast", "jit"):
            jobs.append({"kind": "run", "workload": "fir_32_1",
                         "backend": backend})
        for seed in (3, 5):
            jobs.append({"kind": "recipe", "recipe": {"seed": seed},
                         "strategy": "CB"})
        jobs.append({"kind": "run", "workload": "fir_32_1",
                     "writes": {"x": [float(repeat)] * 32},
                     "reads": ["y"]})
        jobs.append({"kind": "run", "workload": "mult_4_4",
                     "strategy": "CB_PROFILE"})
    return jobs


def _percentile(sorted_values, fraction):
    index = round(fraction * (len(sorted_values) - 1))
    return sorted_values[index]


def bench_service(root, journal=False):
    jobs = _job_mix()
    leg = "journaled" if journal else "plain"
    serve_dir = str(Path(root) / ("serve-cache-%s" % leg))
    journal_path = str(Path(root) / ("journal-%s.jsonl" % leg))
    direct_dir = str(Path(root) / "direct-cache")

    async def run_load():
        service = SimService(
            cache_dir=serve_dir,
            journal=journal_path if journal else None,
        )
        host, port = await service.start()
        loop = asyncio.get_event_loop()

        def client_leg():
            with ServeClient(host, port) as client:
                start = time.perf_counter()
                events = client.run_jobs(jobs)
                elapsed = time.perf_counter() - start
                stats = client.stats()
            return events, stats, elapsed

        try:
            return await loop.run_in_executor(None, client_leg)
        finally:
            await service.stop()

    events, stats, elapsed = asyncio.run(run_load())

    rejected = sum(1 for e in events if e["event"] == "rejected")
    errors = sum(1 for e in events if e["event"] == "error")
    bit_identical = True
    for job, event in zip(jobs, events):
        if event["event"] != "result":
            continue
        reference = execute_job(validate_job(dict(job)), cache_dir=direct_dir)
        if (event["digest"] != reference["digest"]
                or event["cycles"] != reference["cycles"]):
            bit_identical = False
    latencies = sorted(e["latency_s"] for e in events)
    journaled_terminals = None
    if journal:
        # the durability contract the throughput ratio is priced
        # against: every accepted job has a completed journal record
        from repro.evaluation.parallel import Journal

        log = Journal(journal_path)
        journaled_terminals = len(log.completed)
        log.close()
        assert journaled_terminals == len(jobs) - rejected
    return {
        "journal": journal,
        "journaled_terminals": journaled_terminals,
        "jobs": len(jobs),
        "rejected": rejected,
        "errors": errors,
        "bit_identical": bit_identical,
        "wall_clock_s": round(elapsed, 4),
        "req_per_s": round(len(jobs) / elapsed, 1),
        "latency_p50_s": round(_percentile(latencies, 0.50), 5),
        "latency_p99_s": round(_percentile(latencies, 0.99), 5),
        "coalesced": stats.get("serve.coalesced", 0),
        "dispatch_rounds": stats.get("serve.dispatches", 0),
        "groups": stats.get("serve.groups", 0),
        "store_misses": stats.get("serve.store_misses", 0),
        "store_hits": stats.get("serve.store_hits", 0),
    }


def collect():
    root = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        report = {
            "store": bench_store(root),
            "service": bench_service(root),
            "service_journaled": bench_service(root, journal=True),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)
    report["journal_throughput_ratio"] = round(
        report["service_journaled"]["req_per_s"]
        / report["service"]["req_per_s"],
        3,
    )
    return report


def assert_no_regression(baseline, report, tolerance=REGRESSION_TOLERANCE):
    """The machine-neutral store headline may not silently collapse:
    warm_speedup must stay within *tolerance* of the committed ratio."""
    old = baseline.get("store", {}).get("warm_speedup")
    if not old:
        return
    new = report["store"]["warm_speedup"]
    assert new >= old * (1.0 - tolerance), (
        "warm-cache speedup regressed: %.2fx, was %.2fx (tolerance %d%%)"
        % (new, old, round(tolerance * 100))
    )


def main():
    report = collect()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print("wrote %s" % OUTPUT)
    return report


def test_serve_trajectory():
    """Regenerate the JSON and hold the serving-layer claims: a warm
    artifact store beats recompiling by at least 3x, the mixed load is
    admitted in full (zero rejections at the default queue limit), every
    job terminates, every result is bit-identical to its direct run, and
    the committed warm-cache ratio has not regressed."""
    baseline = json.loads(OUTPUT.read_text()) if OUTPUT.exists() else None
    report = main()
    assert report["store"]["warm_speedup"] >= WARM_SPEEDUP_GATE
    assert report["service"]["rejected"] == 0
    assert report["service"]["errors"] == 0
    assert report["service"]["bit_identical"]
    assert report["service"]["coalesced"] > 0
    assert report["service"]["req_per_s"] > 0
    # durability is near-free: the write-ahead journal may cost at most
    # 10% of sustained throughput (both legs run cold caches)
    assert report["service_journaled"]["bit_identical"]
    assert report["service_journaled"]["errors"] == 0
    assert report["journal_throughput_ratio"] >= JOURNAL_THROUGHPUT_GATE
    if baseline is not None:
        assert_no_regression(baseline, report)


if __name__ == "__main__":
    main()
