"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Interference analysis vs naive alternation** — the paper's Section 2
   contrasts its CB partitioning with the simple alternating allocation
   of Sudarsanam & Malik; `Strategy.ALTERNATING` implements the latter.
2. **Edge-weight accumulation vs max** — the paper specifies loop-depth
   weights but not how repeated pairs combine; we accumulate by default
   (see `StaticDepthWeights`), and this ablation shows why: with the max
   policy, uniformly-weighted graphs strand the greedy partitioner in
   zero-gain ties on FFT-like kernels.
3. **Zero-overhead hardware loops vs compare-and-branch loops** — the
   substrate feature the paper's Figure 1 example leans on.

Run:  pytest benchmarks/bench_ablations.py --benchmark-only -s
"""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.partition.graph_builder import build_interference_graph
from repro.partition.greedy import GreedyPartitioner
from repro.partition.strategies import Strategy
from repro.partition.weights import StaticDepthWeights
from repro.sim.simulator import Simulator
from repro.workloads.registry import KERNELS
from repro.ir.symbols import MemoryBank


def _cycles(module, strategy):
    compiled = compile_module(module, strategy=strategy)
    return Simulator(compiled.program).run().cycles


ABLATION_KERNELS = ["fir_32_1", "iir_1_1", "latnrm_8_1", "lmsfir_8_1", "mult_4_4"]


@pytest.mark.parametrize("name", ABLATION_KERNELS)
def test_cb_beats_or_matches_alternation(benchmark, name):
    workload = KERNELS[name]
    cb = benchmark.pedantic(
        _cycles, args=(workload.build(), Strategy.CB), rounds=1, iterations=1
    )
    alternating = _cycles(workload.build(), Strategy.ALTERNATING)
    baseline = _cycles(workload.build(), Strategy.SINGLE_BANK)
    benchmark.extra_info["cb_gain"] = round(100 * (baseline / cb - 1), 1)
    benchmark.extra_info["alt_gain"] = round(
        100 * (baseline / alternating - 1), 1
    )
    assert cb <= alternating


def test_alternation_sometimes_loses_badly(benchmark, capsys):
    """On iir (five coefficient arrays + two state arrays) declaration-
    order alternation can co-locate hot pairs that the interference
    graph separates."""
    def collect():
        rows = []
        for name in ABLATION_KERNELS:
            workload = KERNELS[name]
            baseline = _cycles(workload.build(), Strategy.SINGLE_BANK)
            cb = _cycles(workload.build(), Strategy.CB)
            alt = _cycles(workload.build(), Strategy.ALTERNATING)
            rows.append((name, baseline, cb, alt))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Ablation 1: CB partitioning vs naive alternation")
        print("%-14s %9s %9s %9s" % ("kernel", "baseline", "CB", "Alt"))
        for name, baseline, cb, alt in rows:
            print("%-14s %9d %9d %9d" % (name, baseline, cb, alt))
    assert all(cb <= alt for _n, _b, cb, alt in rows)


def _fft_like_module():
    pb = ProgramBuilder("fftlike")
    re = pb.global_array("re", 16, float, init=[1.0] * 16)
    im = pb.global_array("im", 16, float, init=[0.0] * 16)
    wre = pb.global_array("wre", 8, float, init=[1.0] * 8)
    wim = pb.global_array("wim", 8, float, init=[0.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            f.assign(acc, acc + re[i] * im[i])
            f.assign(acc, acc + wre[i] * wim[i])
            f.assign(acc, acc + re[i] * wim[i])
            f.assign(acc, acc + im[i] * wim[i])
        f.assign(out[0], acc)
    return pb.build()


def test_weight_accumulation_breaks_ties(benchmark):
    def build_both():
        acc_graph = build_interference_graph(
            _fft_like_module(), StaticDepthWeights(accumulate=True)
        )
        max_graph = build_interference_graph(
            _fft_like_module(), StaticDepthWeights(accumulate=False)
        )
        return acc_graph, max_graph

    acc_graph, max_graph = benchmark.pedantic(
        build_both, rounds=1, iterations=1
    )
    acc_cut = GreedyPartitioner(acc_graph).partition()
    max_cut = GreedyPartitioner(max_graph).partition()
    # Accumulation must never leave more weighted interference uncut.

    def uncut_fraction(graph, cut):
        total = graph.total_weight()
        return cut.final_cost / total if total else 0.0

    assert uncut_fraction(acc_graph, acc_cut) <= uncut_fraction(
        max_graph, max_cut
    ) + 1e-9


@pytest.mark.parametrize("name", ["fir_32_1", "mult_4_4"])
def test_hw_loops_matter(benchmark, name):
    """Software (compare-and-branch) loops dilute the dual-bank gain:
    the loop overhead ops execute on units the memory traffic never
    needed, and the branch adds cycles to every iteration."""

    def build_fir(hw):
        pb = ProgramBuilder("fir_ablation")
        coeff = pb.global_array("coeff", 16, float, init=[0.5] * 16)
        x = pb.global_array("x", 16, float, init=[2.0] * 16)
        out = pb.global_scalar("out", float)
        with pb.function("main") as f:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.for_range(0, 16, hw=hw) as k:
                f.assign(acc, acc + coeff[k] * x[k])
            f.assign(out[0], acc)
        return pb.build()

    hw_cycles = benchmark.pedantic(
        _cycles, args=(build_fir(True), Strategy.CB), rounds=1, iterations=1
    )
    sw_cycles = _cycles(build_fir(False), Strategy.CB)
    benchmark.extra_info["hw_cycles"] = hw_cycles
    benchmark.extra_info["sw_cycles"] = sw_cycles
    assert hw_cycles < sw_cycles


def test_conservative_aliasing_costs_parallelism(benchmark, capsys):
    """Paper Section 2: without alias information (pointer-passed data),
    the allocation must be conservative.  Marking one of the FIR arrays
    `opaque` pins it to bank X and excludes it from partitioning — the
    gain collapses back toward the baseline."""

    def build(opaque):
        pb = ProgramBuilder("alias_ablation")
        coeff = pb.global_array("coeff", 32, float, init=[0.5] * 32)
        x = pb.global_array(
            "x", 32, float, init=[1.0] * 32, opaque=opaque
        )
        out = pb.global_scalar("out", float)
        with pb.function("main") as f:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.loop(32) as k:
                f.assign(acc, acc + coeff[k] * x[k])
            f.assign(out[0], acc)
        return pb.build()

    def collect():
        rows = {}
        for opaque in (False, True):
            baseline = _cycles(build(opaque), Strategy.SINGLE_BANK)
            cb = _cycles(build(opaque), Strategy.CB)
            rows[opaque] = (baseline, cb)
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Ablation: exact alias info vs conservative (opaque) data")
        for opaque, (baseline, cb) in rows.items():
            gain = 100.0 * (baseline / cb - 1.0)
            label = "opaque x" if opaque else "exact aliasing"
            print("  %-16s baseline=%4d CB=%4d (+%.1f%%)" % (label, baseline, cb, gain))
    exact_gain = rows[False][0] / rows[False][1]
    opaque_gain = rows[True][0] / rows[True][1]
    assert exact_gain > opaque_gain
