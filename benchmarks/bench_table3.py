"""Regenerate paper Table 3: performance/cost trade-offs of duplication.

Times the FullDup pipeline per application (the configuration Table 3
adds over Figure 8) and prints the full reproduced table with the
paper's own rows interleaved.

Run:  pytest benchmarks/bench_table3.py --benchmark-only -s
"""

import pytest

from benchmarks.conftest import run_pipeline_once
from repro.evaluation.paper_data import APPLICATION_ORDER, PAPER_TABLE3
from repro.evaluation.reporting import render_table3
from repro.evaluation.tables import table3
from repro.partition.strategies import Strategy

_TABLE = {}


def _full_table():
    if "t3" not in _TABLE:
        _TABLE["t3"] = table3()
    return _TABLE["t3"]


@pytest.mark.parametrize("name", APPLICATION_ORDER)
def test_table3_row(benchmark, name):
    benchmark.pedantic(
        run_pipeline_once, args=(name, Strategy.FULL_DUP), rounds=1, iterations=1
    )
    table = _full_table()
    cells = table.rows[name]
    for label in ("FullDup", "Dup", "CB", "Ideal"):
        benchmark.extra_info[label] = "PG=%.2f CI=%.2f PCR=%.2f" % (
            cells[label].pg,
            cells[label].ci,
            cells[label].pcr,
        )
    # Full duplication is never cost-effective (paper Section 4.2).
    assert cells["FullDup"].pcr < 1.0
    # Partitioning alone never increases memory cost meaningfully.
    assert cells["CB"].ci <= 1.02


def test_table3_mean_row_shapes(benchmark):
    table = benchmark.pedantic(_full_table, rounds=1, iterations=1)
    pg_full, ci_full, pcr_full = table.mean("FullDup")
    pg_dup, ci_dup, pcr_dup = table.mean("Dup")
    pg_cb, ci_cb, pcr_cb = table.mean("CB")
    pg_ideal, _ci_ideal, pcr_ideal = table.mean("Ideal")
    assert ci_full > 1.5          # paper: 1.62
    assert pcr_full < 1.0         # paper: 0.68
    assert ci_dup < 1.25          # paper: 1.01
    assert pcr_dup > 1.0          # paper: 1.06
    assert pcr_cb > 1.0           # paper: 1.06
    assert pg_ideal >= pg_cb      # Ideal bounds CB
    assert pg_ideal >= pg_dup - 0.01


def test_table3_report(benchmark, capsys):
    table = benchmark.pedantic(_full_table, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table3(table))
