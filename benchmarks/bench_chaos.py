"""Chaos benchmark: emits ``BENCH_chaos.json``.

One seeded :class:`~repro.chaos.plan.ChaosPlan` campaign against a
live ``repro serve`` subprocess (write-ahead journal + artifact store
enabled): three SIGKILL/restart cycles with jobs accepted and
in-flight at every kill, store sabotage between cycles, oversized and
stalled submissions while up, and a settle pass that recovers and
replays everything.

The pytest entry point is the regression gate for the crash-safety
claims, all machine-neutral and asserted absolutely:

* **zero accepted jobs lost** — every job the service acknowledged has
  a completed journal record after recovery, with no client help;
* **zero duplicate executions** — at most one completed record per
  job key in the raw journal across every kill/restart cycle;
* **bit-identical replays** — every terminal matches a direct
  :func:`~repro.serve.jobs.execute_job` reference;
* **bounded recovery** — worst restart-to-recovery time under the
  budget (generous, because it gates pathology, not host speed);
* **the chaos actually happened** — at least 3 kills and at least one
  protocol-abuse probe survived.

Run either way:

    python benchmarks/bench_chaos.py
    pytest benchmarks/bench_chaos.py -q
"""

import json
import shutil
import tempfile
from pathlib import Path

from repro.chaos import generate_plan, run_chaos

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

#: the frozen campaign: same seed, same plan, same kills, forever
PLAN_SEED = 2026
CYCLES = 3
JOBS_PER_CYCLE = 4

#: recovery-budget gate (seconds): generous on purpose — it catches a
#: recovery path that hangs or re-executes the world, not a slow host
RECOVERY_BUDGET_S = 60.0


def collect():
    plan = generate_plan(
        PLAN_SEED, cycles=CYCLES, jobs_per_cycle=JOBS_PER_CYCLE
    )
    root = tempfile.mkdtemp(prefix="bench-chaos-")
    try:
        report = run_chaos(
            plan, root, recovery_budget_s=RECOVERY_BUDGET_S,
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return report


def main():
    report = collect()
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report["invariants"], indent=2, sort_keys=True))
    print("wrote %s" % OUTPUT)
    return report


def test_chaos_trajectory():
    """Regenerate the JSON and hold the crash-safety claims: nothing
    accepted is lost, nothing runs twice, replays are bit-identical,
    recovery is bounded, and the campaign really did kill the service
    at least three times."""
    report = main()
    invariants = report["invariants"]
    assert report["ok"], invariants
    assert invariants["lost"] == 0, invariants["lost_ids"]
    assert invariants["duplicate_executions"] == 0
    assert invariants["replay_mismatches"] == 0, invariants["mismatched_ids"]
    assert invariants["kills"] >= 3
    assert invariants["accepted"] == CYCLES * JOBS_PER_CYCLE
    assert invariants["recovery_worst_s"] <= RECOVERY_BUDGET_S
    assert invariants["deduped_replays"] > 0
    assert invariants["protocol_errors_survived"] >= 1


if __name__ == "__main__":
    main()
