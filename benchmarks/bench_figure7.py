"""Regenerate paper Figure 7: performance gain for the 12 DSP kernels.

Each benchmark times one full compile-and-simulate pipeline run for one
kernel under the CB configuration; the session epilogue prints the
complete reproduced figure (CB and Ideal series) next to the paper's
stated facts.

Run:  pytest benchmarks/bench_figure7.py --benchmark-only -s
"""

import pytest

from benchmarks.conftest import measured, run_pipeline_once
from repro.evaluation.figures import figure7
from repro.evaluation.paper_data import KERNEL_ORDER, PAPER_FIGURE7_FACTS
from repro.evaluation.reporting import render_figure7
from repro.partition.strategies import Strategy


@pytest.mark.parametrize("name", KERNEL_ORDER)
def test_figure7_kernel(benchmark, name):
    cycles = benchmark.pedantic(
        run_pipeline_once, args=(name, Strategy.CB), rounds=1, iterations=1
    )
    evaluation = measured(name, (Strategy.CB, Strategy.IDEAL))
    gain = evaluation.gain_percent(Strategy.CB)
    ideal = evaluation.gain_percent(Strategy.IDEAL)
    benchmark.extra_info["cycles_cb"] = evaluation.cycles(Strategy.CB)
    benchmark.extra_info["gain_cb_percent"] = round(gain, 1)
    benchmark.extra_info["gain_ideal_percent"] = round(ideal, 1)
    # Paper: partitioning improves performance for all the kernels,
    # 13%-49%, and CB is (nearly) identical to Ideal.
    low, high = PAPER_FIGURE7_FACTS["cb_gain_range"]
    assert gain > 0
    assert low - 5.0 <= gain <= high + 6.0
    assert gain >= ideal - 4.0


def test_figure7_report(benchmark, capsys):
    series = benchmark.pedantic(figure7, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_figure7(series))
