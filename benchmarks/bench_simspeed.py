"""Simulator/evaluation throughput tracking: emits ``BENCH_simspeed.json``.

Measures the end-to-end wall clock of a full Table-3 evaluation under

* the seed configuration (serial, reference interpreter),
* the threaded-code backend, serial,
* the loop-specializing ``jit`` backend, serial,
* the ``jit`` backend with ``--jobs 0`` (all cores, resolved exactly as
  the CLI resolves it) — skipped with a note, instead of reported as a
  misleading duplicate of the serial number, when only one core
  resolves,

plus raw simulator throughput (cycles/second per backend) on the largest
FIR kernel, and the ``batch`` campaign section: 64 instances of one FIR
program with per-instance inputs through a single lockstep
:func:`~repro.evaluation.parallel.batch_map` call, against the best
available per-instance jit sweep (``batch_speedup``, gated at 5x).  The headline ``speedup`` compares the seed configuration
against the best measured alternative (named in ``best_config``) — the
Table-3 sweep is compile-bound, each program is simulated exactly once,
so per-program codegen never amortizes and the fastest end-to-end
configuration can legitimately differ from the fastest steady-state
backend.  ``speedup_jit`` holds the tentpole claim that the jit backend
beats the threaded-code backend on raw loop throughput where codegen
does amortize.

The pytest entry point doubles as a **regression gate**: it reads the
committed ``BENCH_simspeed.json`` *before* regenerating it and asserts
that no backend's throughput — normalized to the same machine's
reference interpreter, so absolute hardware speed cancels out — has
regressed by more than :data:`REGRESSION_TOLERANCE`.  It also holds the
fault-injection-off overhead gate: with no plan armed the fault
subsystem installs no hook at all, so simulation stays within 2% of the
hookless baseline (see ``docs/resilience.md``).

Run either way:

    python benchmarks/bench_simspeed.py
    pytest benchmarks/bench_simspeed.py -q
"""

import json
import random
import time
from pathlib import Path

from repro.compiler import compile_module
from repro.evaluation.parallel import (
    batch_map,
    default_jobs,
    parallel_map,
    resolve_jobs,
)
from repro.evaluation.tables import table3
from repro.partition.strategies import Strategy
from repro.sim.fastsim import make_simulator
from repro.workloads.kernels.fir import Fir
from repro.workloads.registry import KERNELS

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"

#: wall-clock rounds per configuration (the minimum is reported)
ROUNDS = 2

THROUGHPUT_KERNEL = "fir_256_64"

BACKENDS = ("interp", "fast", "jit", "batch")

#: the lockstep campaign benchmark: 64 instances of one FIR program
BATCH_INSTANCES = 64
BATCH_FIR = (32, 8)

#: allowed relative drop in interp-normalized throughput per backend
REGRESSION_TOLERANCE = 0.10


def _best_wall_clock(fn):
    times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _simulator_throughput(backend):
    """Best-of-ROUNDS cycles/elapsed for *backend* on the throughput
    kernel.  Each round runs three fresh simulators of one compiled
    program; from the second round on the program-level codegen cache
    is warm, so the minimum reflects steady-state dispatch speed."""
    compiled = compile_module(
        KERNELS[THROUGHPUT_KERNEL].build(), strategy=Strategy.CB
    )
    best = None
    for _ in range(ROUNDS + 1):
        simulators = [
            make_simulator(compiled.program, backend=backend)
            for _ in range(3)
        ]
        cycles = 0
        start = time.perf_counter()
        for simulator in simulators:
            cycles += simulator.run().cycles
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[1]:
            best = (cycles, elapsed)
    return best


def _fault_off_overhead():
    """Throughput with a disarmed fault plan vs no plan at all.

    :meth:`~repro.faults.injector.FaultInjector.for_plan` returns
    ``None`` for ``None``/event-less plans, so a disarmed campaign
    installs **no hook** and the simulator keeps its fused no-hook fast
    path — the overhead is structural zero by design.  The measurement
    documents that (both legs run the identical code path; the delta is
    wall-clock noise) and the gate in :func:`test_simspeed_trajectory`
    holds it under 2%.
    """
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan

    hook = FaultInjector.for_plan(FaultPlan(seed=0, events=[]))
    assert hook is None, "disarmed plan must not install a hook"
    compiled = compile_module(
        KERNELS[THROUGHPUT_KERNEL].build(), strategy=Strategy.CB
    )

    def run(installed):
        simulators = [
            make_simulator(
                compiled.program, backend="fast", interrupt_hook=installed
            )
            for _ in range(3)
        ]
        start = time.perf_counter()
        for simulator in simulators:
            simulator.run()
        return time.perf_counter() - start

    # Each leg is ~20ms, so the min-of-rounds needs more rounds than the
    # table3 measurements to push the noise floor below the 2% gate.
    baseline = armed_off = None
    for _ in range(max(ROUNDS + 1, 10)):
        elapsed = run(None)
        baseline = elapsed if baseline is None else min(baseline, elapsed)
        elapsed = run(hook)
        armed_off = elapsed if armed_off is None else min(armed_off, elapsed)
    overhead = armed_off / baseline - 1.0
    return {
        "workload": THROUGHPUT_KERNEL,
        "disarmed_hook_is_none": True,
        "baseline_s": round(baseline, 4),
        "disarmed_s": round(armed_off, 4),
        "overhead_percent": round(100.0 * overhead, 3),
    }


_JIT_WORKER_PROGRAM = None


def _jit_campaign_task(row):
    """One campaign instance for the process-parallel jit leg (each
    worker process compiles the program once and caches it)."""
    global _JIT_WORKER_PROGRAM
    if _JIT_WORKER_PROGRAM is None:
        taps, samples = BATCH_FIR
        _JIT_WORKER_PROGRAM = compile_module(
            Fir(taps, samples).build(), strategy=Strategy.CB
        ).program
    simulator = make_simulator(_JIT_WORKER_PROGRAM, backend="jit")
    simulator.write_global("x", row)
    simulator.run()
    return simulator.read_global("y")


def _batch_campaign(jobs):
    """The lockstep-lanes headline: BATCH_INSTANCES copies of one FIR
    program with per-instance inputs, as one ``batch_map`` call against
    the per-instance jit sweep it replaces.  Outputs are asserted
    bit-identical before anything is timed."""
    taps, samples = BATCH_FIR
    compiled = compile_module(Fir(taps, samples).build(), strategy=Strategy.CB)
    rng = random.Random(1234)
    rows = [
        [rng.uniform(-1.0, 1.0) for _ in range(taps + samples - 1)]
        for _ in range(BATCH_INSTANCES)
    ]
    tasks = [(compiled.program, {"x": row}, ("y",)) for row in rows]

    batched = batch_map(tasks, lanes=BATCH_INSTANCES)
    scalar = batch_map(tasks, backend="jit")
    for lane, (b, s) in enumerate(zip(batched, scalar)):
        assert b.error is None and s.error is None, lane
        assert b.outputs == s.outputs, "lane %d diverged from jit" % lane
        assert b.result.cycles == s.result.cycles, lane

    batch_s = _best_wall_clock(lambda: batch_map(tasks, lanes=BATCH_INSTANCES))
    jit_serial_s = _best_wall_clock(lambda: batch_map(tasks, backend="jit"))
    section = {
        "workload": "fir_%d_%d" % BATCH_FIR,
        "instances": BATCH_INSTANCES,
        "lanes": BATCH_INSTANCES,
        "bit_identical_to_jit": True,
        "batch_s": round(batch_s, 4),
        "jit_serial_s": round(jit_serial_s, 4),
        "jobs_resolved": jobs,
        "jobs_meaningful": jobs > 1,
    }
    if jobs > 1:
        jit_jobs_s = _best_wall_clock(
            lambda: parallel_map(
                _jit_campaign_task, [(row,) for row in rows], jobs=jobs
            )
        )
        section["jit_jobs_s"] = round(jit_jobs_s, 4)
        reference = min(jit_serial_s, jit_jobs_s)
    else:
        # With one resolved core a "parallel" jit leg would just rerun
        # the serial sweep plus process overhead; label the row instead
        # of reporting a misleading number.
        section["jit_jobs_s"] = None
        section["jit_jobs_note"] = (
            "skipped: only one core resolved, so the --jobs leg would "
            "duplicate jit_serial_s plus process overhead"
        )
        reference = jit_serial_s
    section["batch_speedup"] = round(reference / batch_s, 3)
    return section


def collect():
    """Run every measurement and return the report dict."""
    table3(subset={"histogram"})  # warm imports and workload tables
    jobs = resolve_jobs(0)
    interp_serial = _best_wall_clock(lambda: table3())
    fast_serial = _best_wall_clock(lambda: table3(backend="fast"))
    jit_serial = _best_wall_clock(lambda: table3(backend="jit"))

    candidates = {
        "fast_serial": fast_serial,
        "jit_serial": jit_serial,
    }
    if jobs > 1:
        candidates["jit_jobs"] = _best_wall_clock(
            lambda: table3(backend="jit", jobs=jobs)
        )
    best_config = min(candidates, key=candidates.get)
    report = {
        "table3": {
            "interp_serial_s": round(interp_serial, 4),
            "fast_serial_s": round(fast_serial, 4),
            "jit_serial_s": round(jit_serial, 4),
            "jobs_requested": 0,
            "jobs_resolved": jobs,
            "jobs_meaningful": jobs > 1,
            "cores": default_jobs(),
            "speedup_fast_serial": round(interp_serial / fast_serial, 3),
            "speedup_jit_serial": round(interp_serial / jit_serial, 3),
            "best_config": best_config,
            "speedup": round(interp_serial / candidates[best_config], 3),
        },
        "simulator": {},
    }
    if jobs > 1:
        report["table3"]["jit_jobs_s"] = round(candidates["jit_jobs"], 4)
    else:
        # One core resolved: a --jobs run degenerates to the serial
        # sweep, so a jit_jobs_s number here would only mislead.
        report["table3"]["jit_jobs_s"] = None
        report["table3"]["jit_jobs_note"] = (
            "skipped: only one core resolved, so the --jobs leg would "
            "duplicate jit_serial_s plus process overhead"
        )
    for backend in BACKENDS:
        cycles, elapsed = _simulator_throughput(backend)
        report["simulator"][backend] = {
            "workload": THROUGHPUT_KERNEL,
            "cycles": cycles,
            "wall_clock_s": round(elapsed, 4),
            "cycles_per_s": round(cycles / elapsed),
        }
    per_s = {b: report["simulator"][b]["cycles_per_s"] for b in BACKENDS}
    report["simulator"]["speedup"] = round(per_s["fast"] / per_s["interp"], 3)
    report["simulator"]["speedup_jit"] = round(per_s["jit"] / per_s["fast"], 3)
    report["batch"] = _batch_campaign(jobs)
    report["fault_injection"] = _fault_off_overhead()
    return report


def _normalized_throughputs(report):
    """Backend -> throughput relative to the interpreter in the same
    report (hardware-neutral, so reports from different machines and
    runs compare meaningfully)."""
    simulator = report.get("simulator", {})
    interp = simulator.get("interp", {}).get("cycles_per_s")
    if not interp:
        return {}
    return {
        backend: entry["cycles_per_s"] / interp
        for backend, entry in simulator.items()
        if isinstance(entry, dict) and entry.get("cycles_per_s")
    }


def assert_no_regression(baseline, report, tolerance=REGRESSION_TOLERANCE):
    """No backend may lose more than *tolerance* of its interp-normalized
    throughput against the committed baseline (new backends are exempt —
    they have no baseline yet)."""
    before = _normalized_throughputs(baseline)
    after = _normalized_throughputs(report)
    for backend, old in before.items():
        new = after.get(backend)
        assert new is not None, "backend %r disappeared from the report" % backend
        assert new >= old * (1.0 - tolerance), (
            "backend %r regressed: %.2fx interp, was %.2fx (tolerance %d%%)"
            % (backend, new, old, round(tolerance * 100))
        )


def main():
    report = collect()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print("wrote %s" % OUTPUT)
    return report


def test_simspeed_trajectory():
    """Regenerate the JSON and hold the PR's headline claims: the jit
    backend is at least 2.5x the threaded-code backend on the largest
    FIR kernel, the best Table-3 configuration still beats the seed
    serial interpreter comfortably (1.8x leaves headroom for wall-clock
    noise on a compile-bound sweep), and no backend regressed more than
    10% against the committed numbers."""
    baseline = json.loads(OUTPUT.read_text()) if OUTPUT.exists() else None
    report = main()
    assert report["table3"]["speedup"] >= 1.8
    assert report["simulator"]["speedup"] >= 2.0
    assert report["simulator"]["speedup_jit"] >= 2.5
    # The lockstep backend's campaign claim: one 64-lane batch_map call
    # beats running the same sweep through the best available jit
    # configuration (process-parallel where cores exist, serial where
    # --jobs would resolve to a single core) by at least 5x — and the
    # lanes are bit-identical to the per-instance jit runs they replace.
    assert report["batch"]["bit_identical_to_jit"]
    assert report["batch"]["batch_speedup"] >= 5.0
    assert report["batch"]["jobs_meaningful"] == (
        report["batch"]["jobs_resolved"] > 1
    )
    # Fault injection must be free when no plan is armed (a disarmed
    # plan installs no hook, so anything past noise is a regression).
    assert report["fault_injection"]["disarmed_hook_is_none"]
    assert report["fault_injection"]["overhead_percent"] < 2.0
    if baseline is not None:
        assert_no_regression(baseline, report)


if __name__ == "__main__":
    main()
