"""Simulator/evaluation throughput tracking: emits ``BENCH_simspeed.json``.

Measures the end-to-end wall clock of a full Table-3 evaluation under

* the seed configuration (serial, reference interpreter),
* the threaded-code backend, serial,
* the threaded-code backend with ``--jobs 4`` (resolved exactly as the
  CLI resolves it, i.e. capped at the machine's core count),

plus raw simulator throughput (cycles/second per backend) on the largest
FIR kernel.  The headline ``speedup`` compares the seed configuration
against ``fast + --jobs 4``.

Run either way:

    python benchmarks/bench_simspeed.py
    pytest benchmarks/bench_simspeed.py -q
"""

import json
import time
from pathlib import Path

from repro.compiler import compile_module
from repro.evaluation.parallel import default_jobs, resolve_jobs
from repro.evaluation.tables import table3
from repro.partition.strategies import Strategy
from repro.sim.fastsim import make_simulator
from repro.workloads.registry import KERNELS

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"

#: wall-clock rounds per configuration (the minimum is reported)
ROUNDS = 2

THROUGHPUT_KERNEL = "fir_256_64"


def _best_wall_clock(fn):
    times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _simulator_throughput(backend):
    compiled = compile_module(
        KERNELS[THROUGHPUT_KERNEL].build(), strategy=Strategy.CB
    )
    simulators = [
        make_simulator(compiled.program, backend=backend) for _ in range(3)
    ]
    cycles = 0
    start = time.perf_counter()
    for simulator in simulators:
        cycles += simulator.run().cycles
    elapsed = time.perf_counter() - start
    return cycles, elapsed


def collect():
    """Run every measurement and return the report dict."""
    table3(subset={"histogram"})  # warm imports and workload tables
    jobs = resolve_jobs(4)
    interp_serial = _best_wall_clock(lambda: table3())
    fast_serial = _best_wall_clock(lambda: table3(backend="fast"))
    fast_jobs = _best_wall_clock(lambda: table3(backend="fast", jobs=jobs))

    report = {
        "table3": {
            "interp_serial_s": round(interp_serial, 4),
            "fast_serial_s": round(fast_serial, 4),
            "fast_jobs_s": round(fast_jobs, 4),
            "jobs_requested": 4,
            "jobs_resolved": jobs,
            "cores": default_jobs(),
            "speedup_fast_serial": round(interp_serial / fast_serial, 3),
            "speedup": round(interp_serial / fast_jobs, 3),
        },
        "simulator": {},
    }
    for backend in ("interp", "fast"):
        cycles, elapsed = _simulator_throughput(backend)
        report["simulator"][backend] = {
            "workload": THROUGHPUT_KERNEL,
            "cycles": cycles,
            "wall_clock_s": round(elapsed, 4),
            "cycles_per_s": round(cycles / elapsed),
        }
    report["simulator"]["speedup"] = round(
        report["simulator"]["fast"]["cycles_per_s"]
        / report["simulator"]["interp"]["cycles_per_s"],
        3,
    )
    return report


def main():
    report = collect()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print("wrote %s" % OUTPUT)
    return report


def test_simspeed_trajectory():
    """Emit the JSON and hold the PR's headline claim: a full Table-3
    evaluation on the fast backend with ``--jobs 4`` beats the seed
    serial interpreter by at least 2x."""
    report = main()
    assert report["table3"]["speedup"] >= 2.0
    assert report["simulator"]["speedup"] >= 2.0


if __name__ == "__main__":
    main()
