"""Parameter sweeps: the paper's effects as curves, crossovers included.

Run:  pytest benchmarks/bench_sweeps.py --benchmark-only -s
"""

import pytest

from repro.evaluation.sweeps import duplication_crossover, kernel_size_sweep


def test_fir_gain_vs_size(benchmark, capsys):
    series = benchmark.pedantic(kernel_size_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Sweep: CB gain vs FIR tap count")
        for taps, gain in series:
            print("  taps=%4d  +%5.1f%%  |%s" % (taps, gain, "#" * int(gain)))
    gains = [gain for _t, gain in series]
    # The per-iteration win is structural: gains grow toward the
    # asymptote as loop overhead amortizes, and never regress.
    assert all(b >= a - 0.5 for a, b in zip(gains, gains[1:]))
    assert gains[-1] > 45.0


def test_duplication_pcr_crossover(benchmark, capsys):
    rows, crossover = benchmark.pedantic(
        duplication_crossover, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print("Sweep: duplication PCR vs frame size (paper Sec 4.2 trade-off)")
        print("  %-7s %8s %8s %8s %8s" % ("frame", "PCR(CB)", "PCR(Dup)", "PG", "CI"))
        for frame, pcr_cb, pcr_dup, pg, ci in rows:
            marker = "  <- crossover" if frame == crossover else ""
            print(
                "  %-7d %8.3f %8.3f %8.2f %8.2f%s"
                % (frame, pcr_cb, pcr_dup, pg, ci, marker)
            )
    # Duplication wins clearly at small frames...
    first = rows[0]
    assert first[2] > first[1]
    # ...its PCR declines monotonically as the duplicated array grows...
    pcr_dups = [row[2] for row in rows]
    assert all(b < a for a, b in zip(pcr_dups, pcr_dups[1:]))
    # ...and eventually partitioning alone is the better trade.
    assert crossover is not None
