"""Partition-quality tracking: emits ``BENCH_partition.json``.

Freezes the gap-to-optimal study
(:func:`repro.evaluation.partition_gap.partition_gap`) over the full
workload registry: per workload and per registered partitioner, the
final interference cost, the gap ratio to the exact branch-and-bound
optimum, and the realized PG/CI/PCR against the single-bank baseline.

Unlike the throughput benchmarks, every number here is **deterministic**
— costs, cycles, and ratios depend only on the code, never the machine
— so the pytest entry point is an exact drift guard: it regenerates the
study and asserts the result matches the committed JSON field for field
(timing metadata excluded).  A legitimate change to a partitioner, a
workload, or the cost model shows up as a reviewed diff to
``BENCH_partition.json``, never as silent drift.

The gates also hold the substantive claims:

* the exact solver proves optimality on every registry graph (they all
  fit inside its node limit);
* no heuristic ever lands below the proved optimum (gap >= 1.0 — a
  sub-optimal "optimum" would be a solver bug);
* the paper's "near-ideal" claim for greedy, quantified: mean gap
  within :data:`GREEDY_MEAN_GAP_LIMIT` of optimal across the registry.

Run either way:

    python benchmarks/bench_partition.py
    pytest benchmarks/bench_partition.py -q
"""

import json
import time
from pathlib import Path

from repro.evaluation.partition_gap import partition_gap
from repro.evaluation.reporting import render_partition_gap

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_partition.json"

#: greedy's mean gap-to-optimal over the registry must stay within this
#: factor of 1.0 (the measured value is ~1.002: optimal everywhere but
#: the 16-node trellis graph, where it lands 5% high)
GREEDY_MEAN_GAP_LIMIT = 1.05

#: no single workload may put any heuristic further than this from the
#: proved optimum
MAX_GAP_LIMIT = 1.25


def collect():
    """Run the study and return the report dict (plus wall-clock info)."""
    start = time.perf_counter()
    report = partition_gap()
    report["elapsed_s"] = round(time.perf_counter() - start, 3)
    return report


def _comparable(report):
    """The deterministic projection of a report: everything but timing."""
    return {key: value for key, value in report.items() if key != "elapsed_s"}


def main():
    report = collect()
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(render_partition_gap(report))
    print("wrote %s" % OUTPUT)
    return report


def test_partition_gap_trajectory():
    """Regenerate the study and hold its claims against the committed
    numbers."""
    baseline = json.loads(OUTPUT.read_text()) if OUTPUT.exists() else None
    report = collect()

    aggregate = report["aggregate"]
    total = aggregate["workloads"]
    assert total > 0
    # Every registry graph fits the exact solver's node limit, so every
    # exact run must carry a proof.
    assert aggregate["exact"]["proved_count"] == total
    assert aggregate["exact"]["mean_gap"] == 1.0
    assert aggregate["exact"]["max_gap"] == 1.0
    for partitioner in report["partitioners"]:
        stats = aggregate[partitioner]
        assert stats["max_gap"] <= MAX_GAP_LIMIT, (
            "%s strayed %.3fx from the proved optimum"
            % (partitioner, stats["max_gap"])
        )
        for name, row in report["workloads"].items():
            assert row["gap"][partitioner] >= 1.0, (
                "%s beat the 'proved' optimum on %s — exact-solver bug"
                % (partitioner, name)
            )
    assert aggregate["greedy"]["mean_gap"] <= GREEDY_MEAN_GAP_LIMIT

    if baseline is not None:
        assert _comparable(baseline) == _comparable(report), (
            "partition-gap study drifted from the committed "
            "BENCH_partition.json; if the change is intended, regenerate "
            "it with `python benchmarks/bench_partition.py`"
        )


if __name__ == "__main__":
    main()
