"""Library performance benchmarks: how fast are the compiler passes?

The paper gives complexity bounds — interference-graph construction is
O(B·n²) and greedy partitioning O(v²) (Section 3.1) — so these measure
the passes in isolation on the largest workloads.  The simulator
benchmarks compare the reference interpreter against the threaded-code
backend (cycles/second), and the end-to-end benchmark times a full
Table-3 evaluation under both the seed configuration and
``fast + --jobs 4``.

Run:  pytest benchmarks/bench_compiler_speed.py --benchmark-only
"""

import time

import pytest

from repro.compiler import compile_module
from repro.evaluation.parallel import resolve_jobs
from repro.evaluation.tables import table3
from repro.partition.graph_builder import build_interference_graph
from repro.partition.greedy import GreedyPartitioner
from repro.partition.strategies import Strategy
from repro.sim.fastsim import FastSimulator
from repro.sim.simulator import Simulator
from repro.workloads.registry import KERNELS, APPLICATIONS


def test_interference_graph_construction(benchmark):
    module = KERNELS["fft_256"].build()
    graph = benchmark(build_interference_graph, module)
    assert len(graph) > 0


def test_greedy_partitioning(benchmark):
    module = APPLICATIONS["lpc"].build()
    graph = build_interference_graph(module)
    result = benchmark(lambda: GreedyPartitioner(graph).partition())
    assert result.final_cost <= graph.total_weight()


def test_full_compile_fft1024(benchmark):
    result = benchmark.pedantic(
        lambda: compile_module(KERNELS["fft_1024"].build(), strategy=Strategy.CB),
        rounds=1,
        iterations=1,
    )
    assert result.code_size > 0


def _throughput(benchmark, simulator_class):
    compiled = compile_module(KERNELS["fir_256_64"].build(), strategy=Strategy.CB)

    def run():
        start = time.perf_counter()
        result = simulator_class(compiled.program).run()
        return result, time.perf_counter() - start

    result, elapsed = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["cycles"] = result.cycles
    benchmark.extra_info["operations"] = result.operations
    benchmark.extra_info["wall_clock_s"] = round(elapsed, 4)
    benchmark.extra_info["cycles_per_s"] = round(result.cycles / elapsed)
    return result


def test_simulation_throughput(benchmark):
    _throughput(benchmark, Simulator)


def test_simulation_throughput_fast_backend(benchmark):
    """The threaded-code backend on the same program — identical results,
    several times the cycles/second."""
    expected = Simulator(
        compile_module(KERNELS["fir_256_64"].build(), strategy=Strategy.CB).program
    ).run()
    result = _throughput(benchmark, FastSimulator)
    assert result.cycles == expected.cycles
    assert result.operations == expected.operations


def test_table3_end_to_end_speedup(benchmark):
    """Full Table-3 evaluation: seed serial interpreter vs. the fast
    backend with ``--jobs 4`` (resolved as the CLI resolves it).  This is
    the PR's headline acceptance claim: at least a 2x end-to-end speedup.
    """
    table3(subset={"histogram"})  # warm imports and workload tables
    jobs = resolve_jobs(4)

    def measure():
        # Interleave the rounds so clock drift and background load hit
        # both configurations alike; compare best against best.
        interp_times = []
        fast_times = []
        for _ in range(3):
            start = time.perf_counter()
            table3()
            interp_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            table3(backend="fast", jobs=jobs)
            fast_times.append(time.perf_counter() - start)
        return min(interp_times), min(fast_times)

    interp_serial, fast_jobs = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = interp_serial / fast_jobs
    benchmark.extra_info["interp_serial_wall_clock_s"] = round(interp_serial, 4)
    benchmark.extra_info["fast_jobs_wall_clock_s"] = round(fast_jobs, 4)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["speedup"] = round(speedup, 3)
    assert speedup >= 2.0
