"""Library performance benchmarks: how fast are the compiler passes?

The paper gives complexity bounds — interference-graph construction is
O(B·n²) and greedy partitioning O(v²) (Section 3.1) — so these measure
the passes in isolation on the largest workloads.

Run:  pytest benchmarks/bench_compiler_speed.py --benchmark-only
"""

import pytest

from repro.compiler import compile_module
from repro.partition.graph_builder import build_interference_graph
from repro.partition.greedy import GreedyPartitioner
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator
from repro.workloads.registry import KERNELS, APPLICATIONS


def test_interference_graph_construction(benchmark):
    module = KERNELS["fft_256"].build()
    graph = benchmark(build_interference_graph, module)
    assert len(graph) > 0


def test_greedy_partitioning(benchmark):
    module = APPLICATIONS["lpc"].build()
    graph = build_interference_graph(module)
    result = benchmark(lambda: GreedyPartitioner(graph).partition())
    assert result.final_cost <= graph.total_weight()


def test_full_compile_fft1024(benchmark):
    result = benchmark.pedantic(
        lambda: compile_module(KERNELS["fft_1024"].build(), strategy=Strategy.CB),
        rounds=1,
        iterations=1,
    )
    assert result.code_size > 0


def test_simulation_throughput(benchmark):
    compiled = compile_module(KERNELS["fir_256_64"].build(), strategy=Strategy.CB)

    def run():
        return Simulator(compiled.program).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["cycles"] = result.cycles
    benchmark.extra_info["operations"] = result.operations
