"""Benchmark-session plumbing.

The figure/table regenerations are cached per session so that the
per-benchmark timing functions measure one (workload, configuration)
pipeline run each, while the printed reports cover the full figure.
"""

import pytest

from repro.evaluation.runner import evaluate_workload
from repro.partition.strategies import Strategy
from repro.workloads.registry import all_workloads

_CACHE = {}


def measured(name, strategies):
    """Session-cached evaluation of one workload."""
    key = (name, tuple(strategies))
    if key not in _CACHE:
        _CACHE[key] = evaluate_workload(all_workloads()[name], list(strategies))
    return _CACHE[key]


def run_pipeline_once(name, strategy):
    """One compile+simulate+verify pass (the unit the benchmarks time)."""
    from repro.compiler import compile_module
    from repro.sim.simulator import Simulator

    workload = all_workloads()[name]
    counts = {} if strategy is Strategy.CB_PROFILE else None
    compiled = compile_module(
        workload.build(), strategy=strategy, profile_counts=counts
    )
    simulator = Simulator(compiled.program)
    result = simulator.run()
    workload.verify(simulator)
    return result.cycles
