"""Benchmark the paper's Section 5 refinement: selective duplication.

The paper reports blanket partial duplication hurting `spectral` (PCR
1.01 vs CB's 1.11) and proposes duplicating only arrays whose gain
justifies the cost.  `Strategy.CB_DUP_SELECTIVE` implements that
refinement with a benefit-vs-integrity-store estimate; this benchmark
shows it matching the better of CB and Dup on every duplication
application.

Run:  pytest benchmarks/bench_selective_dup.py --benchmark-only -s
"""

import pytest

from repro.compiler import compile_module
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator
from repro.sim.tracing import profile_module
from repro.workloads.registry import APPLICATIONS

DUP_APPS = ["lpc", "spectral", "V32encode"]


def _gains(name):
    workload = APPLICATIONS[name]
    counts = profile_module(workload.build)
    cycles = {}
    for strategy in (
        Strategy.SINGLE_BANK,
        Strategy.CB,
        Strategy.CB_DUP,
        Strategy.CB_DUP_SELECTIVE,
    ):
        kwargs = (
            {"profile_counts": counts}
            if strategy is Strategy.CB_DUP_SELECTIVE
            else {}
        )
        compiled = compile_module(workload.build(), strategy=strategy, **kwargs)
        sim = Simulator(compiled.program)
        result = sim.run()
        workload.verify(sim)
        cycles[strategy] = result.cycles
    base = cycles[Strategy.SINGLE_BANK]
    return {s: 100.0 * (base / c - 1.0) for s, c in cycles.items()}


@pytest.mark.parametrize("name", DUP_APPS)
def test_selective_duplication(benchmark, name):
    gains = benchmark.pedantic(_gains, args=(name,), rounds=1, iterations=1)
    benchmark.extra_info["CB"] = round(gains[Strategy.CB], 1)
    benchmark.extra_info["Dup"] = round(gains[Strategy.CB_DUP], 1)
    benchmark.extra_info["SelDup"] = round(
        gains[Strategy.CB_DUP_SELECTIVE], 1
    )
    best = max(gains[Strategy.CB], gains[Strategy.CB_DUP])
    assert gains[Strategy.CB_DUP_SELECTIVE] >= best - 0.5


def test_selective_duplication_report(benchmark, capsys):
    def collect():
        return {name: _gains(name) for name in DUP_APPS}

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Selective duplication (paper Section 5 refinement)")
        print("%-12s %8s %8s %8s" % ("app", "CB", "Dup", "SelDup"))
        for name, gains in table.items():
            print(
                "%-12s %+7.1f%% %+7.1f%% %+7.1f%%"
                % (
                    name,
                    gains[Strategy.CB],
                    gains[Strategy.CB_DUP],
                    gains[Strategy.CB_DUP_SELECTIVE],
                )
            )
