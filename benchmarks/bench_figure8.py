"""Regenerate paper Figure 8: performance gain for the 11 applications.

Times one compile-and-simulate pipeline per application under each of
the figure's four configurations (CB, Pr, Dup, Ideal) and prints the
full reproduced series.

Run:  pytest benchmarks/bench_figure8.py --benchmark-only -s
"""

import pytest

from benchmarks.conftest import measured, run_pipeline_once
from repro.evaluation.figures import FIGURE8_STRATEGIES, figure8
from repro.evaluation.paper_data import (
    APPLICATION_ORDER,
    PAPER_FIGURE8_FACTS,
)
from repro.evaluation.reporting import render_figure8
from repro.partition.strategies import Strategy

_LABELS = {
    Strategy.CB: "CB",
    Strategy.CB_PROFILE: "Pr",
    Strategy.CB_DUP: "Dup",
    Strategy.IDEAL: "Ideal",
}


@pytest.mark.parametrize("name", APPLICATION_ORDER)
@pytest.mark.parametrize(
    "strategy", FIGURE8_STRATEGIES, ids=[_LABELS[s] for s in FIGURE8_STRATEGIES]
)
def test_figure8_application(benchmark, name, strategy):
    benchmark.pedantic(
        run_pipeline_once, args=(name, strategy), rounds=1, iterations=1
    )
    evaluation = measured(name, FIGURE8_STRATEGIES)
    gain = evaluation.gain_percent(strategy)
    benchmark.extra_info["gain_percent"] = round(gain, 1)
    # Nothing beats the dual-ported Ideal reference.
    assert gain <= evaluation.gain_percent(Strategy.IDEAL) + 0.5


@pytest.mark.parametrize("name", PAPER_FIGURE8_FACTS["zero_gain_apps"])
def test_zero_gain_apps(benchmark, name):
    evaluation = benchmark.pedantic(
        measured, args=(name, FIGURE8_STRATEGIES), rounds=1, iterations=1
    )
    assert evaluation.gain_percent(Strategy.IDEAL) <= 3.5


def test_lpc_headline(benchmark):
    evaluation = benchmark.pedantic(
        measured, args=("lpc", FIGURE8_STRATEGIES), rounds=1, iterations=1
    )
    assert evaluation.gain_percent(Strategy.CB) < 10.0
    assert evaluation.gain_percent(Strategy.CB_DUP) > 30.0


def test_figure8_report(benchmark, capsys):
    series = benchmark.pedantic(figure8, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_figure8(series))
