#!/usr/bin/env python
"""Quickstart: compile one kernel for a dual-bank DSP and watch the
allocation pass earn its keep.

Builds the paper's flagship example — an FIR filter (Figure 1) — through
the public API, compiles it under the single-bank baseline and under
compaction-based (CB) data partitioning, shows the interference graph and
the bank assignment, disassembles the inner loop, and compares cycle
counts on the instruction-set simulator.

Run:  python examples/quickstart.py
"""

from repro import ProgramBuilder, Simulator, Strategy, compile_module

TAPS = 32
SAMPLES = 8


def build_fir():
    """A TAPS-tap FIR filter over SAMPLES output samples, in the DSL."""
    pb = ProgramBuilder("fir_demo")
    coeff = pb.global_array(
        "coeff", TAPS, float, init=[1.0 / TAPS] * TAPS
    )
    x = pb.global_array(
        "x", TAPS + SAMPLES, float,
        init=[float(i % 7) for i in range(TAPS + SAMPLES)],
    )
    y = pb.global_array("y", SAMPLES, float)
    with pb.function("main") as f:
        with f.loop(SAMPLES, name="n") as n:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.loop(TAPS, name="k") as k:
                # coeff[k] and x[n+k]: the two loads the dual banks exist
                # to pair (paper Figure 1).
                f.assign(acc, acc + coeff[k] * x[n + k])
            f.assign(y[n], acc)
    return pb.build()


def main():
    print("=== 1. Compile with the allocation pass disabled (baseline) ===")
    baseline = compile_module(build_fir(), strategy=Strategy.SINGLE_BANK)
    sim = Simulator(baseline.program)
    base_result = sim.run()
    print("all data in bank X; %d cycles" % base_result.cycles)

    print()
    print("=== 2. Compile with compaction-based partitioning ===")
    cb = compile_module(build_fir(), strategy=Strategy.CB)
    print(cb.allocation.graph.describe())
    print("bank assignment:", cb.allocation.bank_summary(cb.program.module))

    print()
    print("=== 3. The compacted inner loop ===")
    listing = cb.program.dump().splitlines()
    body = [line for line in listing if "body" in line or "MU" in line]
    for line in body[:8]:
        print(line)

    print()
    print("=== 4. Simulate and compare ===")
    sim_cb = Simulator(cb.program)
    cb_result = sim_cb.run()
    print("baseline : %6d cycles" % base_result.cycles)
    print("CB       : %6d cycles" % cb_result.cycles)
    gain = 100.0 * (base_result.cycles / cb_result.cycles - 1.0)
    print("gain     : +%.1f%%  (paper's kernel band: 13%%-49%%)" % gain)

    expected = [
        sum(
            (1.0 / TAPS) * float((n + k) % 7)
            for k in range(TAPS)
        )
        for n in range(SAMPLES)
    ]
    got = sim_cb.read_global("y")
    worst = max(abs(g - e) for g, e in zip(got, expected))
    print("output max error vs reference: %.2e" % worst)
    assert worst < 1e-12


if __name__ == "__main__":
    main()
