#!/usr/bin/env python
"""Where the trade-offs cross: sweeps over problem size.

The paper's Table 3 gives the duplication decision at one design point
per application.  This script traces the underlying curves with the
sweep harness:

1. CB gain vs FIR size — the dual-bank win is structural, so the gain
   climbs toward its asymptote as loop overhead amortizes;
2. duplication's performance/cost ratio vs frame size for an
   autocorrelation codec — worth it while the duplicated frame is a
   small share of memory, and crossing below plain partitioning as the
   frame grows: the PCR-based decision the paper's Section 4.2 proposes,
   as a curve with a visible crossover.

Run:  python examples/sweep_study.py
"""

from repro.evaluation.sweeps import duplication_crossover, kernel_size_sweep


def bar(value, scale, width=44):
    return "#" * max(0, min(width, int(round(value * scale))))


def main():
    print("Sweep 1: CB gain vs FIR tap count")
    for taps, gain in kernel_size_sweep((8, 16, 32, 64, 128, 256)):
        print("  taps=%4d  +%5.1f%%  |%s" % (taps, gain, bar(gain, 0.8)))

    print()
    print("Sweep 2: the duplication decision vs frame size")
    print("  (autocorrelation codec; only the signal frame is duplicated)")
    rows, crossover = duplication_crossover((16, 32, 64, 128, 256, 512))
    print("  %-7s %9s %9s" % ("frame", "PCR(CB)", "PCR(Dup)"))
    for frame, pcr_cb, pcr_dup, _pg, _ci in rows:
        marker = "   <-- duplication stops paying here" if frame == crossover else ""
        print(
            "  %-7d %9.3f %9.3f  |%s%s"
            % (frame, pcr_cb, pcr_dup, bar(pcr_dup, 20), marker)
        )
    print()
    print("Paper Section 4.2: 'the gain in performance must be weighed")
    print("against the increase in memory cost' — above, quantitatively.")


if __name__ == "__main__":
    main()
