#!/usr/bin/env python
"""Duplicated data under interrupts: the store-lock/store-unlock story.

Paper Section 3.2 warns that duplicating data complicates interrupt
handling: an interrupt landing between the two stores of a duplicated-
data update could observe (or create) divergent copies, so updates use
a store-lock / store-unlock pair and the handler must know about both
copies.

This script builds a small streaming workload whose input buffer gets
duplicated, runs it with an interrupt injected *between every
instruction*, and shows that

1. with the lock protocol (the default), every interrupt observes
   coherent copies, and
2. an interrupt handler feeding new samples mid-run (via the
   dual-copy-aware `write_global`) is picked up by the program.

Run:  python examples/streaming_interrupts.py
"""

from repro.compiler import CompileOptions, compile_module
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.interrupts import InterruptInjector
from repro.sim.simulator import Simulator

FRAME = 24
LAGS = 4


def build():
    pb = ProgramBuilder("stream")
    inbox = pb.global_scalar("inbox", float)
    signal = pb.global_array("signal", FRAME, float)
    corr = pb.global_array("corr", LAGS, float)
    with pb.function("main") as f:
        # Fill the working buffer from the (interrupt-fed) inbox.
        with f.loop(FRAME) as i:
            f.assign(signal[i], inbox[0] + i * 0.125)
        # Autocorrelation: same-array parallel reads -> `signal` is
        # duplicated, so its stores above became lock/unlock pairs.
        with f.loop(LAGS, name="m") as m:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.for_range(0, FRAME - LAGS, name="n") as n:
                f.assign(acc, acc + signal[n] * signal[n + m])
            f.assign(corr[m], acc)
    return pb.build()


def main():
    module = build()
    compiled = compile_module(
        module, CompileOptions(strategy=Strategy.CB_DUP, interrupt_safe=True)
    )
    duplicated = [s.name for s in compiled.allocation.duplicated]
    print("duplicated arrays:", duplicated)
    assert "signal" in duplicated

    fed = []

    def handler(sim, cycle):
        # A bursty external source raising the DC level mid-run.
        if cycle in (5, 40):
            sim.write_global("inbox", [1.0 + cycle / 100.0])
            fed.append(cycle)

    injector = InterruptInjector(module, period=1, writer=handler)
    simulator = Simulator(compiled.program, interrupt_hook=injector)
    simulator.run()

    print(
        "interrupts delivered: %d (every unlocked instruction boundary)"
        % injector.delivered
    )
    print("samples fed by the handler at cycles:", fed)
    print("autocorrelation:", [round(v, 3) for v in simulator.read_global("corr")])
    print()
    print("every delivery checked X copy == Y copy for all duplicated data")
    print("(run tests/sim/test_interrupts.py to see the unlocked variant")
    print(" diverge when the protocol is disabled)")


if __name__ == "__main__":
    main()
