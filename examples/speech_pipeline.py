#!/usr/bin/env python
"""Speech-coding scenario: when partitioning is not enough.

Walks the paper's central application story with a realistic front end:
a speech frame is windowed and autocorrelated for LPC analysis — the
autocorrelation loop of paper Figure 6, whose two loads hit the *same*
array.  Partitioning cannot pair them; partial data duplication can.

The script compares all the paper's configurations on the lpc workload,
prints which arrays were duplicated, and evaluates the performance/cost
trade-off (PCR) the paper uses to decide whether duplication is worth
the memory.

Run:  python examples/speech_pipeline.py
"""

from repro.evaluation.runner import evaluate_workload
from repro.partition.strategies import PAPER_LABELS, Strategy
from repro.workloads.registry import APPLICATIONS


def main():
    workload = APPLICATIONS["lpc"]
    print("workload: %s — %d-sample frame, order-10 LPC" % (workload.name, 160))
    print()

    strategies = [
        Strategy.CB,
        Strategy.CB_DUP,
        Strategy.FULL_DUP,
        Strategy.IDEAL,
    ]
    evaluation = evaluate_workload(workload, strategies)

    print("configuration   cycles   gain     PG    CI   PCR")
    baseline = evaluation.baseline
    print("%-14s %7d %+6.1f%%" % ("baseline", baseline.cycles, 0.0))
    for strategy in strategies:
        m = evaluation.measurements[strategy]
        print(
            "%-14s %7d %+6.1f%%  %5.2f %5.2f %5.2f"
            % (
                PAPER_LABELS[strategy],
                m.cycles,
                evaluation.gain_percent(strategy),
                evaluation.performance_gain(strategy),
                evaluation.cost_increase(strategy),
                evaluation.pcr(strategy),
            )
        )

    dup = evaluation.measurements[Strategy.CB_DUP]
    print()
    print("arrays duplicated under partial duplication:", dup.duplicated)
    print()
    print("The paper's reading (Section 4.2): duplication is worth it for")
    print("lpc because PCR(Dup) far exceeds PCR(CB), while full duplication")
    print("is never cost-effective (PCR < 1).")

    assert evaluation.pcr(Strategy.CB_DUP) > evaluation.pcr(Strategy.CB)
    assert evaluation.pcr(Strategy.FULL_DUP) < 1.0


if __name__ == "__main__":
    main()
