#!/usr/bin/env python
"""Reproduce every table and figure of the paper's evaluation section.

Regenerates Figure 7 (kernel gains), Figure 8 (application gains), and
Table 3 (performance/cost trade-offs) on the instruction-set simulator,
verifying every compiled configuration functionally along the way, and
prints them next to the paper's published numbers.

Run:  python examples/reproduce_paper.py          (~20 s)
"""

import time

from repro.evaluation import (
    figure7,
    figure8,
    render_figure7,
    render_figure8,
    render_table3,
    table3,
)


def main():
    start = time.time()
    print(render_figure7(figure7()))
    print()
    print(render_figure8(figure8()))
    print()
    print(render_table3(table3()))
    print()
    print("regenerated in %.1f s (every configuration verified against" % (
        time.time() - start
    ))
    print("its NumPy/Python reference model)")


if __name__ == "__main__":
    main()
