#!/usr/bin/env python
"""Bring your own kernel: a complex multiply-accumulate beamformer tap.

Shows the workflow a library user follows for code the suite doesn't
ship: write the kernel in the DSL, inspect what the allocation pass
decides, check whether any array got marked for duplication, and sweep
every configuration — with functional verification against NumPy.

The kernel is a complex dot product (re/im split arrays), the core of
beamforming and equalizer inner loops:

    acc_re += a_re[i] * b_re[i] - a_im[i] * b_im[i]
    acc_im += a_re[i] * b_im[i] + a_im[i] * b_re[i]

Four independent streams — a perfect storm for two banks: the best
static split can serve only two loads per cycle, so CB partitioning
halves the load time, exactly matching the dual-ported Ideal.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import ProgramBuilder, Simulator, Strategy, compile_module

N = 64


def build(data):
    a_re, a_im, b_re, b_im = data
    pb = ProgramBuilder("cmac")
    are = pb.global_array("a_re", N, float, init=list(a_re))
    aim = pb.global_array("a_im", N, float, init=list(a_im))
    bre = pb.global_array("b_re", N, float, init=list(b_re))
    bim = pb.global_array("b_im", N, float, init=list(b_im))
    out = pb.global_array("acc", 2, float)
    with pb.function("main") as f:
        acc_re = f.float_var("acc_re")
        acc_im = f.float_var("acc_im")
        f.assign(acc_re, 0.0)
        f.assign(acc_im, 0.0)
        with f.loop(N) as i:
            ar = f.float_var("ar")
            ai = f.float_var("ai")
            br = f.float_var("br")
            bi = f.float_var("bi")
            f.assign(ar, are[i])
            f.assign(ai, aim[i])
            f.assign(br, bre[i])
            f.assign(bi, bim[i])
            f.assign(acc_re, acc_re + ar * br)
            f.assign(acc_re, acc_re - ai * bi)
            f.assign(acc_im, acc_im + ar * bi)
            f.assign(acc_im, acc_im + ai * br)
        f.assign(out[0], acc_re)
        f.assign(out[1], acc_im)
    return pb.build()


def main():
    rng = np.random.default_rng(1234)
    data = [rng.uniform(-1, 1, N) for _ in range(4)]
    reference = np.dot(
        data[0] + 1j * data[1], data[2] + 1j * data[3]
    )

    print("complex dot product over %d samples, four float streams" % N)
    print()

    compiled = compile_module(build(data), strategy=Strategy.CB)
    print(compiled.allocation.graph.describe())
    print("banks:", compiled.allocation.bank_summary(compiled.program.module))
    print()

    print("configuration   cycles   gain")
    baseline_cycles = None
    for strategy in (
        Strategy.SINGLE_BANK,
        Strategy.ALTERNATING,
        Strategy.CB,
        Strategy.IDEAL,
    ):
        sim = Simulator(compile_module(build(data), strategy=strategy).program)
        result = sim.run()
        got = sim.read_global("acc")
        assert abs(got[0] - reference.real) < 1e-9
        assert abs(got[1] - reference.imag) < 1e-9
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        gain = 100.0 * (baseline_cycles / result.cycles - 1.0)
        print("%-14s %7d %+6.1f%%" % (strategy.name, result.cycles, gain))

    print()
    print("verified against numpy:", reference)


if __name__ == "__main__":
    main()
