"""Tests for blocks, functions, and modules."""

import pytest

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import Storage, Symbol
from repro.ir.types import RegClass
from repro.ir.values import Label


def test_block_terminator_and_fallthrough():
    block = BasicBlock("b")
    assert block.terminator is None
    assert block.falls_through()
    block.append(Operation(OpCode.BR, target=Label("t")))
    assert block.terminator is not None
    assert not block.falls_through()
    assert block.successor_labels() == ["t"]


def test_conditional_branch_falls_through():
    block = BasicBlock("b")
    func = Function("f")
    cond = func.new_register(RegClass.INT)
    block.append(Operation(OpCode.BRT, sources=(cond,), target=Label("t")))
    assert block.falls_through()
    assert block.successor_labels() == ["t"]


def test_function_register_and_block_factories():
    func = Function("f")
    r1 = func.new_register(RegClass.INT)
    r2 = func.new_register(RegClass.FLOAT)
    assert r1.index != r2.index
    b1 = func.new_block("x")
    b2 = func.new_block("x")
    assert b1.label != b2.label
    assert func.entry is b1
    assert func.block(b2.label) is b2
    with pytest.raises(KeyError):
        func.block("missing")


def test_function_params_get_registers():
    func = Function("f")
    from repro.ir.types import DataType

    func.add_symbol(Symbol("n", data_type=DataType.INT, storage=Storage.PARAM))
    func.add_symbol(Symbol("x", storage=Storage.PARAM))
    assert len(func.params) == 2
    assert len(func.param_registers) == 2
    assert func.param_registers[0].rclass is RegClass.INT
    assert func.param_registers[1].rclass is RegClass.FLOAT


def test_module_symbol_scoping():
    module = Module("m")
    module.add_global(Symbol("g", size=4))
    func = Function("main")
    func.add_symbol(Symbol("l", size=2, storage=Storage.LOCAL))
    module.add_function(func)
    names = [s.name for s in module.all_symbols()]
    assert names == ["g", "l"]
    with pytest.raises(ValueError):
        module.add_global(Symbol("loc", storage=Storage.LOCAL))
    with pytest.raises(ValueError):
        module.add_function(Function("main"))


def test_partitionable_excludes_opaque_and_params():
    module = Module("m")
    module.add_global(Symbol("g"))
    module.add_global(Symbol("o", opaque=True))
    func = Function("main")
    func.add_symbol(Symbol("p", storage=Storage.PARAM))
    module.add_function(func)
    assert [s.name for s in module.partitionable_symbols()] == ["g"]
