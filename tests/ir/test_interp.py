"""Tests for the IR reference interpreter + differential back-end checks."""

import pytest

from repro.frontend import ProgramBuilder
from repro.ir.interp import IRInterpreter, IRInterpreterError
from repro.partition.strategies import Strategy
from repro.workloads.registry import APPLICATIONS, KERNELS
from tests.conftest import compile_and_run


def test_interpreter_runs_simple_program():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 1.5)
        f.assign(acc, acc * 4.0)
        f.assign(out[0], acc)
    interp = IRInterpreter(pb.build()).run()
    assert interp.read_global("out") == 6.0


def test_interpreter_control_flow_and_calls():
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 3, int)
    with pb.function("double", params=[("x", int)], returns=int) as f:
        f.ret(f.param("x") * 2)
    with pb.function("main") as f:
        total = f.int_var("total")
        f.assign(total, 0)
        with f.loop(5) as i:
            with f.if_((total % 2) == 0):
                f.assign(total, total + 3)
            with f.else_():
                f.assign(total, total + 1)
        f.assign(out[0], total)
        f.assign(out[1], pb.get("double")(21))
        n = f.int_var("n")
        f.assign(n, 3)
        with f.while_(lambda: n > 0):
            f.assign(n, n - 1)
        f.assign(out[2], n)
    interp = IRInterpreter(pb.build()).run()
    total = 0
    for _ in range(5):
        total += 3 if total % 2 == 0 else 1
    assert interp.read_global("out") == [total, 42, 0]


def test_interpreter_zero_trip_loop():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        count = f.index_var("c")
        f.assign(count, 0)
        n = f.int_var("n")
        f.assign(n, 0)
        with f.loop(count):
            f.assign(n, n + 1)
        f.assign(out[0], n + 7)
    interp = IRInterpreter(pb.build()).run()
    assert interp.read_global("out") == 7


def test_interpreter_bounds_fault():
    pb = ProgramBuilder("t")
    data = pb.global_array("data", 4, float, init=[0.0] * 4)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        i = f.index_var("i")
        f.assign(i, 7)
        f.assign(out[0], data[i])
    with pytest.raises(IRInterpreterError, match="out of bounds"):
        IRInterpreter(pb.build()).run()


def test_interpreter_runaway_guard():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        n = f.int_var("n")
        f.assign(n, 1)
        with f.while_(lambda: n > 0):
            f.assign(n, n + 1)
        f.assign(out[0], n)
    with pytest.raises(IRInterpreterError, match="max_steps"):
        IRInterpreter(pb.build(), max_steps=2000).run()


@pytest.mark.parametrize(
    "name",
    ["fir_32_1", "iir_1_1", "latnrm_8_1", "lmsfir_8_1", "mult_4_4", "fft_256"],
)
def test_interpreter_matches_kernel_references(name):
    workload = KERNELS[name]
    interp = IRInterpreter(workload.build()).run()

    class Shim:
        @staticmethod
        def read_global(symbol):
            return interp.read_global(symbol)

    workload.verify(Shim())


@pytest.mark.parametrize(
    "name",
    [
        "adpcm",
        "histogram",
        "V32encode",
        "trellis",
        "lpc",
        "spectral",
        "edge_detect",
        "compress",
        "G721WFencode",
    ],
)
def test_interpreter_matches_application_references(name):
    workload = APPLICATIONS[name]
    interp = IRInterpreter(workload.build()).run()

    class Shim:
        @staticmethod
        def read_global(symbol):
            return interp.read_global(symbol)

    workload.verify(Shim())


@pytest.mark.parametrize("name", ["fir_32_1", "mult_4_4", "latnrm_8_1"])
def test_backend_differential_against_interpreter(name):
    """The whole back end (allocation, regalloc, compaction, simulation)
    must agree with the sequential IR walker on every output symbol."""
    workload = KERNELS[name]
    interp = IRInterpreter(workload.build()).run()
    sim, _result = compile_and_run(workload.build(), strategy=Strategy.CB)
    for symbol in interp.module.globals:
        assert sim.read_global(symbol.name) == interp.read_global(
            symbol.name
        ), symbol.name
