"""Drift guard: every IR / frontend node class stays ``__slots__``-based
and ``__dict__``-free.

A single unslotted class (or a new attribute assigned outside
``__slots__``) silently reintroduces a per-instance dict and gives back
the node-memory win the front end is built on — so the guard walks the
node modules and fails on any class whose instances would carry a
``__dict__``."""

import enum

import pytest

import repro.frontend.builder
import repro.frontend.expressions
import repro.ir.block
import repro.ir.intern
import repro.ir.operations
import repro.ir.symbols
import repro.ir.values

NODE_MODULES = (
    repro.ir.operations,
    repro.ir.values,
    repro.ir.symbols,
    repro.ir.block,
    repro.ir.intern,
    repro.frontend.expressions,
    repro.frontend.builder,
)


def _node_classes():
    for module in NODE_MODULES:
        for name in sorted(vars(module)):
            obj = vars(module)[name]
            if (
                isinstance(obj, type)
                and obj.__module__ == module.__name__
                # enum members are process-wide singletons, not
                # per-program nodes; exceptions are rare and transient
                and not issubclass(obj, (enum.Enum, BaseException))
            ):
                yield obj


def _qualified(cls):
    return "%s.%s" % (cls.__module__, cls.__name__)


@pytest.mark.parametrize(
    "cls", sorted(_node_classes(), key=_qualified), ids=_qualified
)
def test_node_class_defines_slots_and_has_no_dict(cls):
    assert "__slots__" in vars(cls), (
        "%s must define __slots__ (every IR/frontend node class is "
        "slotted; see docs/internals.md)" % _qualified(cls)
    )
    dictful = [
        base
        for base in cls.__mro__
        if base is not object and "__dict__" in vars(base)
    ]
    assert not dictful, (
        "%s instances would carry a __dict__ via %s — slot every class "
        "in the hierarchy" % (_qualified(cls), [_qualified(b) for b in dictful])
    )


def test_guard_covers_the_expression_hierarchy():
    covered = set(_node_classes())
    assert repro.frontend.expressions.Expr in covered
    assert repro.ir.operations.Operation in covered
    assert repro.ir.values.Immediate in covered
    assert repro.ir.block.BasicBlock in covered
