"""Tests for repro.ir.symbols."""

import pytest

from repro.ir.symbols import MemoryBank, Storage, Symbol, SymbolTable
from repro.ir.types import DataType


def test_scalar_and_array_properties():
    scalar = Symbol("s")
    array = Symbol("a", size=16)
    assert not scalar.is_array
    assert array.is_array
    assert array.words() == 16


def test_symbol_rejects_bad_size():
    with pytest.raises(ValueError):
        Symbol("bad", size=0)


def test_initializer_must_fit():
    with pytest.raises(ValueError):
        Symbol("a", size=2, initializer=[1, 2, 3])
    sym = Symbol("b", size=4, initializer=[1, 2])
    assert sym.initializer == [1, 2]


def test_partitionability():
    assert Symbol("g").is_partitionable
    assert Symbol("l", storage=Storage.LOCAL).is_partitionable
    assert not Symbol("p", storage=Storage.PARAM).is_partitionable
    assert not Symbol("o", opaque=True).is_partitionable


def test_bank_duplication_flag():
    assert MemoryBank.BOTH.is_duplicated
    assert not MemoryBank.X.is_duplicated
    assert not MemoryBank.Y.is_duplicated


def test_symbol_table_rejects_duplicates():
    table = SymbolTable()
    table.add(Symbol("x"))
    with pytest.raises(ValueError):
        table.add(Symbol("x"))


def test_symbol_table_queries():
    table = SymbolTable()
    table.add(Symbol("s"))
    table.add(Symbol("a", size=8))
    assert "s" in table and "missing" not in table
    assert len(table) == 2
    assert [sym.name for sym in table.arrays()] == ["a"]
    assert [sym.name for sym in table.scalars()] == ["s"]
    assert table.get("a").size == 8
