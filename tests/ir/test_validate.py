"""Tests for the IR validator."""

import pytest

from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import Storage, Symbol
from repro.ir.types import RegClass
from repro.ir.validate import IRValidationError, validate_module
from repro.ir.values import Immediate, Label


def _minimal_module():
    pb = ProgramBuilder("m")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        f.assign(out[0], 1)
    return pb.build(validate=False)


def test_minimal_module_validates():
    validate_module(_minimal_module())


def test_missing_main_rejected():
    pb = ProgramBuilder("m")
    with pb.function("helper") as f:
        f.ret()
    module = pb.build(validate=False)
    del module.functions["helper"]

    class Fake:
        pass

    with pytest.raises(IRValidationError):
        validate_module(module)


def test_main_must_halt():
    module = _minimal_module()
    module.main.blocks[-1].ops.pop()  # remove HALT
    with pytest.raises(IRValidationError, match="HALT"):
        validate_module(module)


def test_terminator_must_be_last():
    module = _minimal_module()
    block = module.main.blocks[-1]
    reg = module.main.new_register(RegClass.INT)
    block.ops.insert(0, Operation(OpCode.HALT))
    with pytest.raises(IRValidationError, match="not last"):
        validate_module(module)


def test_branch_to_unknown_label_rejected():
    module = _minimal_module()
    block = module.main.blocks[-1]
    block.ops.insert(0, Operation(OpCode.BR, target=Label("nowhere")))
    with pytest.raises(IRValidationError):
        validate_module(module)


def test_constant_index_bounds_checked():
    module = _minimal_module()
    main = module.main
    out = module.globals.get("out")
    reg = main.new_register(RegClass.INT)
    main.blocks[0].ops.insert(
        0,
        Operation(OpCode.LOAD, dest=reg, sources=(Immediate(5),), symbol=out),
    )
    with pytest.raises(IRValidationError, match="out of bounds"):
        validate_module(module)


def test_offset_included_in_bounds_check():
    module = _minimal_module()
    main = module.main
    out = module.globals.get("out")
    reg = main.new_register(RegClass.INT)
    main.blocks[0].ops.insert(
        0,
        Operation(
            OpCode.LOAD,
            dest=reg,
            sources=(Immediate(0), Immediate(3)),
            symbol=out,
        ),
    )
    with pytest.raises(IRValidationError, match="out of bounds"):
        validate_module(module)


def test_wrong_dest_class_rejected():
    module = _minimal_module()
    main = module.main
    addr = main.new_register(RegClass.ADDR)
    other = main.new_register(RegClass.INT)
    main.blocks[0].ops.insert(
        0, Operation(OpCode.ADD, dest=addr, sources=(other, other))
    )
    with pytest.raises(IRValidationError, match="expects INT"):
        validate_module(module)


def test_call_arity_checked():
    pb = ProgramBuilder("m")
    out = pb.global_scalar("out", int)
    with pb.function("callee", params=[("x", int)]) as f:
        f.ret()
    with pb.function("main") as f:
        f.assign(out[0], 0)
    module = pb.build(validate=False)
    module.main.blocks[0].append(
        Operation(OpCode.CALL, sources=(), callee="callee")
    )
    module.main.blocks[0].append(Operation(OpCode.HALT))
    # remove the original HALT (now not last)
    module.main.blocks[0].ops.pop(-3)
    with pytest.raises(IRValidationError, match="passes 0 args"):
        validate_module(module)


def test_local_symbol_cross_function_access_rejected():
    pb = ProgramBuilder("m")
    out = pb.global_scalar("out", int)
    local_handle = {}
    with pb.function("helper") as f:
        arr = f.local_array("buf", 4, int)
        local_handle["sym"] = arr.symbol
        f.assign(arr[0], 1)
        f.ret()
    with pb.function("main") as f:
        f.assign(out[0], 0)
    module = pb.build(validate=False)
    reg = module.main.new_register(RegClass.INT)
    module.main.blocks[0].ops.insert(
        0,
        Operation(
            OpCode.LOAD,
            dest=reg,
            sources=(Immediate(0),),
            symbol=local_handle["sym"],
        ),
    )
    with pytest.raises(IRValidationError, match="accessed from"):
        validate_module(module)
