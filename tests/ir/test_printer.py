"""Tests for IR text rendering."""

from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode, Operation
from repro.ir.printer import format_module, format_operation
from repro.ir.symbols import MemoryBank, Symbol
from repro.ir.types import RegClass
from repro.ir.values import Immediate, Label, VirtualRegister


def _reg(rclass=RegClass.FLOAT, index=1):
    return VirtualRegister(index, rclass)


def test_format_load_with_offset():
    sym = Symbol("tbl", size=8)
    op = Operation(
        OpCode.LOAD,
        dest=_reg(),
        sources=(_reg(RegClass.ADDR, 2), Immediate(1)),
        symbol=sym,
    )
    text = format_operation(op)
    assert "tbl[" in text and "+#1" in text


def test_format_store_flags():
    sym = Symbol("d", size=2)
    op = Operation(
        OpCode.STORE,
        sources=(_reg(), Immediate(0)),
        symbol=sym,
        locked=True,
        shadow=True,
        bank=MemoryBank.Y,
    )
    text = format_operation(op)
    assert "!lock" in text and "!shadow" in text and "bank=Y" in text


def test_format_call_and_ret():
    call = Operation(
        OpCode.CALL, dest=_reg(RegClass.INT), sources=(Immediate(3),), callee="f"
    )
    assert "call f(#3)" in format_operation(call)
    ret = Operation(OpCode.RET, sources=(_reg(RegClass.INT),))
    assert format_operation(ret).startswith("ret ")
    assert format_operation(Operation(OpCode.RET)) == "ret"


def test_format_branches_and_loops():
    br = Operation(OpCode.BR, target=Label("x"))
    assert "@x" in format_operation(br)
    begin = Operation(
        OpCode.LOOP_BEGIN, sources=(Immediate(4),), target=Label("L")
    )
    assert "loop_begin" in format_operation(begin)


def test_format_module_lists_everything():
    pb = ProgramBuilder("t")
    arr = pb.global_array("arr", 4, float, init=[0.0] * 4)
    out = pb.global_scalar("out", float)
    with pb.function("helper") as f:
        buf = f.local_array("buf", 2, float)
        f.assign(buf[0], 1.0)
        f.ret()
    with pb.function("main") as f:
        f.assign(out[0], arr[0])
    text = format_module(pb.build())
    assert "module t" in text
    assert "global arr[4]" in text
    assert "func helper()" in text
    assert "local buf[2]" in text
    assert "depth=0" in text
