"""Tests for repro.ir.operations."""

import pytest

from repro.ir.operations import (
    OpCode,
    Operation,
    TERMINATORS,
    UnitClass,
    opcode_info,
)
from repro.ir.symbols import Symbol
from repro.ir.types import RegClass
from repro.ir.values import Immediate, Label, VirtualRegister


def _reg(rclass=RegClass.INT, index=0):
    return VirtualRegister(index, rclass)


def test_every_opcode_has_info():
    for opcode in OpCode:
        info = opcode_info(opcode)
        assert info.unit in UnitClass


def test_unit_assignment_matches_paper_figure2():
    assert opcode_info(OpCode.FMAC).unit is UnitClass.FPU
    assert opcode_info(OpCode.ADD).unit is UnitClass.DU
    assert opcode_info(OpCode.AADD).unit is UnitClass.AU
    assert opcode_info(OpCode.LOAD).unit is UnitClass.MU
    assert opcode_info(OpCode.STORE).unit is UnitClass.MU
    assert opcode_info(OpCode.BR).unit is UnitClass.PCU
    assert opcode_info(OpCode.LOOP_BEGIN).unit is UnitClass.PCU


def test_integer_division_truncates_toward_zero():
    div = opcode_info(OpCode.DIV).evaluate
    mod = opcode_info(OpCode.MOD).evaluate
    assert div(7, 2) == 3
    assert div(-7, 2) == -3
    assert div(7, -2) == -3
    assert mod(-7, 2) == -1
    assert mod(7, -2) == 1


def test_operation_validates_arity():
    with pytest.raises(ValueError):
        Operation(OpCode.ADD, dest=_reg(), sources=(_reg(index=1),))
    with pytest.raises(ValueError):
        Operation(OpCode.NEG, sources=(_reg(),))  # missing dest


def test_call_dest_is_optional():
    Operation(OpCode.CALL, sources=(), callee="f")
    Operation(OpCode.CALL, dest=_reg(), sources=(), callee="f")
    with pytest.raises(ValueError):
        Operation(OpCode.BR, dest=_reg(), target=Label("x"))


def test_fmac_reads_its_destination():
    dest = _reg(RegClass.FLOAT)
    a = _reg(RegClass.FLOAT, 1)
    b = _reg(RegClass.FLOAT, 2)
    op = Operation(OpCode.FMAC, dest=dest, sources=(a, b))
    assert dest in op.reads()
    assert op.writes() == [dest]


def test_memory_operand_accessors():
    sym = Symbol("a", size=8)
    index = _reg(RegClass.ADDR)
    offset = Immediate(1)
    load = Operation(OpCode.LOAD, dest=_reg(), sources=(index,), symbol=sym)
    assert load.index_operand() is index
    assert load.offset_operand() is None
    load2 = Operation(
        OpCode.LOAD, dest=_reg(), sources=(index, offset), symbol=sym
    )
    assert load2.offset_operand() == offset
    value = _reg(RegClass.FLOAT)
    store = Operation(OpCode.STORE, sources=(value, index, offset), symbol=sym)
    assert store.index_operand() is index
    assert store.offset_operand() == offset
    with pytest.raises(ValueError):
        Operation(OpCode.ADD, dest=_reg(), sources=(index, index)).index_operand()


def test_classification_predicates():
    sym = Symbol("a", size=4)
    load = Operation(
        OpCode.LOAD, dest=_reg(), sources=(Immediate(0),), symbol=sym
    )
    assert load.is_load and load.is_memory and not load.is_store
    branch = Operation(OpCode.BR, target=Label("x"))
    assert branch.is_control and branch.is_terminator
    assert OpCode.BRT in TERMINATORS and OpCode.LOOP_BEGIN not in TERMINATORS


def test_branch_target_must_be_label():
    with pytest.raises(TypeError):
        Operation(OpCode.BR, target="not-a-label")
