"""Tests for repro.ir.types."""

from repro.ir.types import DataType, RegClass, REGISTERS_PER_FILE


def test_zero_values():
    assert DataType.INT.zero == 0
    assert isinstance(DataType.INT.zero, int)
    assert DataType.FLOAT.zero == 0.0
    assert isinstance(DataType.FLOAT.zero, float)


def test_register_class_data_types():
    assert RegClass.ADDR.data_type is DataType.INT
    assert RegClass.INT.data_type is DataType.INT
    assert RegClass.FLOAT.data_type is DataType.FLOAT


def test_register_file_size_matches_paper_figure2():
    assert REGISTERS_PER_FILE == 32


def test_register_class_prefixes_are_distinct():
    prefixes = {rc.value for rc in RegClass}
    assert prefixes == {"a", "r", "f"}
