"""Tests for repro.ir.values."""

import pytest

from repro.ir.types import DataType, RegClass
from repro.ir.values import Immediate, Label, VirtualRegister, is_register


def test_register_identity_semantics():
    a = VirtualRegister(0, RegClass.INT)
    b = VirtualRegister(0, RegClass.INT)
    assert a is not b
    assert len({id(a), id(b)}) == 2


def test_register_data_type_follows_class():
    assert VirtualRegister(1, RegClass.FLOAT).data_type is DataType.FLOAT
    assert VirtualRegister(1, RegClass.ADDR).data_type is DataType.INT


def test_register_repr_shows_class_and_physical():
    reg = VirtualRegister(3, RegClass.FLOAT, name="acc")
    assert "f3" in repr(reg)
    assert "acc" in repr(reg)
    reg.physical = 7
    assert "@7" in repr(reg)


def test_immediate_infers_type():
    assert Immediate(3).data_type is DataType.INT
    assert Immediate(3.0).data_type is DataType.FLOAT


def test_immediate_coerces_value_to_type():
    assert Immediate(3.7, DataType.INT).value == 3
    value = Immediate(3, DataType.FLOAT).value
    assert value == 3.0 and isinstance(value, float)


def test_immediate_equality_and_hash():
    assert Immediate(4) == Immediate(4)
    assert Immediate(4) != Immediate(5)
    assert Immediate(4) != Immediate(4.0)
    assert hash(Immediate(4)) == hash(Immediate(4))


def test_labels_compare_by_name():
    assert Label("x") == Label("x")
    assert Label("x") != Label("y")
    assert len({Label("x"), Label("x")}) == 1


def test_is_register_discriminates():
    assert is_register(VirtualRegister(0, RegClass.INT))
    assert not is_register(Immediate(1))
