"""Golden cycle counts: a regression net over the whole reproduction.

The compiler and simulator are fully deterministic, so every benchmark's
cycle count under each configuration is an exact constant.  These tests
pin those constants: any change to the scheduler, allocator, lowering,
or workloads that shifts a number — intentionally or not — shows up here
immediately.  When a change is intentional, re-record with the snippet
in this file's docstring footer and re-check EXPERIMENTS.md.

Regenerate with:

    python - <<'PY'
    from repro.evaluation.runner import evaluate_workload
    from repro.partition.strategies import Strategy
    from repro.workloads.registry import all_workloads
    for name, w in all_workloads().items():
        e = evaluate_workload(w, [Strategy.CB, Strategy.IDEAL])
        print('    "%s": %r,' % (
            name,
            (e.baseline.cycles, e.cycles(Strategy.CB), e.cycles(Strategy.IDEAL)),
        ))
    PY
"""

import pytest

from repro.partition.strategies import Strategy
from repro.workloads.registry import all_workloads
from tests.conftest import compile_and_run

#: benchmark -> (baseline, CB, Ideal) cycles
GOLDEN = {
    "fft_1024": (67528, 55304, 55304),
    "fft_256": (14074, 11546, 11546),
    "fir_256_64": (49346, 32962, 32962),
    "fir_32_1": (101, 69, 69),
    "iir_4_64": (2434, 1922, 1922),
    "iir_1_1": (13, 11, 11),
    "latnrm_32_64": (24835, 20675, 20675),
    "latnrm_8_1": (103, 86, 86),
    "lmsfir_32_64": (14786, 12674, 12674),
    "lmsfir_8_1": (65, 56, 56),
    "mult_10_10": (3332, 2332, 2332),
    "mult_4_4": (254, 190, 190),
    "adpcm": (5634, 5634, 5634),
    "lpc": (6344, 6129, 4424),
    "spectral": (20316, 16890, 16506),
    "edge_detect": (45992, 37892, 37892),
    "compress": (70104, 52376, 52376),
    "histogram": (29956, 29956, 29956),
    "V32encode": (4227, 4035, 3843),
    "G721MLencode": (32430, 32430, 31982),
    "G721MLdecode": (21763, 21763, 21315),
    "G721WFencode": (45393, 44945, 44049),
    "trellis": (9677, 8713, 8711),
}

FAST = [name for name in GOLDEN if GOLDEN[name][0] < 25000]


def test_golden_covers_whole_suite():
    assert set(GOLDEN) == set(all_workloads())


@pytest.mark.parametrize("name", FAST)
def test_golden_cycles(name):
    workload = all_workloads()[name]
    base_expected, cb_expected, ideal_expected = GOLDEN[name]
    _sim, base = compile_and_run(workload.build(), strategy=Strategy.SINGLE_BANK)
    _sim, cb = compile_and_run(workload.build(), strategy=Strategy.CB)
    _sim, ideal = compile_and_run(workload.build(), strategy=Strategy.IDEAL)
    assert (base.cycles, cb.cycles, ideal.cycles) == (
        base_expected,
        cb_expected,
        ideal_expected,
    )


def test_golden_shape_invariants():
    """Even without re-running, the recorded constants must respect the
    paper's orderings."""
    for name, (base, cb, ideal) in GOLDEN.items():
        assert cb <= base, name
        assert ideal <= cb, name
