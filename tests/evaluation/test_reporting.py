"""Tests for ASCII report rendering and the stored paper data."""

import pytest

from repro.evaluation.paper_data import (
    APPLICATION_ORDER,
    KERNEL_ORDER,
    PAPER_TABLE3,
    PAPER_TABLE3_MEAN,
)
from repro.evaluation.figures import figure7, figure8
from repro.evaluation.reporting import (
    render_figure7,
    render_figure8,
    render_table3,
)
from repro.evaluation.tables import table3


def test_paper_table3_is_complete():
    assert set(PAPER_TABLE3) == set(APPLICATION_ORDER)
    for rows in PAPER_TABLE3.values():
        assert set(rows) == {"FullDup", "Dup", "CB", "Ideal"}
        for pg, ci, pcr in rows.values():
            # PCR column is consistent with PG/CI up to published rounding.
            assert pcr == pytest.approx(pg / ci, abs=0.035)


def test_paper_orders_cover_suites():
    from repro.workloads.registry import APPLICATIONS, KERNELS

    assert KERNEL_ORDER == list(KERNELS)
    assert APPLICATION_ORDER == list(APPLICATIONS)


def test_render_figure7_mentions_every_kernel():
    series = figure7(subset=["fir_32_1", "mult_4_4"])
    text = render_figure7(series)
    assert "fir_32_1" in text and "mult_4_4" in text
    assert "paper" in text


def test_render_figure8_has_all_configs():
    series = figure8(subset=["histogram"])
    text = render_figure8(series)
    for label in ("CB", "Pr", "Dup", "Ideal"):
        assert label in text


def test_render_table3_includes_paper_rows():
    table = table3(subset=["histogram"])
    text = render_table3(table)
    assert "histogram" in text
    assert "(paper)" in text
    assert "Arithmetic Mean" in text


def test_render_markdown_contains_all_sections():
    from repro.evaluation.reporting import render_markdown

    f7 = figure7(subset=["fir_32_1"])
    f8 = figure8(subset=["histogram"])
    t3 = table3(subset=["histogram"])
    text = render_markdown(f7, f8, t3)
    assert "## Figure 7" in text
    assert "## Figure 8" in text
    assert "## Table 3" in text
    assert "fir_32_1" in text
    assert "**mean**" in text
