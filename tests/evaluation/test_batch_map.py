"""batch_map: the lockstep fan-out primitive.

Contract: same tasks, same results, regardless of whether they run as
lockstep lanes (``backend="batch"``) or one scalar simulator per
instance — and tasks sharing a program (by identity *or* by content
fingerprint across independent compiles) batch together.
"""

import random

import pytest

from repro.compiler import compile_module
from repro.evaluation.parallel import (
    BatchTaskResult,
    batch_map,
    program_fingerprint,
)
from repro.obs.core import Recorder
from repro.partition.strategies import Strategy
from repro.workloads.kernels.fir import Fir
from repro.workloads.kernels.iir import Iir


def _fir_program(taps=8, samples=4, strategy=Strategy.CB):
    return compile_module(Fir(taps, samples).build(), strategy=strategy).program


def test_batch_matches_scalar_backends_bit_for_bit():
    rng = random.Random(5)
    program = _fir_program()
    tasks = [
        (program, {"x": [rng.uniform(-1, 1) for _ in range(11)]}, ("y",))
        for _ in range(10)
    ]
    batched = batch_map(tasks, lanes=4)  # 3 slabs: 4 + 4 + 2
    for backend in ("interp", "jit"):
        scalar = batch_map(tasks, backend=backend)
        for index in range(len(tasks)):
            assert batched[index].error is None
            assert scalar[index].error is None
            assert batched[index].outputs == scalar[index].outputs, index
            assert (
                batched[index].result.cycles == scalar[index].result.cycles
            )
            assert (
                batched[index].result.pc_counts
                == scalar[index].result.pc_counts
            )


def test_independent_compiles_group_by_fingerprint():
    a = _fir_program()
    b = _fir_program()  # same content, different object
    assert a is not b
    assert program_fingerprint(a) == program_fingerprint(b)
    recorder = Recorder()
    tasks = [(a, {}, ("y",)), (b, {}, ("y",)), (a, {}, ("y",))]
    results = batch_map(tasks, observe=recorder)
    counters = recorder.counters
    assert counters["batch.groups"] == 1
    assert counters["batch.slabs"] == 1
    assert counters["batch.instances"] == 3
    assert results[0].outputs == results[1].outputs == results[2].outputs


def test_distinct_programs_stay_in_distinct_groups():
    fir = _fir_program()
    iir = compile_module(Iir(2, 4).build(), strategy=Strategy.CB).program
    assert program_fingerprint(fir) != program_fingerprint(iir)
    recorder = Recorder()
    results = batch_map(
        [(fir, {}, ("y",)), (iir, {}, ()), (fir, {}, ("y",))],
        observe=recorder,
    )
    assert recorder.counters["batch.groups"] == 2
    assert results[0].outputs == results[2].outputs
    assert all(r.error is None for r in results)


def test_lane_errors_stay_per_task():
    pb_program = _fir_program(strategy=Strategy.SINGLE_BANK)
    from repro.frontend import ProgramBuilder

    pb = ProgramBuilder("div")
    data = pb.global_array("data", 2, float, init=[1.0, 1.0])
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        f.assign(out[0], data[0] / data[1])
    program = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK).program
    tasks = [
        (program, {}, ("out",)),
        (program, {"data": [1.0, 0.0]}, ("out",)),
        (program, {"data": [3.0, 2.0]}, ("out",)),
        (pb_program, {}, ("y",)),
    ]
    results = batch_map(tasks, lanes=8)
    scalar = batch_map(tasks, backend="interp")
    assert results[0].error is None and results[0].outputs == {"out": 1.0}
    assert isinstance(results[1].error, ZeroDivisionError)
    assert isinstance(scalar[1].error, ZeroDivisionError)
    assert results[2].outputs == {"out": 1.5}
    assert results[3].error is None
    assert isinstance(results[3], BatchTaskResult)


def test_scalar_writes_and_empty_reads():
    program = _fir_program()
    results = batch_map([(program, None, ())] * 3, lanes=2)
    assert all(r.error is None and r.outputs == {} for r in results)
