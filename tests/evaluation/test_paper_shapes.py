"""The reproduction's headline assertions: the paper's result *shapes*.

These tests assert the qualitative findings of the paper's Section 4 on
the reproduced system — who wins, where duplication helps and where it
hurts, and which programs cannot be helped at all.  They use a fast
subset of the full figure/table runs (the benchmarks regenerate the
complete data).
"""

import pytest

from repro.evaluation.figures import figure7, figure8
from repro.evaluation.tables import table3
from repro.partition.strategies import Strategy


@pytest.fixture(scope="module")
def fig7_small():
    return figure7(subset=["fir_32_1", "iir_1_1", "latnrm_8_1", "lmsfir_8_1", "mult_4_4"])


@pytest.fixture(scope="module")
def fig8_small():
    return figure8(subset=["lpc", "histogram", "V32encode", "G721MLencode", "trellis"])


@pytest.fixture(scope="module")
def table3_small():
    return table3(subset=["lpc", "spectral", "histogram", "V32encode"])


def test_kernels_gain_in_paper_band(fig7_small):
    """Paper: CB partitioning improves every kernel, by 13%-49%."""
    for name in fig7_small.order:
        gain = fig7_small.gains["CB"][name]
        assert 10.0 <= gain <= 55.0, (name, gain)


def test_kernels_cb_matches_ideal(fig7_small):
    """Paper: CB achieves Ideal performance for (nearly) all kernels."""
    for name in fig7_small.order:
        cb = fig7_small.gains["CB"][name]
        ideal = fig7_small.gains["Ideal"][name]
        assert cb >= ideal - 4.0, (name, cb, ideal)


def test_profile_weights_comparable_to_static(fig8_small):
    """Paper: profile-driven edge weights give performance comparable to
    the loop-depth heuristic."""
    for name in fig8_small.order:
        cb = fig8_small.gains["CB"][name]
        pr = fig8_small.gains["Pr"][name]
        assert abs(cb - pr) <= 3.0, (name, cb, pr)


def test_lpc_duplication_story(fig8_small):
    """Paper: lpc gains only ~3% from CB but ~34% with duplication,
    close to the ~36% ideal."""
    cb = fig8_small.gains["CB"]["lpc"]
    dup = fig8_small.gains["Dup"]["lpc"]
    ideal = fig8_small.gains["Ideal"]["lpc"]
    assert cb < 10.0
    assert dup > cb + 15.0
    assert dup >= ideal - 5.0


def test_zero_parallelism_apps_gain_nothing(fig8_small):
    """Paper: histogram and the G721 codecs do not benefit even from a
    dual-ported memory."""
    for name in ("histogram", "G721MLencode"):
        assert fig8_small.gains["Ideal"][name] <= 3.0, name


def test_ideal_upper_bounds_everything(fig8_small):
    for name in fig8_small.order:
        ideal = fig8_small.gains["Ideal"][name]
        for label in ("CB", "Pr", "Dup"):
            assert fig8_small.gains[label][name] <= ideal + 1.0, (name, label)


def test_spectral_duplication_backfires(table3_small):
    """Paper: spectral's integrity stores make Dup slower than plain CB
    (PG 1.06 vs 1.09; PCR 1.01 vs 1.11)."""
    rows = table3_small.rows["spectral"]
    assert rows["Dup"].pg < rows["CB"].pg
    assert rows["Dup"].pcr < rows["CB"].pcr


def test_lpc_duplication_is_cost_effective(table3_small):
    """Paper: lpc's PCR with duplication (1.20) beats CB alone (1.04)."""
    rows = table3_small.rows["lpc"]
    assert rows["Dup"].pcr > rows["CB"].pcr


def test_full_duplication_never_cost_effective(table3_small):
    """Paper: full duplication's PCR is below 1 for every application."""
    for name in table3_small.order:
        assert table3_small.rows[name]["FullDup"].pcr < 1.0, name


def test_full_duplication_large_cost(table3_small):
    """Paper: full duplication costs on average 62% more memory."""
    for name in table3_small.order:
        assert table3_small.rows[name]["FullDup"].ci > 1.3, name


def test_partial_duplication_cost_is_modest(table3_small):
    """Paper: partial duplication's average cost increase is ~1%."""
    for name in table3_small.order:
        assert table3_small.rows[name]["Dup"].ci < 1.35, name


def test_pcr_above_one_for_non_fulldup(table3_small):
    """Paper: PCR >= 1 for every technique except full duplication."""
    for name in table3_small.order:
        for label in ("Dup", "CB", "Ideal"):
            assert table3_small.rows[name][label].pcr >= 0.99, (name, label)


def test_mean_row_matches_cells(table3_small):
    pg, ci, pcr = table3_small.mean("CB")
    cells = [table3_small.rows[n]["CB"] for n in table3_small.order]
    assert pg == pytest.approx(sum(c.pg for c in cells) / len(cells))
    assert ci == pytest.approx(sum(c.ci for c in cells) / len(cells))
    assert pcr == pytest.approx(sum(c.pcr for c in cells) / len(cells))
