"""Tests for the gap-to-optimal study (repro partition-gap)."""

import json

import pytest

from repro.evaluation.partition_gap import measure_gap, partition_gap
from repro.evaluation.reporting import render_partition_gap
from repro.partition.registry import PARTITIONERS

#: a small, shape-diverse subset so tier-1 stays fast: a kernel whose
#: graph cuts to zero, the heaviest kernel graph, and the application
#: graph where greedy is measurably off-optimal
SUBSET = ("fir_32_1", "iir_1_1", "trellis")


@pytest.fixture(scope="module")
def report():
    return partition_gap(workloads=SUBSET)


def test_report_shape(report):
    assert report["strategy"] == "CB"
    assert report["order"] == list(SUBSET)
    assert set(report["partitioners"]) == set(PARTITIONERS)
    for name in SUBSET:
        row = report["workloads"][name]
        assert set(row["partitioners"]) == set(PARTITIONERS)
        assert row["graph_nodes"] > 0
        assert row["baseline_cycles"] > 0
        for entry in row["partitioners"].values():
            assert entry["final_cost"] <= entry["initial_cost"]
            assert entry["cycles"] > 0
            assert entry["pg"] >= 1.0  # CB never loses to single-bank


def test_exact_is_proved_and_anchors_every_gap(report):
    for name in SUBSET:
        row = report["workloads"][name]
        assert row["partitioners"]["exact"]["proved_optimal"] is True
        assert row["gap"]["exact"] == 1.0
        for partitioner in PARTITIONERS:
            assert row["gap"][partitioner] >= 1.0


def test_greedy_gap_is_real_on_trellis(report):
    """The study's headline finding: the paper's greedy heuristic misses
    the proved optimum on the trellis graph (the registry's largest),
    while annealing finds it — the gap column is not vacuously 1.0."""
    row = report["workloads"]["trellis"]
    assert row["gap"]["greedy"] > 1.0
    assert row["gap"]["anneal"] == 1.0


def test_aggregate_counts(report):
    aggregate = report["aggregate"]
    assert aggregate["workloads"] == len(SUBSET)
    assert aggregate["exact"]["proved_count"] == len(SUBSET)
    assert aggregate["exact"]["mean_gap"] == 1.0
    for partitioner in PARTITIONERS:
        stats = aggregate[partitioner]
        assert stats["max_gap"] >= stats["mean_gap"] >= 1.0
        assert 0 <= stats["optimal_count"] <= len(SUBSET)


def test_measure_gap_verifies_and_is_deterministic():
    first = measure_gap("fir_32_1")
    second = measure_gap("fir_32_1")
    assert first == second


def test_unknown_workload_rejected():
    with pytest.raises(ValueError, match="unknown workload"):
        partition_gap(workloads=("no_such_kernel",))


def test_render_and_json_round_trip(report):
    text = render_partition_gap(report)
    assert "gap-to-optimal" in text
    for name in SUBSET:
        assert name in text
    assert "proved minimum-cost" in text
    # the CLI writes the same dict as JSON; it must round-trip
    assert json.loads(json.dumps(report)) == report


def test_committed_bench_matches_regeneration_keys():
    """BENCH_partition.json (committed by benchmarks/bench_partition.py)
    must cover the full registry with the current partitioner set —
    drift in either direction fails the bench gate, this just keeps the
    committed artifact's shape honest in tier-1 without rerunning the
    full study."""
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "BENCH_partition.json"
    assert path.exists(), "run `python benchmarks/bench_partition.py`"
    committed = json.loads(path.read_text())
    assert set(committed["partitioners"]) == set(PARTITIONERS)
    from repro.workloads.registry import all_workloads

    assert set(committed["workloads"]) == set(all_workloads())
    assert committed["aggregate"]["exact"]["mean_gap"] == 1.0
