"""The process-pool evaluation path must match the serial path exactly,
and the supervised runner must survive hostile workers: crashes, hangs,
hard exits, and KeyboardInterrupt — without orphaning processes."""

import json
import multiprocessing
import os
import time

import pytest

from repro.evaluation.parallel import (
    Journal,
    TaskError,
    TaskFailure,
    TaskTimeout,
    WorkerDied,
    default_jobs,
    evaluate_workloads,
    parallel_map,
    resolve_jobs,
    supervised_map,
)
from repro.obs.core import Recorder
from repro.partition.strategies import Strategy
from repro.sim.errors import MachineError
from repro.workloads.registry import KERNELS


# -- hostile worker functions (module level: picklable across the pipe) --
def _square(x):
    return x * x


def _fail(x):
    raise ValueError("boom %d" % x)


def _fail_once(path, x):
    if not os.path.exists(path):
        with open(path, "w") as handle:
            handle.write("1")
        raise ValueError("first attempt")
    return x


def _die(_x):
    os._exit(3)


def _die_until_flag(path, x):
    if not os.path.exists(path):
        with open(path, "w") as handle:
            handle.write("seen")
        os._exit(3)
    return x + 1


def _worker_only_exit(x):
    # dies in any supervised worker, succeeds in the parent process —
    # the shape that forces degradation to serial execution
    if multiprocessing.parent_process() is not None:
        os._exit(5)
    return x + 100


def _sleep_forever(_x):
    time.sleep(60)


def _machine_fault(_x):
    from repro.sim.simulator import SimulationError

    error = SimulationError("memory bank exploded")
    error.pc = 7
    error.cycle = 11
    error.backend = "fast"
    raise error


def _raise_interrupt(_x):
    raise KeyboardInterrupt()


def _mark_and_square(directory, x):
    with open(os.path.join(directory, "m%d" % x), "a") as handle:
        handle.write("x")
    return x * x


def _assert_no_orphans():
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        alive = [p for p in multiprocessing.active_children() if p.is_alive()]
        if not alive:
            return
        time.sleep(0.05)
    raise AssertionError("orphaned workers: %r" % (alive,))

STRATEGIES = (Strategy.CB, Strategy.CB_PROFILE, Strategy.IDEAL)


def test_resolve_jobs():
    assert resolve_jobs(None) is None
    assert resolve_jobs(0) == default_jobs()
    assert resolve_jobs(1) == 1
    # An explicit request is honoured exactly, even past the detected
    # core count — the user asked for it, the recorder logs it.
    assert resolve_jobs(10_000) == 10_000
    with pytest.raises(ValueError):
        resolve_jobs(-1)


def test_resolve_jobs_records_decision():
    recorder = Recorder()
    oversubscribed = default_jobs() + 3
    assert resolve_jobs(oversubscribed, observe=recorder) == oversubscribed
    assert recorder.counters["jobs.requested"] == oversubscribed
    assert recorder.counters["jobs.resolved"] == oversubscribed
    assert recorder.counters["jobs.cores"] == default_jobs()
    assert recorder.counters["jobs.oversubscribed"] == 3


def test_resolve_jobs_within_cores_records_no_oversubscription():
    recorder = Recorder()
    assert resolve_jobs(0, observe=recorder) == default_jobs()
    assert recorder.counters["jobs.requested"] == 0
    assert recorder.counters["jobs.resolved"] == default_jobs()
    assert "jobs.oversubscribed" not in recorder.counters


def test_negative_jobs_rejected():
    with pytest.raises(ValueError):
        evaluate_workloads(KERNELS, ["fir_32_1"], [Strategy.CB], jobs=-2)


def test_parallel_matches_serial_bit_for_bit():
    """Workers rebuild workloads from the registry and recompute profile
    counts independently; every pipeline stage is deterministic, so the
    fanned-out measurements must equal the serial ones — including the
    profile-driven configuration and the fast backend."""
    names = ["fir_32_1", "mult_4_4"]
    serial = evaluate_workloads(KERNELS, names, STRATEGIES)
    parallel = evaluate_workloads(
        KERNELS, names, STRATEGIES, jobs=2, backend="fast"
    )
    for name in names:
        for strategy in (Strategy.SINGLE_BANK,) + STRATEGIES:
            assert serial[name].cycles(strategy) == parallel[name].cycles(
                strategy
            ), (name, strategy)
            assert (
                serial[name].measurements[strategy].cost.total
                == parallel[name].measurements[strategy].cost.total
            )
            assert serial[name].gain_percent(strategy) == parallel[
                name
            ].gain_percent(strategy)


# ----------------------------------------------------------------------
# parallel_map failure semantics
# ----------------------------------------------------------------------
def test_parallel_map_reraises_sim_faults_with_context():
    """Simulator faults cross the pool boundary as the structured
    taxonomy, pc/backend intact, worker traceback attached — not as a
    raw pickled traceback dump."""
    with pytest.raises(MachineError) as excinfo:
        parallel_map(_machine_fault, [(1,), (2,)], jobs=2)
    fault = excinfo.value
    assert fault.pc == 7
    assert fault.cycle == 11
    assert fault.backend == "fast"
    assert fault.remote_traceback and "SimulationError" in fault.remote_traceback
    _assert_no_orphans()


def test_parallel_map_wraps_plain_exceptions():
    with pytest.raises(TaskError) as excinfo:
        parallel_map(_fail, [(1,), (2,)], jobs=2)
    assert "boom" in str(excinfo.value)
    assert "ValueError" in excinfo.value.remote_traceback
    _assert_no_orphans()


def test_parallel_map_keyboard_interrupt_leaves_no_orphans():
    with pytest.raises(KeyboardInterrupt):
        parallel_map(_raise_interrupt, [(1,), (2,)], jobs=2)
    _assert_no_orphans()


# ----------------------------------------------------------------------
# supervised_map
# ----------------------------------------------------------------------
def test_supervised_matches_serial():
    tasks = [(i,) for i in range(6)]
    assert supervised_map(_square, tasks) == [i * i for i in range(6)]
    assert supervised_map(_square, tasks, jobs=2) == [i * i for i in range(6)]
    _assert_no_orphans()


def test_dead_worker_is_replaced_and_task_retried(tmp_path):
    """A worker that hard-exits mid-task is replaced; the retried task
    succeeds on the second attempt (the flag file marks the first)."""
    flags = [str(tmp_path / ("flag%d" % i)) for i in range(2)]
    recorder = Recorder()
    results = supervised_map(
        _die_until_flag, [(flags[0], 1), (flags[1], 2)], jobs=2,
        retries=2, backoff=0.01, observe=recorder,
    )
    assert results == [2, 3]
    assert recorder.counters["supervised.retries"] >= 2
    _assert_no_orphans()


def test_worker_death_exhausts_retries():
    with pytest.raises(WorkerDied) as excinfo:
        supervised_map(
            _die, [(1,), (2,)], jobs=2, retries=0, backoff=0.01,
        )
    assert excinfo.value.attempts == 1
    assert excinfo.value.task_key is not None
    _assert_no_orphans()


def test_timeout_terminates_and_raises(tmp_path):
    """A hung task is terminated at its deadline on every attempt, the
    whole run stays bounded, and no worker survives."""
    started = time.monotonic()
    with pytest.raises(TaskTimeout) as excinfo:
        supervised_map(
            _sleep_forever, [(1,), (2,)], jobs=2,
            timeout=0.4, retries=1, backoff=0.01,
        )
    assert excinfo.value.attempts == 2
    assert time.monotonic() - started < 20
    _assert_no_orphans()


def test_single_task_with_timeout_is_still_supervised():
    """The serial shortcut must not swallow the timeout contract: one
    pending task with a timeout goes through the pool."""
    with pytest.raises(TaskTimeout):
        supervised_map(
            _sleep_forever, [(1,)], jobs=2, timeout=0.3, retries=0,
        )
    _assert_no_orphans()


def test_fn_exceptions_reraise_without_retry_by_default():
    with pytest.raises(TaskError):
        supervised_map(_fail, [(1,), (2,)], jobs=2, retries=5, backoff=0.01)
    _assert_no_orphans()


def test_fn_exceptions_retry_when_asked(tmp_path):
    flag = str(tmp_path / "flag")
    results = supervised_map(
        _fail_once, [(flag, 5)], retries=2, backoff=0.01, retry_errors=True,
    )
    assert results == [5]


def test_sim_faults_keep_taxonomy_through_supervisor():
    with pytest.raises(MachineError) as excinfo:
        supervised_map(_machine_fault, [(1,), (2,)], jobs=2)
    assert excinfo.value.pc == 7
    assert excinfo.value.backend == "fast"
    _assert_no_orphans()


def test_worker_keyboard_interrupt_propagates_cleanly():
    with pytest.raises(KeyboardInterrupt):
        supervised_map(_raise_interrupt, [(1,), (2,)], jobs=2)
    _assert_no_orphans()


def test_degrades_to_serial_when_workers_keep_dying():
    """Every spawned worker dies instantly; after degrade_after
    consecutive failures the supervisor finishes the run in-process."""
    recorder = Recorder()
    results = supervised_map(
        _worker_only_exit, [(1,), (2,), (3,)], jobs=2,
        retries=10, backoff=0.01, degrade_after=2, observe=recorder,
    )
    assert results == [101, 102, 103]
    assert recorder.counters["supervised.degraded"] == 1
    _assert_no_orphans()


def test_journal_checkpoint_and_resume(tmp_path):
    """Completed tasks land in the journal; a rerun returns their
    recorded results without calling fn again (the marker files are
    written exactly once)."""
    journal = str(tmp_path / "journal.jsonl")
    marks = str(tmp_path)
    recorder = Recorder()
    first = supervised_map(
        _mark_and_square, [(marks, 1), (marks, 2)], journal=journal,
        observe=recorder,
    )
    assert first == [1, 4]
    assert recorder.counters["supervised.tasks"] == 2

    resumed_recorder = Recorder()
    resumed = supervised_map(
        _mark_and_square, [(marks, 1), (marks, 2), (marks, 3)],
        journal=journal, observe=resumed_recorder,
    )
    assert resumed == [1, 4, 9]
    assert resumed_recorder.counters["supervised.resumed"] == 2
    assert resumed_recorder.counters["supervised.tasks"] == 1
    with open(os.path.join(marks, "m1")) as handle:
        assert handle.read() == "x"  # not recalled on resume
    with open(os.path.join(marks, "m2")) as handle:
        assert handle.read() == "x"


def test_journal_tolerates_torn_trailing_line(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = Journal(path)
    journal.record(Journal.key_for((1,)), 10)
    journal.close()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn')  # killed mid-write
    reloaded = Journal(path)
    assert len(reloaded) == 1
    assert reloaded.completed[Journal.key_for((1,))] == 10
    reloaded.record(Journal.key_for((2,)), 20)  # reopens after close
    reloaded.close()
    assert len(Journal(path)) == 2


def test_journal_keys_are_stable():
    assert Journal.key_for((1, "a")) == Journal.key_for((1, "a"))
    assert Journal.key_for((1, "a")) != Journal.key_for((1, "b"))


def _mark_and_fail(directory, x):
    with open(os.path.join(directory, "attempts%d" % x), "a") as handle:
        handle.write("x")
    raise ValueError("always fails %d" % x)


def _flag_and_sleep(directory, x):
    with open(os.path.join(directory, "flag%d" % x), "w") as handle:
        handle.write("up")
    parent = multiprocessing.parent_process()
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        if parent is not None and not parent.is_alive():
            os._exit(0)  # supervisor was killed; don't linger as an orphan
        time.sleep(0.05)


def _run_supervised_until_killed(journal_path, directory):
    # Entry point for the disposable supervisor process the kill test
    # SIGKILLs mid-task.
    supervised_map(
        _flag_and_sleep, [(directory, 5), (directory, 6)],
        jobs=2, journal=journal_path,
    )


def test_resumed_inflight_attempt_charged_exactly_once(tmp_path):
    """A task whose attempt 1 was checkpointed in flight (the supervisor
    died mid-task) resumes at attempt 2: with ``retries=2`` the resumed
    run invokes fn exactly twice (attempts 2 and 3).  Three invocations
    would mean the interrupted attempt was never charged — an unbounded
    crash/resume loop; one would mean it was charged twice."""
    journal_path = str(tmp_path / "journal.jsonl")
    arguments = (str(tmp_path), 7)
    journal = Journal(journal_path)
    journal.mark_started(Journal.key_for(arguments), 1)
    journal.close()

    recorder = Recorder()
    with pytest.raises(ValueError, match="always fails 7"):
        supervised_map(
            _mark_and_fail, [arguments], retries=2, retry_errors=True,
            backoff=0.01, journal=journal_path, observe=recorder,
        )
    with open(os.path.join(str(tmp_path), "attempts7")) as handle:
        assert handle.read() == "xx"
    assert recorder.counters["supervised.resumed_inflight"] == 1


def test_supervisor_kill_checkpoints_inflight_attempt(tmp_path):
    """Kill a real supervisor (SIGKILL — no atexit, no journal close)
    mid-task; the started checkpoint must already be on disk, and a
    resume against the same journal charges that attempt once."""
    journal_path = str(tmp_path / "journal.jsonl")
    directory = str(tmp_path)
    supervisor = multiprocessing.Process(
        target=_run_supervised_until_killed, args=(journal_path, directory)
    )
    supervisor.start()
    flag = os.path.join(directory, "flag5")
    deadline = time.monotonic() + 15
    while not os.path.exists(flag):
        assert time.monotonic() < deadline, "task 5 never dispatched"
        assert supervisor.is_alive(), "supervisor exited prematurely"
        time.sleep(0.05)
    # mark_started is flushed before the task is sent to the worker, so
    # the flag existing implies the checkpoint line already hit disk.
    supervisor.kill()
    supervisor.join(10)
    assert not supervisor.is_alive()

    key = Journal.key_for((directory, 5))
    reloaded = Journal(journal_path)
    assert reloaded.started.get(key) == 1
    assert key not in reloaded.completed

    with pytest.raises(ValueError, match="always fails 5"):
        supervised_map(
            _mark_and_fail, [(directory, 5)], retries=2, retry_errors=True,
            backoff=0.01, journal=journal_path,
        )
    with open(os.path.join(directory, "attempts5")) as handle:
        assert handle.read() == "xx"  # attempts 2 and 3, nothing more
    _assert_no_orphans()


def test_pool_leg_journals_started_then_completed(tmp_path):
    """The pool leg checkpoints every dispatch; once a task completes
    its started record is superseded, so a reload sees only results."""
    journal_path = str(tmp_path / "journal.jsonl")
    results = supervised_map(
        _square, [(2,), (3,), (4,)], jobs=2, journal=journal_path
    )
    assert results == [4, 9, 16]
    reloaded = Journal(journal_path)
    assert len(reloaded) == 3
    assert not reloaded.started
    with open(journal_path, encoding="utf-8") as handle:
        entries = [json.loads(line) for line in handle if line.strip()]
    assert sum(1 for entry in entries if entry.get("started")) == 3
    _assert_no_orphans()


# ----------------------------------------------------------------------
# on_error="return" and per-task timeouts (the serving dispatcher's leg)
# ----------------------------------------------------------------------
def _fail_odd(x):
    if x % 2:
        raise ValueError("odd boom %d" % x)
    return x * 10


def _sleep_if(x):
    if x:
        time.sleep(60)
    return "ok"


def test_on_error_return_keeps_failures_in_slot():
    """One exhausted task must not sink the map: its slot holds a
    TaskFailure carrying kind/attempts, the other slots their results."""
    for jobs in (None, 2):
        results = supervised_map(
            _fail_odd, [(1,), (2,), (3,)], jobs=jobs, retries=0,
            backoff=0.01, on_error="return",
        )
        assert isinstance(results[0], TaskFailure)
        assert results[0].kind == "ValueError"
        assert "odd boom 1" in results[0].message
        assert results[0].attempts == 1
        assert results[1] == 20
        assert isinstance(results[2], TaskFailure)
    _assert_no_orphans()


def test_on_error_return_failures_stay_out_of_journal(tmp_path):
    """A terminal failure is retryable by a resumed run: it must never
    be journaled as completed."""
    journal_path = str(tmp_path / "journal.jsonl")
    results = supervised_map(
        _fail_odd, [(1,), (2,)], jobs=2, retries=0, backoff=0.01,
        on_error="return", journal=journal_path,
    )
    assert isinstance(results[0], TaskFailure)
    reloaded = Journal(journal_path)
    assert Journal.key_for((1,)) not in reloaded.completed
    assert reloaded.completed[Journal.key_for((2,))] == 20
    _assert_no_orphans()


def test_on_error_validated():
    with pytest.raises(ValueError):
        supervised_map(_square, [(1,)], on_error="explode")


def test_per_task_timeout_sequence():
    """A timeout sequence binds each task separately: the hung task is
    terminated at its own deadline while its unbounded neighbour
    finishes untouched."""
    results = supervised_map(
        _sleep_if, [(1,), (0,)], jobs=2, timeout=[0.4, None],
        retries=0, backoff=0.01, on_error="return",
    )
    assert isinstance(results[0], TaskFailure)
    assert results[0].kind == "TaskTimeout"
    assert results[1] == "ok"
    _assert_no_orphans()


def test_timeout_sequence_length_validated():
    with pytest.raises(ValueError):
        supervised_map(_square, [(1,), (2,)], timeout=[0.5])


def test_task_failure_describe_round_trips():
    failure = supervised_map(
        _fail, [(1,)], jobs=2, retries=0, backoff=0.01, on_error="return",
    )[0]
    described = failure.describe()
    assert described["kind"] == "ValueError"
    assert described["attempts"] == 1
    assert "boom" in described["message"]
    _assert_no_orphans()


# ----------------------------------------------------------------------
# Persistent artifact store integration (--cache-dir)
# ----------------------------------------------------------------------
def test_evaluate_workloads_cache_dir_is_bit_identical(tmp_path):
    """Routing compiles through the on-disk store must not change any
    measurement: cold store, warm store, and no store all agree."""
    from repro.workloads.registry import all_workloads

    table = all_workloads()
    names = ["fir_32_1", "mult_4_4"]
    strategies = [Strategy.SINGLE_BANK, Strategy.CB]
    cache_dir = str(tmp_path / "store")

    plain = evaluate_workloads(table, names, strategies)
    cold = evaluate_workloads(table, names, strategies, cache_dir=cache_dir)
    warm = evaluate_workloads(table, names, strategies, cache_dir=cache_dir)
    fanned = evaluate_workloads(
        table, names, strategies, jobs=2, cache_dir=cache_dir
    )
    for name in names:
        for strategy in strategies:
            reference = plain[name].cycles(strategy)
            assert cold[name].cycles(strategy) == reference
            assert warm[name].cycles(strategy) == reference
            assert fanned[name].cycles(strategy) == reference

    import os

    assert os.listdir(os.path.join(cache_dir, "objects"))
