"""The process-pool evaluation path must match the serial path exactly."""

import pytest

from repro.evaluation.parallel import (
    default_jobs,
    evaluate_workloads,
    resolve_jobs,
)
from repro.obs.core import Recorder
from repro.partition.strategies import Strategy
from repro.workloads.registry import KERNELS

STRATEGIES = (Strategy.CB, Strategy.CB_PROFILE, Strategy.IDEAL)


def test_resolve_jobs():
    assert resolve_jobs(None) is None
    assert resolve_jobs(0) == default_jobs()
    assert resolve_jobs(1) == 1
    # An explicit request is honoured exactly, even past the detected
    # core count — the user asked for it, the recorder logs it.
    assert resolve_jobs(10_000) == 10_000
    with pytest.raises(ValueError):
        resolve_jobs(-1)


def test_resolve_jobs_records_decision():
    recorder = Recorder()
    oversubscribed = default_jobs() + 3
    assert resolve_jobs(oversubscribed, observe=recorder) == oversubscribed
    assert recorder.counters["jobs.requested"] == oversubscribed
    assert recorder.counters["jobs.resolved"] == oversubscribed
    assert recorder.counters["jobs.cores"] == default_jobs()
    assert recorder.counters["jobs.oversubscribed"] == 3


def test_resolve_jobs_within_cores_records_no_oversubscription():
    recorder = Recorder()
    assert resolve_jobs(0, observe=recorder) == default_jobs()
    assert recorder.counters["jobs.requested"] == 0
    assert recorder.counters["jobs.resolved"] == default_jobs()
    assert "jobs.oversubscribed" not in recorder.counters


def test_negative_jobs_rejected():
    with pytest.raises(ValueError):
        evaluate_workloads(KERNELS, ["fir_32_1"], [Strategy.CB], jobs=-2)


def test_parallel_matches_serial_bit_for_bit():
    """Workers rebuild workloads from the registry and recompute profile
    counts independently; every pipeline stage is deterministic, so the
    fanned-out measurements must equal the serial ones — including the
    profile-driven configuration and the fast backend."""
    names = ["fir_32_1", "mult_4_4"]
    serial = evaluate_workloads(KERNELS, names, STRATEGIES)
    parallel = evaluate_workloads(
        KERNELS, names, STRATEGIES, jobs=2, backend="fast"
    )
    for name in names:
        for strategy in (Strategy.SINGLE_BANK,) + STRATEGIES:
            assert serial[name].cycles(strategy) == parallel[name].cycles(
                strategy
            ), (name, strategy)
            assert (
                serial[name].measurements[strategy].cost.total
                == parallel[name].measurements[strategy].cost.total
            )
            assert serial[name].gain_percent(strategy) == parallel[
                name
            ].gain_percent(strategy)
