"""Tests for the parameter-sweep harness."""

from repro.evaluation.sweeps import (
    duplication_crossover,
    kernel_size_sweep,
    sweep,
)
from repro.partition.strategies import Strategy
from repro.workloads.kernels.fir import Fir


def test_generic_sweep_includes_baseline():
    rows = sweep(lambda taps: Fir(taps, 2).build(), [4, 8], [Strategy.CB])
    assert set(rows) == {4, 8}
    for row in rows.values():
        assert Strategy.SINGLE_BANK in row
        assert Strategy.CB in row
        assert row[Strategy.CB].cycles <= row[Strategy.SINGLE_BANK].cycles
        assert row[Strategy.CB].cost > 0


def test_kernel_size_sweep_shape():
    series = kernel_size_sweep(taps_list=(8, 32))
    assert [taps for taps, _g in series] == [8, 32]
    assert all(gain > 10.0 for _t, gain in series)


def test_duplication_crossover_exists():
    rows, crossover = duplication_crossover(frame_sizes=(16, 512))
    small, large = rows
    assert small[2] > small[1]   # Dup's PCR beats CB's at small frames
    assert large[2] < large[1]   # and loses at large frames
    assert crossover == 512
