"""Tests for the evaluation runner and derived metrics."""

from types import SimpleNamespace

import pytest

from repro.evaluation.runner import (
    Measurement,
    WorkloadEvaluation,
    evaluate_workload,
    module_fingerprint,
)
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.workloads.registry import APPLICATIONS, KERNELS


@pytest.fixture(scope="module")
def fir_eval():
    return evaluate_workload(
        KERNELS["fir_32_1"],
        [Strategy.CB, Strategy.CB_PROFILE, Strategy.CB_DUP, Strategy.IDEAL],
    )


def test_baseline_always_measured(fir_eval):
    assert Strategy.SINGLE_BANK in fir_eval.measurements
    assert fir_eval.baseline.cycles > 0


def test_gain_definitions_consistent(fir_eval):
    for strategy in (Strategy.CB, Strategy.IDEAL):
        pg = fir_eval.performance_gain(strategy)
        percent = fir_eval.gain_percent(strategy)
        assert percent == pytest.approx(100.0 * (pg - 1.0))


def test_pcr_is_pg_over_ci(fir_eval):
    pcr = fir_eval.pcr(Strategy.CB)
    assert pcr == pytest.approx(
        fir_eval.performance_gain(Strategy.CB)
        / fir_eval.cost_increase(Strategy.CB)
    )


def test_profile_strategy_runs_through_runner(fir_eval):
    assert fir_eval.cycles(Strategy.CB_PROFILE) > 0


def test_duplicated_symbols_recorded():
    evaluation = evaluate_workload(APPLICATIONS["lpc"], [Strategy.CB_DUP])
    assert "ws" in evaluation.measurements[Strategy.CB_DUP].duplicated


def test_verification_failure_propagates():
    workload = KERNELS["fir_32_1"]

    class Broken(type(workload)):
        def expected(self):
            return {"y": [123456.0]}

    broken = Broken(32, 1)
    with pytest.raises(AssertionError):
        evaluate_workload(broken, [Strategy.CB])


def _degenerate_evaluation(base_cycles, base_cost, cycles, cost):
    def measurement(strategy, cycle_count, total):
        return Measurement(
            strategy, cycle_count, SimpleNamespace(total=total), 0, []
        )

    return WorkloadEvaluation(
        "degenerate",
        "kernel",
        {
            Strategy.SINGLE_BANK: measurement(
                Strategy.SINGLE_BANK, base_cycles, base_cost
            ),
            Strategy.CB: measurement(Strategy.CB, cycles, cost),
        },
    )


def test_zero_cycle_zero_cost_measurements_do_not_fault():
    evaluation = _degenerate_evaluation(0, 0, 0, 0)
    assert evaluation.performance_gain(Strategy.CB) == 1.0
    assert evaluation.gain_percent(Strategy.CB) == 0.0
    assert evaluation.cost_increase(Strategy.CB) == 1.0
    assert evaluation.pcr(Strategy.CB) == 1.0


def test_zero_cycle_configuration_is_unbounded_gain():
    evaluation = _degenerate_evaluation(100, 10, 0, 10)
    assert evaluation.performance_gain(Strategy.CB) == float("inf")


def test_zero_cost_configuration_gives_infinite_pcr():
    evaluation = _degenerate_evaluation(100, 10, 50, 0)
    assert evaluation.cost_increase(Strategy.CB) == 0.0
    assert evaluation.pcr(Strategy.CB) == float("inf")


def test_zero_cost_baseline_is_unbounded_cost_increase():
    evaluation = _degenerate_evaluation(100, 0, 50, 10)
    assert evaluation.cost_increase(Strategy.CB) == float("inf")
    assert evaluation.pcr(Strategy.CB) == 0.0


def _fingerprint_module(init_value):
    pb = ProgramBuilder("t")
    a = pb.global_array("A", 4, float, init=[init_value] * 4)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        f.assign(out[0], a[0])
    return pb.build()


def test_module_fingerprint_is_content_keyed():
    assert module_fingerprint(_fingerprint_module(1.0)) == module_fingerprint(
        _fingerprint_module(1.0)
    )
    # Initializers are not part of the printed IR, but they change the
    # simulated memory image — the fingerprint must see them.
    assert module_fingerprint(_fingerprint_module(1.0)) != module_fingerprint(
        _fingerprint_module(2.0)
    )
