"""Tests for the evaluation runner and derived metrics."""

import pytest

from repro.evaluation.runner import evaluate_workload
from repro.partition.strategies import Strategy
from repro.workloads.registry import APPLICATIONS, KERNELS


@pytest.fixture(scope="module")
def fir_eval():
    return evaluate_workload(
        KERNELS["fir_32_1"],
        [Strategy.CB, Strategy.CB_PROFILE, Strategy.CB_DUP, Strategy.IDEAL],
    )


def test_baseline_always_measured(fir_eval):
    assert Strategy.SINGLE_BANK in fir_eval.measurements
    assert fir_eval.baseline.cycles > 0


def test_gain_definitions_consistent(fir_eval):
    for strategy in (Strategy.CB, Strategy.IDEAL):
        pg = fir_eval.performance_gain(strategy)
        percent = fir_eval.gain_percent(strategy)
        assert percent == pytest.approx(100.0 * (pg - 1.0))


def test_pcr_is_pg_over_ci(fir_eval):
    pcr = fir_eval.pcr(Strategy.CB)
    assert pcr == pytest.approx(
        fir_eval.performance_gain(Strategy.CB)
        / fir_eval.cost_increase(Strategy.CB)
    )


def test_profile_strategy_runs_through_runner(fir_eval):
    assert fir_eval.cycles(Strategy.CB_PROFILE) > 0


def test_duplicated_symbols_recorded():
    evaluation = evaluate_workload(APPLICATIONS["lpc"], [Strategy.CB_DUP])
    assert "ws" in evaluation.measurements[Strategy.CB_DUP].duplicated


def test_verification_failure_propagates():
    workload = KERNELS["fir_32_1"]

    class Broken(type(workload)):
        def expected(self):
            return {"y": [123456.0]}

    broken = Broken(32, 1)
    with pytest.raises(AssertionError):
        evaluate_workload(broken, [Strategy.CB])
