"""Tests for the `python -m repro` command-line driver."""

import pytest

from repro.__main__ import build_parser, main

#: every registered subcommand (kept in sync by test_parser_has_all_commands)
ALL_COMMANDS = (
    "list",
    "run",
    "compare",
    "figure7",
    "figure8",
    "table3",
    "report",
    "fuzz",
    "faults",
    "graph",
    "partition-gap",
    "serve",
    "chaos",
)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fir_256_64" in out
    assert "G721MLencode" in out


def test_run_command(capsys):
    assert main(["run", "fir_32_1", "--strategy", "CB"]) == 0
    out = capsys.readouterr().out
    assert "verified OK" in out
    assert "cycles" in out


def test_run_with_stats_and_dump(capsys):
    assert main(["run", "mult_4_4", "--strategy", "CB", "--stats", "--dump"]) == 0
    out = capsys.readouterr().out
    assert "unit utilization" in out
    assert "MU0" in out
    assert "loop_begin" in out


def test_run_with_pipelining(capsys):
    assert main(["run", "fir_32_1", "--pipeline"]) == 0
    out = capsys.readouterr().out
    assert "verified OK" in out


def test_compare_command(capsys):
    assert main(["compare", "fir_32_1", "--strategies", "CB,IDEAL"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out
    assert "Ideal" in out


def test_run_profile_strategy(capsys):
    assert main(["run", "mult_4_4", "--strategy", "CB_PROFILE"]) == 0
    out = capsys.readouterr().out
    assert "verified OK" in out


def test_unknown_workload_errors():
    with pytest.raises(SystemExit):
        main(["run", "nonexistent"])


def test_unknown_strategy_errors():
    with pytest.raises(SystemExit):
        main(["run", "fir_32_1", "--strategy", "BOGUS"])


def test_parser_has_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ALL_COMMANDS:
        assert command in text
    # ALL_COMMANDS is exhaustive: a new subcommand must extend the smoke
    # tests below, so flag any drift between the parser and this module.
    listed = set(parser._subparsers._group_actions[0].choices)
    assert listed == set(ALL_COMMANDS)


@pytest.mark.parametrize("command", ALL_COMMANDS)
def test_every_subcommand_has_help(command, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([command, "--help"])
    assert excinfo.value.code == 0
    assert "usage:" in capsys.readouterr().out


def test_no_command_is_an_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code != 0


def test_unknown_command_is_an_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["frobnicate"])
    assert excinfo.value.code != 0


def test_fuzz_rejects_negative_runs():
    with pytest.raises(SystemExit):
        main(["fuzz", "--runs", "-5"])


def test_fuzz_tiny_end_to_end(capsys, tmp_path):
    corpus = str(tmp_path / "corpus")
    assert (
        main(["fuzz", "--runs", "3", "--seed", "0", "--corpus", corpus]) == 0
    )
    out = capsys.readouterr().out
    assert "3 runs, 0 oracle violations" in out
    import os

    assert not os.path.exists(corpus)  # nothing archived on a clean run


def test_fuzz_backend_flag_narrows_oracle_pair(capsys, tmp_path):
    """`fuzz --backend batch` runs the corpus with the identity stage
    narrowed to (interp, batch)."""
    corpus = str(tmp_path / "corpus")
    assert (
        main([
            "fuzz", "--runs", "2", "--seed", "0", "--corpus", corpus,
            "--backend", "batch",
        ]) == 0
    )
    assert "2 runs, 0 oracle violations" in capsys.readouterr().out


def test_fuzz_archives_failures(capsys, tmp_path, monkeypatch):
    """End to end through the CLI with an injected oracle bug: nonzero
    exit code, shrunk recipe and regression written to the corpus."""
    from repro.fuzz import campaign
    from repro.fuzz.oracle import OracleViolation

    def broken(recipe, **_kwargs):
        raise OracleViolation("strategy-semantics", "injected")

    monkeypatch.setattr(campaign, "check_recipe", broken)
    corpus = str(tmp_path / "corpus")
    assert (
        main(["fuzz", "--runs", "1", "--seed", "7", "--corpus", corpus]) == 1
    )
    out = capsys.readouterr().out
    assert "1 oracle violation" in out
    import glob

    assert glob.glob(corpus + "/recipe_*.json")
    assert glob.glob(corpus + "/test_regression_*.py")


def test_fuzz_with_journal_resumes(capsys, tmp_path):
    """`fuzz --journal` checkpoints seeds through the supervised runner;
    a rerun resumes from the journal instead of re-checking."""
    import os

    journal = str(tmp_path / "fuzz.jsonl")
    corpus = str(tmp_path / "corpus")
    argv = [
        "fuzz", "--runs", "2", "--seed", "0", "--corpus", corpus,
        "--journal", journal,
    ]
    assert main(argv) == 0
    assert "2 runs, 0 oracle violations" in capsys.readouterr().out
    before = os.path.getmtime(journal)
    assert main(argv) == 0  # resumed: nothing new lands in the journal
    assert os.path.getmtime(journal) == before


def test_faults_rejects_negative_runs():
    with pytest.raises(SystemExit):
        main(["faults", "--runs", "-1"])


def test_faults_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["faults", "--runs", "1", "--workloads", "nonexistent"])


def test_faults_tiny_end_to_end(capsys):
    assert (
        main(
            [
                "faults", "--runs", "2", "--workloads", "fir_32_1",
                "--strategies", "SINGLE_BANK,CB_DUP",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "# Resilience report" in out
    assert "4 faulted runs" in out
    assert "Dup" in out and "baseline" in out


def test_faults_writes_json_report(capsys, tmp_path):
    import json

    path = str(tmp_path / "resilience.json")
    assert (
        main(
            [
                "faults", "--runs", "1", "--workloads", "fir_32_1",
                "--strategies", "CB_DUP", "--json", path,
            ]
        )
        == 0
    )
    with open(path) as handle:
        report = json.load(handle)
    assert report["runs"] == 1
    assert set(report["strategies"]) == {"CB_DUP"}
    assert "obs" in report  # the CLI campaign runs instrumented


@pytest.mark.chaos
def test_chaos_tiny_end_to_end(capsys, tmp_path):
    """`repro chaos` drives a one-cycle campaign end to end: plan draw,
    live service, kill/restart, verdict render, JSON report."""
    import json

    path = str(tmp_path / "chaos.json")
    assert (
        main(
            [
                "chaos", "--seed", "5", "--cycles", "1",
                "--jobs-per-cycle", "1", "--budget", "60",
                "--work-dir", str(tmp_path / "work"), "--json", path,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "verdict: OK" in out
    with open(path) as handle:
        report = json.load(handle)
    assert report["ok"] is True
    assert report["invariants"]["lost"] == 0
    assert report["invariants"]["duplicate_executions"] == 0


def test_chaos_replays_a_saved_plan(tmp_path, capsys):
    """`--plan` rejects a plan whose pinned version drifted."""
    import json

    stale = str(tmp_path / "stale.json")
    with open(stale, "w") as handle:
        json.dump({"version": 999, "seed": 0, "cycles": []}, handle)
    with pytest.raises(ValueError, match="chaos plan version"):
        main(["chaos", "--plan", stale])


def test_report_workload_emits_observability_markdown(capsys):
    assert main(["report", "--workload", "fir_32_1", "--strategy", "CB"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# Observability report — fir_32_1")
    assert "Compile passes" in out
    assert "Hot pcs" in out
    assert "Bank-conflict table" in out
    # Machine-readable payload rides along in the same emission.
    assert "```json" in out


def test_report_workload_writes_json_file(capsys, tmp_path):
    import json

    path = str(tmp_path / "report.json")
    assert (
        main(
            [
                "report", "--workload", "fir_32_1", "--strategy", "CB",
                "--baseline", "SINGLE_BANK", "--top", "3", "--json", path,
            ]
        )
        == 0
    )
    with open(path) as handle:
        report = json.load(handle)
    assert report["workload"] == "fir_32_1"
    assert report["strategy"]["strategy"] == "CB"
    assert report["deltas"]["gain_percent"] > 0
    assert len(report["strategy"]["profile"]["hot_pcs"]) <= 3


def test_report_workload_rejects_unknown_names():
    with pytest.raises(SystemExit):
        main(["report", "--workload", "nonexistent"])
    with pytest.raises(SystemExit):
        main(["report", "--workload", "fir_32_1", "--strategy", "BOGUS"])


#: every subcommand that accepts --backend (kept in sync by
#: test_backend_flag_inventory)
BACKEND_COMMANDS = (
    "run", "compare", "figure7", "figure8", "table3", "report", "faults",
    "fuzz", "partition-gap",
)


def test_backend_flag_inventory():
    """Flag drift guard: the smoke tests below must cover exactly the
    subcommands exposing --backend."""
    parser = build_parser()
    subparsers = parser._subparsers._group_actions[0].choices
    with_backend = {
        name
        for name, sub in subparsers.items()
        if any("--backend" in action.option_strings for action in sub._actions)
    }
    assert with_backend == set(BACKEND_COMMANDS)


#: every subcommand that accepts --cache-dir (kept in sync by
#: test_cache_dir_flag_inventory) — the compiling evaluation commands
#: plus the service; fuzz/faults/graph/partition-gap bypass the store
#: by design (random or partitioner-swept content would only churn it)
CACHE_DIR_COMMANDS = (
    "run", "compare", "figure7", "figure8", "table3", "report", "serve",
)


def test_cache_dir_flag_inventory():
    parser = build_parser()
    subparsers = parser._subparsers._group_actions[0].choices
    with_cache_dir = {
        name
        for name, sub in subparsers.items()
        if any(
            "--cache-dir" in action.option_strings for action in sub._actions
        )
    }
    assert with_cache_dir == set(CACHE_DIR_COMMANDS)


def test_run_command_cache_dir_warm_and_cold(capsys, tmp_path):
    """`run --cache-dir` populates the store; a second invocation reads
    through it and prints the identical report."""
    cache = str(tmp_path / "cache")
    assert main(["run", "fir_32_1", "--cache-dir", cache]) == 0
    cold = capsys.readouterr().out
    import os

    assert os.listdir(os.path.join(cache, "objects"))
    assert main(["run", "fir_32_1", "--cache-dir", cache]) == 0
    assert capsys.readouterr().out == cold


def test_compare_command_cache_dir(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    assert (
        main(["compare", "fir_32_1", "--strategies", "CB",
              "--cache-dir", cache]) == 0
    )
    baseline = capsys.readouterr().out
    assert (
        main(["compare", "fir_32_1", "--strategies", "CB",
              "--cache-dir", cache]) == 0
    )
    assert capsys.readouterr().out == baseline


def test_jit_backend_is_a_cli_choice():
    parser = build_parser()
    sub = parser._subparsers._group_actions[0].choices["run"]
    backend = next(
        action for action in sub._actions if "--backend" in action.option_strings
    )
    assert "jit" in backend.choices


def test_run_command_jit_backend(capsys):
    assert main(["run", "fir_32_1", "--strategy", "CB", "--backend", "jit"]) == 0
    assert "verified OK" in capsys.readouterr().out


def test_compare_command_jit_backend(capsys):
    assert (
        main(["compare", "fir_32_1", "--strategies", "CB", "--backend", "jit"])
        == 0
    )
    assert "baseline" in capsys.readouterr().out


@pytest.mark.parametrize("command", ("figure7", "figure8", "table3"))
def test_artifact_commands_jit_backend(command, capsys):
    assert main([command, "--backend", "jit"]) == 0
    assert capsys.readouterr().out.strip()


def test_report_workload_jit_backend(capsys):
    assert (
        main(
            [
                "report", "--workload", "fir_32_1", "--strategy", "CB",
                "--backend", "jit",
            ]
        )
        == 0
    )
    assert "Observability report" in capsys.readouterr().out


def test_partition_gap_subset_end_to_end(capsys, tmp_path):
    import json

    path = str(tmp_path / "gap.json")
    assert (
        main(["partition-gap", "--workload", "fir_32_1", "--json", path]) == 0
    )
    out = capsys.readouterr().out
    assert "gap-to-optimal" in out
    assert "fir_32_1" in out
    with open(path) as handle:
        report = json.load(handle)
    assert report["order"] == ["fir_32_1"]
    assert report["workloads"]["fir_32_1"]["gap"]["exact"] == 1.0


def test_partition_gap_jit_backend(capsys):
    assert (
        main(["partition-gap", "--workload", "fir_32_1", "--backend", "jit"])
        == 0
    )
    assert "gap-to-optimal" in capsys.readouterr().out


def test_partition_gap_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["partition-gap", "--workload", "nonexistent"])


def test_graph_command_produces_dot(capsys):
    assert main(["graph", "fir_32_1"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("graph interference {")
    assert '"coeff" -- "x"' in out or '"x" -- "coeff"' in out
