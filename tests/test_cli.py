"""Tests for the `python -m repro` command-line driver."""

import pytest

from repro.__main__ import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fir_256_64" in out
    assert "G721MLencode" in out


def test_run_command(capsys):
    assert main(["run", "fir_32_1", "--strategy", "CB"]) == 0
    out = capsys.readouterr().out
    assert "verified OK" in out
    assert "cycles" in out


def test_run_with_stats_and_dump(capsys):
    assert main(["run", "mult_4_4", "--strategy", "CB", "--stats", "--dump"]) == 0
    out = capsys.readouterr().out
    assert "unit utilization" in out
    assert "MU0" in out
    assert "loop_begin" in out


def test_run_with_pipelining(capsys):
    assert main(["run", "fir_32_1", "--pipeline"]) == 0
    out = capsys.readouterr().out
    assert "verified OK" in out


def test_compare_command(capsys):
    assert main(["compare", "fir_32_1", "--strategies", "CB,IDEAL"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out
    assert "Ideal" in out


def test_run_profile_strategy(capsys):
    assert main(["run", "mult_4_4", "--strategy", "CB_PROFILE"]) == 0
    out = capsys.readouterr().out
    assert "verified OK" in out


def test_unknown_workload_errors():
    with pytest.raises(SystemExit):
        main(["run", "nonexistent"])


def test_unknown_strategy_errors():
    with pytest.raises(SystemExit):
        main(["run", "fir_32_1", "--strategy", "BOGUS"])


def test_parser_has_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("list", "run", "compare", "figure7", "figure8", "table3"):
        assert command in text


def test_graph_command_produces_dot(capsys):
    assert main(["graph", "fir_32_1"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("graph interference {")
    assert '"coeff" -- "x"' in out or '"x" -- "coeff"' in out
