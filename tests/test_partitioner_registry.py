"""Guard: a new partitioner cannot be registered half-way.

Mirror of ``tests/test_backend_registry.py`` for the partitioner
registry: every entry in :data:`repro.partition.registry.PARTITIONERS`
must be selectable from every CLI command that takes ``--partitioner``,
must be covered by the fuzz oracle's partitioner-identity stage, and
must honour the uniform ``(graph, *, seed)`` construction contract —
otherwise a partitioner could ship without differential coverage or
without the one-campaign-seed determinism story.
"""

import argparse
import inspect

from repro import __main__ as cli
from repro.fuzz.oracle import ORACLE_PARTITIONERS
from repro.ir.symbols import Symbol
from repro.partition.greedy import PartitionResult
from repro.partition.interference import InterferenceGraph
from repro.partition.registry import (
    DEFAULT_PARTITIONER,
    PARTITIONERS,
    make_partitioner,
)


def _partitioner_choices_by_command():
    """Map CLI command name -> choices of its ``--partitioner`` option."""
    parser = cli.build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    found = {}
    for name, command in subparsers.choices.items():
        for action in command._actions:
            if "--partitioner" in action.option_strings:
                found[name] = set(action.choices)
    return found


def test_every_partitioner_is_a_cli_choice_everywhere():
    by_command = _partitioner_choices_by_command()
    # the commands that partition must all expose --partitioner
    for command in ("run", "compare", "figure7", "figure8", "table3",
                    "report", "fuzz", "faults", "graph"):
        assert command in by_command, (
            "%s lost its --partitioner option" % command
        )
    for command, choices in by_command.items():
        missing = set(PARTITIONERS) - choices
        assert not missing, (
            "partitioner(s) %s registered in PARTITIONERS but not "
            "selectable via `%s --partitioner`" % (sorted(missing), command)
        )


def test_every_partitioner_is_oracle_covered():
    missing = set(PARTITIONERS) - set(ORACLE_PARTITIONERS)
    assert not missing, (
        "partitioner(s) %s registered in PARTITIONERS but absent from the "
        "fuzz oracle's partitioner-identity stage (ORACLE_PARTITIONERS)"
        % sorted(missing)
    )
    unknown = set(ORACLE_PARTITIONERS) - set(PARTITIONERS)
    assert not unknown, (
        "oracle names unregistered partitioner(s) %s" % sorted(unknown)
    )


def test_partitioner_classes_implement_the_registry_contract():
    """Uniform construction — ``cls(graph, *, seed=...)`` — and a
    ``partitioner_name`` matching the registry key, so one campaign seed
    can steer every entry identically."""
    for name, cls in PARTITIONERS.items():
        assert getattr(cls, "partitioner_name", None) == name
        signature = inspect.signature(cls.__init__)
        parameters = list(signature.parameters.values())
        # self, graph positionally; seed keyword-only with a default
        assert parameters[1].kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ), name
        seed = signature.parameters.get("seed")
        assert seed is not None, "%s lacks the seed keyword" % name
        assert seed.kind is inspect.Parameter.KEYWORD_ONLY, name
        assert seed.default == 0, name


def test_every_partitioner_returns_the_partition_result_shape():
    symbols = [Symbol("s%d" % i, size=1) for i in range(4)]
    for name in PARTITIONERS:
        graph = InterferenceGraph()
        for sym in symbols:
            graph.add_node(sym)
        graph.add_edge(symbols[0], symbols[1], 3)
        graph.add_edge(symbols[2], symbols[3], 2)
        result = make_partitioner(graph, name, seed=7).partition()
        assert isinstance(result, PartitionResult), name
        assert result.final_cost == 0, name


def test_default_partitioner_is_registered():
    assert DEFAULT_PARTITIONER in PARTITIONERS
    assert DEFAULT_PARTITIONER == "greedy"  # the paper's heuristic


def test_make_partitioner_rejects_unknown_names():
    import pytest

    graph = InterferenceGraph()
    with pytest.raises(ValueError, match="unknown partitioner"):
        make_partitioner(graph, "metis")
