"""Live chaos campaigns against a ``repro serve`` subprocess.

The smoke campaign (one kill/restart cycle) runs in tier-1; the longer
soak rides behind the ``full_diff`` marker with the other exhaustive
sweeps.  Both hold the crash-safety invariants absolutely: nothing
accepted is lost, nothing runs twice, replays are bit-identical."""

import pytest

from repro.chaos import generate_plan, render_chaos, run_chaos


def _assert_invariants(report, expected_kills, expected_accepted):
    invariants = report["invariants"]
    assert report["ok"], invariants
    assert invariants["lost"] == 0, invariants["lost_ids"]
    assert invariants["duplicate_executions"] == 0
    assert invariants["replay_mismatches"] == 0, invariants["mismatched_ids"]
    assert invariants["kills"] == expected_kills
    assert invariants["accepted"] == expected_accepted
    assert invariants["deduped_replays"] > 0
    assert invariants["recovery_worst_s"] <= invariants["recovery_budget_s"]


@pytest.mark.chaos
def test_smoke_campaign_survives_one_kill_cycle(tmp_path):
    plan = generate_plan(17, cycles=1, jobs_per_cycle=2)
    report = run_chaos(plan, str(tmp_path), recovery_budget_s=60.0)
    _assert_invariants(report, expected_kills=1, expected_accepted=2)

    rendered = render_chaos(report)
    assert "verdict: OK" in rendered
    assert "accepted jobs lost" in rendered


@pytest.mark.chaos
@pytest.mark.full_diff
def test_soak_campaign_survives_repeated_kills_and_sabotage(tmp_path):
    plan = generate_plan(99, cycles=3, jobs_per_cycle=4)
    report = run_chaos(plan, str(tmp_path), recovery_budget_s=60.0)
    _assert_invariants(report, expected_kills=3, expected_accepted=12)
