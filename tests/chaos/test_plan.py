"""Chaos plans are seeded values: equal seeds draw equal plans, plans
round-trip through JSON, the version is pinned, and every drawn job is
a valid protocol submission."""

import re

import pytest

from repro.chaos.plan import (
    EVENT_KINDS,
    VERSION,
    ChaosPlan,
    generate_plan,
)
from repro.serve.protocol import validate_job


# ---------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------
def test_same_seed_draws_equal_plans():
    first = generate_plan(7, cycles=3, jobs_per_cycle=4)
    second = generate_plan(7, cycles=3, jobs_per_cycle=4)
    assert first == second
    assert first.to_json() == second.to_json()
    assert hash(first) == hash(second)


def test_distinct_seeds_draw_distinct_plans():
    assert generate_plan(1) != generate_plan(2)


# ---------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------
def test_json_round_trip_preserves_the_plan():
    plan = generate_plan(42, cycles=2, jobs_per_cycle=3)
    restored = ChaosPlan.from_json(plan.to_json())
    assert restored == plan
    assert restored.jobs() == plan.jobs()


def test_version_is_pinned():
    data = generate_plan(1).to_dict()
    assert data["version"] == VERSION
    data["version"] = VERSION + 1
    with pytest.raises(ValueError):
        ChaosPlan.from_dict(data)


# ---------------------------------------------------------------------
# Drawn structure
# ---------------------------------------------------------------------
def test_every_cycle_ends_in_a_kill_and_sabotage_waits_for_a_store():
    plan = generate_plan(3, cycles=4, jobs_per_cycle=2)
    assert len(plan.cycles) == 4
    for index, cycle in enumerate(plan.cycles):
        kinds = [event[0] for event in cycle["events"]]
        assert "kill" in kinds
        assert all(kind in EVENT_KINDS for kind in kinds)
        if index == 0:
            # nothing to corrupt before the first cycle populated it
            assert "corrupt" not in kinds and "truncate" not in kinds


def test_jobs_are_valid_submissions_with_stable_ids():
    plan = generate_plan(11, cycles=2, jobs_per_cycle=5)
    jobs = plan.jobs()
    assert len(jobs) == 10
    for job in jobs:
        assert re.fullmatch(r"chaos-11-\d+-\d+", job["id"])
        validated = validate_job(dict(job))
        assert validated["kind"] in ("run", "recipe")
    assert len({job["id"] for job in jobs}) == len(jobs)


def test_repr_summarizes_the_campaign():
    plan = generate_plan(5, cycles=2, jobs_per_cycle=1)
    text = repr(plan)
    assert "seed=5" in text
    assert "kills=2" in text
