"""Tests for the low-order interleaving analysis (paper Section 3.2)."""

from repro.analysis.interleaving import analyze_low_order, summarize
from repro.frontend import ProgramBuilder
from repro.partition.graph_builder import build_interference_graph


def _graph_for(build_body):
    pb = ProgramBuilder("t")
    tbl = pb.global_array("tbl", 32, float, init=[1.0] * 32)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        build_body(f, tbl, out)
    return build_interference_graph(pb.build())


def test_odd_constant_difference_works():
    def body(f, tbl, out):
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            p = f.index_var("p")
            f.assign(p, i * 2)
            f.assign(acc, acc + tbl[p] * tbl[p + 1])
        f.assign(out[0], acc)

    verdicts = analyze_low_order(_graph_for(body))
    assert verdicts
    assert all(v.verdict == "works" and v.difference == 1 for v in verdicts)


def test_even_constant_difference_fails():
    def body(f, tbl, out):
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            p = f.index_var("p")
            f.assign(p, i * 4)
            f.assign(acc, acc + tbl[p] * tbl[p + 2])
        f.assign(out[0], acc)

    verdicts = analyze_low_order(_graph_for(body))
    assert verdicts
    assert all(v.verdict == "fails" and v.difference == 2 for v in verdicts)


def test_runtime_lag_is_unknown():
    """The paper's Figure 6 autocorrelation: the lag m is a loop index,
    so low-order interleaving cannot be guaranteed to help — its exact
    argument for preferring duplication."""

    def body(f, tbl, out):
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4, name="m") as m:
            with f.for_range(0, 8, name="n") as n:
                f.assign(acc, acc + tbl[n] * tbl[n + m])
        f.assign(out[0], acc)

    verdicts = analyze_low_order(_graph_for(body))
    assert verdicts
    assert all(v.verdict == "unknown" for v in verdicts)


def test_lpc_autocorrelation_is_unknown():
    from repro.workloads.registry import APPLICATIONS

    graph = build_interference_graph(APPLICATIONS["lpc"].build())
    verdicts = [
        v for v in analyze_low_order(graph) if v.symbol.name == "ws"
    ]
    assert verdicts
    counts = summarize(verdicts)
    assert counts["unknown"] >= 1


def test_v32_constellation_would_work_with_low_order():
    from repro.workloads.registry import APPLICATIONS

    graph = build_interference_graph(APPLICATIONS["V32encode"].build())
    verdicts = [
        v for v in analyze_low_order(graph) if v.symbol.name == "cpts"
    ]
    assert verdicts
    assert all(v.verdict == "works" for v in verdicts)


def test_summarize_counts():
    def body(f, tbl, out):
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            p = f.index_var("p")
            f.assign(p, i * 2)
            f.assign(acc, acc + tbl[p] * tbl[p + 1])
        f.assign(out[0], acc)

    verdicts = analyze_low_order(_graph_for(body))
    counts = summarize(verdicts)
    assert counts["works"] == len(verdicts)
    assert counts["fails"] == 0
