"""Tests for call-graph construction and recursion detection."""

import pytest

from repro.analysis.callgraph import build_callgraph, find_recursion
from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode, Operation
from repro.ir.validate import IRValidationError, validate_module


def _module():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("leaf", params=[("x", float)], returns=float) as f:
        f.ret(f.param("x") + 1.0)
    with pb.function("mid", params=[("x", float)], returns=float) as f:
        a = f.float_var("a")
        f.assign(a, pb.get("leaf")(f.param("x")))
        f.assign(a, a + pb.get("leaf")(a))
        f.ret(a)
    with pb.function("main") as f:
        f.assign(out[0], pb.get("mid")(1.0))
    return pb.build()


def test_edges_and_counts():
    graph = build_callgraph(_module())
    assert graph.callees("main") == ["mid"]
    assert graph.callees("mid") == ["leaf"]
    assert graph.callees("leaf") == []
    assert graph.callers("leaf") == ["mid"]
    assert graph.call_sites("mid", "leaf") == 2
    assert graph.call_sites("main", "leaf") == 0


def test_reachability():
    graph = build_callgraph(_module())
    assert graph.reachable_from("main") == {"main", "mid", "leaf"}
    assert graph.reachable_from("leaf") == {"leaf"}


def test_topological_order_callees_first():
    graph = build_callgraph(_module())
    order = graph.topological_order()
    assert order.index("leaf") < order.index("mid") < order.index("main")


def _make_recursive(module):
    leaf = module.function("leaf")
    # leaf calls mid: leaf -> mid -> leaf cycle.
    op = Operation(
        OpCode.CALL,
        sources=(leaf.param_registers[0],),
        callee="mid",
    )
    leaf.blocks[0].ops.insert(0, op)
    return module


def test_recursion_detected():
    module = _make_recursive(_module())
    cycle = find_recursion(build_callgraph(module))
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    assert {"leaf", "mid"} <= set(cycle)


def test_validator_rejects_recursion():
    module = _make_recursive(_module())
    with pytest.raises(IRValidationError, match="recursive"):
        validate_module(module)


def test_topological_order_raises_on_recursion():
    graph = build_callgraph(_make_recursive(_module()))
    with pytest.raises(ValueError, match="recursive"):
        graph.topological_order()
