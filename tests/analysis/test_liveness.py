"""Tests for virtual-register liveness analysis."""

from repro.analysis.liveness import compute_liveness
from repro.frontend import ProgramBuilder


def _liveness_for(build):
    module = build()
    return module, compute_liveness(module.main)


def test_straightline_intervals_ordered():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        a = f.float_var("a")
        b = f.float_var("b")
        f.assign(a, 1.0)
        f.assign(b, a + 1.0)
        f.assign(out[0], b)
    module = pb.build()
    info = compute_liveness(module.main)
    (astart, aend) = info.intervals[_find(module, "a")]
    (bstart, bend) = info.intervals[_find(module, "b")]
    assert astart < bstart
    assert aend <= bend


def _find(module, name):
    for op in module.main.operations():
        if op.dest is not None and op.dest.name == name:
            return op.dest
    raise AssertionError("no register named %r" % name)


def test_loop_carried_register_live_across_loop_span():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4):
            f.assign(acc, acc + 1.0)
        f.assign(out[0], acc)
    module = pb.build()
    info = compute_liveness(module.main)
    acc_reg = _find(module, "acc")
    start, end = info.intervals[acc_reg]
    body = [b for b in module.main.blocks if b.loop_depth == 1][0]
    body_positions = [info.positions[id(op)] for op in body.ops]
    # acc must be live over every body position.
    assert start <= min(body_positions)
    assert end >= max(body_positions)


def test_live_in_of_loop_body_contains_loop_state():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4):
            f.assign(acc, acc + 2.0)
        f.assign(out[0], acc)
    module = pb.build()
    info = compute_liveness(module.main)
    acc_reg = _find(module, "acc")
    body = [b for b in module.main.blocks if b.loop_depth == 1][0]
    assert acc_reg in info.live_in[body.label]
    assert acc_reg in info.live_out[body.label]


def test_branch_join_liveness():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        c = f.int_var("c")
        v = f.int_var("v")
        f.assign(c, 1)
        with f.if_(c > 0):
            f.assign(v, 10)
        with f.else_():
            f.assign(v, 20)
        f.assign(out[0], v)
    module = pb.build()
    info = compute_liveness(module.main)
    v_reg = _find(module, "v")
    # v is live out of both arms (used at the join).
    arms = [b for b in module.main.blocks if "then" in b.label or "ifjoin" in b.label]
    assert any(v_reg in info.live_out[b.label] for b in arms)


def test_dead_register_has_point_interval():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        dead = f.int_var("dead")
        f.assign(dead, 5)
        f.assign(out[0], 1)
    module = pb.build()
    info = compute_liveness(module.main)
    dead_reg = _find(module, "dead")
    start, end = info.intervals[dead_reg]
    assert start == end
