"""Tests for the per-block data-dependence graph."""

from repro.analysis.dependence import DepKind, build_dependence_graph
from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import Symbol
from repro.ir.types import RegClass
from repro.ir.values import Immediate, VirtualRegister


def _reg(rclass=RegClass.INT, index=0):
    return VirtualRegister(index, rclass)


def test_flow_dependence():
    r1, r2, r3 = _reg(index=1), _reg(index=2), _reg(index=3)
    ops = [
        Operation(OpCode.CONST, dest=r1, sources=(Immediate(1),)),
        Operation(OpCode.ADD, dest=r2, sources=(r1, r1)),
        Operation(OpCode.ADD, dest=r3, sources=(r2, r1)),
    ]
    g = build_dependence_graph(ops)
    assert g.has_edge(0, 1, DepKind.FLOW)
    assert g.has_edge(1, 2, DepKind.FLOW)
    assert g.has_edge(0, 2, DepKind.FLOW)


def test_anti_dependence():
    r1, r2 = _reg(index=1), _reg(index=2)
    ops = [
        Operation(OpCode.ADD, dest=r2, sources=(r1, r1)),   # reads r1
        Operation(OpCode.CONST, dest=r1, sources=(Immediate(0),)),  # writes r1
    ]
    g = build_dependence_graph(ops)
    assert g.has_edge(0, 1, DepKind.ANTI)
    assert not g.has_edge(0, 1, DepKind.FLOW)
    assert g.anti_preds(1) == [0]
    assert g.hard_preds(1) == []


def test_output_dependence():
    r1 = _reg(index=1)
    ops = [
        Operation(OpCode.CONST, dest=r1, sources=(Immediate(1),)),
        Operation(OpCode.CONST, dest=r1, sources=(Immediate(2),)),
    ]
    g = build_dependence_graph(ops)
    assert g.has_edge(0, 1, DepKind.OUTPUT)


def test_memory_dependences_same_symbol():
    sym = Symbol("a", size=8)
    idx = _reg(RegClass.ADDR, 9)
    v = _reg(RegClass.FLOAT, 1)
    load = Operation(OpCode.LOAD, dest=v, sources=(idx,), symbol=sym)
    store = Operation(OpCode.STORE, sources=(v, idx), symbol=sym)
    load2 = Operation(
        OpCode.LOAD, dest=_reg(RegClass.FLOAT, 2), sources=(idx,), symbol=sym
    )
    store2 = Operation(OpCode.STORE, sources=(v, idx), symbol=sym)
    g = build_dependence_graph([load, store, load2, store2])
    assert g.has_edge(0, 1)  # load -> store: anti (plus flow via v)
    assert DepKind.ANTI in g.succs[0][1]
    assert g.has_edge(1, 2, DepKind.FLOW)  # store -> load
    assert g.has_edge(1, 3, DepKind.OUTPUT)  # store -> store


def test_no_dependence_between_different_symbols():
    a = Symbol("a", size=4)
    b = Symbol("b", size=4)
    idx = Immediate(0)
    v = _reg(RegClass.FLOAT, 1)
    w = _reg(RegClass.FLOAT, 2)
    store_a = Operation(OpCode.STORE, sources=(v, idx), symbol=a)
    load_b = Operation(OpCode.LOAD, dest=w, sources=(idx,), symbol=b)
    g = build_dependence_graph([store_a, load_b])
    assert not g.has_edge(0, 1)


def test_distinct_constant_indices_disambiguate():
    a = Symbol("a", size=4)
    v = _reg(RegClass.FLOAT, 1)
    w = _reg(RegClass.FLOAT, 2)
    store0 = Operation(OpCode.STORE, sources=(v, Immediate(0)), symbol=a)
    load1 = Operation(OpCode.LOAD, dest=w, sources=(Immediate(1),), symbol=a)
    load0 = Operation(OpCode.LOAD, dest=w, sources=(Immediate(0),), symbol=a)
    g = build_dependence_graph([store0, load1])
    assert not g.has_edge(0, 1)
    g2 = build_dependence_graph([store0, load0])
    assert g2.has_edge(0, 1, DepKind.FLOW)


def test_offset_addressing_participates_in_disambiguation():
    a = Symbol("a", size=8)
    v = _reg(RegClass.FLOAT, 1)
    w = _reg(RegClass.FLOAT, 2)
    store = Operation(
        OpCode.STORE, sources=(v, Immediate(0), Immediate(2)), symbol=a
    )
    load_same = Operation(
        OpCode.LOAD, dest=w, sources=(Immediate(1), Immediate(1)), symbol=a
    )
    load_other = Operation(
        OpCode.LOAD, dest=w, sources=(Immediate(1), Immediate(3)), symbol=a
    )
    g = build_dependence_graph([store, load_same])
    assert g.has_edge(0, 1, DepKind.FLOW)  # both address element 2
    g2 = build_dependence_graph([store, load_other])
    assert not g2.has_edge(0, 1)


def test_opaque_symbol_conflicts_with_everything():
    a = Symbol("a", size=4)
    o = Symbol("o", size=4, opaque=True)
    v = _reg(RegClass.FLOAT, 1)
    w = _reg(RegClass.FLOAT, 2)
    store_o = Operation(OpCode.STORE, sources=(v, Immediate(0)), symbol=o)
    load_a = Operation(OpCode.LOAD, dest=w, sources=(Immediate(1),), symbol=a)
    g = build_dependence_graph([store_o, load_a])
    assert g.has_edge(0, 1, DepKind.FLOW)


def test_shadow_store_pair_does_not_conflict():
    a = Symbol("a", size=4)
    v = _reg(RegClass.FLOAT, 1)
    idx = Immediate(0)
    primary = Operation(OpCode.STORE, sources=(v, idx), symbol=a)
    shadow = Operation(OpCode.STORE, sources=(v, idx), symbol=a, shadow=True)
    g = build_dependence_graph([primary, shadow])
    assert not g.has_edge(0, 1)


def test_call_is_a_memory_barrier():
    a = Symbol("a", size=4)
    v = _reg(RegClass.FLOAT, 1)
    store = Operation(OpCode.STORE, sources=(v, Immediate(0)), symbol=a)
    call = Operation(OpCode.CALL, sources=(), callee="f")
    load = Operation(
        OpCode.LOAD, dest=_reg(RegClass.FLOAT, 2), sources=(Immediate(0),), symbol=a
    )
    g = build_dependence_graph([store, call, load])
    assert g.has_edge(0, 1, DepKind.FLOW)
    assert g.has_edge(1, 2, DepKind.FLOW)


def test_priorities_count_descendants():
    r1, r2, r3, r4 = (_reg(index=i) for i in range(1, 5))
    ops = [
        Operation(OpCode.CONST, dest=r1, sources=(Immediate(1),)),
        Operation(OpCode.ADD, dest=r2, sources=(r1, r1)),
        Operation(OpCode.ADD, dest=r3, sources=(r2, r2)),
        Operation(OpCode.CONST, dest=r4, sources=(Immediate(5),)),
    ]
    g = build_dependence_graph(ops)
    assert g.priorities() == [2, 1, 0, 0]
