"""The fault injector's delivery semantics and the outcome classifier."""

import pytest

from repro.compiler import compile_module
from repro.faults.experiment import (
    OUTCOMES,
    reference_run,
    run_with_plan,
)
from repro.faults.injector import perturb
from repro.faults.plan import FaultPlan, generate_plan
from repro.partition.strategies import Strategy
from repro.workloads.kernels.autocorr import Autocorr
from repro.workloads.kernels.fir import Fir


def _compiled(workload, strategy):
    return compile_module(workload.build(), strategy=strategy)


@pytest.fixture(scope="module")
def dup_program():
    """Autocorr under CB_DUP: `signal` is duplicated into both banks."""
    compiled = _compiled(Autocorr(), Strategy.CB_DUP)
    assert [s.name for s in compiled.allocation.duplicated] == ["signal"]
    return compiled.program


@pytest.fixture(scope="module")
def plain_program():
    return _compiled(Fir(32, 1), Strategy.SINGLE_BANK).program


def test_perturb_int_is_a_bit_flip():
    assert perturb(0, 3) == 8
    assert perturb(8, 3) == 0  # involution: flipping twice restores
    assert perturb(5, 0) == 4


def test_perturb_float_sign_and_magnitude():
    assert perturb(2.5, 15) == -2.5
    assert perturb(1.0, 3) == 9.0


def test_perturb_passes_odd_values_through():
    assert perturb(None, 3) is None
    assert perturb("x", 3) == "x"
    assert perturb(True, 3) is True  # bools are not machine words


def test_targeted_dup_flip_is_detected_and_repaired(dup_program):
    """Flip one bit in the X image of the duplicated `signal`: the dup
    cross-check at the same delivery must record a detection and (by
    default) repair the Y-copy divergence."""
    symbols = [s.name for s in dup_program.module.globals]
    plan = FaultPlan(
        seed=0, cadence=7,
        events=[["glob", 1, symbols.index("signal"), 0, 3, 0]],
    )
    result = run_with_plan(dup_program, plan)
    assert result["outcome"] == "detected"
    assert result["detections"]
    assert result["repairs"] >= 1
    assert result["applied"][0][1] == "glob"
    assert result["applied"][0][2] == "signal"


def test_detection_without_repair_leaves_divergence(dup_program):
    symbols = [s.name for s in dup_program.module.globals]
    plan = FaultPlan(
        seed=0, cadence=7,
        events=[["glob", 1, symbols.index("signal"), 0, 3, 0]],
    )
    result = run_with_plan(dup_program, plan, repair=False)
    assert result["outcome"] == "detected"
    assert result["repairs"] == 0


def test_jitter_suppresses_deliveries(plain_program):
    plan = FaultPlan(seed=0, cadence=7, events=[["jitter", 1, 3]])
    result = run_with_plan(plain_program, plan)
    # skip = 1 + 3 % 4 = 4 deliveries swallowed after the event fires
    assert result["suppressed"] == 4
    assert ["jitter", 4] == result["applied"][0][1:]


def test_stuck_window_reimposes_snapshot(plain_program):
    plan = FaultPlan(
        seed=0, cadence=7, events=[["stuck", 1, 0, 0, 4, 14]],
    )
    result = run_with_plan(plain_program, plan)
    assert result["applied"][0][1] == "stuck"
    assert result["outcome"] in OUTCOMES


def test_run_with_plan_is_deterministic(plain_program):
    plan = generate_plan(11, events=4, horizon=reference_run(plain_program)[0])
    first = run_with_plan(plain_program, plan)
    second = run_with_plan(plain_program, plan)
    assert first == second


def test_cycle_budget_hang_classification(plain_program):
    """A tiny max_cycles trips the runaway guard: the run classifies as
    a hang with a machine-category error, not a crash."""
    plan = generate_plan(0, horizon=100)
    result = run_with_plan(plain_program, plan, max_cycles=8)
    assert result["outcome"] == "hang"
    assert result["error"]["category"] == "machine"
    assert result["digest"] is None


def test_disarmed_plan_runs_clean(plain_program):
    """An event-less plan installs no hook; the run must be masked and
    cycle-identical to the fault-free reference."""
    cycles, _state = reference_run(plain_program)
    result = run_with_plan(plain_program, FaultPlan(seed=0, events=[]))
    assert result["outcome"] == "masked"
    assert result["cycles"] == cycles
    assert result["delivered"] == 0
