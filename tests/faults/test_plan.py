"""FaultPlan: seeded generation, serialization, and arming rules."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CADENCES,
    EVENT_KINDS,
    FaultPlan,
    generate_plan,
)


def test_generate_plan_is_deterministic():
    first = generate_plan(42, events=5, horizon=500)
    second = generate_plan(42, events=5, horizon=500)
    assert first == second
    assert first.to_json() == second.to_json()
    assert hash(first) == hash(second)


def test_different_seeds_draw_different_plans():
    plans = {generate_plan(seed, events=4, horizon=500).to_json()
             for seed in range(8)}
    assert len(plans) > 1


def test_generated_events_are_well_formed():
    plan = generate_plan(7, events=10, horizon=300)
    assert plan.cadence in CADENCES
    assert len(plan.events) == 10
    cycles = []
    for event in plan.events:
        assert event[0] in EVENT_KINDS
        assert 1 <= event[1] < 300
        cycles.append(event[1])
    # events come sorted by cycle so the injector's cursor never skips
    assert cycles == sorted(cycles)


def test_json_round_trip():
    plan = generate_plan(3, events=4, horizon=200)
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert clone.events == plan.events
    assert clone.cadence == plan.cadence
    assert clone.seed == plan.seed


def test_from_dict_rejects_unknown_version():
    data = generate_plan(1).to_dict()
    data["version"] = 999
    with pytest.raises(ValueError):
        FaultPlan.from_dict(data)


def test_explicit_cadence_is_honoured():
    plan = generate_plan(5, cadence=11, horizon=100)
    assert plan.cadence == 11


def test_for_plan_disarms_empty_plans():
    """None / event-less plans install no hook at all — the structural
    guarantee behind the fault-off overhead gate."""
    assert FaultInjector.for_plan(None) is None
    assert FaultInjector.for_plan(FaultPlan(seed=0, events=[])) is None
    armed = FaultInjector.for_plan(generate_plan(0))
    assert armed is not None
    assert armed.cadence in CADENCES
