"""The resilience campaign: aggregation, the report, and resume."""

import pytest

from repro.faults import campaign as campaign_module
from repro.faults.campaign import (
    campaign_workloads,
    fault_campaign,
    run_task,
)
from repro.faults.experiment import OUTCOMES
from repro.faults.report import render_resilience


def test_campaign_workloads_include_autocorr():
    """The Fig-6 autocorrelation rides along without entering the frozen
    figure/table registry."""
    from repro.workloads.registry import KERNELS

    table = campaign_workloads()
    assert "autocorr_24_4" in table
    assert "autocorr_24_4" not in KERNELS
    assert "fir_32_1" in table


def test_unknown_workload_is_rejected():
    with pytest.raises(ValueError):
        fault_campaign(1, workloads=["nonexistent"])


def test_report_structure_and_rendering():
    report = fault_campaign(
        3, workloads=["fir_32_1"], strategies=["SINGLE_BANK", "CB_DUP"],
    )
    assert report["backend"] == "interp"
    assert report["runs"] == 6
    assert set(report["strategies"]) == {"SINGLE_BANK", "CB_DUP"}
    for entry in report["strategies"].values():
        assert entry["runs"] == 3
        assert sum(entry[outcome] for outcome in OUTCOMES) == 3
        assert 0.0 <= entry["coverage"] <= 1.0
    markdown = render_resilience(report)
    assert "# Resilience report" in markdown
    assert "## Per strategy" in markdown
    assert "### fir_32_1" in markdown


def test_dup_detection_beats_baseline_masking_on_autocorr():
    """The acceptance criterion: on the Fig-6 autocorrelation workload,
    partial duplication's coverage (masked + detected) must be at least
    the non-duplicated strategies' masking rate — the duplicated copy
    pays off as an error-detection mechanism."""
    report = fault_campaign(
        10, workloads=["autocorr_24_4"],
        strategies=["SINGLE_BANK", "CB", "CB_DUP"],
    )
    entries = report["workloads"]["autocorr_24_4"]
    dup = entries["CB_DUP"]
    assert dup["detection_rate"] > 0.0
    assert dup["coverage"] >= entries["SINGLE_BANK"]["masked_rate"]
    assert dup["coverage"] >= entries["CB"]["masked_rate"]


def test_run_task_row_is_json_able():
    import json

    row = run_task("fir_32_1", "CB_DUP", "interp", 0)
    assert row["workload"] == "fir_32_1"
    assert row["strategy"] == "CB_DUP"
    assert row["outcome"] in OUTCOMES
    json.dumps(row)  # must survive the journal


def test_interrupted_campaign_resumes_to_same_report(tmp_path, monkeypatch):
    """Kill a campaign partway (KeyboardInterrupt out of a task), rerun
    with the same journal: the resumed campaign skips the completed
    rows and converges to the same aggregate report as an
    uninterrupted run."""
    kwargs = dict(
        runs=3, seed=0, workloads=["fir_32_1"],
        strategies=["SINGLE_BANK", "CB_DUP"],
    )
    expected = fault_campaign(**kwargs)

    journal = str(tmp_path / "campaign.jsonl")
    calls = {"n": 0}
    real_run_task = run_task

    def poisoned(*arguments):
        calls["n"] += 1
        if calls["n"] == 4:
            raise KeyboardInterrupt()
        return real_run_task(*arguments)

    monkeypatch.setattr(campaign_module, "run_task", poisoned)
    with pytest.raises(KeyboardInterrupt):
        fault_campaign(journal=journal, **kwargs)
    monkeypatch.setattr(campaign_module, "run_task", real_run_task)

    from repro.evaluation.parallel import Journal

    assert 0 < len(Journal(journal)) < 6  # partial progress flushed
    resumed = fault_campaign(journal=journal, **kwargs)
    assert resumed == expected
