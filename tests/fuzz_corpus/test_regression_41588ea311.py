"""Auto-generated fuzz regression (shrunk from generate_recipe(761, max_statements=5); interrupt window between a primary dup-store and its shadow).

Replays a shrunk recipe through the full differential oracle; see
docs/internals.md ("The differential fuzzer") for the corpus workflow.
"""

from repro.fuzz.generator import Recipe
from repro.fuzz.oracle import check_recipe

RECIPE_JSON = '{"arrays": [10, 12], "body": [["store", 1, 0, 0], ["call", 0, 0], ["autocorr", 0, 0, 0]], "helpers": [[["store", 0, 0, 0], ["dot", 1, 0, 0]]], "interrupt_period": 7, "seed": 761, "version": 1}'


def test_fuzz_regression_41588ea311():
    check_recipe(Recipe.from_json(RECIPE_JSON))
