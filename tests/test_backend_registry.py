"""Guard: a new simulator backend cannot be registered half-way.

Every entry in :data:`repro.sim.fastsim.BACKENDS` must be selectable
from every CLI command that takes ``--backend`` and must be covered by
the fuzz oracle's backend-identity stage — otherwise a backend could
ship without differential coverage against the reference interpreter.
"""

import argparse

from repro import __main__ as cli
from repro.fuzz.oracle import ORACLE_BACKENDS
from repro.sim.fastsim import BACKENDS, FastSimulator
from repro.sim.simulator import Simulator


def _backend_choices_by_command():
    """Map CLI command name -> choices of its ``--backend`` option."""
    parser = cli.build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    found = {}
    for name, command in subparsers.choices.items():
        for action in command._actions:
            if "--backend" in action.option_strings:
                found[name] = set(action.choices)
    return found


def test_every_backend_is_a_cli_choice_everywhere():
    by_command = _backend_choices_by_command()
    # the commands that simulate must all expose --backend
    for command in ("run", "compare", "figure7", "figure8", "table3",
                    "report", "fuzz", "faults"):
        assert command in by_command, "%s lost its --backend option" % command
    for command, choices in by_command.items():
        missing = set(BACKENDS) - choices
        assert not missing, (
            "backend(s) %s registered in BACKENDS but not selectable via "
            "`%s --backend`" % (sorted(missing), command)
        )


def test_every_backend_is_oracle_covered():
    missing = set(BACKENDS) - set(ORACLE_BACKENDS)
    assert not missing, (
        "backend(s) %s registered in BACKENDS but absent from the fuzz "
        "oracle's backend-identity stage (ORACLE_BACKENDS)" % sorted(missing)
    )
    unknown = set(ORACLE_BACKENDS) - set(BACKENDS)
    assert not unknown, "oracle names unregistered backend(s) %s" % sorted(
        unknown
    )


def test_backend_classes_implement_the_simulator_contract():
    for name, cls in BACKENDS.items():
        assert issubclass(cls, Simulator), name
        assert getattr(cls, "backend_name", None) == name or cls is Simulator
    # the registry's compiled entries all share the fastsim codegen base
    assert issubclass(BACKENDS["batch"], FastSimulator)
