"""Documentation hygiene: every relative link and referenced path in
README.md and docs/*.md must point at something that exists.

Two kinds of references are checked:

* markdown links ``[text](target)`` whose target is not an absolute URL
  or in-page fragment — resolved against the linking file's directory
  and the repo root;
* backtick path references like ``src/repro/obs/core.py`` or
  ``docs/observability.md`` — inline code that *looks like* a repo path
  (contains a ``/`` and a known extension, or starts with a known
  top-level directory) must exist, so renamed modules can't leave the
  docs silently pointing at nothing.

Plus the reverse direction — CLI-flag drift: every ``repro``
subcommand and every long option it exposes must be mentioned somewhere
in the README or docs corpus, so a new flag cannot ship undocumented
(fenced code counts: flags are usually shown in example invocations).
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
CODE_REF = re.compile(r"`([A-Za-z0-9_./-]+)`")
PATH_EXTENSIONS = (".py", ".md", ".txt", ".json", ".toml", ".cfg", ".ini")
TOP_DIRS = ("src/", "docs/", "tests/", "examples/", "benchmarks/")


def _markdown_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return files


def _strip_fenced_code(text):
    """Fenced blocks hold example output, not navigable references."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _exists(target, base_dir):
    candidates = [
        os.path.normpath(os.path.join(base_dir, target)),
        os.path.normpath(os.path.join(REPO_ROOT, target)),
        # Module paths are conventionally given relative to the package.
        os.path.normpath(os.path.join(REPO_ROOT, "src", "repro", target)),
    ]
    return any(os.path.exists(c) for c in candidates)


@pytest.mark.parametrize(
    "path", _markdown_files(), ids=lambda p: os.path.relpath(p, REPO_ROOT)
)
def test_relative_links_resolve(path):
    text = open(path).read()
    base_dir = os.path.dirname(path)
    broken = []
    for match in LINK.finditer(_strip_fenced_code(text)):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        if not _exists(target, base_dir):
            broken.append(target)
    assert not broken, "%s: broken links %s" % (
        os.path.relpath(path, REPO_ROOT), broken
    )


@pytest.mark.parametrize(
    "path", _markdown_files(), ids=lambda p: os.path.relpath(p, REPO_ROOT)
)
def test_referenced_paths_exist(path):
    text = _strip_fenced_code(open(path).read())
    base_dir = os.path.dirname(path)
    missing = []
    for match in CODE_REF.finditer(text):
        ref = match.group(1)
        looks_like_path = ref.startswith(TOP_DIRS) or (
            "/" in ref and ref.endswith(PATH_EXTENSIONS)
        )
        if not looks_like_path:
            continue
        if not _exists(ref, base_dir):
            missing.append(ref)
    assert not missing, "%s: referenced paths missing %s" % (
        os.path.relpath(path, REPO_ROOT), missing
    )


# ---------------------------------------------------------------------
# CLI-flag drift guard
# ---------------------------------------------------------------------
def _docs_corpus():
    """README + docs text, fenced code included (example invocations are
    exactly where flags get documented)."""
    return "\n".join(open(path).read() for path in _markdown_files())


def test_every_subcommand_is_documented():
    from repro.__main__ import build_parser

    corpus = _docs_corpus()
    subparsers = build_parser()._subparsers._group_actions[0].choices
    undocumented = [name for name in subparsers if name not in corpus]
    assert not undocumented, (
        "subcommands missing from README/docs: %s" % undocumented
    )


def test_every_cli_flag_is_documented():
    from repro.__main__ import build_parser

    corpus = _docs_corpus()
    subparsers = build_parser()._subparsers._group_actions[0].choices
    undocumented = set()
    for name, sub in subparsers.items():
        for action in sub._actions:
            for option in action.option_strings:
                if not option.startswith("--") or option == "--help":
                    continue
                if option not in corpus:
                    undocumented.add("%s %s" % (name, option))
    assert not undocumented, (
        "flags missing from README/docs: %s" % sorted(undocumented)
    )


# ---------------------------------------------------------------------
# Benchmark drift guard
# ---------------------------------------------------------------------
BENCH_JSON = re.compile(r"BENCH_[a-z_]+\.json")


def _bench_references():
    """benchmark file name -> the BENCH_*.json names its source
    mentions (the emitting benchmark always names its output)."""
    bench_dir = os.path.join(REPO_ROOT, "benchmarks")
    table = {}
    for name in sorted(os.listdir(bench_dir)):
        if name.startswith("bench_") and name.endswith(".py"):
            refs = set(BENCH_JSON.findall(
                open(os.path.join(bench_dir, name)).read()
            ))
            if refs:
                table[name] = refs
    return table


def test_bench_json_files_match_their_benchmarks():
    """Every committed BENCH_*.json has a benchmark that names it, and
    every benchmark-named BENCH_*.json is committed — a renamed or
    added benchmark output cannot drift from the frozen numbers."""
    table = _bench_references()
    referenced = set().union(*table.values()) if table else set()
    committed = {
        name for name in os.listdir(REPO_ROOT)
        if BENCH_JSON.fullmatch(name)
    }
    assert committed == referenced, (
        "committed-only: %s; referenced-only: %s"
        % (sorted(committed - referenced), sorted(referenced - committed))
    )


def test_bench_jsons_and_their_benchmarks_are_documented():
    """A benchmark that freezes headline numbers must be findable from
    the docs: both the JSON name and the emitting bench_*.py file have
    to appear in the README/docs corpus."""
    corpus = _docs_corpus()
    table = _bench_references()
    undocumented = []
    for bench, outputs in table.items():
        if bench not in corpus:
            undocumented.append(bench)
        undocumented.extend(
            output for output in sorted(outputs) if output not in corpus
        )
    assert not undocumented, (
        "benchmark artifacts missing from README/docs: %s"
        % sorted(set(undocumented))
    )
