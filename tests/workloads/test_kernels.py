"""Functional verification of every kernel under every configuration.

This is the suite's core integration matrix: each kernel's compiled code
must produce the reference outputs under all six allocation strategies.
The big kernels run a reduced configuration set to keep the suite fast.
"""

import pytest

from repro.partition.strategies import Strategy
from repro.sim.tracing import collect_block_counts
from repro.workloads.registry import KERNELS
from tests.conftest import compile_and_run

FAST_KERNELS = [
    "fir_32_1",
    "iir_1_1",
    "latnrm_8_1",
    "lmsfir_8_1",
    "mult_4_4",
    "fft_256",
]

ALL_STRATEGIES = [
    Strategy.SINGLE_BANK,
    Strategy.CB,
    Strategy.CB_PROFILE,
    Strategy.CB_DUP,
    Strategy.FULL_DUP,
    Strategy.IDEAL,
]


def _profile(workload):
    from repro.compiler import compile_module
    from repro.sim.simulator import Simulator

    compiled = compile_module(workload.build(), strategy=Strategy.SINGLE_BANK)
    sim = Simulator(compiled.program)
    result = sim.run()
    return collect_block_counts(compiled.program, result)


@pytest.mark.parametrize("name", FAST_KERNELS)
@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
def test_kernel_correct_under_strategy(name, strategy):
    workload = KERNELS[name]
    counts = _profile(workload) if strategy.needs_profile else None
    sim, _ = compile_and_run(
        workload.build(), strategy=strategy, profile_counts=counts
    )
    workload.verify(sim)


@pytest.mark.parametrize(
    "name", [n for n in KERNELS if n not in FAST_KERNELS and n != "fft_1024"]
)
def test_large_kernel_correct(name):
    workload = KERNELS[name]
    for strategy in (Strategy.SINGLE_BANK, Strategy.CB, Strategy.IDEAL):
        sim, _ = compile_and_run(workload.build(), strategy=strategy)
        workload.verify(sim)


@pytest.mark.parametrize("name", FAST_KERNELS)
def test_kernel_cb_not_slower_than_baseline(name):
    workload = KERNELS[name]
    _, base = compile_and_run(workload.build(), strategy=Strategy.SINGLE_BANK)
    _, cb = compile_and_run(workload.build(), strategy=Strategy.CB)
    assert cb.cycles <= base.cycles


@pytest.mark.parametrize("name", FAST_KERNELS)
def test_kernel_ideal_at_least_as_fast_as_cb(name):
    workload = KERNELS[name]
    _, cb = compile_and_run(workload.build(), strategy=Strategy.CB)
    _, ideal = compile_and_run(workload.build(), strategy=Strategy.IDEAL)
    assert ideal.cycles <= cb.cycles


def test_kernel_table_matches_paper_table1():
    assert list(KERNELS) == [
        "fft_1024",
        "fft_256",
        "fir_256_64",
        "fir_32_1",
        "iir_4_64",
        "iir_1_1",
        "latnrm_32_64",
        "latnrm_8_1",
        "lmsfir_32_64",
        "lmsfir_8_1",
        "mult_10_10",
        "mult_4_4",
    ]


def test_fft_1024_smoke():
    workload = KERNELS["fft_1024"]
    sim, _ = compile_and_run(workload.build(), strategy=Strategy.CB)
    workload.verify(sim)
