"""Functional verification of every application under key configurations."""

import pytest

from repro.partition.strategies import Strategy
from repro.workloads.registry import APPLICATIONS
from tests.conftest import compile_and_run

APP_STRATEGIES = [
    Strategy.SINGLE_BANK,
    Strategy.CB,
    Strategy.CB_DUP,
    Strategy.FULL_DUP,
    Strategy.IDEAL,
]


@pytest.mark.parametrize("name", list(APPLICATIONS))
@pytest.mark.parametrize("strategy", APP_STRATEGIES, ids=lambda s: s.name)
def test_application_correct_under_strategy(name, strategy):
    workload = APPLICATIONS[name]
    sim, _ = compile_and_run(workload.build(), strategy=strategy)
    workload.verify(sim)


def test_application_table_matches_paper_table2():
    assert list(APPLICATIONS) == [
        "adpcm",
        "lpc",
        "spectral",
        "edge_detect",
        "compress",
        "histogram",
        "V32encode",
        "G721MLencode",
        "G721MLdecode",
        "G721WFencode",
        "trellis",
    ]


def test_lpc_marks_signal_for_duplication():
    from repro.compiler import compile_module

    workload = APPLICATIONS["lpc"]
    compiled = compile_module(workload.build(), strategy=Strategy.CB)
    names = [s.name for s in compiled.allocation.graph.duplication_candidates]
    assert "ws" in names  # the windowed-signal autocorrelation array


def test_spectral_marks_fft_arrays_for_duplication():
    from repro.compiler import compile_module

    workload = APPLICATIONS["spectral"]
    compiled = compile_module(workload.build(), strategy=Strategy.CB)
    names = {s.name for s in compiled.allocation.graph.duplication_candidates}
    assert "re" in names and "im" in names


def test_v32_marks_constellation_for_duplication():
    from repro.compiler import compile_module

    workload = APPLICATIONS["V32encode"]
    compiled = compile_module(workload.build(), strategy=Strategy.CB)
    names = {s.name for s in compiled.allocation.graph.duplication_candidates}
    assert "cpts" in names


def test_histogram_has_no_memory_parallelism():
    workload = APPLICATIONS["histogram"]
    _, base = compile_and_run(workload.build(), strategy=Strategy.SINGLE_BANK)
    _, ideal = compile_and_run(workload.build(), strategy=Strategy.IDEAL)
    assert ideal.cycles == base.cycles


def test_g721_variants_differ():
    ml = APPLICATIONS["G721MLencode"]
    wf = APPLICATIONS["G721WFencode"]
    assert ml.expected()["codes"] != wf.expected()["codes"]


def test_g721_decode_inverts_encode_state():
    decoder = APPLICATIONS["G721MLdecode"]
    sim, _ = compile_and_run(decoder.build(), strategy=Strategy.CB)
    decoder.verify(sim)
    reconstructed = sim.read_global("out")
    # The decoded waveform should correlate with the original speech.
    original = decoder._samples
    assert len(reconstructed) == len(original)
    num = sum(a * b for a, b in zip(reconstructed, original))
    assert num > 0


def test_trellis_corrects_injected_errors():
    workload = APPLICATIONS["trellis"]
    sim, _ = compile_and_run(workload.build(), strategy=Strategy.CB)
    decoded = sim.read_global("decoded")
    # Viterbi should recover the transmitted bits despite channel errors
    # (up to trailing decisions near the unterminated end).
    errors = sum(1 for a, b in zip(decoded, workload._bits) if a != b)
    assert errors <= 4
