"""Validation of the reference models themselves.

The compiled benchmarks are verified against these Python/NumPy models,
so the models must be right on their own terms: mathematical identities,
known closed forms, and information-theoretic sanity checks.
"""

import math

import numpy as np
import pytest


def test_dct_matrix_is_orthonormal():
    from repro.workloads.apps.compress import BLOCK, dct_matrix

    c = np.asarray(dct_matrix()).reshape(BLOCK, BLOCK)
    identity = c @ c.T
    assert np.allclose(identity, np.eye(BLOCK), atol=1e-12)


def test_dct_of_constant_block_is_dc_only():
    from repro.workloads.apps.compress import BLOCK, dct_matrix

    c = np.asarray(dct_matrix()).reshape(BLOCK, BLOCK)
    block = np.full((BLOCK, BLOCK), 5.0)
    coef = c @ block @ c.T
    assert coef[0, 0] == pytest.approx(5.0 * BLOCK)
    off_dc = np.abs(coef).sum() - abs(coef[0, 0])
    assert off_dc < 1e-9


def test_viterbi_decodes_noiseless_stream_exactly():
    from repro.workloads.apps.trellis import _encode, viterbi_reference

    rng = np.random.default_rng(5)
    bits = rng.integers(0, 2, 120).tolist()
    r0, r1 = _encode(bits)
    decoded, metric = viterbi_reference(r0, r1)
    assert min(metric) == 0  # a zero-cost path exists
    # All but the trailing unterminated decisions must match.
    assert decoded[:-2] == bits[:-2]


def test_viterbi_corrects_isolated_errors():
    from repro.workloads.apps.trellis import _encode, viterbi_reference

    rng = np.random.default_rng(6)
    bits = rng.integers(0, 2, 120).tolist()
    r0, r1 = _encode(bits)
    r0[10] ^= 1
    r1[60] ^= 1
    decoded, _metric = viterbi_reference(r0, r1)
    errors = sum(1 for a, b in zip(decoded[:-2], bits[:-2]) if a != b)
    assert errors == 0


def test_g721_codec_reconstruction_quality():
    """The ML decoder applied to the ML encoder's codes must track the
    input: ADPCM at 4 bits/sample keeps SNR comfortably positive."""
    from repro.workloads.apps.g721 import (
        ml_decode_reference,
        ml_encode_reference,
    )
    from repro.workloads import data

    samples = [v * 8000 for v in data.speech(400, seed=3)]
    codes = ml_encode_reference(samples)
    decoded = ml_decode_reference(codes)
    # Skip the adaptive warm-up.
    x = np.asarray(samples[50:])
    y = np.asarray(decoded[50:])
    noise = x - y
    snr = 10 * math.log10(float(x @ x) / float(noise @ noise))
    assert snr > 10.0


def test_g721_codes_use_full_alphabet():
    from repro.workloads.apps.g721 import ml_encode_reference
    from repro.workloads import data

    samples = [v * 8000 for v in data.speech(400, seed=3)]
    codes = ml_encode_reference(samples)
    assert set(codes) >= set(range(8))  # both signs, several magnitudes


def test_adpcm_reference_tracks_signal():
    from repro.workloads.apps.adpcm import STEP_TABLE, encode_reference

    assert STEP_TABLE == sorted(STEP_TABLE)
    ramp = [100 * i for i in range(64)]
    codes, predicted = encode_reference(ramp)
    # A rising ramp must mostly produce positive (sign bit clear) codes.
    positive = sum(1 for c in codes if not c & 8)
    assert positive > len(codes) * 0.8
    assert predicted > 0


def test_lpc_reference_on_known_ar1_process():
    """For an AR(1) signal x[n] = a*x[n-1] + e, the first reflection
    coefficient approaches a."""
    from repro.workloads.apps.lpc import lpc_reference

    rng = np.random.default_rng(9)
    a = 0.8
    x = [0.0]
    for _ in range(159):
        x.append(a * x[-1] + rng.normal(0, 0.1))
    window = [1.0] * 160  # rectangular to keep the statistics clean
    _r, _coeffs, k, _err = lpc_reference(x, window)
    assert k[0] == pytest.approx(a, abs=0.1)


def test_histogram_reference_conservation():
    from repro.workloads.apps.histogram import (
        LEVELS,
        PIXELS,
        histogram_reference,
    )
    from repro.workloads import data

    image = data.image(64, 64, seed=13)
    hist, lut, out = histogram_reference(image)
    assert sum(hist) == PIXELS
    assert lut == sorted(lut)  # CDF is monotone
    assert lut[-1] == LEVELS - 1
    assert len(out) == PIXELS


def test_spectral_reference_finds_dominant_tone():
    from repro.workloads.apps.spectral import (
        BINS,
        FFT_SIZE,
        FRAMES,
        spectral_reference,
    )

    n = FFT_SIZE * FRAMES
    tone_bin = 6
    signal = [
        math.sin(2 * math.pi * tone_bin * i / FFT_SIZE) for i in range(n)
    ]
    window = [1.0] * FFT_SIZE
    psd = spectral_reference(signal, window)
    assert int(np.argmax(psd)) == tone_bin


def test_encode_reference_v32_constellation_energy():
    from repro.workloads.apps.v32encode import CONSTELLATION, encode_reference
    from repro.workloads import data

    bits = data.bits(4 * 192, seed=37)
    out_re, out_im = encode_reference(bits)
    points = set(zip(out_re, out_im))
    assert len(points) > 8  # many constellation points exercised
    table_points = set(
        (CONSTELLATION[2 * i], CONSTELLATION[2 * i + 1]) for i in range(32)
    )
    assert points <= table_points
