"""Tests for the synthetic input-data generators."""

import math

from repro.workloads import data


def test_generators_are_deterministic():
    assert data.speech(64, seed=3) == data.speech(64, seed=3)
    assert data.samples(32, seed=1) == data.samples(32, seed=1)
    assert (data.image(8, 8, seed=2) == data.image(8, 8, seed=2)).all()
    assert data.bits(16, seed=4) == data.bits(16, seed=4)


def test_seeds_differentiate():
    assert data.samples(32, seed=1) != data.samples(32, seed=2)


def test_image_range_and_shape():
    img = data.image(16, 24, seed=5)
    assert img.shape == (16, 24)
    assert img.min() >= 0 and img.max() <= 255


def test_hamming_window_properties():
    w = data.hamming(32)
    assert len(w) == 32
    assert w[0] == w[-1]
    assert abs(max(w) - 1.0) < 0.01
    assert all(0 < v <= 1.0 for v in w)


def test_fir_coefficients_normalized():
    coeffs = data.fir_coefficients(33)
    assert len(coeffs) == 33
    assert math.isclose(sum(coeffs), 1.0, rel_tol=1e-9)


def test_bit_reversal_is_an_involution():
    table = data.bit_reversal_permutation(16)
    assert sorted(table) == list(range(16))
    for i, j in enumerate(table):
        assert table[j] == i


def test_twiddles_lie_on_unit_circle():
    real, imag = data.twiddles(32)
    assert len(real) == len(imag) == 16
    for re, im in zip(real, imag):
        assert math.isclose(re * re + im * im, 1.0, rel_tol=1e-12)


def test_int_samples_range():
    values = data.int_samples(100, -5, 5, seed=9)
    assert all(-5 <= v < 5 for v in values)


def test_bits_are_binary():
    assert set(data.bits(64)) <= {0, 1}
