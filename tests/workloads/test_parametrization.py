"""The workload classes are a library: custom sizes must work too."""

import pytest

from repro.partition.strategies import Strategy
from repro.workloads.kernels.fft import Fft
from repro.workloads.kernels.fir import Fir
from repro.workloads.kernels.iir import Iir
from repro.workloads.kernels.latnrm import Latnrm
from repro.workloads.kernels.lmsfir import LmsFir
from repro.workloads.kernels.matmul import MatMul
from tests.conftest import compile_and_run


@pytest.mark.parametrize(
    "workload",
    [
        Fir(8, 4),
        Fir(5, 3),
        Iir(2, 10),
        Iir(3, 1),
        Latnrm(4, 6),
        LmsFir(4, 5),
        MatMul(3),
        MatMul(5),
        Fft(16),
        Fft(32),
    ],
    ids=lambda w: w.name,
)
def test_custom_sizes_verify(workload):
    for strategy in (Strategy.SINGLE_BANK, Strategy.CB):
        sim, _ = compile_and_run(workload.build(), strategy=strategy)
        workload.verify(sim)


def test_fft_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        Fft(24)


def test_g721_rejects_bad_variants():
    from repro.workloads.apps.g721 import G721

    with pytest.raises(ValueError):
        G721("xx", "encode")
    with pytest.raises(ValueError):
        G721("ml", "transcode")
    with pytest.raises(ValueError):
        G721("wf", "decode")  # paper's suite has no WF decoder


def test_names_follow_paper_convention():
    assert Fir(256, 64).name == "fir_256_64"
    assert MatMul(10).name == "mult_10_10"
    assert Fft(1024).name == "fft_1024"
    assert Latnrm(32, 64).name == "latnrm_32_64"


def test_registry_lookup_helpers():
    from repro.workloads.registry import all_workloads, get_workload

    assert get_workload("fir_32_1").name == "fir_32_1"
    with pytest.raises(KeyError):
        get_workload("nope")
    table = all_workloads()
    assert len(table) == 23  # 12 kernels + 11 applications


def test_workload_instances_are_reusable():
    """build() must return a fresh module every call — compilation
    consumes modules."""
    workload = Fir(8, 2)
    module_a = workload.build()
    module_b = workload.build()
    assert module_a is not module_b
    sim_a, _ = compile_and_run(module_a, strategy=Strategy.CB)
    sim_b, _ = compile_and_run(module_b, strategy=Strategy.IDEAL)
    workload.verify(sim_a)
    workload.verify(sim_b)
