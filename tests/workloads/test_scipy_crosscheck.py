"""Cross-validation of reference models against SciPy implementations.

The workload references are hand-written NumPy/Python; these tests pin
them against independent SciPy signal-processing routines so a mistake
in a reference cannot silently validate a mis-compiled benchmark.
"""

import numpy as np
import pytest

scipy_signal = pytest.importorskip("scipy.signal")
scipy_fft = pytest.importorskip("scipy.fft")


def test_fir_reference_matches_scipy_correlate():
    from repro.workloads.kernels.fir import Fir

    workload = Fir(16, 8)
    expected = workload.expected()["y"]
    cross = scipy_signal.correlate(
        np.asarray(workload._input), np.asarray(workload._coeffs), mode="valid"
    )
    assert np.allclose(expected, cross[: len(expected)], atol=1e-12)


def test_fft_reference_matches_scipy_fft():
    from repro.workloads.kernels.fft import Fft

    workload = Fft(64)
    expected = workload.expected()
    spectrum = scipy_fft.fft(
        np.asarray(workload._re) + 1j * np.asarray(workload._im)
    )
    assert np.allclose(expected["re"], spectrum.real, atol=1e-9)
    assert np.allclose(expected["im"], spectrum.imag, atol=1e-9)


def test_iir_reference_matches_scipy_sos():
    from repro.workloads.kernels.iir import Iir

    workload = Iir(4, 32)
    expected = workload.expected()["y"]
    sos = np.asarray(
        [[b0, b1, b2, 1.0, a1, a2] for b0, b1, b2, a1, a2 in workload._coeffs]
    )
    cross = scipy_signal.sosfilt(sos, np.asarray(workload._input))
    assert np.allclose(expected, cross, atol=1e-9)


def test_spectral_reference_matches_scipy_periodogram_average():
    from repro.workloads.apps.spectral import (
        BINS,
        FFT_SIZE,
        FRAMES,
        Spectral,
        spectral_reference,
    )

    workload = Spectral()
    ours = np.asarray(spectral_reference(workload._signal, workload._window))
    # Average of per-frame windowed periodograms, computed independently.
    acc = np.zeros(BINS)
    window = np.asarray(workload._window)
    for frame in range(FRAMES):
        chunk = np.asarray(
            workload._signal[frame * FFT_SIZE : (frame + 1) * FFT_SIZE]
        )
        spectrum = scipy_fft.fft(chunk * window)
        acc += np.abs(spectrum[:BINS]) ** 2
    assert np.allclose(ours, acc / FRAMES, atol=1e-9)


def test_hamming_matches_scipy_window():
    from repro.workloads import data

    ours = np.asarray(data.hamming(64))
    theirs = scipy_signal.get_window("hamming", 64, fftbins=False)
    assert np.allclose(ours, theirs, atol=1e-12)
