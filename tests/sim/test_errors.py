"""The structured simulator-error taxonomy (repro.sim.errors)."""

import pytest

from repro.sim.errors import (
    InternalError,
    MachineError,
    ProgramError,
    SimError,
    categorize,
    classify_fault,
    describe_fault,
    from_description,
)
from repro.sim.simulator import CycleLimitError, SimulationError


def test_categorize_program_faults():
    assert categorize(SimulationError("unallocated register r3")) == "program"
    assert categorize(SimulationError("unexpected opcode FROB")) == "program"
    assert categorize(SimulationError("unresolved bank for x")) == "program"


def test_categorize_machine_faults():
    assert categorize(SimulationError("negative memory address")) == "machine"
    assert categorize(CycleLimitError("exceeded max_cycles")) == "machine"


def test_categorize_outside_the_simulator():
    assert categorize(ValueError("nope")) is None
    assert categorize(SimError("already classified")) == "internal"


def test_classify_fault_wraps_and_preserves_context():
    original = SimulationError("bad address 99")
    original.pc = 7
    original.cycle = 11
    original.backend = "fast"
    wrapped = classify_fault(original, seed=5)
    assert isinstance(wrapped, MachineError)
    assert wrapped.pc == 7
    assert wrapped.cycle == 11
    assert wrapped.backend == "fast"
    assert wrapped.seed == 5
    assert wrapped.__cause__ is original
    text = str(wrapped)
    assert "bad address 99" in text
    assert "machine" in text and "pc=7" in text and "backend=fast" in text


def test_classify_fault_is_idempotent():
    wrapped = classify_fault(SimulationError("unallocated register a0"))
    assert isinstance(wrapped, ProgramError)
    again = classify_fault(wrapped, seed=3, backend="jit")
    assert again is wrapped
    assert again.seed == 3  # gaps filled, nothing re-wrapped
    assert again.backend == "jit"


def test_classify_fault_internal_fallback():
    wrapped = classify_fault(KeyError("oops"))
    assert isinstance(wrapped, InternalError)
    assert wrapped.category == "internal"


def test_describe_and_rebuild_round_trip():
    fault = SimulationError("stack overflow in bank X")
    fault.pc = 13
    fault.backend = "interp"
    description = describe_fault(fault, seed=9)
    assert description["category"] == "machine"
    assert description["pc"] == 13
    assert description["seed"] == 9
    rebuilt = from_description(description)
    assert isinstance(rebuilt, MachineError)
    assert rebuilt.pc == 13
    assert rebuilt.backend == "interp"
    assert rebuilt.seed == 9
    assert rebuilt.remote_traceback  # formatted worker-side traceback
    assert "stack overflow" in str(rebuilt)


def test_from_description_defaults_to_internal():
    rebuilt = from_description({"message": "??", "category": None})
    assert isinstance(rebuilt, InternalError)


def test_simulator_annotates_faults_in_flight():
    """A crashing run must come back with pc/cycle/backend attached by
    the backend that faulted (the context classify_fault preserves)."""
    from repro.compiler import compile_module
    from repro.partition.strategies import Strategy
    from repro.sim.fastsim import make_simulator
    from repro.workloads.kernels.fir import Fir

    program = compile_module(
        Fir(32, 1).build(), strategy=Strategy.CB
    ).program
    for backend in ("interp", "fast", "jit", "batch"):
        simulator = make_simulator(program, backend=backend, max_cycles=5)
        with pytest.raises(CycleLimitError) as excinfo:
            simulator.run()
        fault = excinfo.value
        assert fault.backend == backend
        assert fault.pc is not None
        assert fault.cycle is not None
        assert isinstance(classify_fault(fault), MachineError)
