"""Unit tests for the loop-specializing ``jit`` backend.

The differential suites (``test_fastsim_equivalence``, the fuzz oracle,
``test_interrupts``) establish bit-identity on real workloads; the tests
here pin the backend's *mechanisms*: which loop shapes specialize, how
the three run modes are selected, the cadence-hook protocol, the
fault-path contract, and the per-program codegen cache.  The codegen
stress tests (large trip counts, deep nesting) run under ``-m
full_diff`` so tier-1 stays fast.
"""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode, Operation
from repro.ir.values import Immediate, Label
from repro.machine.resources import FunctionalUnit
from repro.partition.strategies import Strategy
from repro.sim.fastsim import make_simulator
from repro.sim.interrupts import InterruptInjector
from repro.sim.loopjit import LoopJitSimulator
from repro.sim.simulator import SimulationError, Simulator


def _counted_nest_module(outer=4, inner=8):
    """A two-deep counted accumulation nest (fully specializable)."""
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(outer):
            with f.loop(inner):
                f.assign(acc, acc + 1.0)
        f.assign(out[0], acc)
    return pb.build()


def _program(module, strategy=Strategy.SINGLE_BANK, max_cycles=None):
    program = compile_module(module, strategy=strategy).program
    return program


def _identical(program, reference_backend="interp", **sim_kwargs):
    """Run interp and jit on *program*; assert bit-identity, return jit."""
    ref = make_simulator(program, backend=reference_backend)
    jit = make_simulator(program, backend="jit")
    for key, value in sim_kwargs.items():
        setattr(ref, key, value() if callable(value) else value)
        setattr(jit, key, value() if callable(value) else value)
    expected = ref.run()
    actual = jit.run()
    assert actual.cycles == expected.cycles
    assert actual.operations == expected.operations
    assert actual.pc_counts == expected.pc_counts
    assert jit.state_digest() == ref.state_digest()
    return jit


# ----------------------------------------------------------------------
# Specializability analysis
# ----------------------------------------------------------------------
def test_counted_nest_is_specialized():
    program = _program(_counted_nest_module())
    sim = LoopJitSimulator(program)
    nests = sim._nests()
    assert nests, "a counted nest must produce at least one loop entry"
    roots = [n for n in nests.values() if n.children]
    assert roots, "the outer loop must specialize with its inner child"
    child = roots[0].children[0]
    assert child.begin_pc >= roots[0].start
    assert child.end < roots[0].end


def test_inner_loops_get_their_own_entries():
    """Inner loops register independently in the analysis (the cadence
    path chunks innermost nests, and they still specialize when the
    enclosing loop cannot) — but the hook-free dispatch table only
    carries top-level nests: inner bodies are inlined into the
    enclosing closure, so a standalone inner entry would be dead
    codegen weight."""
    program = _program(_counted_nest_module())
    sim = LoopJitSimulator(program)
    nests = sim._nests()
    inner = [n for n in nests.values() if not n.children]
    assert inner, "the innermost loop must register in the analysis"
    sim.run()
    roots = {n.start for n in nests.values() if n.children}
    inlined = {n.start for n in nests.values() if not n.children}
    for start in roots:
        assert sim._entries[start] is not None
    for start in inlined:
        assert sim._entries[start] is None


def test_loop_with_branch_is_not_specialized():
    """A control transfer in the body disqualifies the region — those
    shapes keep the fused-superblock back-edge semantics."""
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        acc = f.int_var("acc")
        f.assign(acc, 0)
        with f.loop(6):
            with f.if_(acc < 3):
                f.assign(acc, acc + 2)
            with f.else_():
                f.assign(acc, acc + 1)
        f.assign(out[0], acc)
    module = pb.build()
    program = _program(module)
    sim = LoopJitSimulator(program)
    for start, end in program.loops.values():
        body_controls = [
            op
            for pc in range(start, end + 1)
            for op in program.instructions[pc].slots.values()
            if op.info.kind.value == "control"
            and op.opcode is not OpCode.LOOP_BEGIN
        ]
        if body_controls:
            assert start not in sim._nests()
    _identical(program)


def test_taken_branch_at_loop_end_still_wins(dot_product_module):
    """The fastsim guard rail carries over: injecting a taken branch at
    the loop-end pc makes the loop unspecializable and the branch must
    override the back-edge, identically to the interpreter."""
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        acc = f.int_var("acc")
        f.assign(acc, 0)
        with f.loop(10):
            f.assign(acc, acc + 1)
        f.assign(out[0], acc)
    program = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK).program
    ((start, end),) = program.loops.values()
    exit_label = min(
        (label for label, index in program.labels.items() if index > end),
        key=lambda label: program.labels[label],
    )
    final = program.instructions[end]
    assert final.unit_free(FunctionalUnit.PCU)
    final.add(
        FunctionalUnit.PCU,
        Operation(
            OpCode.BRT, sources=(Immediate(1),), target=Label(exit_label)
        ),
    )
    jit = _identical(program)
    assert start not in jit._nests()
    assert jit.read_global("out") == 1


def test_shared_loop_end_is_rejected():
    """Two loop regions sharing an end pc cascade through the back-edge
    in one cycle; the analysis must refuse to specialize either."""
    program = _program(_counted_nest_module())
    sim = LoopJitSimulator(program)
    (outer_start, outer_end) = max(program.loops.values(), key=lambda r: r[1] - r[0])
    regions = sim._unique_regions()
    assert (outer_start, outer_end) in regions
    # Forge a second region with the same end: both must drop out.
    forged = dict(program.loops)
    forged["forged"] = (outer_end, outer_end)
    original = program.loops
    program.loops = forged
    try:
        fresh = LoopJitSimulator(program)
        assert (outer_start, outer_end) not in fresh._unique_regions()
        assert (outer_end, outer_end) not in fresh._unique_regions()
    finally:
        program.loops = original


# ----------------------------------------------------------------------
# Run-mode selection and semantics
# ----------------------------------------------------------------------
def test_zero_trip_loop_identical():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        n = f.int_var("n")
        acc = f.float_var("acc")
        f.assign(n, 0)
        f.assign(acc, 1.0)
        with f.for_range(0, 0):
            f.assign(acc, acc + 1.0)
        f.assign(out[0], acc)
    _identical(_program(pb.build()))


def test_hook_free_run_uses_fused_path_with_entries():
    program = _program(_counted_nest_module())
    sim = make_simulator(program, backend="jit")
    sim.run()
    assert sim._blocks is not None
    assert sim._entries is not None
    assert any(entry is not None for entry in sim._entries)
    assert sim._steps is None


def test_cadence_hook_uses_chunked_path():
    program = _program(_counted_nest_module())
    hook = InterruptInjector(program.module, period=3)
    sim = make_simulator(program, backend="jit", interrupt_hook=hook)
    sim.run()
    assert sim._steps is not None
    assert sim._chunk_entries is not None
    assert any(entry is not None for entry in sim._chunk_entries)
    assert sim._blocks is None


def _delivery_cycles(program, backend, cadence=None):
    seen = []

    def hook(sim, cycle):
        seen.append(cycle)

    if cadence is not None:
        hook.cadence = cadence
    make_simulator(program, backend=backend, interrupt_hook=hook).run()
    return seen


def test_generic_hook_delegates_to_per_cycle_path():
    """A hook without a cadence must see exactly the cycle sequence the
    interpreter delivers — the jit backend delegates to the inherited
    per-cycle step path."""
    program = _program(_counted_nest_module())
    seen = []

    def hook(sim, cycle):
        seen.append(cycle)

    sim = make_simulator(program, backend="jit", interrupt_hook=hook)
    sim.run()
    assert seen == _delivery_cycles(program, "interp")
    assert seen
    assert sim._chunk_entries is None


@pytest.mark.parametrize("period", [1, 2, 3, 5, 17])
def test_cadence_deliveries_land_mid_loop_identically(period):
    """Deliveries landing inside specialized loops: cycle sequence,
    state, and delivery count must match the interpreter exactly."""
    program = _program(_counted_nest_module(outer=5, inner=13))
    module = program.module
    ref_hook = InterruptInjector(module, period=period)
    jit_hook = InterruptInjector(module, period=period)
    ref = make_simulator(program, backend="interp", interrupt_hook=ref_hook)
    jit = make_simulator(program, backend="jit", interrupt_hook=jit_hook)
    expected = ref.run()
    actual = jit.run()
    assert actual.cycles == expected.cycles
    assert actual.pc_counts == expected.pc_counts
    assert jit.state_digest() == ref.state_digest()
    assert jit_hook.delivered == ref_hook.delivered
    assert jit_hook.delivered > 0


def test_cadence_hook_memory_writes_visible():
    """A cadence hook writing a global mid-run must be observed by the
    specialized loop exactly as on the interpreter."""
    pb = ProgramBuilder("t")
    flagbox = pb.global_array("flagbox", 1, int)
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        seen = f.int_var("seen")
        f.assign(seen, 0)
        with f.loop(200):
            f.assign(seen, seen + flagbox[0])
        f.assign(out[0], seen)
    program = _program(pb.build(), strategy=Strategy.CB)

    def make_writer():
        def writer(sim, cycle):
            if cycle == 50:
                sim.write_global("flagbox", [1])
        return writer

    module = program.module
    results = {}
    for backend in ("interp", "jit"):
        hook = InterruptInjector(module, period=1, writer=make_writer())
        sim = make_simulator(program, backend=backend, interrupt_hook=hook)
        sim.run()
        results[backend] = (sim.read_global("out"), sim.state_digest())
    assert results["interp"] == results["jit"]
    assert results["jit"][0] > 0


def test_cadence_hook_redirect_raises():
    """The cadence protocol forbids pc redirects inside specialized
    loops; violating it fails loudly instead of silently diverging."""
    program = _program(_counted_nest_module(outer=8, inner=32))

    class RedirectingHook:
        cadence = 7

        def __call__(self, sim, cycle):
            if cycle % 7 == 0 and cycle > 20:
                sim.pc = 0

    sim = make_simulator(
        program, backend="jit", interrupt_hook=RedirectingHook()
    )
    with pytest.raises(SimulationError, match="must not transfer control"):
        sim.run()


@pytest.mark.parametrize("cadence", [0, -3, True, "7", 2.0, None])
def test_invalid_cadence_falls_back_to_per_cycle(cadence):
    """Anything but a positive int cadence means "no cadence": the hook
    sees exactly the interpreter's cycle sequence via the inherited
    path."""
    program = _program(_counted_nest_module())
    seen = _delivery_cycles(program, "jit", cadence=cadence)
    assert seen == _delivery_cycles(program, "interp")
    assert seen


# ----------------------------------------------------------------------
# Fault paths
# ----------------------------------------------------------------------
def test_max_cycles_raises_in_specialized_loop():
    program = _program(_counted_nest_module(outer=100, inner=100))
    sim = make_simulator(program, backend="jit")
    sim.max_cycles = 40
    with pytest.raises(SimulationError, match="max_cycles"):
        sim.run()
    assert sim.locked is False
    assert sim.cycle > 40


def test_max_cycles_outcome_matches_interpreter():
    """Raise-vs-complete must agree with the interpreter at any budget
    (the exact fault-path state may diverge, the outcome may not)."""
    program = _program(_counted_nest_module(outer=3, inner=4))
    full = Simulator(program).run().cycles
    for budget in (1, full - 1, full, full + 1):
        outcomes = {}
        for backend in ("interp", "jit"):
            sim = make_simulator(program, backend=backend)
            sim.max_cycles = budget
            try:
                sim.run()
                outcomes[backend] = "completed"
            except SimulationError:
                outcomes[backend] = "raised"
        assert outcomes["interp"] == outcomes["jit"], budget


def test_oob_fault_state_is_settled():
    """A machine fault inside a specialized loop still leaves a settled
    simulator: lock cleared, cycle counted, registers written back."""
    pb = ProgramBuilder("t")
    data = pb.global_array("data", 8, float)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.for_range(0, 64) as i:
            f.assign(acc, acc + data[i])
        f.assign(out[0], acc)
    program = _program(pb.build())
    sim = make_simulator(program, backend="jit")
    with pytest.raises(SimulationError, match="out of bounds"):
        sim.run()
    assert sim.locked is False
    assert sim.cycle > 0


# ----------------------------------------------------------------------
# Codegen cache
# ----------------------------------------------------------------------
def test_codegen_cache_shared_across_simulators():
    program = _program(_counted_nest_module())
    first = make_simulator(program, backend="jit")
    first_result = first.run()
    cache = program._codegen_cache
    assert cache
    snapshot = dict(cache)
    second = make_simulator(program, backend="jit")
    second_result = second.run()
    assert dict(cache) == snapshot  # pure hits, nothing regenerated
    assert second_result.cycles == first_result.cycles
    assert second_result.pc_counts == first_result.pc_counts
    assert second.state_digest() == first.state_digest()


def test_cache_keys_include_max_cycles():
    """max_cycles is baked into generated clamps, so two budgets must
    not share a compiled loop batch."""
    program = _program(_counted_nest_module())
    a = make_simulator(program, backend="jit")
    a.run()
    b = make_simulator(program, backend="jit")
    b.max_cycles = 10**6
    b.run()
    loop_keys = [
        key for key in program._codegen_cache if key[1] == "loops"
    ]
    assert len(loop_keys) == 2


# ----------------------------------------------------------------------
# Codegen stress (excluded from tier-1 via the full_diff marker)
# ----------------------------------------------------------------------
@pytest.mark.full_diff
def test_large_trip_counts_identical():
    program = _program(_counted_nest_module(outer=300, inner=500))
    _identical(program)


@pytest.mark.full_diff
def test_deep_nesting_identical():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(3):
            with f.loop(3):
                with f.loop(3):
                    with f.loop(3):
                        with f.loop(3):
                            f.assign(acc, acc + 1.0)
        f.assign(out[0], acc)
    program = _program(pb.build())
    jit = _identical(program)
    assert jit.read_global("out") == 3.0**5


@pytest.mark.full_diff
@pytest.mark.parametrize("period", [1, 7, 31])
def test_deep_nesting_under_cadence_identical(period):
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4):
            with f.loop(5):
                with f.loop(6):
                    f.assign(acc, acc + 1.0)
        f.assign(out[0], acc)
    program = _program(pb.build())
    module = program.module
    ref_hook = InterruptInjector(module, period=period)
    jit_hook = InterruptInjector(module, period=period)
    ref = make_simulator(program, backend="interp", interrupt_hook=ref_hook)
    jit = make_simulator(program, backend="jit", interrupt_hook=jit_hook)
    expected = ref.run()
    actual = jit.run()
    assert actual.cycles == expected.cycles
    assert actual.pc_counts == expected.pc_counts
    assert jit.state_digest() == ref.state_digest()
    assert jit_hook.delivered == ref_hook.delivered
