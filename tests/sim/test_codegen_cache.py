"""Regressions for the per-program codegen cache key.

The compiled backends store generated closures in a cache that lives on
the shared program object, so two simulators over the same program can
skip recompilation.  The cache key must therefore capture everything
that changes the *generated source*: backend class, ``max_cycles``
(baked into the jit's cycle clamps), and — the bug these tests pin —
``check_bounds``, which adds or removes the bounds-check lines.  A
simulator must also never reuse closures specialized for another
instance's interrupt hook or cadence (fault plans and injectors are
stateful), no matter what a previous run cached on the program.
"""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.fastsim import make_simulator
from repro.sim.interrupts import InterruptInjector
from repro.sim.simulator import SimulationError, Simulator


def _oob_module():
    """Indexes one element past `data`; `after` directly follows it, so
    the unchecked machine reads 7.0 while the checked one faults."""
    pb = ProgramBuilder("t")
    data = pb.global_array("data", 4, float, init=[0.0] * 4, opaque=True)
    pb.global_array("after", 4, float, init=[7.0] * 4, opaque=True)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        i = f.index_var("i")
        f.assign(i, 4)
        f.assign(out[0], data[i])
    return pb.build()


@pytest.mark.parametrize("backend", ["fast", "jit", "batch"])
def test_cached_program_does_not_leak_disabled_bounds_checks(backend):
    """A relaxed (check_bounds=False) run must not poison the cache for
    a later strict simulator over the same program object."""
    compiled = compile_module(_oob_module(), strategy=Strategy.SINGLE_BANK)
    relaxed = make_simulator(
        compiled.program, backend=backend, check_bounds=False
    )
    relaxed.run()
    assert relaxed.read_global("out") == 7.0
    strict = make_simulator(compiled.program, backend=backend)
    with pytest.raises(SimulationError, match="out of bounds"):
        strict.run()


@pytest.mark.parametrize("backend", ["fast", "jit", "batch"])
def test_cached_program_does_not_leak_enabled_bounds_checks(backend):
    """...and the reverse order: a strict run first must not make the
    relaxed simulator fault."""
    compiled = compile_module(_oob_module(), strategy=Strategy.SINGLE_BANK)
    strict = make_simulator(compiled.program, backend=backend)
    with pytest.raises(SimulationError, match="out of bounds"):
        strict.run()
    relaxed = make_simulator(
        compiled.program, backend=backend, check_bounds=False
    )
    relaxed.run()
    assert relaxed.read_global("out") == 7.0


def _hooked_module():
    pb = ProgramBuilder("t")
    data = pb.global_array("data", 16, float, init=[0.5] * 16)
    out = pb.global_array("out", 4, float)
    with pb.function("main") as f:
        with f.loop(4, name="m") as m:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.loop(12, name="n") as n:
                f.assign(acc, acc + data[n] * data[n + m])
            f.assign(out[m], acc)
    return pb.build()


def test_cached_program_rerun_under_different_cadence():
    """The jit specializes loop bodies per (hook, cadence); re-running a
    cached program under a different cadence — or the same cadence with
    a *different* hook object — must deliver by the new hook, matching
    the reference interpreter's delivery count exactly."""
    module = _hooked_module()
    compiled = compile_module(module, strategy=Strategy.CB)
    for period in (3, 7, 3):  # returning to 3 must not resurrect period-7 code
        reference = InterruptInjector(module, period=period)
        Simulator(compiled.program, interrupt_hook=reference).run()
        injector = InterruptInjector(module, period=period)
        sim = make_simulator(
            compiled.program, backend="jit", interrupt_hook=injector
        )
        sim.run()
        assert injector.delivered == reference.delivered
        assert injector.delivered > 0


def test_chunk_signature_compares_hook_by_reference():
    """The cadence signature must hold the hook object itself — matching
    a recycled ``id()`` would reuse closures bound to a dead injector."""
    module = _hooked_module()
    compiled = compile_module(module, strategy=Strategy.CB)
    injector = InterruptInjector(module, period=5)
    sim = make_simulator(
        compiled.program, backend="jit", interrupt_hook=injector
    )
    sim.run()
    assert sim._chunk_sig[0] is injector
    assert sim._chunk_sig[1] == 5


def test_max_cycles_and_bounds_key_the_shared_cache():
    """Distinct (max_cycles, check_bounds) configurations coexist in one
    program's cache without evicting or colliding with each other."""
    compiled = compile_module(_oob_module(), strategy=Strategy.SINGLE_BANK)
    make_simulator(compiled.program, backend="fast", check_bounds=False).run()
    with pytest.raises(SimulationError):
        make_simulator(compiled.program, backend="fast").run()
    # the relaxed closures must still be intact after the strict compile
    again = make_simulator(
        compiled.program, backend="fast", check_bounds=False
    )
    again.run()
    assert again.read_global("out") == 7.0
