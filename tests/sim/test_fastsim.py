"""Fast-backend unit tests and simulator control-flow regressions.

The control-flow and store-lock regressions run on *both* backends: the
underlying bugs were in the reference interpreter's run loop, and the
threaded-code backend must agree with the fixed semantics.
"""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode, Operation
from repro.ir.values import Immediate, Label
from repro.machine.resources import FunctionalUnit
from repro.partition.strategies import Strategy
from repro.sim.fastsim import BACKENDS, FastSimulator, make_simulator
from repro.sim.loopjit import LoopJitSimulator
from repro.sim.simulator import SimulationError, Simulator

BOTH_BACKENDS = sorted(BACKENDS)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def test_make_simulator_factory(dot_product_module):
    program = compile_module(dot_product_module()).program
    assert type(make_simulator(program)) is Simulator
    assert type(make_simulator(program, backend="interp")) is Simulator
    assert type(make_simulator(program, backend="fast")) is FastSimulator
    assert type(make_simulator(program, backend="jit")) is LoopJitSimulator
    with pytest.raises(ValueError, match="unknown simulator backend"):
        make_simulator(program, backend="turbo")


def test_fast_simulator_shares_result_contract(dot_product_module):
    program = compile_module(dot_product_module()).program
    expected = Simulator(program).run()
    actual = FastSimulator(program).run()
    assert actual.cycles == expected.cycles
    assert actual.operations == expected.operations
    assert actual.parallelism == expected.parallelism


# ----------------------------------------------------------------------
# Regression: hardware-loop back-edge vs. control transfer
# ----------------------------------------------------------------------
def _loop_with_branch_out():
    """A counted loop whose final instruction carries a taken conditional
    branch to the loop exit.

    The frontend never emits this shape, so the branch is injected into
    the compiled program: the regression was that the back-edge test ran
    on *any* instruction at the loop-end pc, stealing the next pc from an
    already-taken branch/CALL/RET in that same instruction.
    """
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        acc = f.int_var("acc")
        f.assign(acc, 0)
        with f.loop(10):
            f.assign(acc, acc + 1)
        f.assign(out[0], acc)
    program = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK).program

    ((_start, end),) = program.loops.values()
    exit_label = min(
        (label for label, index in program.labels.items() if index > end),
        key=lambda label: program.labels[label],
    )
    final = program.instructions[end]
    assert final.unit_free(FunctionalUnit.PCU)
    final.add(
        FunctionalUnit.PCU,
        Operation(
            OpCode.BRT, sources=(Immediate(1),), target=Label(exit_label)
        ),
    )
    return program


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
def test_taken_branch_in_loop_final_instruction_wins(backend):
    program = _loop_with_branch_out()
    simulator = make_simulator(program, backend=backend)
    simulator.run()
    # The always-taken branch exits on the first iteration; with the bug
    # the back-edge overrode it and the body ran all 10 times.
    assert simulator.read_global("out") == 1


def test_branch_out_of_loop_identical_across_backends():
    results = {
        backend: make_simulator(_loop_with_branch_out(), backend=backend).run()
        for backend in BOTH_BACKENDS
    }
    reference = results["interp"]
    for result in results.values():
        assert result.cycles == reference.cycles
        assert result.pc_counts == reference.pc_counts


# ----------------------------------------------------------------------
# Regression: store-lock window semantics
# ----------------------------------------------------------------------
def _dup_program():
    """CB_DUP-compiled module whose duplicated array produces a locked
    store pair packed into a single long instruction."""
    pb = ProgramBuilder("t")
    signal = pb.global_array("signal", 16, float, init=[0.0] * 16)
    r = pb.global_array("R", 4, float)
    with pb.function("main") as f:
        with f.loop(16) as i:
            f.assign(signal[i], 0.5)
        with f.loop(4, name="m") as m:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.for_range(0, 12, name="n") as n:
                f.assign(acc, acc + signal[n] * signal[n + m])
            f.assign(r[m], acc)
    return compile_module(pb.build(), strategy=Strategy.CB_DUP).program


def _find_paired_lock(program):
    """pc of an instruction holding both a locked store and its shadow."""
    for pc, instruction in enumerate(program.instructions):
        stores = [
            op
            for op in instruction.slots.values()
            if op.opcode is OpCode.STORE and op.locked
        ]
        if len(stores) >= 2 and any(op.shadow for op in stores):
            return pc
    pytest.skip("schedule did not pack a lock/unlock pair")


def _run_observing_lock(program):
    observed = []

    def hook(sim, _cycle):
        observed.append(sim.locked)

    simulator = Simulator(program, interrupt_hook=hook)
    result = simulator.run()
    return simulator, result, observed


def test_same_instruction_lock_pair_is_order_independent():
    """A lock and its unlock sharing one instruction must cancel out no
    matter which slot the decoder visits first."""
    program = _dup_program()
    pc = _find_paired_lock(program)
    _sim, reference, observed = _run_observing_lock(program)
    assert observed and not any(observed)

    reversed_program = _dup_program()
    instruction = reversed_program.instructions[pc]
    instruction.slots = dict(reversed(list(instruction.slots.items())))
    _sim, result, observed_reversed = _run_observing_lock(reversed_program)
    # With order-dependent decoding the reversed slots leave the window
    # open forever, suppressing every later interrupt.
    assert observed_reversed and not any(observed_reversed)
    assert len(observed_reversed) == len(observed)
    assert result.cycles == reference.cycles


def _open_window_program():
    """The dup program with every store-unlock removed, so each locked
    store opens a window that nothing ever closes."""
    program = _dup_program()
    stripped = False
    for instruction in program.instructions:
        for unit, op in list(instruction.slots.items()):
            if op.opcode is OpCode.STORE and op.locked and op.shadow:
                del instruction.slots[unit]
                stripped = True
    assert stripped
    return program


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
def test_locked_window_resets_on_halt(backend):
    simulator = make_simulator(_open_window_program(), backend=backend)
    simulator.run()
    assert simulator.locked is False


@pytest.mark.parametrize("backend", BOTH_BACKENDS)
def test_locked_window_resets_on_simulation_error(backend):
    simulator = make_simulator(
        _open_window_program(), backend=backend, max_cycles=40
    )
    with pytest.raises(SimulationError):
        simulator.run()
    assert simulator.locked is False


def test_no_interrupt_fires_inside_open_window():
    """Once a lone store-lock opens the window, nothing ever closes it,
    so interrupt delivery must stop at that cycle and never resume."""
    program = _open_window_program()
    delivered = []

    def hook(sim, cycle):
        assert sim.locked is False  # never inside the window
        delivered.append(cycle)

    simulator = Simulator(program, interrupt_hook=hook)
    result = simulator.run()
    # Deliveries form a contiguous prefix of the run: every unlocked
    # cycle up to the first lock, then silence to the end.
    assert delivered == list(range(delivered[0], delivered[0] + len(delivered)))
    assert delivered[-1] < result.cycles
    assert simulator.locked is False
