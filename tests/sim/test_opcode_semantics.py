"""Systematic semantics tests: every computational opcode through the
full compile-and-simulate pipeline.

Programs are built directly at the IR level (not through the DSL's
lowering) so each opcode is exercised exactly as written.
"""

import pytest

from repro.compiler import compile_module
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import Storage, Symbol
from repro.ir.types import DataType, RegClass
from repro.ir.values import Immediate
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator


def _run_unary_or_binary(opcode, rclass, operands, out_type):
    """Build main() that applies *opcode* to constants and stores it."""
    module = Module("optest")
    out = Symbol("out", data_type=out_type, size=1)
    module.add_global(out)
    func = Function("main")
    module.add_function(func)
    block = func.new_block("entry")

    const_op = {
        RegClass.INT: OpCode.CONST,
        RegClass.FLOAT: OpCode.FCONST,
        RegClass.ADDR: OpCode.ACONST,
    }[rclass]
    regs = []
    for value in operands:
        reg = func.new_register(rclass)
        block.append(Operation(const_op, dest=reg, sources=(Immediate(value),)))
        regs.append(reg)

    from repro.ir.validate import _expected_dest_class

    dest = func.new_register(_expected_dest_class(opcode))
    block.append(Operation(opcode, dest=dest, sources=tuple(regs)))

    store_value = dest
    index = func.new_register(RegClass.ADDR)
    block.append(Operation(OpCode.ACONST, dest=index, sources=(Immediate(0),)))
    block.append(
        Operation(OpCode.STORE, sources=(store_value, Immediate(0)), symbol=out)
    )
    block.append(Operation(OpCode.HALT))

    compiled = compile_module(module, strategy=Strategy.SINGLE_BANK)
    simulator = Simulator(compiled.program)
    simulator.run()
    return simulator.read_global("out")


INT_CASES = [
    (OpCode.ADD, (7, 5), 12),
    (OpCode.SUB, (7, 5), 2),
    (OpCode.MUL, (7, 5), 35),
    (OpCode.DIV, (-7, 2), -3),
    (OpCode.MOD, (-7, 2), -1),
    (OpCode.NEG, (9,), -9),
    (OpCode.ABS, (-9,), 9),
    (OpCode.MIN, (3, -4), -4),
    (OpCode.MAX, (3, -4), 3),
    (OpCode.AND, (12, 10), 8),
    (OpCode.OR, (12, 10), 14),
    (OpCode.XOR, (12, 10), 6),
    (OpCode.NOT, (0,), -1),
    (OpCode.SHL, (3, 4), 48),
    (OpCode.SHR, (-16, 2), -4),
    (OpCode.CMPEQ, (4, 4), 1),
    (OpCode.CMPNE, (4, 4), 0),
    (OpCode.CMPLT, (3, 4), 1),
    (OpCode.CMPLE, (4, 4), 1),
    (OpCode.CMPGT, (3, 4), 0),
    (OpCode.CMPGE, (3, 4), 0),
    (OpCode.MOV, (17,), 17),
]


@pytest.mark.parametrize(
    ("opcode", "operands", "expected"), INT_CASES, ids=lambda v: getattr(v, "name", v)
)
def test_integer_opcode(opcode, operands, expected):
    got = _run_unary_or_binary(opcode, RegClass.INT, operands, DataType.INT)
    assert got == expected


FLOAT_CASES = [
    (OpCode.FADD, (2.5, 0.25), 2.75),
    (OpCode.FSUB, (2.5, 0.25), 2.25),
    (OpCode.FMUL, (2.5, 4.0), 10.0),
    (OpCode.FDIV, (2.5, 0.5), 5.0),
    (OpCode.FNEG, (2.5,), -2.5),
    (OpCode.FABS, (-2.5,), 2.5),
    (OpCode.FMIN, (2.5, -1.0), -1.0),
    (OpCode.FMAX, (2.5, -1.0), 2.5),
    (OpCode.FSQRT, (6.25,), 2.5),
    (OpCode.FMOV, (3.5,), 3.5),
]


@pytest.mark.parametrize(
    ("opcode", "operands", "expected"), FLOAT_CASES, ids=lambda v: getattr(v, "name", v)
)
def test_float_opcode(opcode, operands, expected):
    got = _run_unary_or_binary(opcode, RegClass.FLOAT, operands, DataType.FLOAT)
    assert got == expected


FLOAT_COMPARES = [
    (OpCode.FCMPEQ, (1.5, 1.5), 1),
    (OpCode.FCMPNE, (1.5, 1.5), 0),
    (OpCode.FCMPLT, (1.0, 1.5), 1),
    (OpCode.FCMPLE, (1.5, 1.5), 1),
    (OpCode.FCMPGT, (1.0, 1.5), 0),
    (OpCode.FCMPGE, (1.0, 1.5), 0),
]


@pytest.mark.parametrize(
    ("opcode", "operands", "expected"),
    FLOAT_COMPARES,
    ids=lambda v: getattr(v, "name", v),
)
def test_float_compare_opcode(opcode, operands, expected):
    got = _run_unary_or_binary(opcode, RegClass.FLOAT, operands, DataType.INT)
    assert got == expected


ADDR_CASES = [
    (OpCode.AADD, (7, 5), 12),
    (OpCode.ASUB, (7, 5), 2),
    (OpCode.AMUL, (7, 5), 35),
    (OpCode.AMOV, (9,), 9),
    (OpCode.ACMPEQ, (4, 4), 1),
    (OpCode.ACMPNE, (4, 4), 0),
    (OpCode.ACMPLT, (3, 4), 1),
    (OpCode.ACMPLE, (5, 4), 0),
    (OpCode.ACMPGT, (5, 4), 1),
    (OpCode.ACMPGE, (4, 4), 1),
    (OpCode.MOVAI, (11,), 11),
]


@pytest.mark.parametrize(
    ("opcode", "operands", "expected"), ADDR_CASES, ids=lambda v: getattr(v, "name", v)
)
def test_address_opcode(opcode, operands, expected):
    got = _run_unary_or_binary(opcode, RegClass.ADDR, operands, DataType.INT)
    assert got == expected


def test_conversion_opcodes():
    assert (
        _run_unary_or_binary(OpCode.ITOF, RegClass.INT, (7,), DataType.FLOAT)
        == 7.0
    )
    assert (
        _run_unary_or_binary(OpCode.FTOI, RegClass.FLOAT, (7.9,), DataType.INT)
        == 7
    )
    assert (
        _run_unary_or_binary(OpCode.FTOI, RegClass.FLOAT, (-7.9,), DataType.INT)
        == -7
    )
    assert (
        _run_unary_or_binary(OpCode.MOVIA, RegClass.INT, (5,), DataType.INT)
        == 5
    )


def test_fmac_accumulates():
    """FMAC: dest += a * b, with dest read before write."""
    module = Module("mac")
    out = Symbol("out", data_type=DataType.FLOAT, size=1)
    module.add_global(out)
    func = Function("main")
    module.add_function(func)
    block = func.new_block("entry")
    acc = func.new_register(RegClass.FLOAT)
    a = func.new_register(RegClass.FLOAT)
    b = func.new_register(RegClass.FLOAT)
    block.append(Operation(OpCode.FCONST, dest=acc, sources=(Immediate(10.0),)))
    block.append(Operation(OpCode.FCONST, dest=a, sources=(Immediate(3.0),)))
    block.append(Operation(OpCode.FCONST, dest=b, sources=(Immediate(4.0),)))
    block.append(Operation(OpCode.FMAC, dest=acc, sources=(a, b)))
    block.append(Operation(OpCode.FMAC, dest=acc, sources=(a, b)))
    block.append(Operation(OpCode.STORE, sources=(acc, Immediate(0)), symbol=out))
    block.append(Operation(OpCode.HALT))
    compiled = compile_module(module, strategy=Strategy.SINGLE_BANK)
    simulator = Simulator(compiled.program)
    simulator.run()
    assert simulator.read_global("out") == 10.0 + 12.0 + 12.0
