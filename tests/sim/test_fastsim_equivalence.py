"""Differential testing: the compiled backends against the reference.

Every (workload, strategy) pair is compiled once and simulated on every
backend; the fast and jit backends must be bit-identical to the
reference interpreter — same cycle count, same operation total, same
per-pc execution counts, same stack peaks, and the same final memory
and register-file state.

Tier-1 runs cover a small but representative subset (kernels and
applications exercising hardware loops, calls, duplication, and the
profile-driven configuration).  The exhaustive sweep over every
registered workload runs under ``-m full_diff``.
"""

import pytest

from repro.compiler import CompileOptions, compile_module
from repro.partition.strategies import Strategy
from repro.sim.fastsim import make_simulator
from repro.sim.simulator import Simulator
from repro.sim.tracing import collect_block_counts
from repro.workloads.registry import APPLICATIONS, KERNELS, get_workload

#: tier-1 subset: small kernels plus applications with calls/duplication
SMALL_SUBSET = ("fir_32_1", "iir_1_1", "mult_4_4", "histogram", "adpcm")

ALL_WORKLOADS = tuple(KERNELS) + tuple(APPLICATIONS)

ALL_STRATEGIES = tuple(Strategy)


def _profile_counts(workload):
    compiled = compile_module(workload.build(), strategy=Strategy.SINGLE_BANK)
    simulator = Simulator(compiled.program)
    return collect_block_counts(compiled.program, simulator.run())


def _measure(workload, strategy, backend):
    counts = _profile_counts(workload) if strategy.needs_profile else None
    compiled = compile_module(
        workload.build(),
        CompileOptions(strategy=strategy, profile_counts=counts),
    )
    simulator = make_simulator(compiled.program, backend=backend)
    result = simulator.run()
    workload.verify(simulator)
    return simulator, result


def _assert_equivalent(name, strategy):
    workload = get_workload(name)
    reference, expected = _measure(workload, strategy, "interp")
    for backend in ("fast", "jit", "batch"):
        compiled_sim, actual = _measure(workload, strategy, backend)
        label = "%s/%s/%s" % (name, strategy.name, backend)
        assert actual.cycles == expected.cycles, label
        assert actual.operations == expected.operations, label
        assert actual.pc_counts == expected.pc_counts, label
        assert actual.stack_peak_x == expected.stack_peak_x, label
        assert actual.stack_peak_y == expected.stack_peak_y, label
        assert compiled_sim.memory == reference.memory, label
        assert compiled_sim.registers == reference.registers, label


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
@pytest.mark.parametrize("name", SMALL_SUBSET)
def test_backends_agree_small(name, strategy):
    _assert_equivalent(name, strategy)


@pytest.mark.full_diff
@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_backends_agree_exhaustive(name, strategy):
    _assert_equivalent(name, strategy)
