"""Core simulator semantics: cycles, state, memory, and faults."""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.simulator import SimulationError, Simulator
from tests.conftest import compile_and_run


def test_cycle_count_equals_executed_instructions():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        f.assign(out[0], 1)
    compiled = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK)
    sim = Simulator(compiled.program)
    result = sim.run()
    assert result.cycles == len(compiled.program.instructions)
    assert result.cycles == sum(result.pc_counts)


def test_read_before_write_within_cycle():
    """Anti-dependent operations packed into one instruction must read
    the pre-cycle machine state (swap without a temporary is the acid
    test — two moves exchanging registers in the same instruction)."""
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 2, float)
    with pb.function("main") as f:
        a = f.float_var("a")
        b = f.float_var("b")
        f.assign(a, 1.0)
        f.assign(b, 2.0)
        # A swap via parallel moves: lowering produces FMOVs with mutual
        # anti-dependences that the scheduler may pack together.
        t = f.float_var("t")
        f.assign(t, a)
        f.assign(a, b)
        f.assign(b, t)
        f.assign(out[0], a)
        f.assign(out[1], b)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [2.0, 1.0]


def test_write_and_read_globals_between_runs():
    pb = ProgramBuilder("t")
    data = pb.global_array("data", 4, float, init=[1.0, 2.0, 3.0, 4.0])
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4) as i:
            f.assign(acc, acc + data[i] * 1.0)
        f.assign(out[0], acc)
    compiled = compile_module(pb.build(), strategy=Strategy.CB)
    sim = Simulator(compiled.program)
    sim.write_global("data", [10.0, 20.0, 30.0, 40.0])
    sim.run()
    assert sim.read_global("out") == 100.0


def test_write_global_rejects_oversized():
    pb = ProgramBuilder("t")
    pb.global_array("data", 2, float)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        f.assign(out[0], 0.0)
    compiled = compile_module(pb.build(), strategy=Strategy.CB)
    sim = Simulator(compiled.program)
    with pytest.raises(ValueError):
        sim.write_global("data", [1.0, 2.0, 3.0])


def test_out_of_bounds_index_faults():
    pb = ProgramBuilder("t")
    data = pb.global_array("data", 4, float, init=[0.0] * 4)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        i = f.index_var("i")
        f.assign(i, 9)
        f.assign(out[0], data[i])
    compiled = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK)
    sim = Simulator(compiled.program)
    with pytest.raises(SimulationError, match="out of bounds"):
        sim.run()


def test_bounds_check_can_be_disabled():
    pb = ProgramBuilder("t")
    # 'data' is first in bank X, 'after' directly follows it.
    data = pb.global_array("data", 4, float, init=[0.0] * 4, opaque=True)
    after = pb.global_array("after", 4, float, init=[7.0] * 4, opaque=True)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        i = f.index_var("i")
        f.assign(i, 4)
        f.assign(out[0], data[i])
    compiled = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK)
    sim = Simulator(compiled.program, check_bounds=False)
    sim.run()  # reads into `after` without fault: raw machine behaviour
    assert sim.read_global("out") == 7.0


def test_runaway_guard():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        n = f.int_var("n")
        f.assign(n, 1)
        with f.while_(lambda: n > 0):
            f.assign(n, n + 1)  # never terminates
        f.assign(out[0], n)
    compiled = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK)
    sim = Simulator(compiled.program, max_cycles=5000)
    with pytest.raises(SimulationError, match="max_cycles"):
        sim.run()


def test_stack_overflow_detected():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        big = f.local_array("big", 64, float)
        f.assign(big[0], 1.0)
        f.assign(out[0], big[0])
    compiled = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK)
    sim = Simulator(compiled.program, stack_words=8)
    with pytest.raises(SimulationError, match="stack overflow"):
        sim.run()


def test_stack_peak_reported():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        buf = f.local_array("buf", 10, float)
        f.assign(buf[0], 1.0)
        f.assign(out[0], buf[0])
    compiled = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK)
    sim = Simulator(compiled.program)
    result = sim.run()
    assert result.stack_peak_x >= 10
    assert result.stack_peak_y == 0


def test_parallelism_metric():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        f.assign(out[0], 2.0 * 3.0 + 1.0)
    compiled = compile_module(pb.build(), strategy=Strategy.CB)
    sim = Simulator(compiled.program)
    result = sim.run()
    assert result.operations >= result.cycles
    assert result.parallelism >= 1.0


def test_uninitialized_globals_are_zero():
    pb = ProgramBuilder("t")
    data = pb.global_array("data", 3, float)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        f.assign(out[0], data[0] + data[1] + data[2])
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 0.0


def test_local_arrays_isolated_between_calls():
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 2, float)
    with pb.function("probe", params=[("v", float)], returns=float) as f:
        buf = f.local_array("buf", 2, float)
        old = f.float_var("old")
        f.assign(old, buf[0])
        f.assign(buf[0], f.param("v"))
        f.ret(old + buf[0])
    with pb.function("main") as f:
        f.assign(out[0], pb.get("probe")(5.0))
        f.assign(out[1], pb.get("probe")(7.0))
    sim, _ = compile_and_run(pb.build())
    first, second = sim.read_global("out")
    # Each activation gets a fresh (zero-filled or stale) frame; the
    # function must at least see its own write.
    assert first in (5.0, 5.0)
    assert second in (7.0, 12.0)
