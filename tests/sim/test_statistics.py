"""Tests for functional-unit utilization statistics."""

import pytest

from repro.compiler import compile_module
from repro.machine.resources import FunctionalUnit
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator
from repro.sim.statistics import utilization
from repro.workloads.registry import KERNELS


def _measure(strategy, name="fir_32_1"):
    workload = KERNELS[name]
    compiled = compile_module(workload.build(), strategy=strategy)
    simulator = Simulator(compiled.program)
    result = simulator.run()
    return utilization(compiled.program, result)


def test_single_bank_uses_only_mu0():
    report = _measure(Strategy.SINGLE_BANK)
    assert report.busy[FunctionalUnit.MU0] > 0
    assert report.busy[FunctionalUnit.MU1] == 0
    assert report.memory_balance == 0.0


def test_partitioned_run_balances_memory_units():
    report = _measure(Strategy.CB)
    assert report.busy[FunctionalUnit.MU1] > 0
    assert 0.3 <= report.memory_balance <= 0.7


def test_memory_throughput_improves_with_partitioning():
    base = _measure(Strategy.SINGLE_BANK)
    cb = _measure(Strategy.CB)
    # Same dynamic memory operations, fewer cycles.
    assert cb.memory_ops == base.memory_ops
    assert cb.dual_issue_headroom > base.dual_issue_headroom


def test_utilization_fractions_bounded():
    report = _measure(Strategy.CB)
    for unit in FunctionalUnit:
        assert 0.0 <= report.utilization(unit) <= 1.0


def test_describe_renders_all_units():
    report = _measure(Strategy.CB)
    text = report.describe()
    for unit in FunctionalUnit:
        assert unit.name in text
    assert "memory ops" in text


def test_empty_program_edge_case():
    from repro.sim.statistics import UtilizationReport

    report = UtilizationReport(0, {}, 0)
    assert report.utilization(FunctionalUnit.MU0) == 0.0
    assert report.memory_balance == 0.0
    assert report.dual_issue_headroom == 0.0
