"""Tests for profiling support (block execution counts).

Parametrized over all three simulator backends: block counts derive
from the per-pc execution counts, which the fast backend reconstructs
from superblock leader counts after the run and the jit backend
accumulates as bulk per-level ``pc_counts[pc] += iterations`` updates —
both must be indistinguishable from the reference interpreter's
per-cycle counting.
"""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.fastsim import FastSimulator, make_simulator
from repro.sim.tracing import collect_block_counts, profile_module

pytestmark = pytest.mark.parametrize("backend", ["interp", "fast", "jit", "batch"])


def _loop_module():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(10):
            f.assign(acc, acc + 1.0)
        f.assign(out[0], acc)
    return pb.build()


def test_block_counts_reflect_trip_counts(backend):
    module = _loop_module()
    compiled = compile_module(module, strategy=Strategy.SINGLE_BANK)
    sim = make_simulator(compiled.program, backend=backend)
    result = sim.run()
    from repro.sim.batchsim import BatchSimulator

    if isinstance(sim, BatchSimulator):
        # The lockstep backend always dispatches per instruction (its
        # divergence guards live in the step table).
        assert sim._steps is not None
    elif isinstance(sim, FastSimulator):
        # Hook-free profiling runs stay on the fused superblock path.
        assert sim._blocks is not None
        assert sim._steps is None
    counts = collect_block_counts(compiled.program, result)
    body_labels = [b.label for b in module.main.blocks if b.loop_depth == 1]
    for label in body_labels:
        assert counts[label] == 10
    entry_label = module.main.blocks[0].label
    assert counts[entry_label] == 1


def test_block_counts_identical_across_backends(backend):
    compiled = compile_module(_loop_module(), strategy=Strategy.SINGLE_BANK)
    result = make_simulator(compiled.program, backend=backend).run()
    counts = collect_block_counts(compiled.program, result)
    reference_compiled = compile_module(
        _loop_module(), strategy=Strategy.SINGLE_BANK
    )
    reference = collect_block_counts(
        reference_compiled.program,
        make_simulator(reference_compiled.program, backend="interp").run(),
    )
    assert counts == reference


def test_profile_module_helper(backend):
    counts = profile_module(_loop_module)
    assert max(counts.values()) == 10


def test_profile_feeds_cb_profile_strategy(backend):
    counts = profile_module(_loop_module)
    compiled = compile_module(
        _loop_module(), strategy=Strategy.CB_PROFILE, profile_counts=counts
    )
    sim = make_simulator(compiled.program, backend=backend)
    sim.run()
    assert sim.read_global("out") == 10.0
