"""Tests for profiling support (block execution counts)."""

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator
from repro.sim.tracing import collect_block_counts, profile_module


def _loop_module():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(10):
            f.assign(acc, acc + 1.0)
        f.assign(out[0], acc)
    return pb.build()


def test_block_counts_reflect_trip_counts():
    module = _loop_module()
    compiled = compile_module(module, strategy=Strategy.SINGLE_BANK)
    sim = Simulator(compiled.program)
    result = sim.run()
    counts = collect_block_counts(compiled.program, result)
    body_labels = [b.label for b in module.main.blocks if b.loop_depth == 1]
    for label in body_labels:
        assert counts[label] == 10
    entry_label = module.main.blocks[0].label
    assert counts[entry_label] == 1


def test_profile_module_helper():
    counts = profile_module(_loop_module)
    assert max(counts.values()) == 10


def test_profile_feeds_cb_profile_strategy():
    counts = profile_module(_loop_module)
    compiled = compile_module(
        _loop_module(), strategy=Strategy.CB_PROFILE, profile_counts=counts
    )
    sim = Simulator(compiled.program)
    sim.run()
    assert sim.read_global("out") == 10.0
