"""Interrupt injection and the store-lock/store-unlock protocol.

Every test runs on all three simulator backends: installing a hook
forces the fast backend off its fused-superblock path onto the
per-instruction fallback, and the jit backend onto either its chunked
cadence path (hooks advertising a ``cadence``, like
:class:`InterruptInjector`) or the same per-instruction fallback — all
of which must honour the same delivery and lock-window rules as the
reference interpreter.
"""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.ir.symbols import MemoryBank
from repro.partition.strategies import Strategy
from repro.sim.fastsim import FastSimulator, make_simulator
from repro.sim.interrupts import DuplicateDivergenceError, InterruptInjector

pytestmark = pytest.mark.parametrize("backend", ["interp", "fast", "jit", "batch"])


def _assert_hook_path(sim):
    """With a hook installed the fast backend must compile and run the
    per-instruction step table, never the fused superblocks."""
    from repro.sim.batchsim import BatchSimulator

    if isinstance(sim, BatchSimulator):
        # hooked batch lanes peel to the scalar jit path; the lockstep
        # step table must stay cold
        assert sim._steps is None, "hooked batch lane entered lockstep"
        return
    if isinstance(sim, FastSimulator):
        assert sim._steps is not None, "per-instruction fallback not compiled"
        assert sim._blocks is None, "fused path must stay cold under a hook"


def _dup_module():
    """A module whose `signal` array is duplicated and heavily stored."""
    pb = ProgramBuilder("t")
    signal = pb.global_array("signal", 16, float, init=[0.0] * 16)
    r = pb.global_array("R", 4, float)
    with pb.function("main") as f:
        # Stores into the (soon to be duplicated) array...
        with f.loop(16) as i:
            f.assign(signal[i], 0.5)
        # ...and same-array parallel reads that trigger duplication.
        with f.loop(4, name="m") as m:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.for_range(0, 12, name="n") as n:
                f.assign(acc, acc + signal[n] * signal[n + m])
            f.assign(r[m], acc)
    return pb.build()


def test_interrupts_never_observe_divergent_copies(backend):
    module = _dup_module()
    compiled = compile_module(module, strategy=Strategy.CB_DUP)
    assert module.globals.get("signal").bank is MemoryBank.BOTH
    injector = InterruptInjector(module, period=1)  # every unlocked cycle
    sim = make_simulator(compiled.program, backend=backend, interrupt_hook=injector)
    sim.run()
    assert injector.delivered > 0
    _assert_hook_path(sim)


def _run_unsafe(backend):
    """One unlocked-duplication run; returns whether it diverged."""
    compiled = compile_module(
        _dup_module(), strategy=Strategy.CB_DUP, interrupt_safe=False
    )
    injector = InterruptInjector(compiled.program.module, period=1)
    sim = make_simulator(compiled.program, backend=backend, interrupt_hook=injector)
    try:
        sim.run()
        return False
    except DuplicateDivergenceError:
        return True


def test_unlocked_duplication_can_diverge_under_interrupts(backend):
    """Without store-lock/store-unlock, an interrupt can land between the
    two stores of an update and see the copies out of sync — the hazard
    paper Section 3.2 describes.  The schedule may or may not split a
    store pair across instructions; when it does, the injector must
    catch it.  Either way the run is deterministic — and both backends
    must observe the same outcome."""
    diverged = _run_unsafe(backend)
    assert diverged == _run_unsafe(backend)  # deterministic per backend
    assert diverged == _run_unsafe("interp")  # and across backends


def test_interrupt_writer_feeds_program(backend):
    """An interrupt handler that writes a duplicated global (external
    data arriving mid-run) must keep both copies coherent via
    write_global, and the program sees the new data."""
    pb = ProgramBuilder("t")
    flagbox = pb.global_array("flagbox", 1, int)
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        seen = f.int_var("seen")
        f.assign(seen, 0)
        with f.loop(200):
            f.assign(seen, seen + flagbox[0])
        f.assign(out[0], seen)
    compiled = compile_module(pb.build(), strategy=Strategy.CB)

    def writer(sim, cycle):
        if cycle == 50:
            sim.write_global("flagbox", [1])

    module = compiled.program.module
    injector = InterruptInjector(module, period=1, writer=writer)
    sim = make_simulator(compiled.program, backend=backend, interrupt_hook=injector)
    sim.run()
    assert sim.read_global("out") > 0
    _assert_hook_path(sim)


def test_locked_window_defers_interrupts(backend):
    """The simulator must not call the hook between a store-lock and its
    matching store-unlock."""
    module = _dup_module()
    compiled = compile_module(module, strategy=Strategy.CB_DUP)

    observed_locked = []

    def hook(sim, cycle):
        observed_locked.append(sim.locked)

    sim = make_simulator(compiled.program, backend=backend, interrupt_hook=hook)
    sim.run()
    assert observed_locked  # interrupts were delivered...
    assert not any(observed_locked)  # ...but never inside a lock window
    _assert_hook_path(sim)


def test_hook_delivery_cycles_match_reference(backend):
    """The per-instruction fallback must present the hook with exactly
    the cycle sequence the reference interpreter does."""
    def _cycles(which):
        compiled = compile_module(_dup_module(), strategy=Strategy.CB_DUP)
        seen = []

        def hook(sim, cycle):
            seen.append(cycle)

        make_simulator(
            compiled.program, backend=which, interrupt_hook=hook
        ).run()
        return seen

    assert _cycles(backend) == _cycles("interp")
