"""Interrupt injection and the store-lock/store-unlock protocol."""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.ir.symbols import MemoryBank
from repro.partition.strategies import Strategy
from repro.sim.interrupts import DuplicateDivergenceError, InterruptInjector
from repro.sim.simulator import Simulator


def _dup_module():
    """A module whose `signal` array is duplicated and heavily stored."""
    pb = ProgramBuilder("t")
    signal = pb.global_array("signal", 16, float, init=[0.0] * 16)
    r = pb.global_array("R", 4, float)
    with pb.function("main") as f:
        # Stores into the (soon to be duplicated) array...
        with f.loop(16) as i:
            f.assign(signal[i], 0.5)
        # ...and same-array parallel reads that trigger duplication.
        with f.loop(4, name="m") as m:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.for_range(0, 12, name="n") as n:
                f.assign(acc, acc + signal[n] * signal[n + m])
            f.assign(r[m], acc)
    return pb.build()


def test_interrupts_never_observe_divergent_copies():
    module = _dup_module()
    compiled = compile_module(module, strategy=Strategy.CB_DUP)
    assert module.globals.get("signal").bank is MemoryBank.BOTH
    injector = InterruptInjector(module, period=1)  # every unlocked cycle
    sim = Simulator(compiled.program, interrupt_hook=injector)
    sim.run()
    assert injector.delivered > 0


def test_unlocked_duplication_can_diverge_under_interrupts():
    """Without store-lock/store-unlock, an interrupt can land between the
    two stores of an update and see the copies out of sync — the hazard
    paper Section 3.2 describes."""
    module = _dup_module()
    compiled = compile_module(
        module, strategy=Strategy.CB_DUP, interrupt_safe=False
    )
    injector = InterruptInjector(module, period=1)
    sim = Simulator(compiled.program, interrupt_hook=injector)
    try:
        sim.run()
        diverged = False
    except DuplicateDivergenceError:
        diverged = True
    # The schedule may or may not split a store pair across instructions;
    # when it does, the injector must catch it.  Either way the run is
    # deterministic — assert the observed outcome is stable.
    sim2 = Simulator(
        compile_module(_dup_module(), strategy=Strategy.CB_DUP, interrupt_safe=False).program,
        interrupt_hook=InterruptInjector(_dup_module_globals(), period=1),
    )
    try:
        sim2.run()
        diverged2 = False
    except DuplicateDivergenceError:
        diverged2 = True
    assert diverged == diverged2


def _dup_module_globals():
    module = _dup_module()
    from repro.partition.strategies import run_allocation

    run_allocation(module, Strategy.CB_DUP, interrupt_safe=False)
    return module


def test_interrupt_writer_feeds_program():
    """An interrupt handler that writes a duplicated global (external
    data arriving mid-run) must keep both copies coherent via
    write_global, and the program sees the new data."""
    pb = ProgramBuilder("t")
    flagbox = pb.global_array("flagbox", 1, int)
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        seen = f.int_var("seen")
        f.assign(seen, 0)
        with f.loop(200):
            f.assign(seen, seen + flagbox[0])
        f.assign(out[0], seen)
    compiled = compile_module(pb.build(), strategy=Strategy.CB)

    def writer(sim, cycle):
        if cycle == 50:
            sim.write_global("flagbox", [1])

    module = compiled.program.module
    injector = InterruptInjector(module, period=1, writer=writer)
    sim = Simulator(compiled.program, interrupt_hook=injector)
    sim.run()
    assert sim.read_global("out") > 0


def test_locked_window_defers_interrupts():
    """The simulator must not call the hook between a store-lock and its
    matching store-unlock."""
    module = _dup_module()
    compiled = compile_module(module, strategy=Strategy.CB_DUP)

    observed_locked = []

    def hook(sim, cycle):
        observed_locked.append(sim.locked)

    sim = Simulator(compiled.program, interrupt_hook=hook)
    sim.run()
    assert observed_locked  # interrupts were delivered...
    assert not any(observed_locked)  # ...but never inside a lock window
