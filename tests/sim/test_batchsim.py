"""The batched lockstep backend against per-instance scalar runs.

Everything here is a bit-for-bit contract: every lane of a
:class:`BatchSimulator` must finish in exactly the state a scalar
backend reaches for the same program and the same per-instance inputs —
cycles, operation totals, per-pc counts, memory, register files, and
the full architectural digest.  The interesting cases are the ones the
lockstep model has to work for: lanes that agree everywhere (pure
vector execution), lanes that diverge on data-dependent branches
(split/peel/rejoin), lanes that fault, and lanes that arm interrupt or
fault-injection hooks (peeled wholesale to the scalar jit path).
"""

import random

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.fuzz.generator import Recipe, build_module, generate_recipe
from repro.partition.strategies import Strategy
from repro.sim.batchsim import BatchSimulator
from repro.sim.fastsim import BACKENDS, make_simulator
from repro.sim.simulator import SimulationError, Simulator
from repro.workloads.kernels.fir import Fir
from repro.workloads.registry import get_workload


def _lane_reference(program, writes, backend="jit", hook=None):
    simulator = make_simulator(program, backend=backend, interrupt_hook=hook)
    for name, values in writes.items():
        simulator.write_global(name, values)
    error = None
    result = None
    try:
        result = simulator.run()
    except Exception as exc:  # noqa: BLE001 — compared against the lane
        error = exc
    return simulator, result, error


def _assert_lane_matches(outcome, simulator, result, error, label):
    if error is not None:
        assert outcome.error is not None, label
        assert type(outcome.error) is type(error), label
        assert str(outcome.error) == str(error), label
        return
    assert outcome.error is None, (label, outcome.error)
    assert outcome.result.cycles == result.cycles, label
    assert outcome.result.operations == result.operations, label
    assert outcome.result.pc_counts == result.pc_counts, label
    assert outcome.result.stack_peak_x == result.stack_peak_x, label
    assert outcome.result.stack_peak_y == result.stack_peak_y, label
    assert outcome.state.state_digest() == simulator.state_digest(), label


def test_batch_is_registered():
    assert BACKENDS["batch"] is BatchSimulator
    assert BatchSimulator.backend_name == "batch"


def test_single_lane_matches_interpreter_exactly():
    workload = get_workload("fir_32_1")
    compiled = compile_module(workload.build(), strategy=Strategy.CB)
    reference = Simulator(compiled.program)
    expected = reference.run()
    batch = make_simulator(compiled.program, backend="batch")
    actual = batch.run()
    workload.verify(batch)
    assert actual.cycles == expected.cycles
    assert actual.operations == expected.operations
    assert actual.pc_counts == expected.pc_counts
    assert batch.memory == reference.memory
    assert batch.registers == reference.registers
    assert batch.state_digest() == reference.state_digest()


def test_run_refuses_multi_lane():
    compiled = compile_module(Fir(4, 2).build(), strategy=Strategy.CB)
    batch = BatchSimulator(compiled.program, lanes=3)
    with pytest.raises(ValueError, match="run_batch"):
        batch.run()
    with pytest.raises(ValueError):
        BatchSimulator(compiled.program, lanes=0)


def test_uniform_lanes_stay_locked_and_match():
    """Identical inputs: one lockstep group end to end, no splitting."""
    compiled = compile_module(Fir(8, 4).build(), strategy=Strategy.FULL_DUP)
    lanes = 5
    batch = BatchSimulator(compiled.program, lanes=lanes)
    outcomes = batch.run_batch()
    simulator, result, error = _lane_reference(compiled.program, {})
    assert error is None
    for outcome in outcomes:
        _assert_lane_matches(
            outcome, simulator, result, error, "uniform lane %d" % outcome.lane
        )


def test_varying_inputs_match_per_lane_jit():
    rng = random.Random(11)
    compiled = compile_module(Fir(8, 4).build(), strategy=Strategy.CB)
    lanes = 16
    rows = [[rng.uniform(-2.0, 2.0) for _ in range(11)] for _ in range(lanes)]
    batch = BatchSimulator(compiled.program, lanes=lanes)
    batch.write_global_lanes("x", rows)
    outcomes = batch.run_batch()
    for lane in range(lanes):
        reference = _lane_reference(compiled.program, {"x": rows[lane]})
        _assert_lane_matches(outcomes[lane], *reference, "lane %d" % lane)
        assert outcomes[lane].state.read_global("y") == reference[0].read_global("y")


def _branchy_module():
    """Data-dependent control: a loop whose branch direction and an
    inner trip count both hinge on per-lane array values."""
    pb = ProgramBuilder("branchy")
    data = pb.global_array("data", 8, float, init=[0.0] * 8)
    out = pb.global_array("out", 8, float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            element = f.float_var("element")
            f.assign(element, data[i])
            with f.if_(element > 1.0):
                f.assign(acc, acc + element * 2.0)
            with f.else_():
                f.assign(acc, acc - 0.5)
            f.assign(out[i], acc)
    return pb.build()


def test_divergent_branches_split_and_match():
    compiled = compile_module(_branchy_module(), strategy=Strategy.CB)
    lanes = 6
    rows = [[0.5] * 8 for _ in range(lanes)]
    rows[2][3] = 9.0  # lane 2 takes the other arm at iteration 3
    rows[4][0] = 5.0  # lane 4 diverges immediately
    batch = BatchSimulator(compiled.program, lanes=lanes)
    batch.write_global_lanes("data", rows)
    outcomes = batch.run_batch()
    for lane in range(lanes):
        reference = _lane_reference(compiled.program, {"data": rows[lane]})
        _assert_lane_matches(outcomes[lane], *reference, "lane %d" % lane)


def test_faulting_lane_reports_the_scalar_error():
    pb = ProgramBuilder("divzero")
    data = pb.global_array("data", 2, float, init=[1.0, 1.0])
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        f.assign(out[0], data[0] / data[1])
    compiled = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK)
    lanes = 4
    batch = BatchSimulator(compiled.program, lanes=lanes)
    batch.write_global_lane(2, "data", [1.0, 0.0])  # only lane 2 divides by 0
    outcomes = batch.run_batch()
    for lane in range(lanes):
        reference = _lane_reference(
            compiled.program,
            {"data": [1.0, 0.0]} if lane == 2 else {},
        )
        _assert_lane_matches(outcomes[lane], *reference, "lane %d" % lane)
    assert isinstance(outcomes[2].error, ZeroDivisionError)


def test_fuzz_recipes_with_varying_lanes_match_jit():
    """Sweep generated recipes (loops, conditionals, calls, duplication)
    with per-lane inputs; every lane must match its own jit run."""
    rng = random.Random(23)
    lanes = 6
    for seed in (1, 4, 9, 14, 27):
        recipe = generate_recipe(seed)
        if recipe.interrupt_period is not None:
            recipe.interrupt_period = None
        compiled = compile_module(build_module(recipe), strategy=Strategy.CB_DUP)
        arrays = [
            symbol.name
            for symbol in compiled.program.module.globals
            if symbol.name.startswith("arr")
        ]
        rows = {
            name: [
                [
                    rng.uniform(-4.0, 4.0)
                    for _ in range(
                        compiled.program.module.globals.get(name).size
                    )
                ]
                for _ in range(lanes)
            ]
            for name in arrays
        }
        batch = BatchSimulator(compiled.program, lanes=lanes)
        for name in arrays:
            batch.write_global_lanes(name, rows[name])
        outcomes = batch.run_batch()
        for lane in range(lanes):
            writes = {name: rows[name][lane] for name in arrays}
            reference = _lane_reference(compiled.program, writes)
            _assert_lane_matches(
                outcomes[lane], *reference, "seed %d lane %d" % (seed, lane)
            )


def test_divergence_and_fault_arming_lanes_match_jit_bit_for_bit():
    """The issue's rejoin scenario: of N instances of one fuzz-grammar
    recipe, exactly one takes a different branch and one arms a fault
    plan; all N final states must equal per-instance jit runs."""
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import generate_plan

    recipe = Recipe(
        seed=0,
        arrays=[8, 8],
        body=[
            ["cond", 0, 2, 8],       # branch on arr0[i] > 1.0 per element
            ["dot", 0, 1, 8],
            ["writeback", 1, 8],
        ],
    )
    compiled = compile_module(build_module(recipe), strategy=Strategy.CB)
    lanes = 8
    divergent_lane, faulting_lane = 3, 6

    base = [0.5] * 8
    rows = [list(base) for _ in range(lanes)]
    rows[divergent_lane][5] = 7.0  # exactly one lane takes the other arm

    horizon = _lane_reference(compiled.program, {"arr0": base})[1].cycles
    plan = generate_plan(17, horizon=horizon)

    batch = BatchSimulator(compiled.program, lanes=lanes)
    batch.write_global_lanes("arr0", rows)
    batch.set_lane_hook(faulting_lane, FaultInjector.for_plan(plan))
    outcomes = batch.run_batch()

    for lane in range(lanes):
        hook = (
            FaultInjector.for_plan(plan) if lane == faulting_lane else None
        )
        reference = _lane_reference(
            compiled.program, {"arr0": rows[lane]}, hook=hook
        )
        _assert_lane_matches(outcomes[lane], *reference, "lane %d" % lane)
        if reference[2] is None:
            assert (
                outcomes[lane].state.read_global("out")
                == reference[0].read_global("out")
            )
    # the scenario actually happened: the divergent lane's accumulator
    # differs from the base lanes', and the armed lane saw deliveries
    assert outcomes[divergent_lane].state.read_global("out") != outcomes[
        0
    ].state.read_global("out")


def test_interrupt_cadence_lane_peels_and_matches():
    """A lane with an interrupt cadence runs peeled on the jit path and
    still matches a scalar hooked run exactly."""
    from repro.sim.interrupts import InterruptInjector

    recipe = generate_recipe(2)
    module = build_module(recipe)
    compiled = compile_module(module, strategy=Strategy.CB_DUP)
    lanes = 3
    hooked_lane = 1

    batch = BatchSimulator(compiled.program, lanes=lanes)
    batch.set_lane_hook(hooked_lane, InterruptInjector(module, period=5))
    outcomes = batch.run_batch()

    for lane in range(lanes):
        hook = None
        if lane == hooked_lane:
            hook = InterruptInjector(compiled.program.module, period=5)
        reference = _lane_reference(compiled.program, {}, hook=hook)
        _assert_lane_matches(outcomes[lane], *reference, "lane %d" % lane)


def test_lane_view_reads_do_not_leak_numpy_scalars():
    compiled = compile_module(Fir(4, 2).build(), strategy=Strategy.CB)
    lanes = 3
    batch = BatchSimulator(compiled.program, lanes=lanes)
    batch.write_global_lane(1, "x", [1.5, 2.5, 3.5, 4.5, 5.5])
    outcomes = batch.run_batch()
    for outcome in outcomes:
        for value in outcome.state.read_global("y"):
            assert type(value) is float
        for bank in outcome.state.memory:
            for cell in bank:
                assert type(cell) in (int, float), repr(cell)


def test_write_global_lane_validates():
    compiled = compile_module(Fir(4, 2).build(), strategy=Strategy.CB)
    batch = BatchSimulator(compiled.program, lanes=2)
    with pytest.raises(ValueError):
        batch.write_global_lane(5, "x", [0.0])
    with pytest.raises(ValueError):
        batch.write_global_lane(0, "x", [0.0] * 99)
    with pytest.raises(ValueError):
        batch.write_global_lanes("x", [[0.0]])  # 1 row, 2 lanes
    with pytest.raises(ValueError):
        batch.set_lane_hook(9, lambda sim: None)


def test_out_of_bounds_faults_per_lane():
    pb = ProgramBuilder("oob")
    data = pb.global_array("data", 4, float, init=[0.0] * 4)
    index = pb.global_scalar("sel", int)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        i = f.index_var("i")
        f.assign(i, index[0])
        f.assign(out[0], data[i])
    compiled = compile_module(pb.build(), strategy=Strategy.SINGLE_BANK)
    lanes = 3
    batch = BatchSimulator(compiled.program, lanes=lanes)
    batch.write_global_lane(1, "sel", 9)  # only lane 1 runs off the end
    outcomes = batch.run_batch()
    assert outcomes[0].error is None and outcomes[2].error is None
    assert isinstance(outcomes[1].error, SimulationError)
    assert "out of bounds" in str(outcomes[1].error)
    reference = _lane_reference(compiled.program, {"sel": 9})
    assert str(outcomes[1].error) == str(reference[2])
