"""Zero-overhead hardware loops and the call machinery in the simulator."""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.simulator import SimulationError, Simulator
from tests.conftest import compile_and_run


def test_hw_loop_back_edge_costs_nothing():
    """A single-instruction loop body of N iterations costs N cycles."""
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        one = f.float_var("one")
        f.assign(acc, 0.0)
        f.assign(one, 1.0)
        with f.loop(100):
            f.assign(acc, acc + one * one)  # one FMAC -> one instruction
        f.assign(out[0], acc)
    compiled = compile_module(pb.build(), strategy=Strategy.CB)
    sim = Simulator(compiled.program)
    result = sim.run()
    assert sim.read_global("out") == 100.0
    overhead = result.cycles - 100
    assert overhead <= 4  # entry constants + store + halt


def test_loop_counter_read_at_arm_time():
    """Changing the count register inside the body must not change the
    trip count — the hardware latched it at LOOP_BEGIN."""
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        count = f.index_var("count")
        f.assign(count, 5)
        n = f.int_var("n")
        f.assign(n, 0)
        with f.loop(count):
            f.assign(count, count + 50)
            f.assign(n, n + 1)
        f.assign(out[0], n)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 5


def test_nested_loops_use_loop_stack():
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 3, int)
    with pb.function("main") as f:
        total = f.int_var("total")
        inner_total = f.int_var("it")
        f.assign(total, 0)
        f.assign(inner_total, 0)
        with f.loop(3) as i:
            with f.loop(2):
                f.assign(inner_total, inner_total + 1)
            f.assign(total, total + 1)
        f.assign(out[0], total)
        f.assign(out[1], inner_total)
        f.assign(out[2], 1)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [3, 6, 1]


def test_call_inside_hw_loop():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("bump", params=[("x", float)], returns=float) as f:
        f.ret(f.param("x") + 1.0)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(7):
            f.assign(acc, pb.get("bump")(acc))
        f.assign(out[0], acc)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 7.0


def test_callee_with_own_loops():
    pb = ProgramBuilder("t")
    data = pb.global_array("data", 8, float, init=[2.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("total", returns=float) as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            f.assign(acc, acc + data[i] * 1.0)
        f.ret(acc)
    with pb.function("main") as f:
        a = f.float_var("a")
        f.assign(a, pb.get("total")())
        with f.loop(2):
            f.assign(a, a + pb.get("total")())
        f.assign(out[0], a)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 48.0


def test_return_address_uses_x_stack():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("id", params=[("x", float)], returns=float) as f:
        f.ret(f.param("x"))
    with pb.function("main") as f:
        f.assign(out[0], pb.get("id")(3.5))
    compiled = compile_module(pb.build(), strategy=Strategy.CB)
    sim = Simulator(compiled.program)
    result = sim.run()
    assert result.stack_peak_x >= 1  # the pushed return address


def test_ret_in_main_is_a_fault():
    from repro.ir.operations import OpCode, Operation

    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        f.assign(out[0], 1)
    module = pb.build()
    # Replace HALT with RET (skipping validation to reach the machine).
    module.main.blocks[-1].ops[-1] = Operation(OpCode.RET)
    from repro.compiler import CompileOptions

    compiled = compile_module(
        module, CompileOptions(strategy=Strategy.SINGLE_BANK, validate=False)
    )
    sim = Simulator(compiled.program)
    with pytest.raises(SimulationError, match="empty call stack"):
        sim.run()


def test_recursive_style_chain_of_calls():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("f3", params=[("x", int)], returns=int) as f:
        f.ret(f.param("x") * 3)
    with pb.function("f2", params=[("x", int)], returns=int) as f:
        f.ret(pb.get("f3")(f.param("x")) + 2)
    with pb.function("f1", params=[("x", int)], returns=int) as f:
        f.ret(pb.get("f2")(f.param("x")) + 1)
    with pb.function("main") as f:
        f.assign(out[0], pb.get("f1")(5))
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 18
