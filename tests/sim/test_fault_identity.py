"""Cross-backend fault-outcome identity (the ISSUE 5 contract).

For the same program and the same seeded FaultPlan, all three simulator
backends must classify the faulted run identically, and completed runs
must be bit-identical in architectural state and injector record —
because injection rides the cadence hook protocol whose delivery cycles
are already proven identical by the interrupt suite.  Crash/hang runs
compare by outcome class and error category only (the fast backends
check max_cycles at block granularity by design).
"""

import pytest

from repro.compiler import compile_module
from repro.faults.experiment import (
    OUTCOMES,
    comparable,
    reference_run,
    run_with_plan,
)
from repro.faults.plan import generate_plan
from repro.partition.strategies import Strategy
from repro.workloads.kernels.autocorr import Autocorr
from repro.workloads.kernels.fir import Fir
from repro.workloads.kernels.iir import Iir

BACKENDS = ("interp", "fast", "jit", "batch")


def _programs(workload, strategy):
    """One freshly compiled program per backend (compilation is
    deterministic, so the three are bit-identical)."""
    return {
        backend: compile_module(workload.build(), strategy=strategy).program
        for backend in BACKENDS
    }


def _identical_projections(workload, strategy, seed):
    programs = _programs(workload, strategy)
    results = {}
    for backend, program in programs.items():
        reference = reference_run(program, backend=backend)
        plan = generate_plan(seed, horizon=reference[0])
        results[backend] = run_with_plan(
            program, plan, backend=backend, reference=reference
        )
    projections = {b: comparable(r) for b, r in results.items()}
    for backend in BACKENDS[1:]:
        assert projections[backend] == projections[BACKENDS[0]], (
            workload.name, strategy.name, seed, backend,
        )
    return results[BACKENDS[0]]


@pytest.mark.parametrize("seed", range(6))
def test_fir_identity_under_faults(seed):
    result = _identical_projections(Fir(32, 1), Strategy.CB, seed)
    assert result["outcome"] in OUTCOMES


@pytest.mark.parametrize("seed", range(4))
def test_dup_identity_under_faults(seed):
    """CB_DUP exercises the dup cross-check (and its repair writes) on
    every backend — the detections themselves must agree."""
    result = _identical_projections(Iir(1, 1), Strategy.CB_DUP, seed)
    assert result["outcome"] in OUTCOMES


@pytest.mark.parametrize("seed", (0, 1))
def test_autocorr_identity_under_faults(seed):
    result = _identical_projections(Autocorr(), Strategy.CB_DUP, seed)
    assert result["outcome"] in OUTCOMES


def test_outcomes_actually_vary():
    """Sanity: injection is not a no-op — across a handful of seeds the
    classifier produces more than one outcome class."""
    outcomes = set()
    program = compile_module(Fir(32, 1).build(), strategy=Strategy.CB).program
    reference = reference_run(program)
    for seed in range(8):
        plan = generate_plan(seed, horizon=reference[0])
        outcomes.add(run_with_plan(program, plan, reference=reference)["outcome"])
    assert len(outcomes) >= 2


def test_hang_identity():
    """A starved cycle budget classifies as a hang on every backend,
    with the same machine error category."""
    projections = set()
    for backend in BACKENDS:
        program = compile_module(
            Fir(32, 1).build(), strategy=Strategy.CB
        ).program
        plan = generate_plan(0, horizon=100)
        result = run_with_plan(program, plan, backend=backend, max_cycles=8)
        assert result["outcome"] == "hang"
        projections.add(tuple(sorted(comparable(result).items())))
    assert len(projections) == 1
