"""Per-tenant seed namespacing: generator-spec seeds are salted per
tenant (deterministically, stably), full recipe bodies pass through,
and tenants show up in the service counters."""

import asyncio

import pytest

from repro.serve.client import ServeClient
from repro.serve.jobs import job_compile_key
from repro.serve.protocol import JobError, tenant_seed, validate_job
from repro.serve.service import SimService


def _spec_job(tenant=None, seed=5):
    job = {"kind": "recipe", "recipe": {"seed": seed}, "strategy": "CB"}
    if tenant is not None:
        job["tenant"] = tenant
    return job


def test_tenant_salts_generator_seeds_deterministically():
    plain = validate_job(_spec_job())
    alpha = validate_job(_spec_job(tenant="alpha"))
    beta = validate_job(_spec_job(tenant="beta"))
    assert plain["recipe"]["seed"] == 5  # no tenant, no salting
    assert alpha["tenant"] == "alpha"
    assert alpha["recipe"]["seed"] == tenant_seed("alpha", 5)
    # namespaces are disjoint and stable
    assert alpha["recipe"]["seed"] != beta["recipe"]["seed"]
    assert alpha["recipe"]["seed"] != plain["recipe"]["seed"]
    assert validate_job(_spec_job(tenant="alpha")) == alpha
    # different seeds stay different within one tenant
    assert (
        validate_job(_spec_job(tenant="alpha", seed=6))["recipe"]["seed"]
        != alpha["recipe"]["seed"]
    )


def test_tenants_never_coalesce_on_generator_specs():
    keys = {
        job_compile_key(validate_job(_spec_job(tenant=tenant)))
        for tenant in ("alpha", "beta", "gamma")
    }
    keys.add(job_compile_key(validate_job(_spec_job())))
    assert len(keys) == 4


def test_full_recipe_bodies_pass_through_unsalted():
    from repro.fuzz.generator import generate_recipe

    recipe = generate_recipe(5).to_dict()
    job = validate_job({
        "kind": "recipe", "recipe": dict(recipe), "tenant": "alpha",
    })
    assert job["recipe"] == recipe


def test_run_jobs_carry_tenant_without_recipe_effects():
    job = validate_job({
        "kind": "run", "workload": "fir_32_1", "tenant": "alpha",
    })
    assert job["tenant"] == "alpha"
    assert "recipe" not in job


@pytest.mark.parametrize("bad", ["", 7, ["a"]])
def test_bad_tenant_is_a_protocol_error(bad):
    with pytest.raises(JobError) as info:
        validate_job(_spec_job(tenant=bad))
    assert info.value.field == "tenant"


def test_service_counts_per_tenant():
    jobs = [
        {"kind": "run", "workload": "fir_32_1", "tenant": "alpha"},
        {"kind": "run", "workload": "fir_32_1", "tenant": "alpha"},
        {"kind": "run", "workload": "fir_32_1", "tenant": "beta"},
        {"kind": "run", "workload": "fir_32_1"},
    ]

    def body(host, port):
        with ServeClient(host, port) as client:
            events = client.run_jobs(jobs)
            counters = client.stats()
        return events, counters

    async def main():
        service = SimService()
        host, port = await service.start()
        loop = asyncio.get_event_loop()
        try:
            return await loop.run_in_executor(None, body, host, port)
        finally:
            await service.stop()

    events, counters = asyncio.run(main())
    assert all(event["event"] == "result" for event in events)
    assert counters["serve.tenant.alpha"] == 2
    assert counters["serve.tenant.beta"] == 1
    assert counters["serve.accepted"] == 4
