"""End-to-end service contract: results bit-identical to direct runs,
admission control under a full queue, coalescing onto the batch
backend, taxonomy-mapped errors, and the CLI entry point."""

import asyncio
import os
import re
import subprocess
import sys

from repro.serve.client import ServeClient
from repro.serve.jobs import execute_job, job_compile_key
from repro.serve.service import SimService


def _direct(job, cache_dir=None):
    """The reference result the service must be bit-identical to."""
    from repro.serve.protocol import validate_job

    return execute_job(validate_job(dict(job)), cache_dir=cache_dir)


def _with_service(test_body, **service_kwargs):
    """Run *test_body(service, host, port)* in a worker thread against a
    live in-process service; returns its result."""

    async def main():
        service = SimService(**service_kwargs)
        host, port = await service.start()
        loop = asyncio.get_event_loop()
        try:
            return await loop.run_in_executor(
                None, test_body, service, host, port
            )
        finally:
            await service.stop()

    return asyncio.run(main())


# ---------------------------------------------------------------------
# Bit-identity: service results == direct runs
# ---------------------------------------------------------------------
def test_mixed_jobs_bit_identical_to_direct_runs(tmp_path):
    jobs = []
    for workload in ("fir_32_1", "iir_1_1", "mult_4_4"):
        for strategy in ("SINGLE_BANK", "CB", "CB_DUP"):
            jobs.append({
                "kind": "run", "workload": workload, "strategy": strategy,
            })
    jobs.append({"kind": "run", "workload": "fir_32_1", "backend": "fast"})
    jobs.append({"kind": "run", "workload": "fir_32_1",
                 "strategy": "CB_PROFILE"})
    jobs.append({"kind": "recipe", "recipe": {"seed": 5},
                 "strategy": "CB"})
    jobs.append({"kind": "run", "workload": "fir_32_1", "reads": ["y"]})

    def body(_service, host, port):
        with ServeClient(host, port) as client:
            return client.run_jobs(jobs)

    events = _with_service(body, cache_dir=str(tmp_path / "serve"))
    assert len(events) == len(jobs)
    for job, event in zip(jobs, events):
        reference = _direct(job, cache_dir=str(tmp_path / "direct"))
        assert event["event"] == "result", event
        assert event["cycles"] == reference["cycles"]
        assert event["digest"] == reference["digest"]
        assert event["outputs"] == reference["outputs"]
        assert event["latency_s"] >= 0


def test_writes_change_results_identically(tmp_path):
    job = {"kind": "run", "workload": "fir_32_1",
           "writes": {"x": [1.0] * 32}, "reads": ["y"]}

    def body(_service, host, port):
        with ServeClient(host, port) as client:
            return client.run_jobs([job])[0]

    event = _with_service(body, cache_dir=str(tmp_path))
    reference = _direct(job, cache_dir=str(tmp_path))
    assert event["digest"] == reference["digest"]
    assert event["outputs"]["y"] == reference["outputs"]["y"]


# ---------------------------------------------------------------------
# Coalescing
# ---------------------------------------------------------------------
def test_identical_jobs_share_one_compile_key():
    a = {"kind": "run", "workload": "fir_32_1", "strategy": "CB",
         "partitioner": "greedy", "backend": "interp"}
    b = dict(a, backend="fast", writes={"x": [1.0]}, id="other")
    assert job_compile_key(a) == job_compile_key(b)
    assert job_compile_key(a) != job_compile_key(dict(a, strategy="CB_DUP"))
    assert job_compile_key(a) != job_compile_key(
        dict(a, partitioner="exact")
    )


def test_compatible_jobs_coalesce_onto_batch_backend(tmp_path):
    jobs = [
        {"kind": "run", "workload": "fir_32_1", "backend": "interp"},
        {"kind": "run", "workload": "fir_32_1", "backend": "fast"},
        {"kind": "run", "workload": "fir_32_1", "backend": "jit"},
    ]

    def body(service, host, port):
        # hold the dispatcher so all three jobs land in one round
        service.paused = True
        with ServeClient(host, port) as client:
            for index, job in enumerate(jobs):
                client.send(dict(job, id="c-%d" % index))
            accepted = [client.read_event() for _ in jobs]
            service.paused = False
            events = {e["id"]: e for e in (client.read_event() for _ in jobs)}
            stats = client.stats()
        return accepted, events, stats

    accepted, events, stats = _with_service(body, cache_dir=str(tmp_path))
    assert all(e["event"] == "accepted" for e in accepted)
    reference = _direct(jobs[0], cache_dir=str(tmp_path))
    for event in events.values():
        assert event["event"] == "result"
        assert event["digest"] == reference["digest"]
        assert event["obs"]["backend_executed"] == "batch"
        assert event["obs"]["group"] == 3
    assert stats["serve.coalesced"] == 2
    assert stats["serve.groups"] == 1


# ---------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------
def test_full_queue_rejects_instead_of_buffering(tmp_path):
    job = {"kind": "run", "workload": "fir_32_1"}

    def body(service, host, port):
        service.paused = True  # nothing drains: the queue must fill
        with ServeClient(host, port) as client:
            for index in range(4):
                client.send(dict(job, id="q-%d" % index))
            admissions = [client.read_event() for _ in range(4)]
            service.paused = False
            # the two accepted jobs still complete
            terminal = [client.read_event() for _ in range(2)]
        return admissions, terminal

    admissions, terminal = _with_service(
        body, cache_dir=str(tmp_path), queue_limit=2
    )
    kinds = [event["event"] for event in admissions]
    assert kinds == ["accepted", "accepted", "rejected", "rejected"]
    for event in admissions[2:]:
        assert event["limit"] == 2
        assert event["reason"] == "queue full"
    assert {e["event"] for e in terminal} == {"result"}


# ---------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------
def test_protocol_and_program_errors_are_categorized(tmp_path):
    def body(_service, host, port):
        with ServeClient(host, port) as client:
            events = client.run_jobs([
                {"kind": "run", "workload": "no_such_workload"},
                {"kind": "run", "workload": "fir_32_1", "backend": "gpu"},
                {"kind": "run", "workload": "fir_32_1", "reads": ["nope"]},
                {"kind": "run", "workload": "fir_32_1",
                 "writes": {"x": [0.0] * 99}},
            ])
            raw = client.send({"kind": "mystery"}) or client.read_event()
        return events, raw

    events, raw = _with_service(body, cache_dir=str(tmp_path))
    assert [e["event"] for e in events] == ["error"] * 4
    assert events[0]["category"] == "protocol"
    assert events[0]["field"] == "workload"
    assert events[1]["category"] == "protocol"
    assert events[2]["category"] == "program"
    assert events[2]["kind"] == "UnknownGlobal"
    assert events[3]["category"] == "program"
    assert events[3]["kind"] == "BadWrite"
    assert raw["category"] == "protocol" and raw["field"] == "kind"


def test_one_bad_job_never_fails_its_groupmates(tmp_path):
    def body(service, host, port):
        service.paused = True
        with ServeClient(host, port) as client:
            client.send({"kind": "run", "workload": "fir_32_1", "id": "good"})
            client.send({"kind": "run", "workload": "fir_32_1", "id": "bad",
                         "writes": {"x": [0.0] * 99}})
            for _ in range(2):
                client.read_event()  # accepted
            service.paused = False
            return {e["id"]: e for e in (client.read_event() for _ in range(2))}

    events = _with_service(body, cache_dir=str(tmp_path))
    assert events["good"]["event"] == "result"
    assert events["bad"]["event"] == "error"
    assert events["bad"]["category"] == "program"


# ---------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------
def test_stats_counters_reflect_traffic(tmp_path):
    def body(_service, host, port):
        with ServeClient(host, port) as client:
            client.run_jobs([
                {"kind": "run", "workload": "fir_32_1"},
                {"kind": "run", "workload": "bogus"},
            ])
            return client.stats()

    stats = _with_service(body, cache_dir=str(tmp_path))
    assert stats["serve.accepted"] == 1
    assert stats["serve.results"] == 1
    assert stats["serve.protocol_errors"] == 1
    assert stats["serve.connections"] == 1
    assert stats["queue_depth"] == 0


# ---------------------------------------------------------------------
# Supervised workers
# ---------------------------------------------------------------------
def test_worker_pool_results_match_serial(tmp_path):
    job = {"kind": "run", "workload": "fir_32_1", "strategy": "CB_DUP"}

    def body(_service, host, port):
        with ServeClient(host, port) as client:
            return client.run_jobs([job])[0]

    pooled = _with_service(body, cache_dir=str(tmp_path), workers=1)
    assert pooled["event"] == "result"
    assert pooled["digest"] == _direct(job, cache_dir=str(tmp_path))["digest"]


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------
def test_cli_serve_end_to_end(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(tmp_path)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True, cwd=os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"serving on ([\d.]+):(\d+)", banner)
        assert match, "no banner in %r" % banner
        with ServeClient(match.group(1), int(match.group(2))) as client:
            event = client.run_jobs(
                [{"kind": "run", "workload": "fir_32_1"}]
            )[0]
        assert event["event"] == "result"
        assert event["cycles"] == _direct(
            {"kind": "run", "workload": "fir_32_1"}
        )["cycles"]
    finally:
        process.terminate()
        process.wait(timeout=30)
