"""Hash-first dispatch: lightened groups ship content refs and
per-instance fields instead of duplicated recipe payloads, rehydrate
through the artifact store, and stay bit-identical to executing the
original fat group."""

import json
import pickle

from repro.fuzz.generator import generate_recipe
from repro.serve.jobs import (
    _MEMBER_FIELDS,
    execute_group,
    job_compile_key,
    lighten_group,
)
from repro.serve.protocol import validate_job
from repro.serve.store import ArtifactStore, process_compile_cache


def _recipe_group(count=3, seed=5):
    recipe = generate_recipe(seed).to_dict()
    jobs = [
        validate_job({
            "kind": "recipe",
            # deep copy: real submissions decode from separate JSON
            # lines, so nothing is object-shared across jobs
            "recipe": json.loads(json.dumps(recipe)),
            "strategy": "CB",
            "id": "job-%d" % index,
            "writes": {},
        })
        for index in range(count)
    ]
    assert len({job_compile_key(job) for job in jobs}) == 1
    return jobs


def test_members_keep_only_per_instance_fields(tmp_path):
    jobs = _recipe_group()
    store = ArtifactStore(tmp_path)
    light = lighten_group(jobs, store=store)
    assert len(light) == len(jobs)
    # the head traded its recipe body for a content ref
    assert set(light[0]["recipe"]) == {"ref"}
    assert store.get_blob(light[0]["recipe"]["ref"]) == jobs[0]["recipe"]
    # members carry nothing compile-relevant
    for member, original in zip(light[1:], jobs[1:]):
        assert set(member) <= set(_MEMBER_FIELDS)
        assert member["id"] == original["id"]
    # the originals are untouched (the service still owns them)
    assert all("body" in job["recipe"] for job in jobs)


def test_lightened_payload_is_smaller():
    jobs = _recipe_group()
    light = lighten_group(jobs)  # member stripping alone, no store
    assert len(pickle.dumps(light)) < len(pickle.dumps(jobs)) / 2
    assert "body" in light[0]["recipe"]  # no store: head stays inline


def test_generator_specs_stay_inline(tmp_path):
    job = validate_job({
        "kind": "recipe", "recipe": {"seed": 9}, "strategy": "CB",
    })
    light = lighten_group([job], store=ArtifactStore(tmp_path))
    assert light[0]["recipe"] == {"seed": 9}


def test_lightened_group_bit_identical_to_fat_group(tmp_path):
    jobs = _recipe_group()
    cache_dir = str(tmp_path / "cache")
    fat = execute_group([dict(job) for job in jobs], cache_dir=cache_dir)
    store = process_compile_cache(cache_dir).store
    light = lighten_group(jobs, store=store)
    thin = execute_group(light, cache_dir=cache_dir)
    assert [r["id"] for r in thin] == [r["id"] for r in fat]
    for thin_result, fat_result in zip(thin, fat):
        assert thin_result["ok"] and fat_result["ok"]
        assert thin_result["digest"] == fat_result["digest"]
        assert thin_result["cycles"] == fat_result["cycles"]
        assert thin_result["outputs"] == fat_result["outputs"]


def test_missing_blob_faults_the_group_not_the_process(tmp_path):
    jobs = _recipe_group(count=2)
    light = lighten_group(jobs)
    light[0]["recipe"] = {"ref": "0" * 64}  # dangling content ref
    results = execute_group(light, cache_dir=str(tmp_path / "cache"))
    assert len(results) == 2
    for result in results:
        assert result["ok"] is False
        assert "blob" in result["fault"]["message"]
