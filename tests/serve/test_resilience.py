"""Crash-safety and overload behavior of the serve path: the durable
write-ahead journal (recovery, idempotent replay, in-flight merge),
deadline propagation, client-disconnect cancellation, the per-compile-key
circuit breaker, and protocol abuse (oversized and truncated lines)
that must degrade to typed errors, never crashes."""

import asyncio
import os
import re
import socket
import subprocess
import sys
import time

import pytest

from repro.evaluation.parallel import Journal
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.jobs import execute_job
from repro.serve.service import SimService, _Entry, job_key

JOB_A = {"kind": "run", "workload": "fir_32_1", "id": "r-0"}
JOB_B = {"kind": "run", "workload": "mult_4_4", "id": "r-1"}

#: a recipe whose compile deterministically fails (no ``arrays`` key)
BAD_RECIPE = {"kind": "recipe", "recipe": {"body": 42}}


def _direct(job, cache_dir=None):
    return execute_job(protocol.validate_job(dict(job)), cache_dir=cache_dir)


def _key(job):
    return job_key(protocol.validate_job(dict(job)))


def _with_service(test_body, **service_kwargs):
    """Run *test_body(service, host, port)* in a worker thread against a
    live in-process service; returns its result."""

    async def main():
        service = SimService(**service_kwargs)
        host, port = await service.start()
        loop = asyncio.get_event_loop()
        try:
            return await loop.run_in_executor(
                None, test_body, service, host, port
            )
        finally:
            await service.stop()

    return asyncio.run(main())


def _journal_completed(path):
    journal = Journal(str(path))
    try:
        return dict(journal.completed)
    finally:
        journal.close()


def _wait_for(predicate, budget_s=20.0, message="condition"):
    deadline = time.time() + budget_s
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("timed out waiting for %s" % message)


# ---------------------------------------------------------------------
# Durable journal: recovery, replay, merge
# ---------------------------------------------------------------------
def test_restart_reexecutes_accepted_but_unfinished_jobs(tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    keys = [_key(JOB_A), _key(JOB_B)]

    def submit_and_crash(service, host, port):
        service.paused = True  # accepted jobs never dispatch: a "crash"
        with ServeClient(host, port) as client:
            for job in (JOB_A, JOB_B):
                client.send(job)
            return [client.read_event() for _ in range(2)]

    accepted = _with_service(
        submit_and_crash, cache_dir=str(tmp_path / "cache"),
        journal=journal_path,
    )
    assert [e["event"] for e in accepted] == ["accepted", "accepted"]
    # the write-ahead log has both jobs started, neither completed
    journal = Journal(journal_path)
    assert set(journal.started) == set(keys)
    assert not journal.completed
    journal.close()

    def recover_and_resubmit(service, host, port):
        _wait_for(
            lambda: set(keys) <= set(_journal_completed(journal_path)),
            message="journal recovery",
        )
        with ServeClient(host, port) as client:
            client.send(JOB_A)
            admission = client.read_event()
            terminal = client.read_event()
            stats = client.stats()
        return admission, terminal, stats

    admission, terminal, stats = _with_service(
        recover_and_resubmit, cache_dir=str(tmp_path / "cache"),
        journal=journal_path,
    )
    # recovery happened with no client attached...
    assert stats["serve.recovered"] == 2
    # ...and the resubmission replays the journaled terminal instead of
    # running the job a second time
    assert admission == {"event": "accepted", "id": "r-0",
                         "deduplicated": True}
    assert terminal["replayed"] is True
    assert terminal["event"] == "result"
    reference = _direct(JOB_A, cache_dir=str(tmp_path / "ref"))
    assert terminal["digest"] == reference["digest"]
    assert stats["serve.deduped"] == 1


def test_resubmission_within_one_session_replays_bit_identically(tmp_path):
    def body(_service, host, port):
        with ServeClient(host, port) as client:
            first = client.run_jobs([JOB_A])[0]
            client.send(JOB_A)
            admission = client.read_event()
            replay = client.read_event()
            stats = client.stats()
        return first, admission, replay, stats

    first, admission, replay, stats = _with_service(
        body, cache_dir=str(tmp_path / "cache"),
        journal=str(tmp_path / "journal.jsonl"),
    )
    assert first["event"] == "result"
    assert admission["deduplicated"] is True
    assert replay["replayed"] is True
    assert replay["digest"] == first["digest"]
    assert replay["outputs"] == first["outputs"]
    assert stats["serve.deduped"] == 1
    # the replay never re-journaled: still exactly one completed record
    raw = Journal(str(tmp_path / "journal.jsonl"))
    assert len(raw.completed) == 1
    raw.close()


def test_same_id_different_payload_is_a_distinct_job(tmp_path):
    other = dict(JOB_A, strategy="CB_DUP")

    def body(_service, host, port):
        with ServeClient(host, port) as client:
            first = client.run_jobs([JOB_A])[0]
            second = client.run_jobs([other])[0]
            stats = client.stats()
        return first, second, stats

    first, second, stats = _with_service(body, cache_dir=str(tmp_path))
    assert first["event"] == second["event"] == "result"
    assert stats.get("serve.deduped", 0) == 0
    assert stats["serve.accepted"] == 2


def test_resubmission_racing_inflight_merges_instead_of_rerunning(tmp_path):
    def body(service, host, port):
        service.paused = True
        with ServeClient(host, port) as first, \
                ServeClient(host, port) as second:
            first.send(JOB_A)
            original = first.read_event()
            second.send(JOB_A)
            merged = second.read_event()
            service.paused = False
            terminals = (first.read_event(), second.read_event())
            stats = first.stats()
        return original, merged, terminals, stats

    original, merged, terminals, stats = _with_service(
        body, cache_dir=str(tmp_path)
    )
    assert original == {"event": "accepted", "id": "r-0"}
    assert merged == {"event": "accepted", "id": "r-0", "merged": True}
    # one execution, two deliveries
    assert terminals[0]["event"] == terminals[1]["event"] == "result"
    assert terminals[0]["digest"] == terminals[1]["digest"]
    assert stats["serve.merged"] == 1
    assert stats["serve.accepted"] == 1
    assert stats["serve.results"] == 1


# ---------------------------------------------------------------------
# Cancellation and deadlines
# ---------------------------------------------------------------------
def test_disconnect_cancels_undispatched_jobs(tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")

    def body(service, host, port):
        service.paused = True
        client = ServeClient(host, port)
        client.send(JOB_A)
        assert client.read_event()["event"] == "accepted"
        client.close()  # disconnect with the job still queued
        _wait_for(
            lambda: any(e.cancelled for e in list(service._queue._queue)),
            message="handler teardown",
        )
        service.paused = False
        _wait_for(
            lambda: service.observe.counters.get("serve.cancelled") == 1,
            message="cancellation",
        )
        # a cancelled terminal is journaled but never deduplicated:
        # the client that resubmits after reconnecting gets a real run
        with ServeClient(host, port) as again:
            again.send(JOB_A)
            admission = again.read_event()
            terminal = again.read_event()
        return admission, terminal

    admission, terminal = _with_service(
        body, cache_dir=str(tmp_path / "cache"), journal=journal_path
    )
    assert admission == {"event": "accepted", "id": "r-0"}
    assert terminal["event"] == "result"
    assert "replayed" not in terminal


def test_deadline_expires_before_dispatch(tmp_path):
    job = dict(JOB_A, deadline_ms=40)

    def body(service, host, port):
        service.paused = True
        with ServeClient(host, port) as client:
            client.send(job)
            admission = client.read_event()
            time.sleep(0.3)  # let the budget lapse while queued
            service.paused = False
            terminal = client.read_event()
            stats = client.stats()
        return admission, terminal, stats

    admission, terminal, stats = _with_service(body, cache_dir=str(tmp_path))
    assert admission["event"] == "accepted"
    assert terminal["event"] == "error"
    assert terminal["kind"] == "DeadlineExceeded"
    assert terminal["category"] == "deadline"
    assert "before dispatch" in terminal["message"]
    assert stats["serve.deadline_exceeded"] == 1
    assert stats.get("serve.results", 0) == 0


def test_group_timeout_tightens_only_when_every_member_has_a_deadline():
    service = SimService(timeout=5.0)
    now = 100.0
    deadlined = _Entry({"id": "a"}, "ka", deadline=now + 2.0)
    patient = _Entry({"id": "b"}, "kb", deadline=now + 9.0)
    free = _Entry({"id": "c"}, "kc")
    # all members deadlined: the most patient member bounds the group
    assert service._group_timeout([deadlined, patient], now) == 5.0
    assert service._group_timeout([deadlined], now) == 2.0
    # a deadline-free member keeps the configured budget: a short
    # deadline must never terminate a deadline-free groupmate's work
    assert service._group_timeout([deadlined, free], now) == 5.0
    # no configured timeout either: unbounded
    assert SimService()._group_timeout([free], now) is None
    assert SimService()._group_timeout([deadlined], now) == 2.0
    # an already-lapsed deadline clamps to a tiny positive budget
    lapsed = _Entry({"id": "d"}, "kd", deadline=now - 1.0)
    assert SimService()._group_timeout([lapsed], now) == 0.001


def test_transient_terminals_are_never_remembered():
    service = SimService(dedup_window=2)
    service._remember("k1", {"event": "cancelled", "id": "x"})
    service._remember("k2", protocol.deadline_event("x", "late"))
    service._remember("k3", protocol.circuit_open_event("x", 1.0))
    assert not service._completed
    # real terminals are, and the window is bounded LRU
    for index in range(3):
        service._remember("r%d" % index, {"event": "result", "id": "x"})
    assert list(service._completed) == ["r1", "r2"]


# ---------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------
def test_breaker_state_machine():
    service = SimService(breaker_threshold=2, breaker_cooldown=1.0)
    key, now = "ck", 50.0
    cooldown = service._breaker_cooldown_for(key)
    assert 1.0 <= cooldown <= 1.25
    assert cooldown == service._breaker_cooldown_for(key)  # seeded

    assert service._breaker_gate(key, now) is None  # closed
    service._breaker_failure(key, now)
    assert service._breaker_gate(key, now) is None  # one strike: closed
    service._breaker_failure(key, now)
    retry = service._breaker_gate(key, now + 0.1)  # two strikes: open
    assert retry is not None and 0 < retry <= cooldown
    assert service.observe.counters["serve.breaker.open"] == 1
    # the cooldown admits exactly one half-open probe
    assert service._breaker_gate(key, now + cooldown) is None
    assert service.observe.counters["serve.breaker.half_open"] == 1
    # a failing probe reopens immediately, threshold or not
    service._breaker_failure(key, now + cooldown)
    assert service._breakers[key].state == "open"
    assert service.observe.counters["serve.breaker.open"] == 2
    # a succeeding probe closes and forgets the key
    service._breakers[key].state = "half-open"
    service._breaker_success(key)
    assert key not in service._breakers
    assert service.observe.counters["serve.breaker.closed"] == 1
    # threshold 0 disables the breaker entirely
    off = SimService(breaker_threshold=0)
    off._breaker_failure("k", now)
    assert off._breaker_gate("k", now) is None


def test_repeated_compile_failures_open_the_breaker(tmp_path):
    def body(_service, host, port):
        with ServeClient(host, port) as client:
            events = [
                client.run_jobs([dict(BAD_RECIPE, id="b-%d" % index)])[0]
                for index in range(3)
            ]
            return events, client.stats()

    events, stats = _with_service(
        body, cache_dir=str(tmp_path), breaker_threshold=2,
        breaker_cooldown=60.0,
    )
    # two real compile failures...
    for event in events[:2]:
        assert event["event"] == "error"
        assert event["kind"] != "CircuitOpen"
        assert event["obs"]["stage"] == "compile"
    # ...then the breaker fails the third fast, with a retry hint
    assert events[2]["kind"] == "CircuitOpen"
    assert events[2]["category"] == "unavailable"
    assert events[2]["retry_after_s"] > 0
    assert stats["serve.breaker.failures"] == 2
    assert stats["serve.breaker.open"] == 1
    assert stats["serve.breaker.fastfail"] == 1
    assert stats["breakers_open"] == 1


def test_cooldown_admits_a_half_open_probe(tmp_path):
    def body(_service, host, port):
        with ServeClient(host, port) as client:
            opened = client.run_jobs([dict(BAD_RECIPE, id="h-0")])[0]
            time.sleep(0.3)  # past the jittered cooldown (<= 0.0625s)
            probe = client.run_jobs([dict(BAD_RECIPE, id="h-1")])[0]
            return opened, probe, client.stats()

    opened, probe, stats = _with_service(
        body, cache_dir=str(tmp_path), breaker_threshold=1,
        breaker_cooldown=0.05,
    )
    assert opened["event"] == "error" and opened["kind"] != "CircuitOpen"
    # the probe was admitted (really compiled, really failed) — and its
    # failure reopened the breaker
    assert probe["kind"] != "CircuitOpen"
    assert probe["obs"]["stage"] == "compile"
    assert stats["serve.breaker.half_open"] == 1
    assert stats["serve.breaker.open"] == 2


# ---------------------------------------------------------------------
# Protocol abuse: oversized and truncated lines, unknown fields
# ---------------------------------------------------------------------
def test_oversized_line_gets_typed_error_and_connection_survives(tmp_path):
    def body(_service, host, port):
        with ServeClient(host, port) as client:
            client._socket.sendall(
                b" " * (protocol.MAX_LINE_BYTES + 64) + b"\n"
            )
            oversized = client.read_event()
            # the same connection still serves real work afterwards
            result = client.run_jobs([JOB_A])[0]
            stats = client.stats()
        return oversized, result, stats

    oversized, result, stats = _with_service(body, cache_dir=str(tmp_path))
    assert oversized["event"] == "error"
    assert oversized["category"] == "protocol"
    assert str(protocol.MAX_LINE_BYTES) in oversized["message"]
    assert result["event"] == "result"
    assert stats["serve.oversized_lines"] == 1
    assert stats["serve.protocol_errors"] == 1


def test_truncated_final_line_gets_typed_error(tmp_path):
    def body(service, host, port):
        client = ServeClient(host, port)
        try:
            client._socket.sendall(b'{"kind": "run", "workl')
            client._socket.shutdown(socket.SHUT_WR)
            event = client.read_event()
        finally:
            client.close()
        _wait_for(
            lambda: service.observe.counters.get(
                "serve.truncated_lines") == 1,
            message="truncation counter",
        )
        with ServeClient(host, port) as again:
            return event, again.stats()

    event, stats = _with_service(body, cache_dir=str(tmp_path))
    assert event["event"] == "error"
    assert event["category"] == "protocol"
    assert "truncated" in event["message"]
    assert stats["serve.truncated_lines"] == 1


def test_unknown_top_level_field_is_rejected_not_dropped(tmp_path):
    def body(_service, host, port):
        with ServeClient(host, port) as client:
            client.send(dict(JOB_A, retriez=3))
            rejected = client.read_event()
            result = client.run_jobs([JOB_B])[0]
        return rejected, result

    rejected, result = _with_service(body, cache_dir=str(tmp_path))
    assert rejected["event"] == "error"
    assert rejected["category"] == "protocol"
    assert rejected["field"] == "retriez"
    assert rejected["id"] == "r-0"
    assert result["event"] == "result"


# ---------------------------------------------------------------------
# Client conveniences and gauges
# ---------------------------------------------------------------------
def test_try_run_jobs_clean_path_reports_no_disconnect(tmp_path):
    def body(_service, host, port):
        with ServeClient(host, port) as client:
            return client.try_run_jobs([JOB_A, JOB_B])

    outcome = _with_service(body, cache_dir=str(tmp_path))
    assert outcome["disconnected"] is False
    assert outcome["accepted"] == ["r-0", "r-1"]
    assert [e["event"] for e in outcome["events"]] == ["result", "result"]


def test_stats_carry_resilience_gauges(tmp_path):
    def body(_service, host, port):
        with ServeClient(host, port) as client:
            client.run_jobs([JOB_A])
            return client.stats()

    stats = _with_service(body, cache_dir=str(tmp_path))
    assert stats["inflight"] == 0
    assert stats["breakers_open"] == 0
    assert stats["queue_depth"] == 0


# ---------------------------------------------------------------------
# CLI: --journal and --scrub-cache wiring
# ---------------------------------------------------------------------
def test_cli_serve_scrubs_and_journals_on_request(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(tmp_path / "cache"),
         "--journal", str(tmp_path / "journal.jsonl"),
         "--scrub-cache"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True, cwd=os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
    )
    try:
        lines, match = [], None
        while match is None:
            line = process.stdout.readline()
            assert line, "service exited early: %r" % lines
            lines.append(line)
            match = re.search(r"serving on ([\d.]+):(\d+)", line)
        assert any("scrubbed artifact store" in line for line in lines)
        with ServeClient(match.group(1), int(match.group(2))) as client:
            event = client.run_jobs([JOB_A])[0]
        assert event["event"] == "result"
    finally:
        process.terminate()
        process.wait(timeout=30)
    journal = Journal(str(tmp_path / "journal.jsonl"))
    assert journal.completed, "terminal event was not journaled"
    journal.close()
