"""The artifact store must never serve a wrong program: corruption
degrades to a recompile, eviction respects the byte cap, concurrent
writers race safely, and the persistent key tracks every cache-relevant
compile option."""

import multiprocessing
import os

import pytest

from repro.compiler import CompileOptions, compile_module
from repro.compiler.pipeline import options_signature
from repro.evaluation.runner import _compile_cached, module_fingerprint
from repro.obs.core import Recorder
from repro.partition.strategies import Strategy
from repro.serve.store import (
    FORMAT_VERSION,
    ArtifactStore,
    CompileCache,
    compile_key,
    process_compile_cache,
)
from repro.sim.simulator import Simulator
from repro.workloads.registry import get_workload

WORKLOAD = "fir_32_1"


def _compiled(name=WORKLOAD, strategy=Strategy.CB):
    return compile_module(get_workload(name).build(), strategy=strategy)


def _key(suffix="a"):
    return {"test": suffix}


# ---------------------------------------------------------------------
# Round trip
# ---------------------------------------------------------------------
def test_round_trip_preserves_simulation(tmp_path):
    store = ArtifactStore(tmp_path)
    compiled = _compiled()
    reference = Simulator(compiled.program).run()
    store.put(_key(), compiled)
    loaded = store.get(_key())
    assert loaded is not None
    assert Simulator(loaded.program).run().cycles == reference.cycles


def test_miss_returns_none_and_counts(tmp_path):
    recorder = Recorder()
    store = ArtifactStore(tmp_path, observe=recorder)
    assert store.get(_key()) is None
    assert store.misses == 1
    assert recorder.counters["store.miss"] == 1


def test_put_strips_codegen_cache_but_leaves_original_usable(tmp_path):
    store = ArtifactStore(tmp_path)
    compiled = _compiled()
    # populate the program-level codegen cache with something unpicklable
    compiled.program._codegen_cache = {"fast": lambda: None}
    store.put(_key(), compiled)
    # the original object still has its cache after the write
    assert "fast" in compiled.program._codegen_cache
    loaded = store.get(_key())
    assert not getattr(loaded.program, "_codegen_cache", {})


# ---------------------------------------------------------------------
# Corruption: truncation, bit flips, foreign formats
# ---------------------------------------------------------------------
def _corrupt(path, mutate):
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(mutate(data))


@pytest.mark.parametrize(
    "mutate",
    [
        lambda data: data[: len(data) // 2],          # truncated payload
        lambda data: data[:-20] + b"\x00" * 20,        # flipped tail bytes
        lambda data: b"not json\n" + data,             # mangled header
        lambda data: b"",                              # empty file
    ],
)
def test_corrupt_entry_reads_as_miss_and_is_deleted(tmp_path, mutate):
    store = ArtifactStore(tmp_path)
    path = store.put(_key(), _compiled())
    _corrupt(path, mutate)
    assert store.get(_key()) is None
    assert store.corrupt == 1
    assert not os.path.exists(path)
    # and the caller's recompile repopulates it cleanly
    store.put(_key(), _compiled())
    assert store.get(_key()) is not None


def test_format_version_mismatch_reads_as_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.put(_key(), _compiled())

    def bump_format(data):
        header, _, payload = data.partition(b"\n")
        current = ('"format": %d' % FORMAT_VERSION).encode()
        return header.replace(current, b'"format": 999') + b"\n" + payload

    _corrupt(path, bump_format)
    assert store.get(_key()) is None
    assert store.corrupt == 1


def test_corrupted_compile_cache_recompiles(tmp_path):
    """End to end: a corrupt store entry behind CompileCache degrades to
    a recompile with the identical cycle count."""
    workload = get_workload(WORKLOAD)
    cache = CompileCache(store=ArtifactStore(tmp_path))
    first = _compile_cached(workload, Strategy.CB, None, cache)
    reference = Simulator(first.program).run().cycles
    path = cache.store.path_for(
        cache.persistent_key(next(iter(cache.memory)))
    )
    _corrupt(path, lambda data: data[: len(data) // 3])
    cold = CompileCache(store=ArtifactStore(tmp_path))  # fresh memory tier
    again = _compile_cached(workload, Strategy.CB, None, cold)
    assert cold.last_source == "compile"
    assert cold.store.corrupt == 1
    assert Simulator(again.program).run().cycles == reference


# ---------------------------------------------------------------------
# Eviction
# ---------------------------------------------------------------------
def test_eviction_respects_byte_cap_lru_order(tmp_path):
    store = ArtifactStore(tmp_path, max_bytes=1)  # smaller than any entry
    store.put(_key("first"), _compiled())
    assert store.get(_key("first")) is not None  # newest always survives
    store.put(_key("second"), _compiled())
    # the older entry went first; the new one is readable
    assert store.get(_key("first")) is None
    assert store.get(_key("second")) is not None
    assert store.evicted >= 1
    assert len(store.entries()) == 1


def test_eviction_keeps_recently_read_entries(tmp_path):
    compiled = _compiled()
    entry_bytes = os.path.getsize(
        ArtifactStore(tmp_path / "probe").put(_key(), compiled)
    )
    store = ArtifactStore(tmp_path / "real", max_bytes=int(entry_bytes * 2.5))
    store.put(_key("a"), compiled)
    store.put(_key("b"), compiled)
    os.utime(store.path_for(_key("a")), (0, 0))  # force "a" oldest
    store.put(_key("c"), compiled)  # cap forces one eviction
    assert store.get(_key("a")) is None
    assert store.get(_key("b")) is not None
    assert store.get(_key("c")) is not None


def test_uncapped_store_never_evicts(tmp_path):
    store = ArtifactStore(tmp_path, max_bytes=None)
    for index in range(4):
        store.put(_key(str(index)), _compiled())
    assert len(store.entries()) == 4
    assert store.evicted == 0


# ---------------------------------------------------------------------
# Concurrent writers
# ---------------------------------------------------------------------
def _race_writer(args):
    root, suffix = args
    store = ArtifactStore(root)
    compiled = compile_module(
        get_workload(WORKLOAD).build(), strategy=Strategy.CB
    )
    store.put({"race": "shared"}, compiled)
    return Simulator(store.get({"race": "shared"}).program).run().cycles


def test_concurrent_writers_one_key(tmp_path):
    """Multiple processes racing on one key: every read afterwards is a
    complete, correct entry (deterministic compiles make last-writer-wins
    indistinguishable from first-writer-wins)."""
    context = multiprocessing.get_context("spawn")
    with context.Pool(3) as pool:
        cycles = pool.map(
            _race_writer, [(str(tmp_path), str(i)) for i in range(3)]
        )
    assert len(set(cycles)) == 1
    store = ArtifactStore(tmp_path)
    assert store.get({"race": "shared"}) is not None
    leftovers = [
        name for name in os.listdir(store.root) if name.startswith(".tmp-")
    ]
    assert leftovers == []


# ---------------------------------------------------------------------
# Cache-key anatomy: CompileOptions drift must change the key
# ---------------------------------------------------------------------
def test_options_signature_covers_cache_relevant_fields():
    base = options_signature(CompileOptions())
    changed = [
        CompileOptions(strategy=Strategy.CB_DUP),
        CompileOptions(partitioner="exact"),
        CompileOptions(partitioner_seed=7),
        CompileOptions(interrupt_safe=False),
        CompileOptions(software_pipelining=True),
        CompileOptions(optimize=True),
        CompileOptions(unroll_factor=4),
    ]
    signatures = [options_signature(options) for options in changed]
    assert all(signature != base for signature in signatures)
    assert len(set(signatures)) == len(signatures)


def test_compile_key_drifts_with_options_and_fingerprint():
    fingerprint = module_fingerprint(get_workload(WORKLOAD).build())
    base = ArtifactStore.entry_id(
        compile_key(fingerprint, options_signature(CompileOptions()))
    )
    for options in (
        CompileOptions(partitioner_seed=3),
        CompileOptions(partitioner="anneal"),
        CompileOptions(strategy=Strategy.IDEAL),
    ):
        drifted = ArtifactStore.entry_id(
            compile_key(fingerprint, options_signature(options))
        )
        assert drifted != base
    other = module_fingerprint(get_workload("iir_1_1").build())
    assert ArtifactStore.entry_id(
        compile_key(other, options_signature(CompileOptions()))
    ) != base


def test_profile_counts_key_the_entry():
    fingerprint = module_fingerprint(get_workload(WORKLOAD).build())
    signature = options_signature(CompileOptions(strategy=Strategy.CB_PROFILE))
    bare = ArtifactStore.entry_id(compile_key(fingerprint, signature))
    profiled = ArtifactStore.entry_id(
        compile_key(fingerprint, signature, profile_key=(("block0", 12),))
    )
    assert bare != profiled


# ---------------------------------------------------------------------
# CompileCache tiering
# ---------------------------------------------------------------------
def test_compile_cache_tiers_memory_store_compile(tmp_path):
    workload = get_workload(WORKLOAD)
    cache = CompileCache(store=ArtifactStore(tmp_path))
    _compile_cached(workload, Strategy.CB, None, cache)
    assert cache.last_source == "compile"
    _compile_cached(workload, Strategy.CB, None, cache)
    assert cache.last_source == "memory"
    # a fresh process (fresh memory tier) hits the store
    cold = CompileCache(store=ArtifactStore(tmp_path))
    hit = _compile_cached(workload, Strategy.CB, None, cold)
    assert cold.last_source == "store"
    assert Simulator(hit.program).run().cycles > 0


def test_store_hit_is_bit_identical_to_recompile(tmp_path):
    workload = get_workload(WORKLOAD)
    warm = CompileCache(store=ArtifactStore(tmp_path))
    compiled = _compile_cached(workload, Strategy.CB_DUP, None, warm)
    direct = compile_module(workload.build(), strategy=Strategy.CB_DUP)
    cold = CompileCache(store=ArtifactStore(tmp_path))
    restored = _compile_cached(workload, Strategy.CB_DUP, None, cold)
    assert cold.last_source == "store"
    assert (
        Simulator(restored.program).state_digest()
        == Simulator(direct.program).state_digest()
        == Simulator(compiled.program).state_digest()
    )
    first = Simulator(restored.program)
    second = Simulator(direct.program)
    first.run(), second.run()
    assert first.state_digest() == second.state_digest()


def test_process_compile_cache_shares_per_directory(tmp_path):
    first = process_compile_cache(str(tmp_path))
    second = process_compile_cache(str(tmp_path))
    assert first is second
    assert process_compile_cache(None).store is None


# ---------------------------------------------------------------------
# Eager scrub (repro serve --scrub-cache)
# ---------------------------------------------------------------------
def test_scrub_purges_corrupt_entries_up_front(tmp_path):
    store = ArtifactStore(tmp_path)
    paths = {
        suffix: store.put(_key(suffix), _compiled())
        for suffix in ("a", "b", "c")
    }
    _corrupt(paths["b"], lambda data: data[: len(data) // 2])

    report = store.scrub()
    assert report["checked"] == 3
    assert report["corrupt"] == 1
    assert report["purged_bytes"] > 0
    assert not os.path.exists(paths["b"])
    # intact entries survive the scrub; the purged one reads as a miss
    assert store.get(_key("a")) is not None
    assert store.get(_key("c")) is not None
    assert store.get(_key("b")) is None
    # a second pass finds nothing left to purge
    assert store.scrub() == {"checked": 2, "corrupt": 0, "purged_bytes": 0}
