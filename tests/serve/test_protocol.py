"""Job validation and the error taxonomy: malformed submissions are
named precisely, and every exception lands in exactly one category."""

import pytest

from repro.serve import protocol
from repro.serve.protocol import JobError, validate_job
from repro.sim.errors import InternalError, MachineError, ProgramError


def _run_job(**overrides):
    job = {"kind": "run", "workload": "fir_32_1"}
    job.update(overrides)
    return job


# ---------------------------------------------------------------------
# validate_job
# ---------------------------------------------------------------------
def test_defaults_are_filled_in():
    job = validate_job(_run_job())
    assert job["strategy"] == "CB"
    assert job["partitioner"] == "greedy"
    assert job["backend"] == "interp"
    assert job["writes"] == {}
    assert job["reads"] == []
    assert "id" not in job  # the service assigns one


def test_explicit_fields_survive():
    job = validate_job(_run_job(
        id=17, strategy="CB_DUP", partitioner="exact", backend="fast",
        writes={"x": [1, 2]}, reads=["y"],
    ))
    assert job["id"] == "17"  # ids normalize to strings
    assert job["strategy"] == "CB_DUP"
    assert job["writes"] == {"x": [1, 2]}
    assert job["reads"] == ["y"]


@pytest.mark.parametrize(
    "overrides, field",
    [
        ({"kind": "nope"}, "kind"),
        ({"strategy": "WARP"}, "strategy"),
        ({"partitioner": "magic"}, "partitioner"),
        ({"backend": "gpu"}, "backend"),
        ({"workload": ""}, "workload"),
        ({"workload": "not_a_workload"}, "workload"),
        ({"writes": [1, 2]}, "writes"),
        ({"reads": "y"}, "reads"),
    ],
)
def test_bad_fields_are_named(overrides, field):
    with pytest.raises(JobError) as info:
        validate_job(_run_job(**overrides))
    assert info.value.field == field


def test_unknown_top_level_fields_are_named_not_dropped():
    with pytest.raises(JobError) as info:
        validate_job(_run_job(retriez=3))
    assert info.value.field == "retriez"
    assert "retriez" in str(info.value)
    # several typos: the first (sorted) is the named culprit, all appear
    with pytest.raises(JobError) as info:
        validate_job(_run_job(zz=1, aa=2))
    assert info.value.field == "aa"
    assert "zz" in str(info.value)


@pytest.mark.parametrize("bad", [-5, 0, True, False, "soon", None, [100]])
def test_deadline_ms_must_be_a_positive_number(bad):
    with pytest.raises(JobError) as info:
        validate_job(_run_job(deadline_ms=bad))
    assert info.value.field == "deadline_ms"


def test_deadline_ms_normalizes_to_float():
    assert validate_job(_run_job(deadline_ms=1500))["deadline_ms"] == 1500.0
    assert validate_job(_run_job(deadline_ms=0.5))["deadline_ms"] == 0.5


def test_recipe_jobs_need_a_recipe_dict():
    with pytest.raises(JobError) as info:
        validate_job({"kind": "recipe", "recipe": "seed=3"})
    assert info.value.field == "recipe"
    job = validate_job({"kind": "recipe", "recipe": {"seed": 3}})
    assert job["recipe"] == {"seed": 3}


def test_decode_rejects_non_objects_and_bad_json():
    with pytest.raises(JobError):
        protocol.decode(b"[1, 2, 3]\n")
    with pytest.raises(JobError):
        protocol.decode(b"{broken\n")
    assert protocol.decode(b'{"kind": "stats"}\n') == {"kind": "stats"}


def test_encode_decode_round_trip():
    event = {"event": "result", "id": "j1", "cycles": 69}
    line = protocol.encode(event)
    assert line.endswith(b"\n")
    assert protocol.decode(line) == event


# ---------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------
def test_job_error_maps_to_protocol_category():
    event = protocol.error_event("j", JobError("bad writes", field="writes"))
    assert event["category"] == "protocol"
    assert event["field"] == "writes"
    assert event["event"] == "error"


def test_simulator_taxonomy_is_carried_through():
    program_fault = ProgramError("div by zero")
    program_fault.pc = 12
    program_fault.cycle = 40
    event = protocol.error_event("j", program_fault)
    assert event["category"] == "program"
    assert event["pc"] == 12 and event["cycle"] == 40

    assert protocol.error_event("j", MachineError("bank clash"))[
        "category"
    ] == "machine"
    assert protocol.error_event("j", InternalError("bug"))[
        "category"
    ] == "internal"


def test_unknown_exceptions_are_internal():
    event = protocol.error_event(None, RuntimeError("surprise"))
    assert event["category"] == "internal"
    assert event["kind"] == "RuntimeError"


def test_deadline_event_shape():
    event = protocol.deadline_event("j", "expired before dispatch")
    assert event["category"] == "deadline"
    assert event["kind"] == "DeadlineExceeded"
    assert "attempts" not in event
    with_attempts = protocol.deadline_event("j", "terminated", attempts=3)
    assert with_attempts["attempts"] == 3


def test_circuit_open_event_shape():
    event = protocol.circuit_open_event("j", 1.23456)
    assert event["category"] == "unavailable"
    assert event["kind"] == "CircuitOpen"
    assert event["retry_after_s"] == 1.235  # rounded for the wire


def test_error_event_from_description_preserves_context():
    event = protocol.error_event_from_description("j", {
        "kind": "MemoryFault", "message": "oob", "category": "program",
        "pc": 7, "cycle": 3, "backend": "fast",
    })
    assert event["category"] == "program"
    assert (event["pc"], event["cycle"], event["backend"]) == (7, 3, "fast")
    fallback = protocol.error_event_from_description("j", {})
    assert fallback["category"] == "internal"
