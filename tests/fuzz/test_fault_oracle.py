"""Oracle stage 6: fault-outcome identity over fuzzer-generated programs."""

import itertools

import pytest

from repro.fuzz.generator import generate_recipe
from repro.fuzz.oracle import OracleViolation, check_fault_identity, check_recipe
from repro.partition.strategies import Strategy


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_fault_stage_passes_on_generated_programs(seed):
    """check_recipe with a fault_seed runs the full oracle plus the
    fault-identity stage; generated programs must classify identically
    on every backend under every strategy."""
    recipe = generate_recipe(seed, max_statements=4)
    report = check_recipe(recipe, fault_seed=seed)
    assert report.cycles  # the base oracle ran too


def test_fault_stage_only_on_request():
    """Without a fault_seed the oracle behaves exactly as before (no
    fault runs at all) — checked by the stage raising nothing even if
    the faults package is broken for this recipe shape."""
    recipe = generate_recipe(5, max_statements=3)
    assert check_recipe(recipe).cycles


def test_divergent_classification_raises(monkeypatch):
    """Force the comparable() projection to differ per call: the stage
    must raise a fault-identity violation with the recipe attached."""
    from repro.faults import experiment

    counter = itertools.count()
    monkeypatch.setattr(
        experiment, "comparable", lambda result: next(counter)
    )
    recipe = generate_recipe(0, max_statements=3)
    with pytest.raises(OracleViolation) as excinfo:
        check_fault_identity(
            recipe, 0, strategies=(Strategy.SINGLE_BANK,),
            backends=("interp", "fast"),
        )
    assert excinfo.value.stage == "fault-identity"
    assert excinfo.value.recipe is recipe
