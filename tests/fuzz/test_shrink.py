"""Shrinker convergence: an injected semantics bug must reduce to a
minimal recipe, and the emitted regression must be runnable.

The injected bug flips the comparison inside ``cond`` statements — a
realistic "compiler miscompiles one construct" defect.  The failure
predicate is a lightweight differential oracle (correct build vs buggy
build, both run through the sequential IR walker), so hundreds of
shrink probes cost milliseconds, not compiles.
"""

import pytest

from repro.fuzz import generator
from repro.fuzz.generator import Recipe, build_module, generate_recipe
from repro.fuzz.shrink import (
    emit_regression,
    recipe_tag,
    shrink_recipe,
    statement_count,
)
from repro.ir.interp import IRInterpreter


def _flipped_cond(stmt, context):
    _kind, a, threshold, trips = stmt[:4]
    array = context.array(a)
    f, acc = context.f, context.acc
    with f.loop(generator._trips(trips, len(array))) as i:
        element = f.float_var()
        f.assign(element, array[i])
        with f.if_(element < float(threshold) * 0.5):  # BUG: < instead of >
            f.assign(acc, acc + element)
        with f.else_():
            f.assign(acc, acc - 1.0)


def _buggy_build(recipe):
    correct = generator._EMITTERS["cond"]
    generator._EMITTERS["cond"] = _flipped_cond
    try:
        return build_module(recipe)
    finally:
        generator._EMITTERS["cond"] = correct


def _final_globals(module):
    interpreter = IRInterpreter(module)
    interpreter.run()
    state = {}
    for symbol in module.globals:
        value = interpreter.read_global(symbol.name)
        state[symbol.name] = tuple(value) if isinstance(value, list) else value
    return state


def _is_failing(recipe):
    return _final_globals(build_module(recipe)) != _final_globals(
        _buggy_build(recipe)
    )


def _failing_recipe():
    for seed in range(300):
        recipe = generate_recipe(seed)
        if _is_failing(recipe):
            return recipe
    raise AssertionError("no seed under 300 reaches a cond statement")


def test_shrinker_converges_on_injected_bug():
    recipe = _failing_recipe()
    shrunk = shrink_recipe(recipe, _is_failing)
    assert _is_failing(shrunk)
    assert statement_count(shrunk) <= 5
    assert statement_count(shrunk) <= statement_count(recipe)
    # The minimal reproducer keeps only what the bug needs: a single
    # cond statement, no helpers, no interrupt hook.
    assert [stmt[0] for stmt in shrunk.body] == ["cond"]
    assert shrunk.helpers == []
    assert shrunk.interrupt_period is None


def test_shrunk_regression_is_runnable():
    recipe = _failing_recipe()
    shrunk = shrink_recipe(recipe, _is_failing)
    source = emit_regression(shrunk, origin="injected cond bug")
    namespace = {}
    exec(compile(source, "<regression>", "exec"), namespace)
    tests = [
        value
        for name, value in namespace.items()
        if name.startswith("test_fuzz_regression_")
    ]
    assert len(tests) == 1
    tests[0]()  # the real pipeline has no such bug: the replay passes
    embedded = Recipe.from_json(namespace["RECIPE_JSON"])
    assert embedded == shrunk


def test_shrinker_requires_a_failing_start():
    passing = Recipe(None, [4], [["scalar", 0, 1]])
    with pytest.raises(ValueError):
        shrink_recipe(passing, _is_failing)


def test_shrinker_drops_unreferenced_structure():
    """Helpers, extra arrays, the interrupt hook, and wrapper loops all
    disappear when the failure does not need them."""
    bloated = Recipe(
        None,
        [8, 8, 8],
        [
            ["loop", 3, [["cond", 0, 2, 4]]],
            ["call", 0, 3],
            ["dot", 1, 2, 5],
        ],
        helpers=[[["scalar", 0, 2]]],
        interrupt_period=5,
    )
    assert _is_failing(bloated)
    shrunk = shrink_recipe(bloated, _is_failing)
    assert statement_count(shrunk) == 1
    assert shrunk.body[0][0] == "cond"
    assert shrunk.helpers == []
    assert shrunk.interrupt_period is None
    assert len(shrunk.arrays) == 1


def test_integer_fields_shrink_toward_one():
    recipe = Recipe(None, [8], [["cond", 0, 6, 6]])
    assert _is_failing(recipe)
    shrunk = shrink_recipe(recipe, _is_failing)
    kind, _array, threshold, trips = shrunk.body[0]
    assert kind == "cond"
    assert trips <= 2
    assert threshold <= 1


def test_recipe_tag_is_stable_and_short():
    recipe = generate_recipe(5)
    assert recipe_tag(recipe) == recipe_tag(Recipe.from_json(recipe.to_json()))
    assert len(recipe_tag(recipe)) == 10
