"""Tier-1 smoke for the oracle's partitioner-identity stage.

25 seeded random programs through every registered partitioner: the
partitioned strategies must match the sequential reference, keep both
duplicate copies coherent, stay inside the ``Ideal <= strategy <= None``
cycle bounds, and produce bit-identical observable state whichever
partitioner placed the data.  ``python -m repro fuzz`` extends the same
check to thousands of seeds out of band.
"""

import pytest

from repro.fuzz.generator import generate_recipe
from repro.fuzz.oracle import (
    ORACLE_PARTITIONERS,
    OracleViolation,
    check_partitioner_identity,
    check_recipe,
)

SMOKE_SEEDS = range(25)


@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_partitioner_stage_clean_on_seed(seed):
    """The stage alone (the full oracle runs it too, via check_recipe in
    tests/fuzz/test_fuzz_smoke.py; running it directly keeps the failure
    domain small when only this stage breaks)."""
    check_partitioner_identity(generate_recipe(seed))


def test_restricted_partitioner_set_runs():
    """The CLI's ``--partitioner P`` restriction — greedy plus one other
    entry — is a valid oracle configuration."""
    check_recipe(generate_recipe(0), partitioners=("greedy", "exact"))


def test_single_partitioner_skips_the_stage():
    """One partitioner has nothing to differ from; check_recipe skips
    the stage instead of degenerating to a self-comparison."""
    report = check_recipe(generate_recipe(0), partitioners=("greedy",))
    assert report.cycles  # the main stages still ran


def test_violation_reports_the_partitioner_stage():
    """A partitioner that corrupted semantics would be named in the
    violation.  Simulate one by tampering with the reference state."""
    import repro.fuzz.oracle as oracle_module

    recipe = generate_recipe(1)
    original = oracle_module._reference_state

    def tampered(recipe_arg):
        state = original(recipe_arg)
        name = next(iter(state))
        state[name] = "corrupted"
        return state

    oracle_module._reference_state = tampered
    try:
        with pytest.raises(OracleViolation) as caught:
            check_partitioner_identity(recipe)
    finally:
        oracle_module._reference_state = original
    assert caught.value.stage == "partitioner-identity"
    assert "[" in str(caught.value)  # names strategy[partitioner]


def test_all_registry_partitioners_in_stage_default():
    from repro.partition.registry import PARTITIONERS

    assert set(ORACLE_PARTITIONERS) == set(PARTITIONERS)
