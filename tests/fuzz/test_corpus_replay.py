"""Replay every archived fuzz-corpus recipe through the live oracle.

``python -m repro fuzz`` writes shrunk failing recipes to
``tests/fuzz_corpus/``; once the underlying bug is fixed, the recipe
stays behind as a regression.  This test makes the whole corpus part of
tier-1 automatically — no manual pasting required (the generated
``test_regression_*.py`` files are self-contained alternatives for
copying into a bug report).
"""

import glob
import os

import pytest

from repro.fuzz.generator import Recipe
from repro.fuzz.oracle import check_recipe

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "fuzz_corpus")

RECIPES = sorted(glob.glob(os.path.join(CORPUS_DIR, "recipe_*.json")))


@pytest.mark.parametrize("path", RECIPES, ids=os.path.basename)
def test_corpus_recipe_replays_clean(path):
    with open(path) as handle:
        recipe = Recipe.from_json(handle.read())
    check_recipe(recipe)


def test_corpus_directory_exists():
    assert os.path.isdir(CORPUS_DIR)
