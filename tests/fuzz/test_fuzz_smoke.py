"""Tier-1 fuzz smoke: a seeded slice of the campaign runs clean.

``python -m repro fuzz`` covers thousands of seeds out of band; this
keeps a small deterministic slice of that coverage in every test run.
"""

import pytest

from repro.fuzz.generator import Recipe, generate_recipe
from repro.fuzz.oracle import ORACLE_STRATEGIES, OracleViolation, check_recipe
from repro.partition.strategies import Strategy

SMOKE_SEEDS = range(25)


@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_oracle_clean_on_seed(seed):
    report = check_recipe(generate_recipe(seed))
    for strategy in ORACLE_STRATEGIES:
        assert strategy in report.cycles
        assert report.cycles[Strategy.IDEAL] <= report.cycles[strategy]
        assert report.cycles[strategy] <= report.cycles[Strategy.SINGLE_BANK]


def test_interrupted_recipes_deliver_interrupts():
    """At least one smoke seed must actually exercise the interrupt
    path, otherwise the hook-toggling dimension is dead coverage."""
    delivered = 0
    for seed in SMOKE_SEEDS:
        recipe = generate_recipe(seed)
        if recipe.interrupt_period:
            delivered += check_recipe(recipe).interrupts_delivered
    assert delivered > 0


def test_duplication_cases_reached():
    """The grammar's Figure-6 shapes must drive the duplication
    transform for some smoke seed (coherence checks need subjects)."""
    duplicated = set()
    for seed in SMOKE_SEEDS:
        report = check_recipe(generate_recipe(seed))
        duplicated.update(report.duplicated[Strategy.CB_DUP])
    assert duplicated


def test_violation_carries_recipe():
    """A failing oracle attaches the recipe, so campaign workers can
    report self-contained findings."""
    recipe = Recipe(None, [4], [["scalar", 0, 2]])
    strict = Recipe(None, [4], [["scalar", 0, 2]])

    class _Boom(Exception):
        pass

    # Force a violation through the public surface: an impossible
    # backend list makes make_simulator raise inside the oracle only
    # after build-determinism passes.
    with pytest.raises(ValueError):
        check_recipe(recipe, backends=("interp", "warp"))

    # And a genuine OracleViolation (simulation fault) carries .recipe:
    # a recipe that exceeds max_cycles is hard to build from the closed
    # grammar, so synthesize one by shrinking the budget instead.
    import repro.fuzz.oracle as oracle_module

    original = oracle_module._run_config

    def starved(recipe_arg, strategy, backend, counts):
        from repro.sim.simulator import SimulationError

        raise SimulationError("synthetic fault")

    oracle_module._run_config = starved
    try:
        with pytest.raises(OracleViolation) as caught:
            check_recipe(strict)
    finally:
        oracle_module._run_config = original
    assert caught.value.recipe == strict
    assert caught.value.stage == "simulation-fault"
