"""Unit tests for the recipe generator: determinism and serialization."""

import pytest

from repro.evaluation.runner import module_fingerprint
from repro.fuzz.generator import (
    LOOPY_KINDS,
    NESTED_KINDS,
    Recipe,
    build_module,
    generate_recipe,
)


def test_same_seed_same_recipe():
    for seed in range(20):
        assert generate_recipe(seed) == generate_recipe(seed)


def test_same_seed_same_module():
    """The whole chain seed -> recipe -> module is deterministic: the
    compile cache and the shrinker both key on the module fingerprint."""
    for seed in (0, 7, 42):
        recipe = generate_recipe(seed)
        assert module_fingerprint(build_module(recipe)) == module_fingerprint(
            build_module(recipe)
        )


def test_different_seeds_explore_the_space():
    recipes = {generate_recipe(seed).to_json() for seed in range(30)}
    assert len(recipes) > 25  # near-universal distinctness


def test_json_round_trip_preserves_everything():
    recipe = generate_recipe(123)
    clone = Recipe.from_json(recipe.to_json())
    assert clone == recipe
    assert clone.to_dict() == recipe.to_dict()
    assert module_fingerprint(build_module(clone)) == module_fingerprint(
        build_module(recipe)
    )


def test_grammar_reaches_every_statement_kind():
    """A modest seed sweep should exercise the full grammar — if a kind
    becomes unreachable the fuzzer silently loses coverage."""
    seen = set()
    for seed in range(300):
        recipe = generate_recipe(seed)
        stack = [recipe.body] + [list(h) for h in recipe.helpers]
        while stack:
            for stmt in stack.pop():
                seen.add(stmt[0])
                if stmt[0] in ("loop", "swloop"):
                    stack.append(stmt[2])
                elif stmt[0] == "branch":
                    stack.append(stmt[2])
                    if stmt[3]:
                        stack.append(stmt[3])
    expected = set(LOOPY_KINDS) | set(NESTED_KINDS) | {"call"}
    assert expected <= seen


def test_unknown_statement_kind_rejected():
    with pytest.raises(ValueError):
        build_module(Recipe(None, [4], [["warp", 1]]))


def test_out_of_range_fields_are_clamped():
    """Mutated recipes (the shrinker's output space) must always build:
    indices wrap, trip counts clamp into array bounds."""
    hostile = Recipe(
        None,
        [3],
        [
            ["dot", 9, 9, 99],
            ["autocorr", 4, 17, 50],
            ["store", 2, 100, 7],
            ["nest", 5, 8, 30, 40],
            ["dupstore", 1, 20, 20],
            ["writeback", 6, 64],
            ["localmix", 3, 77],
            ["call", 3, 2],
        ],
    )
    module = build_module(hostile)
    from repro.ir.interp import IRInterpreter

    IRInterpreter(module).run()  # executes in bounds
