"""Campaign driver: seed fan-out, failure archiving, corpus emission."""

import json
import os

import pytest

from repro.evaluation.parallel import parallel_map
from repro.fuzz import campaign
from repro.fuzz.generator import Recipe
from repro.fuzz.oracle import OracleViolation


def test_clean_campaign_returns_no_failures(tmp_path):
    logged = []
    failures = campaign.fuzz_campaign(
        5, seed=0, corpus_dir=str(tmp_path), log=logged.append
    )
    assert failures == []
    assert list(tmp_path.iterdir()) == []  # nothing archived
    assert any("5 runs, 0 oracle violations" in line for line in logged)


def _contains_dot(body):
    for stmt in body:
        if stmt[0] == "dot":
            return True
        if stmt[0] in ("loop", "swloop") and _contains_dot(stmt[2]):
            return True
        if stmt[0] == "branch" and (
            _contains_dot(stmt[2]) or (stmt[3] and _contains_dot(stmt[3]))
        ):
            return True
    return False


def _injected_oracle(recipe, **_kwargs):
    """Pretend every recipe containing a ``dot`` statement is broken."""
    if _contains_dot(recipe.body) or any(
        _contains_dot(helper) for helper in recipe.helpers
    ):
        raise OracleViolation("strategy-semantics", "injected dot bug")


def test_campaign_shrinks_and_archives_failures(tmp_path, monkeypatch):
    monkeypatch.setattr(campaign, "check_recipe", _injected_oracle)
    failures = campaign.fuzz_campaign(
        20, seed=0, corpus_dir=str(tmp_path), log=None
    )
    assert failures  # the injected bug fires within 20 seeds
    for failure in failures:
        assert failure.error[0] == "OracleViolation"
        # Delta debugging against the injected oracle: at most the
        # offending dot plus one carrier statement (the main body is
        # never emptied entirely, so a dot inside a helper keeps one).
        from repro.fuzz.shrink import statement_count

        assert statement_count(failure.shrunk) <= 2
        assert _contains_dot(failure.shrunk.body) or any(
            _contains_dot(helper) for helper in failure.shrunk.helpers
        )
        recipe_path, test_path = failure.files
        assert os.path.exists(recipe_path)
        assert os.path.exists(test_path)
        data = json.loads(open(recipe_path).read())
        assert Recipe.from_dict(data) == failure.shrunk
        source = open(test_path).read()
        compile(source, test_path, "exec")  # runnable pytest module
        assert "check_recipe" in source


def test_campaign_without_shrinking_archives_originals(tmp_path, monkeypatch):
    monkeypatch.setattr(campaign, "check_recipe", _injected_oracle)
    failures = campaign.fuzz_campaign(
        20, seed=0, shrink=False, corpus_dir=str(tmp_path), log=None
    )
    assert failures
    assert all(failure.shrunk is None for failure in failures)
    assert all(len(failure.files) == 2 for failure in failures)


def test_check_seed_is_picklable_and_deterministic():
    assert campaign.check_seed(3) == campaign.check_seed(3)
    seed, summary = campaign.check_seed(3)
    assert seed == 3
    assert summary is None


def test_parallel_map_serial_and_pooled_agree():
    arguments = [(seed, 4) for seed in range(6)]
    serial = parallel_map(campaign.check_seed, arguments, jobs=None)
    pooled = parallel_map(campaign.check_seed, arguments, jobs=2)
    assert serial == pooled
    assert [seed for seed, _ in serial] == list(range(6))


def test_parallel_map_preserves_order_with_plain_fn():
    assert parallel_map(_double, [(value,) for value in range(10)], jobs=2) == [
        value * 2 for value in range(10)
    ]


def _double(value):
    return value * 2
