"""The span/counter instrumentation core: nesting, timing, null path."""

import json
import time

import pytest

from repro.obs.core import NULL_RECORDER, NullRecorder, Recorder, Span


def test_spans_nest_under_open_parent():
    recorder = Recorder()
    with recorder.span("outer"):
        with recorder.span("inner") as inner:
            inner.set(detail=1)
        with recorder.span("sibling"):
            pass
    assert [s.name for s in recorder.spans] == ["outer"]
    outer = recorder.spans[0]
    assert [c.name for c in outer.children] == ["inner", "sibling"]
    assert outer.children[0].metrics == {"detail": 1}
    assert outer.children[0].children == []


def test_span_durations_are_monotonic_and_contain_children():
    recorder = Recorder()
    with recorder.span("outer"):
        with recorder.span("inner"):
            time.sleep(0.005)
    outer = recorder.spans[0]
    inner = outer.children[0]
    assert inner.duration >= 0.005
    # The parent was open the whole time the child ran.
    assert outer.duration >= inner.duration


def test_duration_none_while_open():
    recorder = Recorder()
    with recorder.span("outer") as span:
        assert span.duration is None
    assert span.duration is not None


def test_counters_attach_to_innermost_open_span():
    recorder = Recorder()
    recorder.counter("global_events", 2)
    with recorder.span("outer"):
        recorder.counter("moves")
        with recorder.span("inner"):
            recorder.counter("moves", 3)
    assert recorder.counters == {"global_events": 2}
    outer = recorder.spans[0]
    assert outer.counters == {"moves": 1}
    assert outer.children[0].counters == {"moves": 3}


def test_find_and_walk():
    recorder = Recorder()
    with recorder.span("a"):
        with recorder.span("b"):
            with recorder.span("c"):
                pass
    with recorder.span("d"):
        pass
    assert recorder.find("c").name == "c"
    assert recorder.find("missing") is None
    assert recorder.spans[0].find("b").name == "b"
    assert [(d, s.name) for d, s in recorder.walk()] == [
        (0, "a"), (1, "b"), (2, "c"), (0, "d"),
    ]


def test_out_of_order_close_is_an_error():
    recorder = Recorder()
    outer = recorder.span("outer")
    inner = recorder.span("inner")
    outer.__enter__()
    inner.__enter__()
    with pytest.raises(RuntimeError):
        outer.__exit__(None, None, None)


def test_to_dict_is_json_ready():
    recorder = Recorder()
    with recorder.span("compile") as span:
        span.set(instructions=7, fill_rate=0.25)
        recorder.counter("moves")
    recorder.counter("top_level")
    data = recorder.to_dict()
    round_tripped = json.loads(json.dumps(data))
    assert round_tripped["spans"][0]["name"] == "compile"
    assert round_tripped["spans"][0]["metrics"]["instructions"] == 7
    assert round_tripped["spans"][0]["counters"] == {"moves": 1}
    assert round_tripped["counters"] == {"top_level": 1}
    assert round_tripped["spans"][0]["seconds"] >= 0


def test_null_recorder_records_nothing():
    assert isinstance(NULL_RECORDER, NullRecorder)
    assert not NULL_RECORDER.enabled
    span = NULL_RECORDER.span("anything")
    # One shared no-op span: no allocation per call site.
    assert NULL_RECORDER.span("other") is span
    with span as entered:
        entered.set(ignored=1)
        entered.count("ignored")
        NULL_RECORDER.counter("ignored")
    assert NULL_RECORDER.spans == ()
    assert NULL_RECORDER.counters == {}
    assert NULL_RECORDER.find("anything") is None
    assert list(NULL_RECORDER.walk()) == []
    assert NULL_RECORDER.to_dict() == {"spans": []}


def test_real_recorder_is_enabled_and_spans_are_distinct():
    recorder = Recorder()
    assert recorder.enabled
    assert recorder.span("a") is not recorder.span("a")
    assert isinstance(recorder.span("a"), Span)


# ----------------------------------------------------------------------
# absorb: cross-process counter aggregation
# ----------------------------------------------------------------------
def test_absorb_accumulates_numeric_counters():
    recorder = Recorder()
    recorder.counter("serve.results", 1)
    recorder.absorb({"serve.results": 2, "serve.compile_s": 0.5})
    recorder.absorb({"serve.compile_s": 0.25})
    assert recorder.counters["serve.results"] == 3
    assert recorder.counters["serve.compile_s"] == 0.75


def test_absorb_skips_labels_and_booleans():
    recorder = Recorder()
    recorder.absorb({"cache": "store", "ok": True, "count": 4})
    assert recorder.counters == {"count": 4}


def test_absorb_inside_a_span_lands_on_the_span():
    recorder = Recorder()
    with recorder.span("dispatch") as span:
        recorder.absorb({"jobs": 5})
    assert span.counters["jobs"] == 5
    assert "jobs" not in recorder.counters


def test_null_recorder_absorb_is_a_noop():
    NULL_RECORDER.absorb({"anything": 1})
    assert NULL_RECORDER.counters == {}
