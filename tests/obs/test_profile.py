"""Run profiles: hot pcs, bank histograms, and the conflict ledger.

The load-bearing property checked here is the correspondence between the
*dynamic* conflict ledger (serialized memory pairs observed in the
schedule, weighted by execution counts) and the *static* interference
edges the CB partitioner derives: a conflict the ledger attributes to a
variable pair is precisely the kind of edge ``build_interference_graph``
records, and giving the partitioner the chance to cut that edge removes
the ledger entry.
"""

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.obs.profile import ConflictEntry, profile_run
from repro.partition.graph_builder import build_interference_graph
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator


def _run(module, strategy):
    compiled = compile_module(module, strategy=strategy)
    simulator = Simulator(compiled.program)
    result = simulator.run()
    return compiled, result, profile_run(compiled.program, result)


def _autocorr_module(frame=12, lags=4):
    """The paper's Figure-6 shape: signal[n] * signal[n + m]."""
    pb = ProgramBuilder("autocorr")
    signal = pb.global_array(
        "signal", frame + lags, float,
        init=[float(i % 7) for i in range(frame + lags)],
    )
    r = pb.global_array("R", lags, float)
    with pb.function("main") as f:
        with f.loop(lags, name="m") as m:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.loop(frame, name="n") as n:
                f.assign(acc, acc + signal[n] * signal[n + m])
            f.assign(r[m], acc)
    return pb.build()


def test_hot_pcs_account_for_every_cycle(dot_product_module):
    _compiled, result, profile = _run(dot_product_module(), Strategy.CB)
    rows = profile.hot_pcs(n=len(result.pc_counts))
    assert sum(row["cycles"] for row in rows) == result.cycles
    assert abs(sum(row["share"] for row in rows) - 1.0) < 1e-9
    # Ranked by cycles, heaviest first; the hottest pc is loop-resident.
    cycles = [row["cycles"] for row in rows]
    assert cycles == sorted(cycles, reverse=True)
    assert rows[0]["cycles"] == max(result.pc_counts)
    assert profile.hot_pcs(n=0) == []
    assert len(profile.hot_pcs(n=3)) == 3
    for row in rows:
        assert row["block"] is not None
        assert row["text"]


def test_bank_histogram_single_bank_never_touches_y(dot_product_module):
    _compiled, _result, profile = _run(
        dot_product_module(), Strategy.SINGLE_BANK
    )
    banks = profile.bank_accesses()
    assert banks["Y"] == {"loads": 0, "stores": 0}
    # The 16-iteration loop loads A[i] and B[i] each time.
    assert banks["X"]["loads"] >= 32
    assert banks["X"]["stores"] >= 1


def test_bank_histogram_cb_splits_traffic(dot_product_module):
    _compiled, _result, profile = _run(dot_product_module(), Strategy.CB)
    banks = profile.bank_accesses()
    assert banks["X"]["loads"] + banks["X"]["stores"] > 0
    assert banks["Y"]["loads"] + banks["Y"]["stores"] > 0


def test_ledger_matches_interference_edges(dot_product_module):
    """Cross-variable ledger pairs are interference-graph edges, and the
    graph's heaviest edge shows up as a conflict under SINGLE_BANK."""
    _compiled, _result, profile = _run(
        dot_product_module(), Strategy.SINGLE_BANK
    )
    ledger = profile.conflicts()
    assert ledger, "single-bank dot product must serialize A/B accesses"

    graph = build_interference_graph(dot_product_module())
    edges = {
        tuple(sorted((a.name, b.name))) for a, b, _w in graph.edges()
    }
    cross = [e for e in ledger if not e.same_variable]
    assert cross, "expected cross-variable conflicts"
    for entry in cross:
        assert (entry.var_a, entry.var_b) in edges
        assert entry.bank == "X"
        assert entry.cycles > 0
        assert entry.events == len(entry.pcs)
        for earlier, later in entry.pcs:
            assert earlier < later

    heaviest = max(graph.edges(), key=lambda edge: edge[2])
    heaviest_pair = tuple(sorted((heaviest[0].name, heaviest[1].name)))
    assert heaviest_pair in {(e.var_a, e.var_b) for e in cross}


def test_cb_removes_the_cross_variable_conflict(dot_product_module):
    _compiled, base_result, base_profile = _run(
        dot_product_module(), Strategy.SINGLE_BANK
    )
    _compiled, cb_result, cb_profile = _run(dot_product_module(), Strategy.CB)
    base_pairs = {
        (e.var_a, e.var_b) for e in base_profile.conflicts()
        if not e.same_variable
    }
    cb_pairs = {
        (e.var_a, e.var_b) for e in cb_profile.conflicts()
        if not e.same_variable
    }
    assert ("A", "B") in base_pairs
    assert ("A", "B") not in cb_pairs
    assert cb_profile.conflict_cycles() < base_profile.conflict_cycles()
    assert cb_result.cycles < base_result.cycles


def test_same_variable_conflicts_are_duplication_candidates():
    """The autocorrelation kernel's signal-vs-signal serialization is a
    same-variable ledger entry, mirroring the graph's duplication
    candidate — and duplication actually removes it."""
    _compiled, _result, cb_profile = _run(_autocorr_module(), Strategy.CB)
    same = [e for e in cb_profile.conflicts() if e.same_variable]
    assert any(e.var_a == "signal" for e in same)

    graph = build_interference_graph(_autocorr_module())
    candidates = {s.name for s in graph.duplication_candidates}
    assert "signal" in candidates

    compiled, _result, dup_profile = _run(
        _autocorr_module(), Strategy.CB_DUP
    )
    assert "signal" in {s.name for s in compiled.allocation.duplicated}
    dup_same = {
        e.var_a for e in dup_profile.conflicts() if e.same_variable
    }
    assert "signal" not in dup_same


def test_profile_to_dict_is_json_ready(dot_product_module):
    import json

    _compiled, result, profile = _run(dot_product_module(), Strategy.CB)
    data = json.loads(json.dumps(profile.to_dict(top=5)))
    assert data["cycles"] == result.cycles
    assert len(data["hot_pcs"]) <= 5
    assert set(data["bank_accesses"]) == {"X", "Y"}
    assert data["conflict_cycles"] == sum(
        entry["cycles"] for entry in data["conflicts"]
    )


def test_conflict_entry_shape():
    entry = ConflictEntry("a", "b", "X")
    assert not entry.same_variable
    assert ConflictEntry("a", "a", "Y").same_variable
    d = entry.to_dict()
    assert d["var_a"] == "a" and d["bank"] == "X" and d["cycles"] == 0
