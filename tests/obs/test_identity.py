"""Profiling off must change nothing: bit-identical cycles and state.

Two separate guarantees:

* compiling with a live :class:`Recorder` produces the *same program*
  as compiling without one (instrumentation only observes the passes);
* profiling a finished run (:func:`profile_run`) mutates neither the
  program nor the result, on any simulator backend.
"""

from repro.compiler import CompileOptions, compile_module
from repro.obs.core import Recorder
from repro.obs.profile import profile_run
from repro.partition.strategies import Strategy
from repro.sim.fastsim import BACKENDS, make_simulator


def _compile(module, observe=None):
    return compile_module(
        module, CompileOptions(strategy=Strategy.CB, observe=observe)
    )


def test_observed_compile_emits_identical_program(dot_product_module):
    plain = _compile(dot_product_module())
    recorder = Recorder()
    observed = _compile(dot_product_module(), observe=recorder)
    assert recorder.find("compile") is not None
    assert observed.program.dump() == plain.program.dump()
    assert observed.code_size == plain.code_size


def test_backends_bit_identical_with_and_without_profiling(
    dot_product_module,
):
    program = _compile(dot_product_module()).program
    reference = None
    for backend in sorted(BACKENDS):
        # Unprofiled run.
        plain_sim = make_simulator(program, backend=backend)
        plain = plain_sim.run()
        plain_digest = plain_sim.state_digest()

        # Profiled run: same program, fresh simulator, full profile.
        profiled_sim = make_simulator(program, backend=backend)
        profiled = profiled_sim.run()
        before = profiled_sim.state_digest()
        profile = profile_run(program, profiled)
        profile.to_dict(top=10)  # force every lazy view
        after = profiled_sim.state_digest()

        assert before == after, "profiling mutated %s state" % backend
        assert profiled.cycles == plain.cycles
        assert list(profiled.pc_counts) == list(plain.pc_counts)
        assert plain_digest == before

        if reference is None:
            reference = (plain.cycles, list(plain.pc_counts), plain_digest)
        else:
            assert (
                plain.cycles, list(plain.pc_counts), plain_digest
            ) == reference, "backend %s diverged" % backend


def test_profile_run_leaves_result_counts_untouched(dot_product_module):
    compiled = _compile(dot_product_module())
    simulator = make_simulator(compiled.program, backend="fast")
    result = simulator.run()
    snapshot = list(result.pc_counts)
    profile = profile_run(compiled.program, result)
    profile.conflicts()
    profile.bank_accesses()
    profile.hot_pcs()
    assert list(result.pc_counts) == snapshot
