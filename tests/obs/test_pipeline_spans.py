"""The compiler pipeline's instrumentation: every pass reports a span."""

from repro.compiler import CompileOptions, compile_module
from repro.obs.core import Recorder
from repro.partition.strategies import Strategy


def _spans_for(module, **options):
    recorder = Recorder()
    compiled = compile_module(
        module, CompileOptions(observe=recorder, **options)
    )
    return recorder, compiled


def test_every_pass_reports_a_span(dot_product_module):
    recorder, compiled = _spans_for(
        dot_product_module(), strategy=Strategy.CB
    )
    compile_span = recorder.find("compile")
    assert compile_span is not None
    names = [child.name for child in compile_span.children]
    assert names == [
        "validate", "allocate", "regalloc", "layout", "compaction",
    ]
    assert compile_span.duration >= sum(
        child.duration for child in compile_span.children
    ) * 0.5  # children are timed within the parent
    assert compile_span.metrics["strategy"] == "CB"
    assert compile_span.metrics["instructions"] == compiled.code_size


def test_compaction_span_reports_schedule_metrics(dot_product_module):
    recorder, compiled = _spans_for(
        dot_product_module(), strategy=Strategy.CB
    )
    compaction = recorder.find("compaction")
    assert compaction.metrics["instructions"] == compiled.code_size
    scheduled = sum(
        len(instr.slots) for instr in compiled.program.instructions
    )
    assert compaction.metrics["scheduled_operations"] == scheduled
    assert 0 < compaction.metrics["fill_rate"] <= 1


def test_allocate_span_nests_graph_build_and_partition(dot_product_module):
    recorder, compiled = _spans_for(
        dot_product_module(), strategy=Strategy.CB
    )
    allocate = recorder.find("allocate")
    child_names = [child.name for child in allocate.children]
    assert "graph_build" in child_names
    assert "partition" in child_names
    graph_build = allocate.find("graph_build")
    assert graph_build.metrics["nodes"] == len(compiled.allocation.graph)
    partition = allocate.find("partition")
    assert partition.metrics["final_cost"] <= partition.metrics[
        "initial_cost"
    ]
    # The greedy partitioner counts accepted moves on this span.
    assert partition.counters.get("moves", 0) >= 0


def test_optional_passes_appear_only_when_enabled(dot_product_module):
    recorder, _compiled = _spans_for(
        dot_product_module(), strategy=Strategy.CB, unroll_factor=2
    )
    compile_span = recorder.find("compile")
    names = [child.name for child in compile_span.children]
    assert "unroll" in names
    unroll = recorder.find("unroll")
    assert unroll.metrics["operations_after"] >= unroll.metrics[
        "operations_before"
    ]


def test_single_bank_allocate_span_has_no_partition_child(
    dot_product_module,
):
    recorder, _compiled = _spans_for(
        dot_product_module(), strategy=Strategy.SINGLE_BANK
    )
    allocate = recorder.find("allocate")
    assert allocate is not None
    assert allocate.find("partition") is None
