"""build_report / render_observability: structure, JSON, error paths."""

import json

import pytest

from repro.evaluation.reporting import render_observability
from repro.obs.report import build_report
from repro.partition.strategies import Strategy


@pytest.fixture(scope="module")
def fir_report():
    return build_report("fir_32_1", strategy="CB", top=5)


def test_report_structure(fir_report):
    assert fir_report["workload"] == "fir_32_1"
    assert fir_report["backend"] == "interp"
    assert set(fir_report) == {
        "workload", "category", "backend", "top", "partitioner",
        "baseline", "strategy", "deltas",
    }
    for config in (fir_report["baseline"], fir_report["strategy"]):
        assert config["cycles"] > 0
        assert config["compile_seconds"] > 0
        assert config["compile_passes"], "per-pass breakdown missing"
        for row in config["compile_passes"]:
            assert row["seconds"] >= 0
        assert len(config["profile"]["hot_pcs"]) <= 5
    assert fir_report["baseline"]["strategy"] == "SINGLE_BANK"
    assert fir_report["strategy"]["strategy"] == "CB"


def test_report_pass_rows_carry_ir_deltas(fir_report):
    passes = {
        row["pass"]: row for row in fir_report["strategy"]["compile_passes"]
    }
    assert {"validate", "allocate", "regalloc", "layout", "compaction"} <= set(
        passes
    )
    compaction = passes["compaction"]
    assert compaction["instructions"] == fir_report["strategy"]["code_size"]
    assert 0 < compaction["fill_rate"] <= 1
    assert passes["allocate"]["strategy"] == "CB"


def test_report_deltas_tell_the_paper_story(fir_report):
    deltas = fir_report["deltas"]
    assert deltas["cycles_strategy"] < deltas["cycles_baseline"]
    assert deltas["gain_percent"] > 0
    # CB exists to remove bank conflicts; the ledger must agree.
    assert deltas["conflict_cycles_removed"] > 0
    assert (
        deltas["conflict_cycles_strategy"]
        < deltas["conflict_cycles_baseline"]
    )


def test_report_json_round_trips(fir_report):
    assert json.loads(json.dumps(fir_report)) == fir_report


def test_render_observability_markdown(fir_report):
    text = render_observability(fir_report)
    assert text.startswith("# Observability report — fir_32_1")
    assert "Compile passes" in text
    assert "Hot pcs" in text
    assert "Bank-conflict table" in text
    assert "## Machine-readable report" in text
    payload = text.split("```json\n", 1)[1].split("```", 1)[0]
    assert json.loads(payload) == fir_report


def test_report_accepts_enum_and_profile_strategy():
    report = build_report(
        "fir_32_1", strategy=Strategy.CB_PROFILE, baseline=Strategy.CB, top=3
    )
    assert report["strategy"]["strategy"] == "CB_PROFILE"
    assert report["baseline"]["strategy"] == "CB"


def test_report_rejects_unknown_names():
    with pytest.raises(ValueError):
        build_report("no_such_workload")
    with pytest.raises(ValueError):
        build_report("fir_32_1", strategy="NOT_A_STRATEGY")
