"""Tests for the paper's first-order cost model (Section 4.2)."""

import pytest

from repro.compiler import compile_module
from repro.cost.model import CostModel, CostReport, TradeoffRow, tradeoff_row
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator


def test_cost_formula_is_x_plus_y_plus_2s_plus_i():
    report = CostReport(data_x=100, data_y=50, stack=10, instructions=30)
    assert report.total == 100 + 50 + 2 * 10 + 30


def test_tradeoff_row_ratios():
    row = tradeoff_row("app", "CB", 1000, 800, 400, 380)
    assert row.pg == pytest.approx(1.25)
    assert row.ci == pytest.approx(0.95)
    assert row.pcr == pytest.approx(1.25 / 0.95)


def test_tradeoff_row_rejects_nonpositive():
    with pytest.raises(ValueError):
        tradeoff_row("a", "CB", 100, 0, 10, 10)


def _measured(strategy):
    pb = ProgramBuilder("t")
    a = pb.global_array("a", 16, float, init=[1.0] * 16)
    b = pb.global_array("b", 16, float, init=[1.0] * 16)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(16) as i:
            f.assign(acc, acc + a[i] * b[i])
        f.assign(out[0], acc)
    compiled = compile_module(pb.build(), strategy=strategy)
    sim = Simulator(compiled.program)
    result = sim.run()
    return CostModel().measure(compiled, result), compiled


def test_measured_cost_components():
    report, compiled = _measured(Strategy.CB)
    assert report.data_x + report.data_y == 16 + 16 + 1
    assert report.instructions == compiled.code_size
    assert report.total > 0


def test_full_duplication_roughly_doubles_data():
    base, _ = _measured(Strategy.SINGLE_BANK)
    dup, _ = _measured(Strategy.FULL_DUP)
    base_data = base.data_x + base.data_y
    dup_data = dup.data_x + dup.data_y
    assert dup_data == 2 * base_data


def test_partitioning_does_not_change_data_size():
    base, _ = _measured(Strategy.SINGLE_BANK)
    cb, _ = _measured(Strategy.CB)
    assert base.data_x + base.data_y == cb.data_x + cb.data_y


def test_packed_code_option_changes_instruction_charge():
    from repro.compiler import compile_module
    from repro.frontend import ProgramBuilder
    from repro.sim.simulator import Simulator

    pb = ProgramBuilder("t")
    a = pb.global_array("a", 8, float, init=[1.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            f.assign(acc, acc + a[i] * 1.0)
        f.assign(out[0], acc)
    compiled = compile_module(pb.build(), strategy=Strategy.CB)
    sim = Simulator(compiled.program)
    result = sim.run()
    flat = CostModel().measure(compiled, result)
    packed = CostModel(packed_code=True).measure(compiled, result)
    assert flat.instructions == compiled.code_size
    assert packed.instructions != flat.instructions
    assert packed.instructions > 0
    # Data and stack terms are untouched by the encoding choice.
    assert (packed.data_x, packed.data_y, packed.stack) == (
        flat.data_x,
        flat.data_y,
        flat.stack,
    )
