"""Error-path behaviour of the front end: clear failures, not miscompiles."""

import pytest

from repro.frontend import ProgramBuilder
from repro.frontend.expressions import wrap


def test_assigning_to_plain_expression_rejected():
    pb = ProgramBuilder("t")
    with pb.function("main") as f:
        x = f.float_var("x")
        with pytest.raises(TypeError, match="cannot assign"):
            f.assign(x + 1.0, 2.0)


def test_strings_rejected_in_expressions():
    with pytest.raises(TypeError):
        wrap("hello")


def test_float_immediate_as_index_rejected():
    pb = ProgramBuilder("t")
    data = pb.global_array("data", 4, float, init=[0.0] * 4)
    out = pb.global_scalar("out", float)
    with pytest.raises(TypeError, match="float immediate"):
        with pb.function("main") as f:
            f.assign(out[0], data[1.5])


def test_call_arity_mismatch_rejected():
    pb = ProgramBuilder("t")
    with pb.function("one", params=[("x", float)], returns=float) as f:
        f.ret(f.param("x"))
    with pb.function("main") as f:
        with pytest.raises(TypeError, match="takes 1 arguments"):
            pb.get("one")(1.0, 2.0)


def test_unsupported_element_type_rejected():
    pb = ProgramBuilder("t")
    with pytest.raises(TypeError, match="unsupported element type"):
        pb.global_array("bad", 4, str)


def test_duplicate_global_rejected():
    pb = ProgramBuilder("t")
    pb.global_array("g", 4, float)
    with pytest.raises(ValueError, match="duplicate symbol"):
        pb.global_array("g", 8, float)


def test_unknown_function_handle_rejected():
    pb = ProgramBuilder("t")
    with pytest.raises(KeyError):
        pb.get("missing")


def test_build_validates_by_default():
    from repro.ir.operations import OpCode, Operation
    from repro.ir.validate import IRValidationError
    from repro.ir.values import Label

    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        f.assign(out[0], 1)
    # Sabotage after the function closed but before build().
    pb.module.main.blocks[0].ops.insert(
        0, Operation(OpCode.BR, target=Label("nowhere"))
    )
    with pytest.raises(IRValidationError):
        pb.build()
