"""Tests for indexed (Rn+Nn) addressing in the lowering."""

from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode
from tests.conftest import compile_and_run


def _memory_ops(module):
    return [op for op in module.main.operations() if op.is_memory]


def test_register_plus_constant_uses_offset_operand():
    pb = ProgramBuilder("t")
    tbl = pb.global_array("tbl", 8, float, init=[float(i) for i in range(8)])
    out = pb.global_array("out", 2, float)
    with pb.function("main") as f:
        p = f.index_var("p")
        f.assign(p, 3)
        f.assign(out[0], tbl[p])
        f.assign(out[1], tbl[p + 2])
    module = pb.build()
    loads = [op for op in _memory_ops(module) if op.is_load]
    offsets = [op.offset_operand() for op in loads]
    assert any(o is not None and o.value == 2 for o in offsets)
    sim, _ = compile_and_run(module)
    assert sim.read_global("out") == [3.0, 5.0]


def test_register_minus_constant_folds_to_negative_offset():
    pb = ProgramBuilder("t")
    tbl = pb.global_array("tbl", 8, float, init=[float(i) for i in range(8)])
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        p = f.index_var("p")
        f.assign(p, 5)
        f.assign(out[0], tbl[p - 2])
    module = pb.build()
    loads = [op for op in _memory_ops(module) if op.is_load]
    assert any(
        (o := op.offset_operand()) is not None and o.value == -2 for op in loads
    )
    sim, _ = compile_and_run(module)
    assert sim.read_global("out") == 3.0


def test_register_plus_register_addressing():
    pb = ProgramBuilder("t")
    tbl = pb.global_array("tbl", 16, float, init=[float(i) for i in range(16)])
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        base = f.index_var("base")
        off = f.index_var("off")
        f.assign(base, 8)
        f.assign(off, 3)
        f.assign(out[0], tbl[base + off])
    module = pb.build()
    # No address-add in main's ops: the MU adds base+off itself.
    opcodes = [op.opcode for op in module.main.operations()]
    loads = [op for op in _memory_ops(module) if op.is_load]
    assert any(op.offset_operand() is not None for op in loads)
    sim, _ = compile_and_run(module)
    assert sim.read_global("out") == 11.0


def test_same_table_adjacent_accesses_pair_under_duplication():
    """The V32 constellation pattern: table[p] and table[p+1] read the
    same array; duplication lets them share one instruction."""
    pb = ProgramBuilder("t")
    tbl = pb.global_array(
        "tbl", 16, float, init=[float(i) for i in range(16)]
    )
    out_a = pb.global_array("out_a", 4, float)
    out_b = pb.global_array("out_b", 4, float)
    with pb.function("main") as f:
        with f.loop(4) as i:
            p = f.index_var("p")
            f.assign(p, i * 2)
            f.assign(out_a[i], tbl[p])
            f.assign(out_b[i], tbl[p + 1])
    from repro.compiler import compile_module
    from repro.partition.strategies import Strategy
    from repro.sim.simulator import Simulator

    module = pb.build()
    compiled = compile_module(module, strategy=Strategy.CB_DUP)
    assert any(s.name == "tbl" for s in compiled.allocation.duplicated)
    sim = Simulator(compiled.program)
    sim.run()
    assert sim.read_global("out_a") == [0.0, 2.0, 4.0, 6.0]
    assert sim.read_global("out_b") == [1.0, 3.0, 5.0, 7.0]


def test_offset_store_addressing():
    pb = ProgramBuilder("t")
    buf = pb.global_array("buf", 8, float)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        p = f.index_var("p")
        f.assign(p, 2)
        f.assign(buf[p + 4], 9.0)
        f.assign(out[0], buf[6])
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 9.0


def test_load_into_address_register():
    """Integer loads may target the address file directly (the
    DSP56001's MOVE X:(R0),R1 idiom), avoiding a MOVIA transfer."""
    pb = ProgramBuilder("t")
    idx = pb.global_array("idx", 4, int, init=[3, 2, 1, 0])
    data = pb.global_array("data", 4, float, init=[10.0, 20.0, 30.0, 40.0])
    out = pb.global_array("out", 4, float)
    with pb.function("main") as f:
        with f.loop(4) as i:
            o = f.index_var("o")
            f.assign(o, idx[i])
            f.assign(out[i], data[o])
    module = pb.build()
    opcodes = [op.opcode for op in module.main.operations()]
    assert OpCode.MOVIA not in opcodes
    sim, _ = compile_and_run(module)
    assert sim.read_global("out") == [40.0, 30.0, 20.0, 10.0]
