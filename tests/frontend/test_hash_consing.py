"""Hash-consing invariants: within one build context, structural
equality IS pointer identity; contexts never leak into each other;
shared subtrees make rewrites reconstruct instead of mutate; and the
interned value classes survive pickling."""

import gc
import pickle

import pytest

from repro.frontend import ProgramBuilder
from repro.frontend.expressions import wrap
from repro.ir.intern import BuildContext, activate, current_context, retire
from repro.ir.types import DataType
from repro.ir.values import Immediate, Label


@pytest.fixture(autouse=True)
def _no_stray_contexts():
    """Builders other tests abandoned mid-build stay alive (reference
    cycles) until a gc pass, and their contexts with them — collect so
    each test here starts from a clean context stack."""
    gc.collect()
    yield


def test_structural_equality_is_identity_within_a_build():
    pb = ProgramBuilder("t")
    with pb.function("main") as f:
        x = f.float_var("x")
        assert (x * 2.0 + 1.0) is (x * 2.0 + 1.0)
        assert wrap(3) is wrap(3)
        assert (-x) is (-x)
        assert (x < 3.0) is (x < 3.0)
        # distinct structure stays distinct
        assert (x + 1.0) is not (x + 2.0)
        # int and float constants never unify, even when == would agree
        assert wrap(3) is not wrap(3.0)


def test_no_sharing_across_builds():
    pb1 = ProgramBuilder("a")
    with pb1.function("main") as f:
        x = f.float_var("x")
        first = x + 1.0
    pb1.build(validate=False)  # retires pb1's context
    pb2 = ProgramBuilder("b")
    with pb2.function("main") as f:
        second = wrap(1.0)
        assert second is not first.right
    assert wrap(1.0) is second  # pb2's own table still shares


def test_no_sharing_without_a_context():
    assert current_context() is None
    a, b = wrap(3), wrap(3)
    assert a is not b


def test_shared_subtrees_make_rewrites_reconstruct():
    pb = ProgramBuilder("t")
    with pb.function("main") as f:
        x = f.float_var("x")
        shared = x * 2.0
        bigger = shared + 1.0
        variant = shared + 2.0
        # both trees alias the common subtree ...
        assert bigger.left is shared and variant.left is shared
        # ... but building the variant reconstructed a fresh root and
        # left the original untouched
        assert bigger is not variant
        assert bigger.right is not variant.right
        assert bigger.right.value == 1.0


def test_immediates_and_labels_intern_within_context():
    context = activate(BuildContext())
    try:
        assert Immediate(3) is Immediate(3)
        assert Immediate(3) is not Immediate(3.0)  # dtype splits the key
        assert Immediate(3).data_type is DataType.INT
        assert Label("L1") is Label("L1")
        assert Label("L1") is not Label("L2")
    finally:
        retire(context)
    one, other = Immediate(3), Immediate(3)
    assert one is not other  # context gone, interning off


def test_interned_values_pickle_cleanly():
    context = activate(BuildContext())
    try:
        immediate = Immediate(7)
        label = Label("L9")
    finally:
        retire(context)
    loaded = pickle.loads(pickle.dumps(immediate))
    assert loaded.value == 7 and loaded.data_type is immediate.data_type
    assert pickle.loads(pickle.dumps(label)).name == "L9"


def test_build_records_node_stats_and_retires_context():
    pb = ProgramBuilder("t")
    with pb.function("main") as f:
        x = f.float_var("x")
        first = x + 1.0
        again = x + 1.0
        assert first is again
    module = pb.build(validate=False)
    assert current_context() is None
    stats = module.node_stats
    assert stats["cons_hits"] >= 1
    assert stats["nodes_created"] >= 2
    assert 0.0 < stats["cons_hit_rate"] < 1.0
    # build() is idempotent: a second call must not blow up on the
    # already-retired context
    pb.build(validate=False)
