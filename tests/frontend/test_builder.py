"""Tests for ProgramBuilder / FunctionBuilder structure."""

import pytest

from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode
from repro.ir.symbols import Storage
from tests.conftest import compile_and_run


def test_globals_and_locals_declared():
    pb = ProgramBuilder("t")
    g = pb.global_array("g", 8, float)
    s = pb.global_scalar("s", int, init=7)
    with pb.function("main") as f:
        l = f.local_array("l", 4, float)
        ls = f.local_scalar("ls", int)
        f.assign(l[0], 1.0)
        f.assign(ls[0], 2)
        f.assign(g[0], l[0])
        f.assign(s[0], ls[0])
    module = pb.build()
    assert module.globals.get("g").size == 8
    assert module.globals.get("s").initializer == [7]
    locals_ = {sym.name: sym for sym in module.main.local_symbols()}
    assert locals_["l"].storage is Storage.LOCAL
    assert locals_["ls"].size == 1


def test_main_gets_halt_helper_gets_ret():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("helper") as f:
        pass
    with pb.function("main") as f:
        f.assign(out[0], 1)
    module = pb.build()
    assert module.main.blocks[-1].terminator.opcode is OpCode.HALT
    assert module.function("helper").blocks[-1].terminator.opcode is OpCode.RET


def test_constants_hoisted_to_entry_once():
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 4, float)
    with pb.function("main") as f:
        x = f.float_var("x")
        f.assign(x, 0.0)
        with f.loop(4) as i:
            # 2.5 is used every iteration but must materialize once.
            f.assign(x, x + 2.5 * 1.0)
            f.assign(out[i], x)
    module = pb.build()
    entry_consts = [
        op for op in module.main.blocks[0].ops if op.opcode is OpCode.FCONST
    ]
    body_consts = [
        op
        for block in module.main.blocks[1:]
        for op in block.ops
        if op.opcode is OpCode.FCONST
    ]
    assert entry_consts
    assert not body_consts
    sim, _ = compile_and_run(module)
    assert sim.read_global("out") == [2.5, 5.0, 7.5, 10.0]


def test_duplicate_function_name_rejected():
    pb = ProgramBuilder("t")
    with pb.function("f") as f:
        pass
    with pytest.raises(ValueError):
        with pb.function("f") as f:
            pass


def test_loop_depths_annotated():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var()
        f.assign(acc, 0.0)
        with f.loop(2):
            with f.loop(3):
                f.assign(acc, acc + 1.0)
        f.assign(out[0], acc)
    module = pb.build()
    depths = {block.label: block.loop_depth for block in module.main.blocks}
    assert max(depths.values()) == 2
    assert depths[module.main.blocks[0].label] == 0


def test_param_access_and_return_value():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("scale", params=[("x", float), ("k", float)], returns=float) as f:
        f.ret(f.param("x") * f.param("k"))
    with pb.function("main") as f:
        f.assign(out[0], pb.get("scale")(3.0, 4.0))
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 12.0


def test_unknown_param_raises():
    pb = ProgramBuilder("t")
    with pb.function("f", params=[("x", float)]) as f:
        with pytest.raises(KeyError):
            f.param("missing")
        f.ret()
    with pb.function("main") as f:
        pass
    pb.build()


def test_ret_value_without_declared_type_rejected():
    pb = ProgramBuilder("t")
    with pytest.raises(ValueError):
        with pb.function("f") as f:
            f.ret(1.0)


def test_step_must_be_positive():
    pb = ProgramBuilder("t")
    with pb.function("main") as f:
        with pytest.raises(ValueError):
            with f.for_range(0, 10, step=0):
                pass
        with pytest.raises(ValueError):
            with f.for_range(10, 0, step=-1):
                pass


def test_else_without_if_rejected():
    pb = ProgramBuilder("t")
    with pb.function("main") as f:
        with pytest.raises(RuntimeError):
            with f.else_():
                pass
