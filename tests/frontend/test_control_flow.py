"""End-to-end semantics of the structured control-flow constructs."""

import pytest

from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from tests.conftest import compile_and_run, run_all_strategies


def test_counted_loop_runs_exact_trip_count():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        n = f.int_var("n")
        f.assign(n, 0)
        with f.loop(37):
            f.assign(n, n + 1)
        f.assign(out[0], n)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 37


def test_zero_trip_hw_loop_skips_body():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    probe = pb.global_scalar("probe", int)
    with pb.function("main") as f:
        count = f.index_var("count")
        f.assign(count, 0)
        n = f.int_var("n")
        f.assign(n, 0)
        with f.loop(count):
            f.assign(n, n + 1)
        f.assign(out[0], n)
        # Work *after* the loop must still execute (regression test for
        # the zero-trip skip jumping over trailing instructions).
        f.assign(probe[0], 99)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 0
    assert sim.read_global("probe") == 99


def test_runtime_trip_count():
    pb = ProgramBuilder("t")
    counts = pb.global_array("counts", 3, int, init=[5, 0, 2])
    out = pb.global_array("out", 3, int)
    with pb.function("main") as f:
        with f.loop(3) as i:
            limit = f.index_var("limit")
            f.assign(limit, counts[i])
            total = f.int_var("total")
            f.assign(total, 0)
            with f.loop(limit):
                f.assign(total, total + 2)
            f.assign(out[i], total)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [10, 0, 4]


def test_for_range_with_start_and_step():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        total = f.int_var("total")
        f.assign(total, 0)
        with f.for_range(3, 12, step=3) as i:  # 3, 6, 9
            f.assign(total, total + i)
        f.assign(out[0], total)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 18


def test_software_loop_matches_hw_loop():
    def build(hw):
        pb = ProgramBuilder("t")
        out = pb.global_scalar("out", int)
        with pb.function("main") as f:
            total = f.int_var("total")
            f.assign(total, 0)
            with f.for_range(0, 9, hw=hw) as i:
                f.assign(total, total + i)
            f.assign(out[0], total)
        return pb.build()

    sim_hw, result_hw = compile_and_run(build(True))
    sim_sw, result_sw = compile_and_run(build(False))
    assert sim_hw.read_global("out") == sim_sw.read_global("out") == 36
    # The zero-overhead loop must be strictly faster than compare/branch.
    assert result_hw.cycles < result_sw.cycles


def test_nested_hw_loops():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        total = f.int_var("total")
        f.assign(total, 0)
        with f.loop(4):
            with f.loop(5):
                with f.loop(3):
                    f.assign(total, total + 1)
        f.assign(out[0], total)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 60


def test_if_without_else():
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 4, int)
    with pb.function("main") as f:
        with f.loop(4) as i:
            v = f.int_var("v")
            f.assign(v, 0)
            probe = f.int_var("probe")
            f.assign(probe, i > 1)
            with f.if_(probe):
                f.assign(v, 7)
            f.assign(out[i], v)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [0, 0, 7, 7]


def test_if_else_both_arms():
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 4, int)
    with pb.function("main") as f:
        with f.loop(4) as i:
            v = f.int_var("v")
            idx = f.int_var("idx")
            f.assign(idx, i + 0)
            with f.if_((idx % 2) == 0):
                f.assign(v, 100)
            with f.else_():
                f.assign(v, -100)
            f.assign(out[i], v)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [100, -100, 100, -100]


def test_nested_if_else():
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 4, int)
    with pb.function("main") as f:
        with f.loop(4) as i:
            x = f.int_var("x")
            f.assign(x, i + 0)
            v = f.int_var("v")
            with f.if_(x < 2):
                with f.if_(x < 1):
                    f.assign(v, 0)
                with f.else_():
                    f.assign(v, 1)
            with f.else_():
                with f.if_(x < 3):
                    f.assign(v, 2)
                with f.else_():
                    f.assign(v, 3)
            f.assign(out[i], v)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [0, 1, 2, 3]


def test_while_loop():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        n = f.int_var("n")
        total = f.int_var("total")
        f.assign(n, 10)
        f.assign(total, 0)
        with f.while_(lambda: n > 0):
            f.assign(total, total + n)
            f.assign(n, n - 3)
        f.assign(out[0], total)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 10 + 7 + 4 + 1


def test_while_loop_never_entered():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        n = f.int_var("n")
        f.assign(n, 0)
        with f.while_(lambda: n > 0):
            f.assign(n, n - 1)
        f.assign(out[0], 42)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 42


def test_control_flow_consistent_across_strategies():
    def build():
        pb = ProgramBuilder("t")
        out = pb.global_scalar("out", int)
        with pb.function("main") as f:
            total = f.int_var("total")
            f.assign(total, 0)
            with f.loop(6) as i:
                x = f.int_var()
                f.assign(x, i + 0)
                with f.if_((x % 2) == 0):
                    f.assign(total, total + x)
                with f.else_():
                    f.assign(total, total - 1)
            f.assign(out[0], total)
        return pb.build()

    def check(sim, strategy):
        assert sim.read_global("out") == (0 + 2 + 4) - 3, strategy

    run_all_strategies(build, check)
