"""Tests for induction-variable strength reduction of array indices."""

import pytest

from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode
from tests.conftest import compile_and_run


def _body_opcodes(module):
    """Opcodes of every block at loop depth >= 1."""
    ops = []
    for block in module.main.blocks:
        if block.loop_depth >= 1:
            ops.extend(op.opcode for op in block.ops)
    return ops


def test_affine_index_reduced_out_of_inner_loop():
    pb = ProgramBuilder("t")
    x = pb.global_array("x", 24, float, init=[float(i) for i in range(24)])
    out = pb.global_array("out", 8, float)
    with pb.function("main") as f:
        with f.loop(8, name="n") as n:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.loop(16, name="k") as k:
                f.assign(acc, acc + x[n + k] * 1.0)
            f.assign(out[n], acc)
    module = pb.build()
    sim, _ = compile_and_run(module)
    expected = [sum(range(n, n + 16)) for n in range(8)]
    assert sim.read_global("out") == [float(v) for v in expected]


def test_reduced_index_semantics_with_subtraction():
    pb = ProgramBuilder("t")
    x = pb.global_array("x", 10, float, init=[float(i) for i in range(10)])
    out = pb.global_array("out", 5, float)
    with pb.function("main") as f:
        lim = 5
        with f.loop(lim, name="j") as j:
            # x[9 - j] walks backwards via a negative-step induction.
            f.assign(out[j], x[9 - j])
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [9.0, 8.0, 7.0, 6.0, 5.0]


def test_same_expression_reuses_one_induction_register():
    pb = ProgramBuilder("t")
    x = pb.global_array("x", 20, float, init=[1.0] * 20)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4, name="m") as m:
            with f.loop(8, name="i") as i:
                # x[i + m] appears twice: one induction register expected.
                f.assign(acc, acc + x[i + m] * x[i + m])
        f.assign(out[0], acc)
    module = pb.build()
    sim, _ = compile_and_run(module)
    assert sim.read_global("out") == 32.0


def test_guard_rejects_modifying_assumed_invariant():
    pb = ProgramBuilder("t")
    x = pb.global_array("x", 32, float, init=[0.0] * 32)
    with pb.function("main") as f:
        base = f.index_var("base")
        f.assign(base, 0)
        acc = f.float_var("acc")
        with f.loop(4, name="i") as i:
            f.assign(acc, x[base + i])
            with pytest.raises(RuntimeError, match="strength-reduced"):
                f.assign(base, base + 1)


def test_enclosing_index_is_valid_invariant_despite_its_latch():
    pb = ProgramBuilder("t")
    x = pb.global_array(
        "x", 12, float, init=[float(i) for i in range(12)]
    )
    out = pb.global_array("out", 3, float)
    with pb.function("main") as f:
        with f.loop(3, name="outer") as outer:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.loop(4, name="inner") as inner:
                f.assign(acc, acc + x[outer + inner] * 1.0)
            # `outer` increments at its own latch; no guard violation.
            f.assign(out[outer], acc)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [
        float(sum(range(0, 4))),
        float(sum(range(1, 5))),
        float(sum(range(2, 6))),
    ]


def test_index_var_invariant_is_reduced():
    pb = ProgramBuilder("t")
    x = pb.global_array("x", 40, float, init=[float(i) for i in range(40)])
    out = pb.global_array("out", 4, float)
    with pb.function("main") as f:
        with f.loop(4, name="r") as r:
            row = f.index_var("row")
            f.assign(row, r * 10)
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.loop(10, name="c") as c:
                f.assign(acc, acc + x[row + c] * 1.0)
            f.assign(out[r], acc)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [
        float(sum(range(0, 10))),
        float(sum(range(10, 20))),
        float(sum(range(20, 30))),
        float(sum(range(30, 40))),
    ]


def test_reduction_in_software_loop():
    pb = ProgramBuilder("t")
    x = pb.global_array("x", 12, float, init=[float(i) for i in range(12)])
    out = pb.global_array("out", 4, float)
    with pb.function("main") as f:
        with f.for_range(0, 4, hw=False, name="i") as i:
            f.assign(out[i], x[i + 8])
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [8.0, 9.0, 10.0, 11.0]
