"""Tests for expression construction and lowering."""

import pytest

from repro.frontend import ProgramBuilder
from repro.frontend.expressions import (
    ArrayRef,
    BinOp,
    Compare,
    Const,
    UnOp,
    VarRef,
    sqrt,
    wrap,
)
from repro.ir.operations import OpCode
from repro.ir.types import DataType
from tests.conftest import compile_and_run


def test_wrap_coerces_python_numbers():
    assert isinstance(wrap(3), Const)
    assert wrap(3).dtype is DataType.INT
    assert wrap(3.5).dtype is DataType.FLOAT
    assert wrap(True).value == 1
    with pytest.raises(TypeError):
        wrap("text")


def test_operator_overloading_builds_trees():
    pb = ProgramBuilder("t")
    with pb.function("main") as f:
        x = f.float_var("x")
        expr = x * 2.0 + 1.0
        assert isinstance(expr, BinOp) and expr.operator == "+"
        assert isinstance(expr.left, BinOp) and expr.left.operator == "*"
        cmp = x < 3.0
        assert isinstance(cmp, Compare)
        neg = -x
        assert isinstance(neg, UnOp)


def test_float_promotion():
    pb = ProgramBuilder("t")
    with pb.function("main") as f:
        i = f.int_var("i")
        x = f.float_var("x")
        assert (i + x).dtype is DataType.FLOAT
        assert (i + 1).dtype is DataType.INT


def _ops_of(module, block_index=0):
    return [op.opcode for op in module.main.blocks[block_index].ops]


def test_mac_idiom_folds_to_fmac():
    pb = ProgramBuilder("t")
    a = pb.global_array("a", 4, float, init=[1, 2, 3, 4.0])
    b = pb.global_array("b", 4, float, init=[1, 1, 1, 1.0])
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4) as i:
            f.assign(acc, acc + a[i] * b[i])
        f.assign(out[0], acc)
    module = pb.build()
    body = module.main.blocks[1]
    assert OpCode.FMAC in [op.opcode for op in body.ops]
    assert OpCode.FADD not in [op.opcode for op in body.ops]


def test_mac_idiom_both_operand_orders():
    for flipped in (False, True):
        pb = ProgramBuilder("t")
        out = pb.global_scalar("out", float)
        with pb.function("main") as f:
            acc = f.float_var("acc")
            x = f.float_var("x")
            f.assign(acc, 1.0)
            f.assign(x, 2.0)
            if flipped:
                f.assign(acc, x * x + acc)
            else:
                f.assign(acc, acc + x * x)
            f.assign(out[0], acc)
        module = pb.build()
        opcodes = [op.opcode for op in module.main.operations()]
        assert OpCode.FMAC in opcodes
        sim, _ = compile_and_run(module)
        assert sim.read_global("out") == 5.0


def test_int_float_conversion_ops_inserted():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        i = f.int_var("i")
        f.assign(i, 3)
        f.assign(out[0], i * 0.5)
    module = pb.build()
    opcodes = [op.opcode for op in module.main.operations()]
    assert OpCode.ITOF in opcodes
    sim, _ = compile_and_run(module)
    assert sim.read_global("out") == 1.5


def test_sqrt_intrinsic():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        x = f.float_var("x")
        f.assign(x, 9.0)
        f.assign(out[0], sqrt(x))
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 3.0


def test_division_and_modulo_semantics():
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 4, int)
    with pb.function("main") as f:
        a = f.int_var("a")
        b = f.int_var("b")
        f.assign(a, -7)
        f.assign(b, 2)
        f.assign(out[0], a / b)
        f.assign(out[1], a % b)
        f.assign(out[2], (7 + a * 0) / b)
        f.assign(out[3], abs(a))
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [-3, -1, 3, 7]


def test_bitwise_operations():
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 6, int)
    with pb.function("main") as f:
        a = f.int_var("a")
        f.assign(a, 0b1100)
        f.assign(out[0], a & 0b1010)
        f.assign(out[1], a | 0b0011)
        f.assign(out[2], a ^ 0b1111)
        f.assign(out[3], a << 2)
        f.assign(out[4], a >> 2)
        f.assign(out[5], ~a)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [8, 15, 3, 48, 3, ~12]


def test_compare_chain_values():
    pb = ProgramBuilder("t")
    out = pb.global_array("out", 6, int)
    with pb.function("main") as f:
        a = f.int_var("a")
        f.assign(a, 5)
        f.assign(out[0], a == 5)
        f.assign(out[1], a != 5)
        f.assign(out[2], a < 6)
        f.assign(out[3], a <= 4)
        f.assign(out[4], a > 4)
        f.assign(out[5], a >= 6)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [1, 0, 1, 0, 1, 0]


def test_array_ref_of_int_array_usable_as_index():
    pb = ProgramBuilder("t")
    idx = pb.global_array("idx", 3, int, init=[2, 0, 1])
    data = pb.global_array("data", 3, float, init=[10.0, 20.0, 30.0])
    out = pb.global_array("out", 3, float)
    with pb.function("main") as f:
        with f.loop(3) as i:
            f.assign(out[i], data[idx[i]])
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == [30.0, 10.0, 20.0]
