"""Shared test helpers: build, compile, and run small programs."""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator


def compile_and_run(module, strategy=Strategy.CB, profile_counts=None, **sim_kwargs):
    """Compile *module*, simulate it, and return (simulator, result)."""
    compiled = compile_module(
        module, strategy=strategy, profile_counts=profile_counts
    )
    simulator = Simulator(compiled.program, **sim_kwargs)
    result = simulator.run()
    return simulator, result


def run_all_strategies(build, check, profile_counts=None):
    """Run *build()* under every strategy, calling ``check(sim, strategy)``.

    ``build`` must return a fresh module per call (compilation consumes
    modules).  CB_PROFILE uses empty profile counts unless provided.
    """
    for strategy in Strategy:
        counts = profile_counts
        if strategy is Strategy.CB_PROFILE and counts is None:
            counts = {}
        simulator, _result = compile_and_run(
            build(), strategy=strategy, profile_counts=counts
        )
        check(simulator, strategy)


@pytest.fixture
def dot_product_module():
    """A canonical two-array kernel: 16-element dot product."""

    def build():
        pb = ProgramBuilder("dot")
        a = pb.global_array("A", 16, float, init=[float(i) for i in range(16)])
        b = pb.global_array("B", 16, float, init=[0.5] * 16)
        out = pb.global_scalar("out", float)
        with pb.function("main") as f:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.loop(16) as i:
                f.assign(acc, acc + a[i] * b[i])
            f.assign(out[0], acc)
        return pb.build()

    return build
