"""Tests for the operation-compaction (VLIW scheduling) pass."""

from repro.compiler.compaction import compact_block
from repro.compiler.pipeline import compile_module
from repro.frontend import ProgramBuilder
from repro.ir.block import BasicBlock
from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import MemoryBank, Symbol
from repro.ir.types import RegClass
from repro.ir.values import Immediate, Label, VirtualRegister
from repro.machine.resources import FunctionalUnit
from repro.partition.strategies import Strategy


def _reg(rclass=RegClass.FLOAT, index=0):
    return VirtualRegister(index, rclass)


def _block(ops, label="b"):
    block = BasicBlock(label)
    for op in ops:
        block.append(op)
    return block


def _load(sym, bank, dest):
    return Operation(
        OpCode.LOAD, dest=dest, sources=(Immediate(0),), symbol=sym, bank=bank
    )


def test_memory_ops_route_by_bank():
    sx = Symbol("x", size=4)
    sy = Symbol("y", size=4)
    ops = [
        _load(sx, MemoryBank.X, _reg(index=1)),
        _load(sy, MemoryBank.Y, _reg(index=2)),
    ]
    instructions = compact_block(_block(ops))
    assert len(instructions) == 1
    slots = instructions[0].slots
    assert slots[FunctionalUnit.MU0].symbol is sx
    assert slots[FunctionalUnit.MU1].symbol is sy


def test_same_bank_ops_serialize():
    sx = Symbol("x", size=4)
    sx2 = Symbol("x2", size=4)
    ops = [
        _load(sx, MemoryBank.X, _reg(index=1)),
        _load(sx2, MemoryBank.X, _reg(index=2)),
    ]
    instructions = compact_block(_block(ops))
    assert len(instructions) == 2


def test_dual_ported_ignores_banks():
    sx = Symbol("x", size=4)
    sx2 = Symbol("x2", size=4)
    ops = [
        _load(sx, MemoryBank.X, _reg(index=1)),
        _load(sx2, MemoryBank.X, _reg(index=2)),
    ]
    instructions = compact_block(_block(ops), dual_ported=True)
    assert len(instructions) == 1


def test_duplicated_load_narrowed_to_free_unit():
    dup = Symbol("d", size=4)
    other = Symbol("x", size=4)
    ops = [
        _load(other, MemoryBank.X, _reg(index=1)),
        _load(dup, MemoryBank.BOTH, _reg(index=2)),
    ]
    instructions = compact_block(_block(ops))
    assert len(instructions) == 1
    narrowed = instructions[0].slots[FunctionalUnit.MU1]
    assert narrowed.symbol is dup
    assert narrowed.bank is MemoryBank.Y


def test_terminator_shares_final_instruction_when_free():
    r1 = _reg(RegClass.INT, 1)
    ops = [
        Operation(OpCode.CONST, dest=r1, sources=(Immediate(1),)),
        Operation(OpCode.BR, target=Label("elsewhere")),
    ]
    instructions = compact_block(_block(ops))
    assert len(instructions) == 1
    assert instructions[0].slots[FunctionalUnit.PCU].opcode is OpCode.BR


def test_conditional_branch_waits_for_its_condition():
    r1 = _reg(RegClass.INT, 1)
    cond = _reg(RegClass.INT, 2)
    ops = [
        Operation(OpCode.CONST, dest=r1, sources=(Immediate(1),)),
        Operation(OpCode.CMPLT, dest=cond, sources=(r1, r1)),
        Operation(OpCode.BRT, sources=(cond,), target=Label("t")),
    ]
    instructions = compact_block(_block(ops))
    # cmplt computes in the final value-producing instruction; the branch
    # reads it, so it must occupy a later instruction.
    assert instructions[-1].slots[FunctionalUnit.PCU].opcode is OpCode.BRT
    assert len(instructions[-1].slots) == 1


def test_loop_begin_lands_in_final_instruction():
    counter = _reg(RegClass.ADDR, 1)
    store_sym = Symbol("s", size=2)
    ops = [
        Operation(OpCode.ACONST, dest=counter, sources=(Immediate(4),)),
        Operation(
            OpCode.STORE,
            sources=(_reg(RegClass.FLOAT, 2), Immediate(0)),
            symbol=store_sym,
            bank=MemoryBank.X,
        ),
        Operation(OpCode.LOOP_BEGIN, sources=(counter,), target=Label("L")),
    ]
    instructions = compact_block(_block(ops))
    last = instructions[-1]
    assert last.slots[FunctionalUnit.PCU].opcode is OpCode.LOOP_BEGIN
    # Nothing may be scheduled after the LOOP_BEGIN instruction.
    for instr in instructions[:-1]:
        assert FunctionalUnit.PCU not in instr.slots


def test_loop_end_marker_attaches_to_final_instruction():
    r1 = _reg(RegClass.FLOAT, 1)
    ops = [
        Operation(OpCode.FADD, dest=r1, sources=(r1, r1)),
        Operation(OpCode.LOOP_END, target=Label("L9")),
    ]
    instructions = compact_block(_block(ops))
    assert instructions[-1].loop_ends == ["L9"]


def test_marker_only_block_gets_one_instruction():
    ops = [Operation(OpCode.LOOP_END, target=Label("L1"))]
    instructions = compact_block(_block(ops))
    assert len(instructions) == 1
    assert instructions[0].loop_ends == ["L1"]
    assert len(instructions[0].slots) == 0


def test_empty_block_produces_no_instructions():
    assert compact_block(_block([])) == []


def test_no_unit_holds_two_ops(dot_product_module):
    compiled = compile_module(dot_product_module(), strategy=Strategy.CB)
    for instruction in compiled.program.instructions:
        units = list(instruction.slots)
        assert len(units) == len(set(units))


def test_units_match_their_op_classes(dot_product_module):
    from repro.machine.resources import bank_for_unit, units_for_class

    compiled = compile_module(dot_product_module(), strategy=Strategy.CB)
    for instruction in compiled.program.instructions:
        for unit, op in instruction.slots.items():
            assert unit in units_for_class(op.unit)
            if op.is_memory:
                assert op.bank is bank_for_unit(unit)
