"""Tests for the shared list-scheduling engine."""

import pytest

from repro.analysis.dependence import build_dependence_graph
from repro.compiler.listsched import (
    SchedulePolicy,
    run_list_schedule,
    schedulable_indices,
)
from repro.ir.operations import OpCode, Operation, UnitClass
from repro.ir.types import RegClass
from repro.ir.values import Immediate, Label, VirtualRegister


def _reg(rclass=RegClass.INT, index=0):
    return VirtualRegister(index, rclass)


class RecordingPolicy(SchedulePolicy):
    """Places every op, respecting simple per-unit-class capacities."""

    def __init__(self, capacities):
        self.capacities = capacities
        self.rounds = []
        self._free = {}

    def begin_round(self):
        self._free = dict(self.capacities)

    def try_place(self, index, op):
        unit = op.unit
        if self._free.get(unit, 0) <= 0:
            return False
        self._free[unit] -= 1
        return True

    def end_round(self, placed):
        self.rounds.append([index for index, _op in placed])


DEFAULT_CAPACITY = {
    UnitClass.PCU: 1,
    UnitClass.MU: 2,
    UnitClass.AU: 2,
    UnitClass.DU: 2,
    UnitClass.FPU: 2,
}


def test_independent_ops_pack_into_one_round():
    ops = [
        Operation(OpCode.CONST, dest=_reg(index=i), sources=(Immediate(i),))
        for i in range(2)
    ]
    graph = build_dependence_graph(ops)
    policy = RecordingPolicy(DEFAULT_CAPACITY)
    rounds = run_list_schedule(graph, policy)
    assert rounds == 1
    assert sorted(policy.rounds[0]) == [0, 1]


def test_flow_dependence_forces_new_round():
    r1, r2 = _reg(index=1), _reg(index=2)
    ops = [
        Operation(OpCode.CONST, dest=r1, sources=(Immediate(1),)),
        Operation(OpCode.ADD, dest=r2, sources=(r1, r1)),
    ]
    graph = build_dependence_graph(ops)
    policy = RecordingPolicy(DEFAULT_CAPACITY)
    assert run_list_schedule(graph, policy) == 2
    assert policy.rounds == [[0], [1]]


def test_anti_dependent_ops_share_a_round():
    r1, r2 = _reg(index=1), _reg(index=2)
    ops = [
        Operation(OpCode.ADD, dest=r2, sources=(r1, r1)),  # reads r1
        Operation(OpCode.CONST, dest=r1, sources=(Immediate(9),)),  # writes r1
    ]
    graph = build_dependence_graph(ops)
    policy = RecordingPolicy(DEFAULT_CAPACITY)
    assert run_list_schedule(graph, policy) == 1
    assert sorted(policy.rounds[0]) == [0, 1]


def test_anti_dependent_op_waits_for_its_read():
    """If the reading op cannot issue this round, the writer must wait."""
    r1, r2, r3 = _reg(index=1), _reg(index=2), _reg(index=3)
    ops = [
        Operation(OpCode.ADD, dest=r2, sources=(r1, r1)),
        Operation(OpCode.SUB, dest=r3, sources=(r1, r1)),
        Operation(OpCode.MUL, dest=r3, sources=(r1, r1)),  # 3rd DU op
        Operation(OpCode.CONST, dest=r1, sources=(Immediate(0),)),
    ]
    # Capacity DU=2: one of the three readers spills to round 2; the
    # CONST writing r1 must not land in round 1 (it would clobber the
    # pending reader's source)... but the engine is allowed to place it
    # with the readers of round 1 only if ALL readers are placed.
    graph = build_dependence_graph(ops)
    policy = RecordingPolicy(DEFAULT_CAPACITY)
    run_list_schedule(graph, policy)
    flat = {index: r for r, round_ in enumerate(policy.rounds) for index in round_}
    # op 2 has an output dep on op 1 (same dest) so it runs later; the
    # writer (op 3) must come no earlier than every reader.
    assert flat[3] >= flat[0]
    assert flat[3] >= flat[1]
    assert flat[3] >= flat[2]


def test_priority_prefers_long_chains():
    ra, rb, rc, rd = (_reg(index=i) for i in range(1, 5))
    ops = [
        Operation(OpCode.CONST, dest=rd, sources=(Immediate(0),)),  # no deps
        Operation(OpCode.CONST, dest=ra, sources=(Immediate(1),)),  # chain head
        Operation(OpCode.ADD, dest=rb, sources=(ra, ra)),
        Operation(OpCode.ADD, dest=rc, sources=(rb, rb)),
    ]
    graph = build_dependence_graph(ops)
    policy = RecordingPolicy({UnitClass.DU: 1, UnitClass.PCU: 1})
    run_list_schedule(graph, policy)
    # With a single DU the chain head (higher priority) must go first.
    assert policy.rounds[0] == [1]


def test_schedulable_indices_excludes_control_tail():
    r1 = _reg(RegClass.ADDR, 1)
    ops = [
        Operation(OpCode.ACONST, dest=r1, sources=(Immediate(0),)),
        Operation(OpCode.LOOP_BEGIN, sources=(Immediate(3),), target=Label("L")),
        Operation(OpCode.LOOP_END, target=Label("L")),
        Operation(OpCode.NOP),
        Operation(OpCode.BR, target=Label("x")),
    ]
    graph = build_dependence_graph(ops)
    assert schedulable_indices(graph) == [0]


def test_memory_blocked_callback_fires_once_per_round():
    from repro.ir.symbols import Symbol

    sym_a = Symbol("a", size=4)
    sym_b = Symbol("b", size=4)
    load_a = Operation(
        OpCode.LOAD, dest=_reg(RegClass.FLOAT, 1), sources=(Immediate(0),), symbol=sym_a
    )
    load_b = Operation(
        OpCode.LOAD, dest=_reg(RegClass.FLOAT, 2), sources=(Immediate(0),), symbol=sym_b
    )

    class OneMemPolicy(RecordingPolicy):
        def __init__(self):
            super().__init__(
                {UnitClass.MU: 1, UnitClass.PCU: 1, UnitClass.DU: 2}
            )
            self.blocked = []

        def memory_blocked(self, index, op, first_index, first_op):
            self.blocked.append((first_op.symbol.name, op.symbol.name))

    graph = build_dependence_graph([load_a, load_b])
    policy = OneMemPolicy()
    run_list_schedule(graph, policy)
    assert policy.blocked == [("a", "b")]


def test_refusing_policy_raises():
    class NeverPolicy(SchedulePolicy):
        def begin_round(self):
            pass

        def try_place(self, index, op):
            return False

        def end_round(self, placed):
            pass

    ops = [Operation(OpCode.CONST, dest=_reg(), sources=(Immediate(0),))]
    graph = build_dependence_graph(ops)
    with pytest.raises(RuntimeError):
        run_list_schedule(graph, NeverPolicy())
