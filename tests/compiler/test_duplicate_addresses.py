"""Paper Section 3.2's layout detail: duplicated data lives at the SAME
address (globals) / SAME offset (locals) in both banks, so one address
computation serves either copy."""

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.ir.symbols import MemoryBank
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator


def _dup_global_module():
    pb = ProgramBuilder("t")
    # Declared last, but duplication must still allocate it first.
    pb.global_array("filler_a", 5, float, init=[0.0] * 5)
    pb.global_array("filler_b", 3, float, init=[0.0] * 3)
    signal = pb.global_array("signal", 8, float, init=[1.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4, name="m") as m:
            with f.for_range(0, 4, name="n") as n:
                f.assign(acc, acc + signal[n] * signal[n + m])
        f.assign(out[0], acc)
    return pb.build()


def test_duplicated_global_shares_one_address():
    module = _dup_global_module()
    compiled = compile_module(module, strategy=Strategy.CB_DUP)
    assert module.globals.get("signal").bank is MemoryBank.BOTH
    bank, address = compiled.program.layout.address_of("signal")
    assert bank is MemoryBank.BOTH
    assert address == 0  # allocated before every single-bank global
    # And the data really is at that address in both physical banks.
    sim = Simulator(compiled.program)
    sim.run()
    x_copy = sim.memory[0][address : address + 8]
    y_copy = sim.memory[1][address : address + 8]
    assert x_copy == y_copy == [1.0] * 8


def test_duplicated_local_shares_one_offset():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        pad = f.local_array("pad", 3, float)
        buf = f.local_array("buf", 6, float)
        f.assign(pad[0], 0.0)
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(6) as i:
            f.assign(buf[i], 2.0)
        with f.loop(3, name="m") as m:
            with f.for_range(0, 3, name="n") as n:
                f.assign(acc, acc + buf[n] * buf[n + m])
        f.assign(out[0], acc)
    module = pb.build()
    compiled = compile_module(module, strategy=Strategy.CB_DUP)
    buf_sym = module.main.symbols.get("buf")
    assert buf_sym.bank is MemoryBank.BOTH
    frame = compiled.program.frames["main"]
    bank, offset = frame.offset_of("buf")
    assert bank is MemoryBank.BOTH
    assert offset == 0  # duplicated locals first on both stacks
    sim = Simulator(compiled.program)
    sim.run()
    assert sim.read_global("out") == 2.0 * 2.0 * (3 + 3 + 3)
