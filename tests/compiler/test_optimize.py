"""Tests for the dead-code elimination pass."""

import pytest

from repro.compiler import CompileOptions, compile_module
from repro.compiler.optimize import eliminate_dead_code
from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator
from repro.workloads.registry import KERNELS


def test_dead_constant_removed():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        dead = f.int_var("dead")
        f.assign(dead, 123)
        f.assign(out[0], 7)
    module = pb.build()
    removed = eliminate_dead_code(module)
    assert removed >= 1
    opcodes = [op.opcode for op in module.main.operations()]
    # The dead CONST is gone; the live store machinery remains.
    assert opcodes.count(OpCode.CONST) == 1  # the value 7


def test_dead_chain_removed_transitively():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        a = f.float_var("a")
        b = f.float_var("b")
        c = f.float_var("c")
        f.assign(a, 1.0)
        f.assign(b, a * 2.0)
        f.assign(c, b + a)  # c never used
        f.assign(out[0], 5.0)
    module = pb.build()
    removed = eliminate_dead_code(module)
    assert removed >= 3  # the whole chain


def test_dead_fmac_removed():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        x = f.float_var("x")
        f.assign(x, 2.0)
        f.assign(acc, 0.0)
        f.assign(acc, acc + x * x)  # FMAC, but acc never read afterwards
        f.assign(out[0], 9.0)
    module = pb.build()
    opcodes_before = [op.opcode for op in module.main.operations()]
    assert OpCode.FMAC in opcodes_before
    eliminate_dead_code(module)
    opcodes_after = [op.opcode for op in module.main.operations()]
    assert OpCode.FMAC not in opcodes_after


def test_stores_and_loads_never_removed():
    pb = ProgramBuilder("t")
    sink = pb.global_scalar("sink", float)
    src = pb.global_scalar("src", float, init=2.0)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        v = f.float_var("v")
        f.assign(v, src[0])    # load feeding only a store
        f.assign(sink[0], v)
        f.assign(out[0], 1.0)
    module = pb.build()
    eliminate_dead_code(module)
    memory_ops = [op for op in module.main.operations() if op.is_memory]
    assert len(memory_ops) == 3


def test_live_code_untouched(dot_product_module):
    module = dot_product_module()
    before = sum(1 for _ in module.operations())
    removed = eliminate_dead_code(module)
    assert removed == 0
    assert sum(1 for _ in module.operations()) == before


def test_optimize_option_preserves_semantics():
    for name in ("fir_32_1", "latnrm_8_1"):
        workload = KERNELS[name]
        compiled = compile_module(
            workload.build(),
            CompileOptions(strategy=Strategy.CB, optimize=True),
        )
        simulator = Simulator(compiled.program)
        simulator.run()
        workload.verify(simulator)


def test_optimize_shrinks_padded_program():
    def build(with_padding):
        pb = ProgramBuilder("t")
        out = pb.global_scalar("out", float)
        with pb.function("main") as f:
            acc = f.float_var("acc")
            f.assign(acc, 1.5)
            if with_padding:
                for i in range(6):
                    junk = f.float_var()
                    f.assign(junk, acc * float(i))
            f.assign(out[0], acc)
        return pb.build()

    clean = compile_module(
        build(False), CompileOptions(strategy=Strategy.CB, optimize=True)
    )
    padded = compile_module(
        build(True), CompileOptions(strategy=Strategy.CB, optimize=True)
    )
    assert padded.code_size == clean.code_size
