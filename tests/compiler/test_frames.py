"""Tests for dual-stack frame layout and callee save/restore."""

from repro.compiler import compile_module
from repro.compiler.frames import layout_frame
from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode
from repro.ir.symbols import MemoryBank, Storage, Symbol
from repro.partition.strategies import Strategy
from tests.conftest import compile_and_run


def _function_with_locals(banks):
    from repro.ir.function import Function

    func = Function("f")
    for i, bank in enumerate(banks):
        sym = Symbol("l%d" % i, size=2 + i, storage=Storage.LOCAL)
        sym.bank = bank
        func.add_symbol(sym)
    return func


def test_frame_offsets_disjoint_per_bank():
    func = _function_with_locals(
        [MemoryBank.X, MemoryBank.X, MemoryBank.Y, MemoryBank.Y]
    )
    layout = layout_frame(func)
    assert layout.size_x == 2 + 3
    assert layout.size_y == 4 + 5
    bank_x = [
        (off, off + func.symbols.get(name).size)
        for name, (bank, off) in layout.offsets.items()
        if bank is MemoryBank.X
    ]
    bank_x.sort()
    for (s1, e1), (s2, e2) in zip(bank_x, bank_x[1:]):
        assert e1 <= s2


def test_duplicated_locals_first_at_common_offsets():
    func = _function_with_locals([MemoryBank.X, MemoryBank.BOTH])
    layout = layout_frame(func)
    bank, offset = layout.offset_of("l1")
    assert bank is MemoryBank.BOTH
    assert offset == 0  # duplicated locals are allocated first
    bank_x, offset_x = layout.offset_of("l0")
    assert offset_x >= func.symbols.get("l1").size


def _call_heavy_module():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("work", params=[("x", float)], returns=float) as f:
        a = f.float_var("a")
        b = f.float_var("b")
        c = f.float_var("c")
        f.assign(a, f.param("x") * 2.0)
        f.assign(b, a + 1.0)
        f.assign(c, b * b)
        f.ret(c - a)
    with pb.function("main") as f:
        total = f.float_var("total")
        f.assign(total, 0.0)
        with f.loop(3):
            f.assign(total, total + pb.get("work")(2.0))
        f.assign(out[0], total)
    return pb.build()


def test_callee_saves_present_and_alternating():
    compiled = compile_module(_call_heavy_module(), strategy=Strategy.CB)
    work = compiled.program.module.function("work")
    save_syms = [s for s in work.local_symbols() if s.name.startswith("__save")]
    assert save_syms, "expected callee-save slots"
    if len(save_syms) >= 2:
        assert {s.bank for s in save_syms[:2]} == {MemoryBank.X, MemoryBank.Y}


def test_single_bank_saves_all_on_x():
    compiled = compile_module(_call_heavy_module(), strategy=Strategy.SINGLE_BANK)
    work = compiled.program.module.function("work")
    save_syms = [s for s in work.local_symbols() if s.name.startswith("__save")]
    assert save_syms
    assert all(s.bank is MemoryBank.X for s in save_syms)


def test_main_saves_nothing():
    compiled = compile_module(_call_heavy_module(), strategy=Strategy.CB)
    main = compiled.program.module.function("main")
    assert not [s for s in main.local_symbols() if s.name.startswith("__save")]


def test_call_heavy_program_correct():
    sim, _ = compile_and_run(_call_heavy_module(), strategy=Strategy.CB)
    # work(2) = (2*2+1)^2 - 4 = 21; three calls.
    assert sim.read_global("out") == 63.0


def test_save_restore_pairs_match():
    compiled = compile_module(_call_heavy_module(), strategy=Strategy.CB)
    work = compiled.program.module.function("work")
    saves = [
        op
        for op in work.operations()
        if op.is_store and op.symbol.name.startswith("__save")
    ]
    restores = [
        op
        for op in work.operations()
        if op.is_load and op.symbol.name.startswith("__save")
    ]
    assert len(saves) == len(restores)
    assert {op.symbol.name for op in saves} == {op.symbol.name for op in restores}
