"""Tests for inner-loop unrolling."""

import pytest

from repro.compiler import CompileOptions, compile_module
from repro.compiler.unroll import unroll_inner_loops
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator
from repro.workloads.registry import KERNELS


def _dot_module(n=32):
    pb = ProgramBuilder("u")
    a = pb.global_array("a", n, float, init=[float(i % 7) for i in range(n)])
    b = pb.global_array("b", n, float, init=[0.5] * n)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(n) as i:
            f.assign(acc, acc + a[i] * b[i])
        f.assign(out[0], acc)
    return pb.build()


def _run(module, unroll_factor):
    compiled = compile_module(
        module,
        CompileOptions(strategy=Strategy.CB, unroll_factor=unroll_factor),
    )
    simulator = Simulator(compiled.program)
    result = simulator.run()
    return simulator, result


@pytest.mark.parametrize("factor", [2, 4, 8])
def test_unrolled_semantics_and_speedup(factor):
    expected = sum(0.5 * (i % 7) for i in range(32))
    sim1, base = _run(_dot_module(), 1)
    simk, unrolled = _run(_dot_module(), factor)
    assert sim1.read_global("out") == expected
    assert simk.read_global("out") == expected
    assert unrolled.cycles < base.cycles


def test_non_divisible_count_skipped():
    module = _dot_module(n=30)  # 30 % 4 != 0
    report = unroll_inner_loops(module_after_allocation(module), 4)
    assert report.unrolled == []


def module_after_allocation(module):
    from repro.partition.strategies import run_allocation

    run_allocation(module, Strategy.CB)
    return module


def test_factor_one_is_identity():
    module = module_after_allocation(_dot_module())
    before = sum(1 for _ in module.operations())
    report = unroll_inner_loops(module, 1)
    assert report.unrolled == []
    assert sum(1 for _ in module.operations()) == before


def test_runtime_count_skipped():
    pb = ProgramBuilder("u")
    n_in = pb.global_scalar("n_in", int, init=8)
    a = pb.global_array("a", 8, float, init=[1.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        n = f.index_var("n")
        f.assign(n, n_in[0])
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(n) as i:
            f.assign(acc, acc + a[i] * 1.0)
        f.assign(out[0], acc)
    module = module_after_allocation(pb.build())
    report = unroll_inner_loops(module, 2)
    assert report.unrolled == []


def test_unroll_report_records_loops():
    module = module_after_allocation(_dot_module())
    report = unroll_inner_loops(module, 2)
    assert len(report.unrolled) == 1
    func, loop, factor = report.unrolled[0]
    assert func == "main" and factor == 2


@pytest.mark.parametrize("name", ["fir_32_1", "mult_4_4", "latnrm_8_1"])
def test_kernels_correct_when_unrolled(name):
    workload = KERNELS[name]
    compiled = compile_module(
        workload.build(),
        CompileOptions(strategy=Strategy.CB, unroll_factor=2),
    )
    simulator = Simulator(compiled.program)
    simulator.run()
    workload.verify(simulator)


def test_unroll_composes_with_pipelining_and_dce():
    expected = sum(0.5 * (i % 7) for i in range(32))
    compiled = compile_module(
        _dot_module(),
        CompileOptions(
            strategy=Strategy.CB,
            unroll_factor=2,
            software_pipelining=True,
            optimize=True,
        ),
    )
    simulator = Simulator(compiled.program)
    simulator.run()
    assert simulator.read_global("out") == expected
