"""Tests for global data layout and the compile driver."""

import pytest

from repro.compiler import CompileOptions, compile_module
from repro.compiler.layout import layout_globals
from repro.frontend import ProgramBuilder
from repro.ir.module import Module
from repro.ir.symbols import MemoryBank, Symbol
from repro.partition.strategies import Strategy


def _module_with_banks():
    module = Module("m")
    for name, size, bank in (
        ("dup", 4, MemoryBank.BOTH),
        ("x1", 8, MemoryBank.X),
        ("x2", 2, MemoryBank.X),
        ("y1", 6, MemoryBank.Y),
    ):
        sym = Symbol(name, size=size)
        sym.bank = bank
        module.add_global(sym)
    return module


def test_duplicated_globals_first_at_same_address():
    layout = layout_globals(_module_with_banks())
    bank, address = layout.address_of("dup")
    assert bank is MemoryBank.BOTH
    assert address == 0


def test_layout_is_disjoint_and_sized():
    layout = layout_globals(_module_with_banks())
    assert layout.data_size_x == 4 + 8 + 2
    assert layout.data_size_y == 4 + 6
    _b, x1 = layout.address_of("x1")
    _b, x2 = layout.address_of("x2")
    assert {x1, x2} & {0, 1, 2, 3} == set()  # after the duplicate
    assert x1 != x2


def _trivial_module():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        f.assign(out[0], 7)
    return pb.build()


def test_compile_options_object():
    options = CompileOptions(strategy=Strategy.SINGLE_BANK)
    result = compile_module(_trivial_module(), options)
    assert result.code_size > 0


def test_options_and_kwargs_are_exclusive():
    with pytest.raises(TypeError):
        compile_module(
            _trivial_module(),
            CompileOptions(),
            strategy=Strategy.CB,
        )


def test_program_metadata_complete(dot_product_module):
    compiled = compile_module(dot_product_module(), strategy=Strategy.CB)
    program = compiled.program
    assert "main" in program.function_entries
    assert program.function_entries["main"] == 0
    assert program.layout is not None
    assert program.frames["main"] is not None
    # Every hardware loop has a coherent (start, end) span.
    for loop_id, (start, end) in program.loops.items():
        assert 0 <= start <= end < len(program.instructions)
        assert loop_id in [
            lid for instr in program.instructions for lid in instr.loop_ends
        ]


def test_labels_point_into_program(dot_product_module):
    compiled = compile_module(dot_product_module(), strategy=Strategy.CB)
    program = compiled.program
    for label, index in program.labels.items():
        assert 0 <= index <= len(program.instructions)


def test_dump_is_renderable(dot_product_module):
    compiled = compile_module(dot_product_module(), strategy=Strategy.CB)
    text = compiled.program.dump()
    assert "MU0" in text or "MU1" in text
    assert "loop_begin" in text
