"""Tests for linear-scan register allocation and the calling convention."""

from repro.compiler import compile_module
from repro.compiler.regalloc import (
    ALLOCATABLE,
    ARG_REGS,
    RETURN_REG,
    SCRATCH_REGS,
    phys,
)
from repro.frontend import ProgramBuilder
from repro.ir.types import RegClass
from repro.partition.strategies import Strategy
from tests.conftest import compile_and_run


def test_register_convention_is_consistent():
    all_regs = set(ALLOCATABLE) | set(SCRATCH_REGS) | set(ARG_REGS) | {RETURN_REG}
    assert all_regs == set(range(32))
    assert not set(ALLOCATABLE) & set(SCRATCH_REGS)
    assert not set(ALLOCATABLE) & set(ARG_REGS)


def test_phys_registers_are_interned():
    assert phys(RegClass.INT, 5) is phys(RegClass.INT, 5)
    assert phys(RegClass.INT, 5) is not phys(RegClass.FLOAT, 5)
    assert phys(RegClass.INT, 5).physical == 5


def test_all_operands_physical_after_allocation(dot_product_module):
    compiled = compile_module(dot_product_module(), strategy=Strategy.CB)
    from repro.ir.values import is_register

    for instruction in compiled.program.instructions:
        for _unit, op in instruction:
            for source in op.sources:
                if is_register(source):
                    assert source.physical is not None
            if op.dest is not None:
                assert op.dest.physical is not None


def _spill_module(live_values):
    """A program keeping `live_values` float registers live at once."""
    pb = ProgramBuilder("spill")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        values = []
        for i in range(live_values):
            v = f.float_var("v%d" % i)
            f.assign(v, float(i))
            values.append(v)
        total = f.float_var("total")
        f.assign(total, 0.0)
        for v in values:
            f.assign(total, total + v)
        f.assign(out[0], total)
    return pb.build()


def test_no_spills_under_pressure_limit():
    compiled = compile_module(_spill_module(10), strategy=Strategy.CB)
    assert compiled.register_records["main"].spill_count == 0


def test_spills_under_high_pressure_stay_correct():
    n = 40  # more simultaneously-live floats than allocatable registers
    module = _spill_module(n)
    sim, _ = compile_and_run(module, strategy=Strategy.CB)
    assert sim.read_global("out") == float(sum(range(n)))


def test_spill_slots_created_under_pressure():
    compiled = compile_module(_spill_module(40), strategy=Strategy.CB)
    record = compiled.register_records["main"]
    assert record.spill_count > 0
    assert len(record.spill_slots) == record.spill_count


def test_spill_slots_alternate_banks_with_dual_stacks():
    compiled = compile_module(_spill_module(40), strategy=Strategy.CB)
    slots = compiled.register_records["main"].spill_slots
    banks = {slot.bank for slot in slots}
    if len(slots) >= 2:
        assert len(banks) == 2


def test_spill_slots_single_bank_without_partitioning():
    compiled = compile_module(_spill_module(40), strategy=Strategy.SINGLE_BANK)
    slots = compiled.register_records["main"].spill_slots
    from repro.ir.symbols import MemoryBank

    assert all(slot.bank is MemoryBank.X for slot in slots)


def test_spilled_accumulator_fmac_reloads():
    """FMAC reads its destination; a spilled accumulator must round-trip."""
    n = 30
    pb = ProgramBuilder("t")
    a = pb.global_array("a", 8, float, init=[1.0] * 8)
    b = pb.global_array("b", 8, float, init=[2.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        # Lots of long-lived registers to force spilling...
        keep = []
        for i in range(n):
            v = f.float_var()
            f.assign(v, float(i))
            keep.append(v)
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            f.assign(acc, acc + a[i] * b[i])
        total = f.float_var("total")
        f.assign(total, acc)
        for v in keep:
            f.assign(total, total + v)
        f.assign(out[0], total)
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 16.0 + sum(range(n))


def test_deep_call_chain_preserves_caller_state():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("leaf", params=[("x", float)], returns=float) as f:
        f.ret(f.param("x") + 1.0)
    leaf = pb.get("leaf")
    with pb.function("mid", params=[("x", float)], returns=float) as f:
        a = f.float_var("a")
        f.assign(a, f.param("x") * 2.0)
        b = f.float_var("b")
        f.assign(b, leaf(a))
        # `a` must survive the call (callee-save discipline).
        f.ret(a + b)
    mid = pb.get("mid")
    with pb.function("main") as f:
        keep = f.float_var("keep")
        f.assign(keep, 100.0)
        r = f.float_var("r")
        f.assign(r, mid(3.0))
        f.assign(out[0], r + keep)
    sim, _ = compile_and_run(pb.build())
    # mid(3) = 6 + leaf(6) = 6 + 7 = 13; + 100
    assert sim.read_global("out") == 113.0


def test_int_and_float_returns():
    pb = ProgramBuilder("t")
    out_i = pb.global_scalar("out_i", int)
    out_f = pb.global_scalar("out_f", float)
    with pb.function("geti", returns=int) as f:
        f.ret(41 + 1)
    with pb.function("getf", returns=float) as f:
        f.ret(2.5 * 2.0)
    with pb.function("main") as f:
        f.assign(out_i[0], pb.get("geti")())
        f.assign(out_f[0], pb.get("getf")())
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out_i") == 42
    assert sim.read_global("out_f") == 5.0


def test_arguments_passed_by_position_and_class():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function(
        "mix", params=[("i", int), ("x", float), ("j", int)], returns=float
    ) as f:
        f.ret(f.param("x") + (f.param("i") - f.param("j")) * 1.0)
    with pb.function("main") as f:
        f.assign(out[0], pb.get("mix")(10, 0.5, 3))
    sim, _ = compile_and_run(pb.build())
    assert sim.read_global("out") == 7.5
