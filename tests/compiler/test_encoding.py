"""Tests for bit-level instruction encoding (round-trip + size accounting)."""

import pytest

from repro.compiler import CompileOptions, compile_module
from repro.machine.encoding import Decoder, encode_program, packed_size_words
from repro.partition.strategies import Strategy
from repro.workloads.registry import APPLICATIONS, KERNELS


def _compiled(name="fir_32_1", strategy=Strategy.CB, **opts):
    table = {**KERNELS, **APPLICATIONS} if False else None
    workload = (KERNELS if name in KERNELS else APPLICATIONS)[name]
    return compile_module(
        workload.build(), CompileOptions(strategy=strategy, **opts)
    )


def _ops_equal(a, b):
    if a.opcode is not b.opcode:
        return False
    if (a.dest is None) != (b.dest is None):
        return False
    if a.dest is not None and a.dest is not b.dest:
        return False
    if len(a.sources) != len(b.sources):
        return False
    for sa, sb in zip(a.sources, b.sources):
        if sa is not sb and sa != sb:
            return False
    if a.symbol is not b.symbol or a.bank is not b.bank:
        return False
    if a.locked != b.locked or a.shadow != b.shadow:
        return False
    if (a.target is None) != (b.target is None):
        return False
    if a.target is not None and a.target.name != b.target.name:
        return False
    return a.callee == b.callee


@pytest.mark.parametrize(
    ("name", "strategy"),
    [
        ("fir_32_1", Strategy.CB),
        ("mult_4_4", Strategy.SINGLE_BANK),
        ("latnrm_8_1", Strategy.CB_DUP),
        ("adpcm", Strategy.CB),
        ("trellis", Strategy.CB),
    ],
    ids=lambda v: getattr(v, "name", v),
)
def test_round_trip(name, strategy):
    program = _compiled(name, strategy).program
    encoded = encode_program(program)
    decoder = Decoder(encoded)
    assert len(encoded.instruction_bits) == len(program.instructions)
    for bits, original in zip(encoded.instruction_bits, program.instructions):
        decoded = decoder.decode_instruction(bits)
        assert set(decoded.slots) == set(original.slots)
        assert decoded.loop_ends == original.loop_ends
        for unit, op in original:
            assert _ops_equal(op, decoded.slots[unit]), (unit, op)


def test_round_trip_with_pipelining_and_duplication():
    program = _compiled(
        "lpc", Strategy.CB_DUP, software_pipelining=True
    ).program
    encoded = encode_program(program)
    decoder = Decoder(encoded)
    for bits, original in zip(encoded.instruction_bits, program.instructions):
        decoded = decoder.decode_instruction(bits)
        for unit, op in original:
            assert _ops_equal(op, decoded.slots[unit])


def test_tight_encoding_beats_fixed_width():
    """The presence-mask format must be far smaller than a naive
    fixed-width 9-slot word (the paper's 'tightly-encoded' point)."""
    program = _compiled("fir_256_64").program
    encoded = encode_program(program)
    naive_bits = len(program.instructions) * 9 * 48
    assert encoded.code_bits < naive_bits / 3


def test_float_constants_go_to_pool():
    program = _compiled("fir_32_1").program
    encoded = encode_program(program)
    assert any(isinstance(v, float) for v in encoded.pool)


def test_packed_size_words_positive_and_reasonable():
    program = _compiled("mult_4_4").program
    packed = packed_size_words(program)
    assert 0 < packed
    # With 32-bit words, packing can exceed one word per instruction for
    # operand-heavy code but must stay within a small constant factor.
    assert packed < 4 * len(program.instructions) + 16
