"""Tests for the DSP-style assembly listing."""

from repro.compiler import CompileOptions, compile_module
from repro.frontend import ProgramBuilder
from repro.machine.asm import format_asm
from repro.partition.strategies import Strategy


def _fir(software_pipelining=False):
    pb = ProgramBuilder("fir")
    coeff = pb.global_array("coeff", 8, float, init=[0.5] * 8)
    x = pb.global_array("x", 8, float, init=[1.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as k:
            f.assign(acc, acc + coeff[k] * x[k])
        f.assign(out[0], acc)
    return compile_module(
        pb.build(),
        CompileOptions(strategy=Strategy.CB, software_pipelining=software_pipelining),
    )


def test_listing_has_x_and_y_move_columns():
    text = format_asm(_fir().program)
    assert "x:(" in text
    assert "y:(" in text
    assert "do #" in text
    assert "fmac" in text


def test_pipelined_listing_shows_figure1_line():
    """One line must carry MAC + X move + Y move together — the paper's
    Figure 1(b) steady state."""
    text = format_asm(_fir(software_pipelining=True).program)
    figure1_lines = [
        line
        for line in text.splitlines()
        if "fmac" in line and "x:(" in line and "y:(" in line
    ]
    assert figure1_lines, text


def test_listing_includes_labels_and_loop_end_comments():
    text = format_asm(_fir().program)
    assert "main.body1:" in text
    assert "; end main.L0" in text


def test_call_and_branch_syntax():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("leaf", returns=float) as f:
        f.ret(1.0)
    with pb.function("main") as f:
        v = f.float_var("v")
        f.assign(v, pb.get("leaf")())
        with f.if_(v > 0.0):
            f.assign(out[0], v)
    text = format_asm(
        compile_module(pb.build(), strategy=Strategy.CB).program
    )
    assert "jsr leaf" in text
    assert "brf" in text
    assert "ret" in text


def test_locked_stores_flagged():
    pb = ProgramBuilder("t")
    sig = pb.global_array("sig", 8, float, init=[0.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        with f.loop(8) as i:
            f.assign(sig[i], 1.0)
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4, name="m") as m:
            with f.for_range(0, 4, name="n") as n:
                f.assign(acc, acc + sig[n] * sig[n + m])
        f.assign(out[0], acc)
    compiled = compile_module(pb.build(), strategy=Strategy.CB_DUP)
    text = format_asm(compiled.program)
    assert "[l]" in text  # store-lock/unlock pair flagged


def test_data_directives_list_banks_and_duplicates():
    from repro.machine.asm import format_data_directives
    from repro.frontend import ProgramBuilder
    from repro.partition.strategies import Strategy

    pb = ProgramBuilder("t")
    sig = pb.global_array("sig", 8, float, init=[0.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        with f.loop(8) as i:
            f.assign(sig[i], 1.0)
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4, name="m") as m:
            with f.for_range(0, 4, name="n") as n:
                f.assign(acc, acc + sig[n] * sig[n + m])
        f.assign(out[0], acc)
    compiled = compile_module(pb.build(), strategy=Strategy.CB_DUP)
    text = format_data_directives(compiled.program)
    assert "org     x:0" in text and "org     y:0" in text
    # duplicated symbol appears in both sections
    assert text.count("sig ") == 2 or text.count("sig\t") + text.count("sig ") >= 2
