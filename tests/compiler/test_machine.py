"""Tests for the machine model: units, long instructions, programs."""

import pytest

from repro.ir.operations import OpCode, Operation, UnitClass
from repro.ir.symbols import MemoryBank
from repro.ir.types import RegClass
from repro.ir.values import Immediate, VirtualRegister
from repro.machine.instruction import LongInstruction, MachineProgram
from repro.machine.resources import (
    ALL_UNITS,
    MEMORY_UNITS,
    FunctionalUnit,
    bank_for_unit,
    unit_for_bank,
    units_for_class,
)


def test_nine_units_match_paper_figure2():
    assert len(ALL_UNITS) == 9
    names = {u.name for u in ALL_UNITS}
    assert names == {
        "PCU", "MU0", "MU1", "AU0", "AU1", "DU0", "DU1", "FPU0", "FPU1"
    }


def test_unit_class_instances():
    assert units_for_class(UnitClass.PCU) == (FunctionalUnit.PCU,)
    assert len(units_for_class(UnitClass.MU)) == 2
    assert len(units_for_class(UnitClass.AU)) == 2
    assert len(units_for_class(UnitClass.DU)) == 2
    assert len(units_for_class(UnitClass.FPU)) == 2


def test_bank_wiring():
    assert bank_for_unit(FunctionalUnit.MU0) is MemoryBank.X
    assert bank_for_unit(FunctionalUnit.MU1) is MemoryBank.Y
    assert unit_for_bank(MemoryBank.X) is FunctionalUnit.MU0
    assert unit_for_bank(MemoryBank.Y) is FunctionalUnit.MU1
    assert MEMORY_UNITS == (FunctionalUnit.MU0, FunctionalUnit.MU1)


def _op():
    reg = VirtualRegister(0, RegClass.INT)
    return Operation(OpCode.CONST, dest=reg, sources=(Immediate(1),))


def test_long_instruction_one_op_per_unit():
    instr = LongInstruction("blk")
    instr.add(FunctionalUnit.DU0, _op())
    assert not instr.unit_free(FunctionalUnit.DU0)
    assert instr.unit_free(FunctionalUnit.DU1)
    with pytest.raises(ValueError):
        instr.add(FunctionalUnit.DU0, _op())
    assert len(instr) == 1
    assert instr.ops


def test_long_instruction_repr_lists_slots():
    instr = LongInstruction("blk")
    instr.add(FunctionalUnit.DU0, _op())
    instr.loop_ends.append("L1")
    text = repr(instr)
    assert "DU0" in text and "loop_end(L1)" in text


def test_machine_program_size_and_dump():
    program = MachineProgram()
    instr = LongInstruction("blk")
    instr.add(FunctionalUnit.DU0, _op())
    program.instructions.append(instr)
    program.labels["blk"] = 0
    assert program.size == 1
    assert len(program) == 1
    dump = program.dump()
    assert "blk:" in dump
    assert "const" in dump
