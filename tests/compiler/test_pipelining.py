"""Tests for software pipelining of inner hardware loops (Figure 1)."""

import pytest

from repro.compiler import CompileOptions, compile_module
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator
from repro.workloads.registry import KERNELS


def _fir_module(taps=16):
    pb = ProgramBuilder("fir_sp")
    coeff = pb.global_array("coeff", taps, float, init=[0.5] * taps)
    x = pb.global_array(
        "x", taps, float, init=[float(i) for i in range(taps)]
    )
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(taps) as k:
            f.assign(acc, acc + coeff[k] * x[k])
        f.assign(out[0], acc)
    return pb.build()


def _run(module, software_pipelining, strategy=Strategy.CB):
    compiled = compile_module(
        module,
        CompileOptions(strategy=strategy, software_pipelining=software_pipelining),
    )
    simulator = Simulator(compiled.program)
    result = simulator.run()
    return compiled, simulator, result


def test_pipelining_preserves_semantics_and_speeds_up():
    expected = sum(0.5 * float(i) for i in range(16))
    _c0, sim0, base = _run(_fir_module(), False)
    compiled, sim1, piped = _run(_fir_module(), True)
    assert sim0.read_global("out") == expected
    assert sim1.read_global("out") == expected
    assert piped.cycles < base.cycles
    assert compiled.pipelining.pipelined


def test_steady_state_body_is_one_instruction():
    compiled, _sim, _result = _run(_fir_module(), True)
    program = compiled.program
    (start, end) = program.loops["main.L0"]
    assert start == end  # the paper's single-instruction MAC loop
    ops = program.instructions[start].ops
    opcodes = sorted(op.opcode.name for op in ops)
    assert "FMAC" in opcodes
    assert opcodes.count("LOAD") == 2


def test_single_iteration_loop_handled():
    pb = ProgramBuilder("one")
    a = pb.global_array("a", 1, float, init=[3.0])
    b = pb.global_array("b", 1, float, init=[4.0])
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(1) as i:
            f.assign(acc, acc + a[i] * b[i])
        f.assign(out[0], acc)
    _c, sim, _r = _run(pb.build(), True)
    assert sim.read_global("out") == 12.0


def test_loops_with_stores_to_loaded_symbol_skipped():
    """lmsfir-style update loop: h is loaded and stored — the load must
    not be rotated past the store."""
    pb = ProgramBuilder("alias")
    h = pb.global_array("h", 8, float, init=[1.0] * 8)
    x = pb.global_array("x", 8, float, init=[2.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        with f.loop(8) as i:
            f.assign(h[i], h[i] + x[i])
        f.assign(out[0], h[0] + h[7])
    compiled, sim, _r = _run(pb.build(), True)
    assert sim.read_global("out") == 6.0
    pipelined_loads = sum(n for _f, _l, n in compiled.pipelining.pipelined)
    # x[i] may rotate; h[i] must not.
    for _func, _loop, count in compiled.pipelining.pipelined:
        assert count <= 1


def test_runtime_trip_count_loops_skipped():
    pb = ProgramBuilder("runtime")
    a = pb.global_array("a", 8, float, init=[1.0] * 8)
    b = pb.global_array("b", 8, float, init=[1.0] * 8)
    n_in = pb.global_scalar("n_in", int, init=8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        n = f.index_var("n")
        f.assign(n, n_in[0])
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(n) as i:
            f.assign(acc, acc + a[i] * b[i])
        f.assign(out[0], acc)
    compiled, sim, _r = _run(pb.build(), True)
    assert sim.read_global("out") == 8.0
    assert compiled.pipelining.pipelined == []


def test_nested_loop_pipelines_inner_only():
    pb = ProgramBuilder("nested")
    a = pb.global_array("a", 24, float, init=[1.0] * 24)
    b = pb.global_array("b", 8, float, init=[2.0] * 8)
    out = pb.global_array("out", 3, float)
    with pb.function("main") as f:
        with f.loop(3, name="r") as r:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            row = f.index_var("row")
            f.assign(row, r * 8)
            with f.loop(8, name="c") as c:
                f.assign(acc, acc + a[row + c] * b[c])
            f.assign(out[r], acc)
    compiled, sim, _r = _run(pb.build(), True)
    assert sim.read_global("out") == [16.0, 16.0, 16.0]
    loops = [loop for _f, loop, _n in compiled.pipelining.pipelined]
    assert len(loops) == 1  # only the inner (constant-count) loop


@pytest.mark.parametrize(
    "name", ["fir_32_1", "mult_4_4", "latnrm_8_1", "iir_1_1", "lmsfir_8_1"]
)
def test_kernels_correct_with_pipelining(name):
    workload = KERNELS[name]
    compiled = compile_module(
        workload.build(),
        CompileOptions(strategy=Strategy.CB, software_pipelining=True),
    )
    simulator = Simulator(compiled.program)
    simulator.run()
    workload.verify(simulator)


@pytest.mark.parametrize(
    ("name", "expect_faster"),
    [("fir_32_1", True), ("mult_4_4", False)],
)
def test_pipelining_profitability(name, expect_faster):
    """Memory-bound loops (fir) get faster; loops bound elsewhere (mult's
    AU-heavy body) are skipped by the profitability check and must not
    regress."""
    workload = KERNELS[name]

    def cycles(sp):
        compiled = compile_module(
            workload.build(),
            CompileOptions(strategy=Strategy.CB, software_pipelining=sp),
        )
        sim = Simulator(compiled.program)
        result = sim.run()
        workload.verify(sim)
        return result.cycles

    with_sp = cycles(True)
    without_sp = cycles(False)
    if expect_faster:
        assert with_sp < without_sp
    else:
        assert with_sp == without_sp
