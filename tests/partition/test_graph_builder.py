"""Tests for compaction-based interference-graph construction (Fig. 3/4)."""

from repro.frontend import ProgramBuilder
from repro.partition.graph_builder import build_interference_graph
from repro.partition.weights import ProfileWeights, StaticDepthWeights


def test_parallel_loads_of_two_arrays_interfere():
    pb = ProgramBuilder("t")
    a = pb.global_array("a", 8, float, init=[0.0] * 8)
    b = pb.global_array("b", 8, float, init=[0.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            f.assign(acc, acc + a[i] * b[i])
        f.assign(out[0], acc)
    graph = build_interference_graph(pb.build())
    sa = _sym(graph, "a")
    sb = _sym(graph, "b")
    assert graph.weight(sa, sb) > 0


def _sym(graph, name):
    for node in graph.nodes:
        if node.name == name:
            return node
    raise AssertionError("missing node %r" % name)


def test_paper_figure4_style_example():
    """A program where every pair of four arrays may be accessed in
    parallel, with one pair also parallel inside a loop: every pair gets
    an edge and the in-loop pair carries the largest weight (paper
    Figure 4's A-D edge)."""
    pb = ProgramBuilder("t")
    arrays = {
        name: pb.global_array(name, 8, float, init=[1.0] * 8)
        for name in "ABCD"
    }
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        # Outside any loop: pairs (A,B), (B,C), (C,D) ... via dual loads.
        f.assign(acc, arrays["A"][0] * arrays["B"][1])
        f.assign(acc, acc + arrays["B"][2] * arrays["C"][3])
        f.assign(acc, acc + arrays["C"][4] * arrays["D"][5])
        f.assign(acc, acc + arrays["A"][6] * arrays["C"][7])
        f.assign(acc, acc + arrays["B"][0] * arrays["D"][1])
        # Inside the loop: A and D in parallel.
        with f.loop(5) as i:
            f.assign(acc, acc + arrays["A"][i] * arrays["D"][i])
        f.assign(out[0], acc)
    graph = build_interference_graph(pb.build(), StaticDepthWeights(accumulate=False))
    sa, sb, sc, sd = (_sym(graph, n) for n in "ABCD")
    assert graph.weight(sa, sb) == 1
    assert graph.weight(sb, sc) == 1
    assert graph.weight(sc, sd) == 1
    assert graph.weight(sa, sc) == 1
    assert graph.weight(sb, sd) == 1
    # The loop pair outweighs the straight-line pairs: depth 1 -> weight 2.
    assert graph.weight(sa, sd) == 2


def test_paper_figure6_autocorrelation_marks_duplication():
    """Paper Figure 6: R[n] += signal[n] * signal[n+m] — two simultaneous
    accesses to the same array mark it for duplication instead of adding
    an interference edge."""
    pb = ProgramBuilder("t")
    signal = pb.global_array("signal", 16, float, init=[1.0] * 16)
    r = pb.global_array("R", 4, float)
    with pb.function("main") as f:
        with f.loop(4, name="m") as m:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.for_range(0, 12, name="n") as n:
                f.assign(acc, acc + signal[n] * signal[n + m])
            f.assign(r[m], acc)
    graph = build_interference_graph(pb.build())
    names = [s.name for s in graph.duplication_candidates]
    assert "signal" in names
    ssym = _sym(graph, "signal")
    assert graph.weight(ssym, ssym) == 0 if False else True  # no self edge
    assert all(a is not b or a is not ssym for a, b, _ in graph.edges())


def test_dependent_accesses_do_not_interfere():
    """histogram-style hist[img[i]]: the second load's address depends on
    the first load's value, so they can never issue in parallel and no
    edge may be added."""
    pb = ProgramBuilder("t")
    img = pb.global_array("img", 8, int, init=[0] * 8)
    hist = pb.global_array("hist", 4, int)
    with pb.function("main") as f:
        with f.loop(8) as i:
            level = f.index_var("level")
            f.assign(level, img[i])
            f.assign(hist[level], hist[level] + 1)
    graph = build_interference_graph(pb.build())
    simg = _sym(graph, "img")
    shist = _sym(graph, "hist")
    assert graph.weight(simg, shist) == 0


def test_profile_weights_use_execution_counts():
    pb = ProgramBuilder("t")
    a = pb.global_array("a", 8, float, init=[0.0] * 8)
    b = pb.global_array("b", 8, float, init=[0.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            f.assign(acc, acc + a[i] * b[i])
        f.assign(out[0], acc)
    module = pb.build()
    body_label = [bl.label for bl in module.main.blocks if bl.loop_depth == 1][0]
    graph = build_interference_graph(module, ProfileWeights({body_label: 123}))
    assert graph.weight(_sym(graph, "a"), _sym(graph, "b")) == 123


def test_opaque_symbols_excluded_from_graph():
    pb = ProgramBuilder("t")
    a = pb.global_array("a", 8, float, init=[0.0] * 8, opaque=True)
    b = pb.global_array("b", 8, float, init=[0.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            f.assign(acc, acc + a[i] * b[i])
        f.assign(out[0], acc)
    graph = build_interference_graph(pb.build())
    assert all(node.name != "a" for node in graph.nodes)


def test_every_partitionable_symbol_is_a_node():
    pb = ProgramBuilder("t")
    pb.global_array("used", 4, float, init=[0.0] * 4)
    pb.global_array("unused", 4, float)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        f.assign(out[0], 0.0)
    graph = build_interference_graph(pb.build())
    names = {node.name for node in graph.nodes}
    assert {"used", "unused", "out"} <= names
