"""Tests for the interference graph data structure."""

import pytest

from repro.ir.symbols import Symbol
from repro.partition.interference import InterferenceGraph


def _graph(names):
    g = InterferenceGraph()
    syms = {n: Symbol(n, size=4) for n in names}
    for sym in syms.values():
        g.add_node(sym)
    return g, syms


def test_nodes_unique():
    g, syms = _graph("ab")
    g.add_node(syms["a"])
    assert len(g) == 2


def test_edge_weight_max_policy():
    g, syms = _graph("ab")
    g.add_edge(syms["a"], syms["b"], 2)
    g.add_edge(syms["a"], syms["b"], 1)
    assert g.weight(syms["a"], syms["b"]) == 2
    g.add_edge(syms["b"], syms["a"], 5)
    assert g.weight(syms["a"], syms["b"]) == 5


def test_edge_weight_accumulate_policy():
    g, syms = _graph("ab")
    g.add_edge(syms["a"], syms["b"], 2, accumulate=True)
    g.add_edge(syms["a"], syms["b"], 3, accumulate=True)
    assert g.weight(syms["a"], syms["b"]) == 5


def test_no_self_edges():
    g, syms = _graph("a")
    with pytest.raises(ValueError):
        g.add_edge(syms["a"], syms["a"], 1)


def test_neighbors_and_degree():
    g, syms = _graph("abc")
    g.add_edge(syms["a"], syms["b"], 1)
    g.add_edge(syms["a"], syms["c"], 2)
    assert g.neighbors(syms["a"]) == {"b": 1, "c": 2}
    assert g.degree(syms["a"]) == 2
    assert g.degree(syms["b"]) == 1


def test_internal_cost():
    g, syms = _graph("abc")
    g.add_edge(syms["a"], syms["b"], 3)
    g.add_edge(syms["b"], syms["c"], 4)
    assert g.internal_cost([syms["a"], syms["b"], syms["c"]]) == 7
    assert g.internal_cost([syms["a"], syms["b"]]) == 3
    assert g.internal_cost([syms["a"], syms["c"]]) == 0
    assert g.total_weight() == 7


def test_duplication_marking_idempotent():
    g, syms = _graph("a")
    g.mark_duplication(syms["a"])
    g.mark_duplication(syms["a"])
    assert g.duplication_candidates == [syms["a"]]


def test_describe_lists_edges():
    g, syms = _graph("ab")
    g.add_edge(syms["a"], syms["b"], 2)
    g.mark_duplication(syms["a"])
    text = g.describe()
    assert "(a, b) weight 2" in text
    assert "duplication candidates: a" in text


def test_to_dot_renders_nodes_edges_and_partition():
    from repro.ir.symbols import Symbol
    from repro.partition.greedy import GreedyPartitioner

    g = InterferenceGraph()
    a = Symbol("a", size=4)
    b = Symbol("b", size=1)
    g.add_node(a)
    g.add_node(b)
    g.add_edge(a, b, 3)
    g.mark_duplication(a)
    plain = g.to_dot()
    assert '"a" [shape=box' in plain       # arrays are boxes
    assert '"b" [shape=ellipse' in plain   # scalars are ellipses
    assert "(dup)" in plain
    cut = g.to_dot(GreedyPartitioner(g).partition())
    assert "style=dashed" in cut           # the cut edge
    assert "fillcolor" in cut
