"""Tests for the greedy min-cost partitioner, including paper Figure 5."""

from repro.ir.symbols import MemoryBank, Symbol
from repro.partition.greedy import GreedyPartitioner
from repro.partition.interference import InterferenceGraph


def _graph(names, edges):
    g = InterferenceGraph()
    syms = {n: Symbol(n, size=4) for n in names}
    for n in names:
        g.add_node(syms[n])
    for a, b, w in edges:
        g.add_edge(syms[a], syms[b], w)
    return g, syms


def test_paper_figure5_cost_trace_and_partition():
    """Paper Figure 5: complete graph on A,B,C,D; edge (A,D) weight 2,
    all others weight 1.  The greedy trace is cost 7 -> 3 -> 2 and the
    final partition separates {A, B} from {C, D}."""
    g, syms = _graph(
        "ABCD",
        [
            ("A", "B", 1),
            ("A", "C", 1),
            ("A", "D", 2),
            ("B", "C", 1),
            ("B", "D", 1),
            ("C", "D", 1),
        ],
    )
    result = GreedyPartitioner(g).partition()
    assert result.cost_trace == [7, 3, 2]
    assert result.final_cost == 2
    sides = {frozenset(s.name for s in result.set_x),
             frozenset(s.name for s in result.set_y)}
    assert sides == {frozenset("AB"), frozenset("CD")}
    # A and D end up in different banks (the weight-2 edge is satisfied).
    assert result.bank_of(syms["A"]) != result.bank_of(syms["D"])


def test_empty_graph():
    g, _syms = _graph("", [])
    result = GreedyPartitioner(g).partition()
    assert result.cost_trace == [0]
    assert result.set_x == [] and result.set_y == []


def test_isolated_nodes_stay_in_first_set():
    g, syms = _graph("AB", [])
    result = GreedyPartitioner(g).partition()
    assert result.final_cost == 0
    assert set(result.set_x) == {syms["A"], syms["B"]}
    assert result.bank_of(syms["A"]) is MemoryBank.X


def test_single_edge_is_cut():
    g, syms = _graph("AB", [("A", "B", 5)])
    result = GreedyPartitioner(g).partition()
    assert result.final_cost == 0
    assert result.bank_of(syms["A"]) != result.bank_of(syms["B"])


def test_triangle_cannot_be_fully_cut():
    g, syms = _graph("ABC", [("A", "B", 1), ("B", "C", 1), ("A", "C", 1)])
    result = GreedyPartitioner(g).partition()
    # One edge must stay internal in any two-way partition of a triangle.
    assert result.final_cost == 1


def test_weighted_star_separates_center():
    g, syms = _graph(
        "CABD",
        [("C", "A", 3), ("C", "B", 3), ("C", "D", 3)],
    )
    result = GreedyPartitioner(g).partition()
    assert result.final_cost == 0
    center_bank = result.bank_of(syms["C"])
    for leaf in "ABD":
        assert result.bank_of(syms[leaf]) != center_bank


def test_cost_never_increases_along_trace():
    g, _syms = _graph(
        "ABCDE",
        [
            ("A", "B", 2),
            ("B", "C", 1),
            ("C", "D", 4),
            ("D", "E", 1),
            ("A", "E", 3),
            ("B", "D", 2),
        ],
    )
    result = GreedyPartitioner(g).partition()
    trace = result.cost_trace
    assert all(trace[i] > trace[i + 1] for i in range(len(trace) - 1))
    assert result.final_cost >= 0


def test_tie_break_prefers_lexicographically_smallest_name():
    """Two disjoint unit edges tie on every move; the documented
    tie-break moves the smallest name first."""
    g, _syms = _graph("DCBA", [("A", "B", 1), ("C", "D", 1)])
    result = GreedyPartitioner(g).partition()
    assert [s.name for s in result.set_y] == ["A", "C"]
    assert result.cost_trace == [2, 1, 0]


def test_partition_independent_of_node_insertion_order():
    edges = [("A", "B", 1), ("C", "D", 1)]
    forward = GreedyPartitioner(_graph("ABCD", edges)[0]).partition()
    backward = GreedyPartitioner(
        _graph("DCBA", list(reversed(edges)))[0]
    ).partition()
    assert {s.name for s in forward.set_y} == {s.name for s in backward.set_y}
    assert forward.cost_trace == backward.cost_trace


def test_bank_of_uses_membership_not_identity():
    """bank_of answers by symbol *name*, so an equal-named symbol object
    (e.g. rebuilt from a fresh module) resolves to the same bank."""
    g, syms = _graph("AB", [("A", "B", 5)])
    result = GreedyPartitioner(g).partition()
    fresh_a = Symbol("A", size=4)
    assert result.bank_of(fresh_a) is result.bank_of(syms["A"])


def test_complete_equal_graph_balances():
    names = "ABCDEFGH"
    edges = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            edges.append((a, b, 1))
    g, _syms = _graph(names, edges)
    result = GreedyPartitioner(g).partition()
    # Greedy on K8 with equal weights moves nodes until the sides balance.
    assert {len(result.set_x), len(result.set_y)} == {4}
