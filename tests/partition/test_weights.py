"""Tests for edge-weight policies."""

from repro.ir.block import BasicBlock
from repro.partition.weights import ProfileWeights, StaticDepthWeights


def test_static_weights_are_depth_plus_one():
    policy = StaticDepthWeights()
    assert policy.weight(BasicBlock("a", loop_depth=0)) == 1
    assert policy.weight(BasicBlock("b", loop_depth=1)) == 2
    assert policy.weight(BasicBlock("c", loop_depth=3)) == 4


def test_static_weights_accumulate_by_default():
    assert StaticDepthWeights().accumulate
    assert not StaticDepthWeights(accumulate=False).accumulate


def test_profile_weights_use_counts():
    policy = ProfileWeights({"hot": 1000, "cold": 0})
    assert policy.weight(BasicBlock("hot")) == 1000
    # Unexecuted and unknown blocks still get a minimum weight of 1.
    assert policy.weight(BasicBlock("cold")) == 1
    assert policy.weight(BasicBlock("unknown")) == 1
    assert policy.accumulate
