"""Tests for partial and full data duplication transforms."""

from repro.frontend import ProgramBuilder
from repro.ir.operations import OpCode
from repro.ir.symbols import MemoryBank
from repro.partition.duplication import duplicate_symbols, full_duplication_symbols
from repro.partition.strategies import Strategy, run_allocation
from tests.conftest import compile_and_run


def _autocorr_module():
    pb = ProgramBuilder("t")
    signal = pb.global_array(
        "signal", 16, float, init=[float(i % 5) for i in range(16)]
    )
    r = pb.global_array("R", 4, float)
    with pb.function("main") as f:
        with f.loop(4, name="m") as m:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.for_range(0, 12, name="n") as n:
                f.assign(acc, acc + signal[n] * signal[n + m])
            f.assign(r[m], acc)
    return pb.build()


def _expected_autocorr():
    signal = [float(i % 5) for i in range(16)]
    return [sum(signal[n] * signal[n + m] for n in range(12)) for m in range(4)]


def test_duplicated_symbol_gets_both_banks():
    module = _autocorr_module()
    allocation = run_allocation(module, Strategy.CB_DUP)
    signal = module.globals.get("signal")
    assert signal.bank is MemoryBank.BOTH
    assert signal.duplicated
    assert signal in allocation.duplicated


def test_stores_to_duplicated_symbol_are_doubled():
    pb = ProgramBuilder("t")
    a = pb.global_array("a", 8, float, init=[0.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        with f.loop(8) as i:
            f.assign(a[i], 1.0)
        f.assign(out[0], a[0] + a[7])
    module = pb.build()
    duplicate_symbols(module, [module.globals.get("a")])
    stores = [op for op in module.operations() if op.is_store and op.symbol.name == "a"]
    primaries = [op for op in stores if not op.shadow]
    shadows = [op for op in stores if op.shadow]
    assert len(primaries) == len(shadows) == 1
    assert primaries[0].bank is MemoryBank.X
    assert shadows[0].bank is MemoryBank.Y


def test_interrupt_safe_stores_are_locked():
    module = _autocorr_module()
    signal = module.globals.get("signal")
    # Add a store to signal so the transform has something to expand.
    pb2 = ProgramBuilder("t2")
    a = pb2.global_array("a", 4, float, init=[0.0] * 4)
    with pb2.function("main") as f:
        f.assign(a[0], 2.0)
    module2 = pb2.build()
    duplicate_symbols(module2, [module2.globals.get("a")], interrupt_safe=True)
    stores = [op for op in module2.operations() if op.is_store]
    assert all(op.locked for op in stores)
    module3 = pb2_build_again()
    duplicate_symbols(module3, [module3.globals.get("a")], interrupt_safe=False)
    stores3 = [op for op in module3.operations() if op.is_store]
    assert not any(op.locked for op in stores3)


def pb2_build_again():
    pb = ProgramBuilder("t2")
    a = pb.global_array("a", 4, float, init=[0.0] * 4)
    with pb.function("main") as f:
        f.assign(a[0], 2.0)
    return pb.build()


def test_local_duplicated_store_adds_stack_address_op():
    pb = ProgramBuilder("t")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        buf = f.local_array("buf", 8, float)
        with f.loop(8) as i:
            f.assign(buf[i], 1.0)
        f.assign(out[0], buf[3])
    module = pb.build()
    local = module.main.symbols.get("buf")
    before = sum(
        1
        for op in module.operations()
        if op.opcode in (OpCode.AMOV, OpCode.ACONST)
    )
    duplicate_symbols(module, [local])
    after = sum(
        1
        for op in module.operations()
        if op.opcode in (OpCode.AMOV, OpCode.ACONST)
    )
    assert after == before + 1  # one stack-address op per expanded store


def test_full_duplication_covers_all_partitionable():
    module = _autocorr_module()
    duplicated = full_duplication_symbols(module)
    names = {s.name for s in duplicated}
    assert names == {"signal", "R"}


def test_duplication_preserves_semantics():
    expected = _expected_autocorr()
    for strategy in (Strategy.CB, Strategy.CB_DUP, Strategy.FULL_DUP):
        sim, _ = compile_and_run(_autocorr_module(), strategy=strategy)
        got = sim.read_global("R")
        assert got == expected, strategy


def test_duplication_improves_autocorrelation_speed():
    _, base = compile_and_run(_autocorr_module(), strategy=Strategy.CB)
    _, dup = compile_and_run(_autocorr_module(), strategy=Strategy.CB_DUP)
    assert dup.cycles < base.cycles


def test_duplicated_copies_agree_after_run():
    pb = ProgramBuilder("t")
    signal = pb.global_array("signal", 8, float, init=[0.0] * 8)
    r = pb.global_array("R", 2, float)
    with pb.function("main") as f:
        # Write the array first, then read it with same-array parallel
        # accesses so CB_DUP duplicates it.
        with f.loop(8) as i:
            f.assign(signal[i], 1.5)
        with f.loop(2, name="m") as m:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.for_range(0, 6, name="n") as n:
                f.assign(acc, acc + signal[n] * signal[n + m])
            f.assign(r[m], acc)
    module = pb.build()
    sim, _ = compile_and_run(module, strategy=Strategy.CB_DUP)
    assert module.globals.get("signal").bank is MemoryBank.BOTH
    assert sim.read_global_copy("signal", MemoryBank.X) == sim.read_global_copy(
        "signal", MemoryBank.Y
    )
    assert sim.read_global("R") == [6 * 2.25, 6 * 2.25]
