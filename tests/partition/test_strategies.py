"""Tests for the allocation-pass entry point (all six configurations)."""

import pytest

from repro.frontend import ProgramBuilder
from repro.ir.symbols import MemoryBank
from repro.partition.strategies import PAPER_LABELS, Strategy, run_allocation


def _two_array_module():
    pb = ProgramBuilder("t")
    a = pb.global_array("a", 8, float, init=[0.0] * 8)
    b = pb.global_array("b", 8, float, init=[0.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            f.assign(acc, acc + a[i] * b[i])
        f.assign(out[0], acc)
    return pb.build()


def test_single_bank_puts_everything_in_x():
    module = _two_array_module()
    run_allocation(module, Strategy.SINGLE_BANK)
    assert all(s.bank is MemoryBank.X for s in module.all_symbols())
    assert all(
        op.bank is MemoryBank.X for op in module.operations() if op.is_memory
    )


def test_cb_separates_interfering_arrays():
    module = _two_array_module()
    result = run_allocation(module, Strategy.CB)
    a = module.globals.get("a")
    b = module.globals.get("b")
    assert a.bank is not b.bank
    assert result.partition is not None
    assert result.graph is not None


def test_ideal_is_dual_ported_flag():
    module = _two_array_module()
    result = run_allocation(module, Strategy.IDEAL)
    assert result.dual_ported
    result2 = run_allocation(_two_array_module(), Strategy.CB)
    assert not result2.dual_ported


def test_cb_profile_requires_counts():
    module = _two_array_module()
    with pytest.raises(ValueError):
        run_allocation(module, Strategy.CB_PROFILE)


def test_cb_profile_with_counts():
    module = _two_array_module()
    result = run_allocation(module, Strategy.CB_PROFILE, profile_counts={})
    a = module.globals.get("a")
    b = module.globals.get("b")
    assert a.bank is not b.bank


def test_full_dup_duplicates_everything():
    module = _two_array_module()
    result = run_allocation(module, Strategy.FULL_DUP)
    assert {s.name for s in result.duplicated} == {"a", "b", "out"}
    assert all(s.bank is MemoryBank.BOTH for s in module.all_symbols())


def test_module_cannot_be_allocated_twice():
    module = _two_array_module()
    run_allocation(module, Strategy.CB)
    with pytest.raises(RuntimeError, match="already allocated"):
        run_allocation(module, Strategy.IDEAL)


def test_memory_ops_tagged_after_allocation():
    module = _two_array_module()
    run_allocation(module, Strategy.CB)
    for op in module.operations():
        if op.is_memory:
            assert op.bank in (MemoryBank.X, MemoryBank.Y, MemoryBank.BOTH)


def test_opaque_symbol_pinned_to_x():
    pb = ProgramBuilder("t")
    a = pb.global_array("a", 8, float, init=[0.0] * 8, opaque=True)
    b = pb.global_array("b", 8, float, init=[0.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(8) as i:
            f.assign(acc, acc + a[i] * b[i])
        f.assign(out[0], acc)
    module = pb.build()
    run_allocation(module, Strategy.FULL_DUP)
    assert module.globals.get("a").bank is MemoryBank.X  # never duplicated


def test_paper_labels_cover_all_strategies():
    assert set(PAPER_LABELS) == set(Strategy)


def test_bank_summary():
    module = _two_array_module()
    result = run_allocation(module, Strategy.CB)
    summary = result.bank_summary(module)
    placed = summary["X"] + summary["Y"] + summary["XY"]
    assert sorted(placed) == ["a", "b", "out"]


def test_alternating_strategy_alternates():
    module = _two_array_module()
    run_allocation(module, Strategy.ALTERNATING)
    banks = [s.bank for s in module.partitionable_symbols()]
    assert banks[0] is MemoryBank.X
    assert banks[1] is MemoryBank.Y
    assert banks[2] is MemoryBank.X
