"""Cross-partitioner differential tests on enumerable graphs.

Graphs small enough to enumerate every one of the ``2^n`` two-way
assignments are the ground truth the whole registry is checked against:

* the exact branch-and-bound solver's cost must equal the brute-force
  minimum on every graph (and claim ``proved_optimal``);
* no heuristic may land below it — and whatever a heuristic returns must
  cost at least the brute-force minimum too.

This is what makes the ``exact`` entry trustworthy enough to anchor the
gap-to-optimal study (``benchmarks/bench_partition.py``).
"""

import itertools
import random

import pytest

from repro.ir.symbols import Symbol
from repro.partition.interference import InterferenceGraph
from repro.partition.registry import PARTITIONERS, make_partitioner

HEURISTICS = sorted(set(PARTITIONERS) - {"exact"})

#: enumerable ceiling: 2^12 = 4096 assignments per graph
MAX_NODES = 12


def _random_graph(seed, max_nodes=MAX_NODES):
    rng = random.Random(seed)
    n = rng.randint(0, max_nodes)
    symbols = [Symbol("s%d" % i, size=1) for i in range(n)]
    graph = InterferenceGraph()
    for sym in symbols:
        graph.add_node(sym)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < rng.choice((0.15, 0.4, 0.8)):
                graph.add_edge(symbols[i], symbols[j], rng.randint(1, 9))
    return graph


def _brute_force_minimum(graph):
    """The true minimum internal cost over all 2^n assignments."""
    nodes = list(graph.nodes)
    best = None
    for mask in range(1 << len(nodes)):
        set_x = [n for i, n in enumerate(nodes) if not mask & (1 << i)]
        set_y = [n for i, n in enumerate(nodes) if mask & (1 << i)]
        cost = graph.internal_cost(set_x) + graph.internal_cost(set_y)
        if best is None or cost < best:
            best = cost
    return 0 if best is None else best


GRAPH_SEEDS = range(30)


@pytest.mark.parametrize("graph_seed", GRAPH_SEEDS)
def test_exact_matches_brute_force_enumeration(graph_seed):
    graph = _random_graph(graph_seed)
    result = make_partitioner(graph, "exact").partition()
    assert result.proved_optimal is True
    assert result.final_cost == _brute_force_minimum(graph)


@pytest.mark.parametrize("graph_seed", GRAPH_SEEDS)
def test_no_heuristic_beats_exact(graph_seed):
    exact = make_partitioner(_random_graph(graph_seed), "exact").partition()
    for name in HEURISTICS:
        result = make_partitioner(_random_graph(graph_seed), name).partition()
        assert result.final_cost >= exact.final_cost, (
            "%s claims cost %s below the proved optimum %s on graph seed %d"
            % (name, result.final_cost, exact.final_cost, graph_seed)
        )


@pytest.mark.parametrize("name", sorted(PARTITIONERS))
def test_every_partitioner_respects_the_brute_force_floor(name):
    for graph_seed in (0, 7, 19):
        graph = _random_graph(graph_seed, max_nodes=8)
        floor = _brute_force_minimum(graph)
        result = make_partitioner(_random_graph(graph_seed, max_nodes=8),
                                  name).partition()
        assert result.final_cost >= floor


def test_exact_on_paper_figure5_graph():
    """The Figure 5 example: greedy's cost-2 answer is in fact optimal
    (K4 with one weight-2 edge cannot be split cheaper)."""
    symbols = {n: Symbol(n, size=4) for n in "ABCD"}
    graph = InterferenceGraph()
    for sym in symbols.values():
        graph.add_node(sym)
    for a, b in itertools.combinations("ABCD", 2):
        graph.add_edge(symbols[a], symbols[b], 2 if (a, b) == ("A", "D") else 1)
    result = make_partitioner(graph, "exact").partition()
    assert result.proved_optimal is True
    assert result.final_cost == 2
    assert result.final_cost == _brute_force_minimum(graph)
