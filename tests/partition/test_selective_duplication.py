"""Tests for selective duplication (the paper's Section 5 refinement)."""

import pytest

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.partition.duplication import (
    estimate_store_penalty,
    select_beneficial,
)
from repro.partition.graph_builder import build_interference_graph
from repro.partition.strategies import Strategy, run_allocation
from repro.partition.weights import StaticDepthWeights
from repro.sim.simulator import Simulator
from repro.sim.tracing import profile_module
from repro.workloads.registry import APPLICATIONS
from tests.conftest import compile_and_run


def _read_mostly_module():
    """Same-array read pairs in a hot loop; stores only in a cold setup."""
    pb = ProgramBuilder("readmostly")
    sig = pb.global_array("sig", 16, float, init=[0.0] * 16)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        with f.loop(16) as i:
            f.assign(sig[i], 1.0)
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(4, name="m") as m:
            with f.loop(8, name="n") as n:
                f.assign(acc, acc + sig[n] * sig[n + m])
        f.assign(out[0], acc)
    return pb.build()


def _store_heavy_module():
    """Same-array read pairs, but the same loop stores twice per read."""
    pb = ProgramBuilder("storeheavy")
    buf = pb.global_array("buf", 16, float, init=[1.0] * 16)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(3, name="r"):
            with f.loop(8, name="i") as i:
                a = f.float_var("a")
                b = f.float_var("b")
                f.assign(a, buf[i])
                f.assign(b, buf[i + 8])
                f.assign(acc, acc + a * b)
                f.assign(buf[i], a + 0.25)
                f.assign(buf[i + 8], b + 0.5)
        f.assign(out[0], acc)
    return pb.build()


def test_benefit_accumulates_with_depth_weights():
    module = _read_mostly_module()
    graph = build_interference_graph(module)
    sig = module.globals.get("sig")
    assert graph.duplication_benefit(sig) > 0


def test_store_penalty_counts_weighted_stores():
    module = _store_heavy_module()
    weights = StaticDepthWeights()
    buf = module.globals.get("buf")
    penalty = estimate_store_penalty(module, buf, weights)
    # Two stores at depth 2 (weight 3) each occurrence.
    assert penalty == 2 * 3


def test_selection_keeps_read_mostly_candidates():
    module = _read_mostly_module()
    graph = build_interference_graph(module)
    selected, decisions = select_beneficial(
        module, graph, StaticDepthWeights()
    )
    assert [s.name for s in selected] == ["sig"]
    (symbol, benefit, penalty, keep) = decisions[0]
    assert keep and benefit > penalty


def test_selection_rejects_store_heavy_candidates():
    module = _store_heavy_module()
    graph = build_interference_graph(module)
    sig = module.globals.get("buf")
    assert sig in graph.duplication_candidates
    selected, decisions = select_beneficial(
        module, graph, StaticDepthWeights()
    )
    assert selected == []


def test_selective_strategy_end_to_end_semantics():
    for build in (_read_mostly_module, _store_heavy_module):
        sims = {}
        for strategy in (Strategy.SINGLE_BANK, Strategy.CB_DUP_SELECTIVE):
            sim, _ = compile_and_run(build(), strategy=strategy)
            sims[strategy] = sim.read_global("out")
        assert sims[Strategy.SINGLE_BANK] == sims[Strategy.CB_DUP_SELECTIVE]


def test_selective_never_below_best_of_cb_and_dup_on_dup_apps():
    """The refinement's whole point: on each of the paper's duplication
    applications, selective duplication matches the better of CB and
    blanket partial duplication."""
    for name in ("lpc", "spectral", "V32encode"):
        workload = APPLICATIONS[name]
        counts = profile_module(workload.build)
        cycles = {}
        for strategy in (Strategy.CB, Strategy.CB_DUP, Strategy.CB_DUP_SELECTIVE):
            kwargs = (
                {"profile_counts": counts}
                if strategy is Strategy.CB_DUP_SELECTIVE
                else {}
            )
            compiled = compile_module(
                workload.build(), strategy=strategy, **kwargs
            )
            sim = Simulator(compiled.program)
            result = sim.run()
            workload.verify(sim)
            cycles[strategy] = result.cycles
        best = min(cycles[Strategy.CB], cycles[Strategy.CB_DUP])
        assert cycles[Strategy.CB_DUP_SELECTIVE] <= best * 1.01, (name, cycles)


def test_selective_decisions_recorded():
    workload = APPLICATIONS["spectral"]
    compiled = compile_module(
        workload.build(), strategy=Strategy.CB_DUP_SELECTIVE
    )
    decisions = {
        symbol.name: keep
        for symbol, _b, _p, keep in compiled.allocation.duplication_decisions
    }
    assert decisions.get("re") is False
    assert decisions.get("im") is False


def test_selective_works_without_profile():
    workload = APPLICATIONS["lpc"]
    compiled = compile_module(
        workload.build(), strategy=Strategy.CB_DUP_SELECTIVE
    )
    assert any(s.name == "ws" for s in compiled.allocation.duplicated)
