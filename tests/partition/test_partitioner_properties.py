"""Property tests every registry partitioner must satisfy.

The registry contract (:mod:`repro.partition.registry`): whatever the
algorithm — greedy descent, branch-and-bound, annealing, KL refinement
— a partitioner maps ``(graph, seed)`` to a
:class:`~repro.partition.greedy.PartitionResult` whose sets cover the
nodes disjointly, whose cost trace starts at the everything-in-X cost
and strictly decreases to the cost of the returned assignment, and
which is bit-identical when rerun with the same seed.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.symbols import Symbol
from repro.partition.interference import InterferenceGraph
from repro.partition.registry import PARTITIONERS, make_partitioner

ALL_PARTITIONERS = sorted(PARTITIONERS)


@st.composite
def interference_graphs(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    symbols = [Symbol("s%d" % i, size=1 + i) for i in range(n)]
    graph = InterferenceGraph()
    for sym in symbols:
        graph.add_node(sym)
    if n >= 2:
        edge_count = draw(st.integers(min_value=0, max_value=n * (n - 1) // 2))
        for _ in range(edge_count):
            a = draw(st.integers(min_value=0, max_value=n - 1))
            b = draw(st.integers(min_value=0, max_value=n - 1))
            if a == b:
                continue
            weight = draw(st.integers(min_value=1, max_value=9))
            graph.add_edge(symbols[a], symbols[b], weight, accumulate=True)
    return graph


def _random_graph(seed, max_nodes=12):
    """A deterministic random graph for the seeded-determinism checks
    (hypothesis shrinks examples, so seed-stability needs its own
    generator)."""
    rng = random.Random(seed)
    n = rng.randint(0, max_nodes)
    symbols = [Symbol("s%d" % i, size=1) for i in range(n)]
    graph = InterferenceGraph()
    for sym in symbols:
        graph.add_node(sym)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.4:
                graph.add_edge(symbols[i], symbols[j], rng.randint(1, 9))
    return graph


def _names(result):
    return (
        [s.name for s in result.set_x],
        [s.name for s in result.set_y],
    )


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
@given(graph=interference_graphs())
@settings(max_examples=40, deadline=None)
def test_sets_disjointly_cover_the_nodes(name, graph):
    result = make_partitioner(graph, name).partition()
    names_x = {s.name for s in result.set_x}
    names_y = {s.name for s in result.set_y}
    assert not names_x & names_y
    assert names_x | names_y == {s.name for s in graph.nodes}


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
@given(graph=interference_graphs())
@settings(max_examples=40, deadline=None)
def test_cost_trace_is_anchored_and_strictly_decreasing(name, graph):
    result = make_partitioner(graph, name).partition()
    trace = result.cost_trace
    assert trace[0] == graph.total_weight()
    for earlier, later in zip(trace, trace[1:]):
        assert later < earlier
    assert result.final_cost <= result.initial_cost
    assert result.final_cost >= 0


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
@given(graph=interference_graphs())
@settings(max_examples=40, deadline=None)
def test_final_cost_is_the_cost_of_the_returned_assignment(name, graph):
    result = make_partitioner(graph, name).partition()
    recomputed = graph.internal_cost(result.set_x) + graph.internal_cost(
        result.set_y
    )
    assert recomputed == result.final_cost


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
@pytest.mark.parametrize("seed", [0, 1, 12345])
def test_bit_identical_under_a_fixed_seed(name, seed):
    for graph_seed in range(8):
        first = make_partitioner(
            _random_graph(graph_seed), name, seed=seed
        ).partition()
        second = make_partitioner(
            _random_graph(graph_seed), name, seed=seed
        ).partition()
        assert _names(first) == _names(second)
        assert first.cost_trace == second.cost_trace
        assert first.proved_optimal == second.proved_optimal


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
def test_heuristics_never_beat_exact(name):
    """On graphs the exact solver proves, no heuristic lands lower."""
    for graph_seed in range(10):
        exact = make_partitioner(_random_graph(graph_seed), "exact").partition()
        assert exact.proved_optimal is True
        other = make_partitioner(_random_graph(graph_seed), name).partition()
        assert other.final_cost >= exact.final_cost


def test_proved_optimal_marks_only_the_exact_solver():
    graph_seed = 3
    for name in ALL_PARTITIONERS:
        result = make_partitioner(_random_graph(graph_seed), name).partition()
        if name == "exact":
            assert result.proved_optimal is True
        else:
            assert result.proved_optimal is None
