"""Property test: DSL expression evaluation matches Python semantics.

Random expression trees are built simultaneously as DSL expressions and
as Python closures; the compiled program must compute exactly what
Python computes (float arithmetic is IEEE double in both worlds).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.frontend import ProgramBuilder
from tests.conftest import compile_and_run


@st.composite
def expression_trees(draw, depth=0):
    """Returns a (spec) tree; leaves are variable indices or constants."""
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return ("var", draw(st.integers(0, 2)))
        return ("const", draw(st.integers(-4, 4)))
    op = draw(st.sampled_from(["+", "-", "*", "min", "max", "abs", "neg"]))
    if op in ("abs", "neg"):
        return (op, draw(expression_trees(depth=depth + 1)))
    return (
        op,
        draw(expression_trees(depth=depth + 1)),
        draw(expression_trees(depth=depth + 1)),
    )


def _eval_python(tree, env):
    kind = tree[0]
    if kind == "var":
        return env[tree[1]]
    if kind == "const":
        return float(tree[1])
    if kind == "abs":
        return abs(_eval_python(tree[1], env))
    if kind == "neg":
        return -_eval_python(tree[1], env)
    a = _eval_python(tree[1], env)
    b = _eval_python(tree[2], env)
    if kind == "+":
        return a + b
    if kind == "-":
        return a - b
    if kind == "*":
        return a * b
    if kind == "min":
        return min(a, b)
    if kind == "max":
        return max(a, b)
    raise AssertionError(kind)


def _eval_dsl(tree, variables):
    from repro.frontend.expressions import fmax, fmin

    kind = tree[0]
    if kind == "var":
        return variables[tree[1]]
    if kind == "const":
        return float(tree[1])
    if kind == "abs":
        return abs(_eval_dsl(tree[1], variables))
    if kind == "neg":
        return -_eval_dsl(tree[1], variables)
    a = _eval_dsl(tree[1], variables)
    b = _eval_dsl(tree[2], variables)
    if kind == "+":
        return a + b
    if kind == "-":
        return a - b
    if kind == "*":
        return a * b
    if kind == "min":
        return fmin(a, b)
    if kind == "max":
        return fmax(a, b)
    raise AssertionError(kind)


@given(
    expression_trees(),
    st.tuples(
        st.floats(-8, 8, allow_nan=False),
        st.floats(-8, 8, allow_nan=False),
        st.floats(-8, 8, allow_nan=False),
    ),
)
@settings(max_examples=80, deadline=None)
def test_expression_semantics_match_python(tree, values):
    # Constant-only trees lower to a pure immediate; fine, but make sure
    # at least something interesting happens most of the time.
    pb = ProgramBuilder("expr")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        variables = []
        for i, value in enumerate(values):
            v = f.float_var("v%d" % i)
            f.assign(v, value)
            variables.append(v)
        f.assign(out[0], _eval_dsl(tree, variables))
    sim, _ = compile_and_run(pb.build())
    expected = _eval_python(tree, list(values))
    assert sim.read_global("out") == expected


@given(
    st.integers(-100, 100),
    st.integers(-100, 100),
    st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^"]),
)
@settings(max_examples=80, deadline=None)
def test_integer_binops_match_c_semantics(a, b, op):
    if op in ("/", "%"):
        assume(b != 0)
    pb = ProgramBuilder("ints")
    out = pb.global_scalar("out", int)
    with pb.function("main") as f:
        ra = f.int_var("a")
        rb = f.int_var("b")
        f.assign(ra, a)
        f.assign(rb, b)
        expr = {
            "+": ra + rb,
            "-": ra - rb,
            "*": ra * rb,
            "/": ra / rb,
            "%": ra % rb,
            "&": ra & rb,
            "|": ra | rb,
            "^": ra ^ rb,
        }[op]
        f.assign(out[0], expr)
    sim, _ = compile_and_run(pb.build())
    if op == "/":
        q = abs(a) // abs(b)
        expected = q if (a >= 0) == (b >= 0) else -q
    elif op == "%":
        q = abs(a) // abs(b)
        tq = q if (a >= 0) == (b >= 0) else -q
        expected = a - tq * b
    else:
        expected = eval("a %s b" % op)
    assert sim.read_global("out") == expected
