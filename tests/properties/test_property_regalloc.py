"""Property tests for register allocation under varying pressure.

Random programs holding N values live simultaneously (N spans both
sides of the 22-register allocatable limit) must compute the same
results as pure Python, spilled or not — and nested-call variants must
preserve caller state across callee-save/restore.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_module
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator


@given(
    st.integers(min_value=1, max_value=40),
    st.lists(st.integers(-5, 5), min_size=1, max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_live_value_pressure(live_count, updates):
    """Create `live_count` simultaneously-live floats, mutate a rotating
    subset, and fold them all at the end."""
    pb = ProgramBuilder("pressure")
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        values = []
        python_values = []
        for i in range(live_count):
            v = f.float_var("v%d" % i)
            f.assign(v, float(i))
            values.append(v)
            python_values.append(float(i))
        for round_no, delta in enumerate(updates):
            target = round_no % live_count
            f.assign(values[target], values[target] + float(delta))
            python_values[target] += float(delta)
        total = f.float_var("total")
        f.assign(total, 0.0)
        for v in values:
            f.assign(total, total + v)
        f.assign(out[0], total)
    compiled = compile_module(pb.build(), strategy=Strategy.CB)
    simulator = Simulator(compiled.program)
    simulator.run()
    assert simulator.read_global("out") == sum(python_values)


@given(st.integers(min_value=1, max_value=30))
@settings(max_examples=25, deadline=None)
def test_caller_state_survives_calls_under_pressure(live_count):
    pb = ProgramBuilder("calls")
    out = pb.global_scalar("out", float)
    with pb.function("mix", params=[("x", float)], returns=float) as f:
        a = f.float_var("a")
        b = f.float_var("b")
        f.assign(a, f.param("x") * 2.0)
        f.assign(b, a + 1.0)
        f.ret(a + b)
    with pb.function("main") as f:
        values = []
        for i in range(live_count):
            v = f.float_var()
            f.assign(v, float(i) * 0.5)
            values.append(v)
        r = f.float_var("r")
        f.assign(r, pb.get("mix")(3.0))
        total = f.float_var("total")
        f.assign(total, r)
        for v in values:
            f.assign(total, total + v)
        f.assign(out[0], total)
    compiled = compile_module(pb.build(), strategy=Strategy.CB)
    simulator = Simulator(compiled.program)
    simulator.run()
    expected = (6.0 + 7.0) + sum(float(i) * 0.5 for i in range(live_count))
    assert simulator.read_global("out") == expected


@given(st.integers(min_value=24, max_value=36), st.booleans())
@settings(max_examples=15, deadline=None)
def test_spilled_loop_accumulators(live_count, use_cb):
    """Loop-carried values that spill must still accumulate correctly."""
    pb = ProgramBuilder("spill_loop")
    data = pb.global_array("data", 8, float, init=[1.0] * 8)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        accs = []
        for i in range(live_count):
            v = f.float_var()
            f.assign(v, 0.0)
            accs.append(v)
        with f.loop(8) as i:
            x = f.float_var("x")
            f.assign(x, data[i])
            for j, acc in enumerate(accs[:4]):
                f.assign(acc, acc + x * float(j + 1))
        total = f.float_var("total")
        f.assign(total, 0.0)
        for acc in accs:
            f.assign(total, total + acc)
        f.assign(out[0], total)
    strategy = Strategy.CB if use_cb else Strategy.SINGLE_BANK
    compiled = compile_module(pb.build(), strategy=strategy)
    simulator = Simulator(compiled.program)
    simulator.run()
    expected = sum(8.0 * float(j + 1) for j in range(4))
    assert simulator.read_global("out") == expected
