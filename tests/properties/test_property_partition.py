"""Property-based tests for the greedy partitioner."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.symbols import Symbol
from repro.partition.greedy import GreedyPartitioner
from repro.partition.interference import InterferenceGraph


@st.composite
def interference_graphs(draw):
    n = draw(st.integers(min_value=0, max_value=10))
    symbols = [Symbol("s%d" % i, size=1 + i) for i in range(n)]
    graph = InterferenceGraph()
    for sym in symbols:
        graph.add_node(sym)
    if n >= 2:
        edge_count = draw(st.integers(min_value=0, max_value=n * (n - 1) // 2))
        for _ in range(edge_count):
            a = draw(st.integers(min_value=0, max_value=n - 1))
            b = draw(st.integers(min_value=0, max_value=n - 1))
            if a == b:
                continue
            weight = draw(st.integers(min_value=1, max_value=9))
            graph.add_edge(symbols[a], symbols[b], weight, accumulate=True)
    return graph


@given(interference_graphs())
@settings(max_examples=120, deadline=None)
def test_partition_assigns_every_node_exactly_once(graph):
    result = GreedyPartitioner(graph).partition()
    names_x = {s.name for s in result.set_x}
    names_y = {s.name for s in result.set_y}
    assert not names_x & names_y
    assert names_x | names_y == {s.name for s in graph.nodes}


@given(interference_graphs())
@settings(max_examples=120, deadline=None)
def test_partition_cost_monotonically_decreases(graph):
    result = GreedyPartitioner(graph).partition()
    trace = result.cost_trace
    assert trace[0] == graph.total_weight()
    for earlier, later in zip(trace, trace[1:]):
        assert later < earlier
    assert result.final_cost >= 0


@given(interference_graphs())
@settings(max_examples=120, deadline=None)
def test_final_cost_matches_internal_cost(graph):
    result = GreedyPartitioner(graph).partition()
    recomputed = graph.internal_cost(result.set_x) + graph.internal_cost(
        result.set_y
    )
    assert recomputed == result.final_cost


@given(interference_graphs())
@settings(max_examples=60, deadline=None)
def test_partition_is_local_minimum(graph):
    """No single node move can further decrease the cost (the greedy
    stopping condition, checked exhaustively)."""
    result = GreedyPartitioner(graph).partition()
    base = result.final_cost
    # Only X -> Y moves are part of the paper's algorithm; verify none of
    # them would still help.
    for node in result.set_x:
        moved_x = [s for s in result.set_x if s is not node]
        moved_y = result.set_y + [node]
        cost = graph.internal_cost(moved_x) + graph.internal_cost(moved_y)
        assert cost >= base


@given(interference_graphs())
@settings(max_examples=60, deadline=None)
def test_partition_deterministic(graph):
    first = GreedyPartitioner(graph).partition()
    second = GreedyPartitioner(graph).partition()
    assert [s.name for s in first.set_x] == [s.name for s in second.set_x]
    assert first.cost_trace == second.cost_trace


@st.composite
def graph_contents_with_orders(draw):
    """The same graph *content* in two independent insertion orders."""
    n = draw(st.integers(min_value=0, max_value=8))
    names = ["s%d" % i for i in range(n)]
    edges = {}
    if n >= 2:
        edge_count = draw(st.integers(min_value=0, max_value=n * (n - 1) // 2))
        for _ in range(edge_count):
            a = draw(st.integers(min_value=0, max_value=n - 1))
            b = draw(st.integers(min_value=0, max_value=n - 1))
            if a != b:
                key = tuple(sorted((names[a], names[b])))
                edges[key] = draw(st.integers(min_value=1, max_value=9))
    edge_list = sorted(edges.items())
    return (
        (names, edge_list),
        (draw(st.permutations(names)), draw(st.permutations(edge_list))),
    )


def _build_graph(names, edges):
    symbols = {name: Symbol(name, size=1) for name in names}
    graph = InterferenceGraph()
    for name in names:
        graph.add_node(symbols[name])
    for (a, b), weight in edges:
        graph.add_edge(symbols[a], symbols[b], weight)
    return graph


@given(graph_contents_with_orders())
@settings(max_examples=60, deadline=None)
def test_partition_invariant_under_insertion_order(orders):
    """Ties break on node name, so the partition depends only on graph
    content — never on the order nodes or edges were added."""
    (names, edges), (shuffled_names, shuffled_edges) = orders
    base = GreedyPartitioner(_build_graph(names, edges)).partition()
    other = GreedyPartitioner(
        _build_graph(shuffled_names, shuffled_edges)
    ).partition()
    assert {s.name for s in base.set_x} == {s.name for s in other.set_x}
    assert {s.name for s in base.set_y} == {s.name for s in other.set_y}
    assert base.cost_trace == other.cost_trace
