"""Differential property test over nested-loop programs.

Exercises the interactions most likely to hide bugs: induction-variable
reduction under nesting, hardware loops with runtime trip counts,
while loops, software pipelining, and the optimizer — all strategies
and option combinations must agree with the single-bank baseline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompileOptions, compile_module
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator


@st.composite
def nested_recipes(draw):
    return {
        "outer": draw(st.integers(1, 4)),
        "inner": draw(st.integers(1, 5)),
        "offset": draw(st.integers(0, 3)),
        "use_while": draw(st.booleans()),
        "conditional": draw(st.booleans()),
        "runtime_count": draw(st.booleans()),
    }


def _build(recipe):
    pb = ProgramBuilder("nested")
    size = 16
    a = pb.global_array("a", size, float, init=[float(i % 5) for i in range(size)])
    b = pb.global_array("b", size, float, init=[float(i % 3) for i in range(size)])
    counts = pb.global_array("counts", 4, int, init=[recipe["inner"]] * 4)
    out = pb.global_scalar("out", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        with f.loop(recipe["outer"], name="o") as o:
            if recipe["runtime_count"]:
                limit = f.index_var("limit")
                f.assign(limit, counts[0])
            else:
                limit = recipe["inner"]
            with f.loop(limit, name="i") as i:
                # same-array offset access + cross-array access, both
                # with induction-reducible indices
                f.assign(acc, acc + a[i + recipe["offset"]] * b[i])
                f.assign(acc, acc + a[i] * a[i + 1])
            if recipe["conditional"]:
                with f.if_(acc > 3.0):
                    f.assign(acc, acc - 1.0)
                with f.else_():
                    f.assign(acc, acc + 0.5)
        if recipe["use_while"]:
            n = f.int_var("n")
            f.assign(n, 3)
            with f.while_(lambda: n > 0):
                f.assign(acc, acc * 1.5)
                f.assign(n, n - 1)
        f.assign(out[0], acc)
    return pb.build()


def _run(recipe, strategy, software_pipelining=False, optimize=False):
    compiled = compile_module(
        _build(recipe),
        CompileOptions(
            strategy=strategy,
            profile_counts={} if strategy.needs_profile else None,
            software_pipelining=software_pipelining,
            optimize=optimize,
        ),
    )
    simulator = Simulator(compiled.program)
    result = simulator.run()
    return simulator.read_global("out"), result.cycles


@given(nested_recipes())
@settings(max_examples=30, deadline=None)
def test_nested_programs_agree_across_strategies(recipe):
    reference, base_cycles = _run(recipe, Strategy.SINGLE_BANK)
    for strategy in (
        Strategy.CB,
        Strategy.CB_DUP,
        Strategy.CB_DUP_SELECTIVE,
        Strategy.ALTERNATING,
        Strategy.IDEAL,
    ):
        value, cycles = _run(recipe, strategy)
        assert value == reference, strategy
    cb_value, cb_cycles = _run(recipe, Strategy.CB)
    assert cb_cycles <= base_cycles


@given(nested_recipes())
@settings(max_examples=20, deadline=None)
def test_optional_passes_preserve_semantics(recipe):
    reference, plain_cycles = _run(recipe, Strategy.CB)
    piped, piped_cycles = _run(recipe, Strategy.CB, software_pipelining=True)
    optimized, _ = _run(recipe, Strategy.CB, optimize=True)
    both, _ = _run(
        recipe, Strategy.CB, software_pipelining=True, optimize=True
    )
    assert piped == reference
    assert optimized == reference
    assert both == reference
    assert piped_cycles <= plain_cycles
