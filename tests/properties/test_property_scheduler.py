"""Property-based tests for compaction: every schedule must be legal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dependence import DepKind, build_dependence_graph
from repro.compiler.compaction import compact_block
from repro.ir.block import BasicBlock
from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import MemoryBank, Symbol
from repro.ir.types import RegClass
from repro.ir.values import Immediate, VirtualRegister
from repro.machine.resources import bank_for_unit, units_for_class

_SYMBOLS = [Symbol("m%d" % i, size=8) for i in range(3)]
for _i, _s in enumerate(_SYMBOLS):
    _s.bank = MemoryBank.X if _i % 2 == 0 else MemoryBank.Y


@st.composite
def random_blocks(draw):
    """Random straight-line blocks over small register/symbol pools."""
    float_regs = [VirtualRegister(i, RegClass.FLOAT) for i in range(4)]
    int_regs = [VirtualRegister(10 + i, RegClass.INT) for i in range(4)]
    addr_regs = [VirtualRegister(20 + i, RegClass.ADDR) for i in range(2)]
    ops = []
    n = draw(st.integers(min_value=1, max_value=14))
    for _ in range(n):
        kind = draw(st.integers(min_value=0, max_value=5))
        if kind == 0:  # float arithmetic
            dest = draw(st.sampled_from(float_regs))
            a = draw(st.sampled_from(float_regs))
            b = draw(st.sampled_from(float_regs))
            opcode = draw(st.sampled_from([OpCode.FADD, OpCode.FMUL, OpCode.FMAC]))
            ops.append(Operation(opcode, dest=dest, sources=(a, b)))
        elif kind == 1:  # int arithmetic
            dest = draw(st.sampled_from(int_regs))
            a = draw(st.sampled_from(int_regs))
            b = draw(st.sampled_from(int_regs))
            opcode = draw(st.sampled_from([OpCode.ADD, OpCode.XOR, OpCode.MIN]))
            ops.append(Operation(opcode, dest=dest, sources=(a, b)))
        elif kind == 2:  # address arithmetic
            dest = draw(st.sampled_from(addr_regs))
            a = draw(st.sampled_from(addr_regs))
            ops.append(
                Operation(
                    OpCode.AADD,
                    dest=dest,
                    sources=(a, Immediate(draw(st.integers(0, 3)))),
                )
            )
        elif kind == 3:  # load
            sym = draw(st.sampled_from(_SYMBOLS))
            dest = draw(st.sampled_from(float_regs))
            index = Immediate(draw(st.integers(0, 7)))
            ops.append(
                Operation(
                    OpCode.LOAD, dest=dest, sources=(index,), symbol=sym,
                    bank=sym.bank,
                )
            )
        elif kind == 4:  # store
            sym = draw(st.sampled_from(_SYMBOLS))
            value = draw(st.sampled_from(float_regs))
            index = Immediate(draw(st.integers(0, 7)))
            ops.append(
                Operation(
                    OpCode.STORE, sources=(value, index), symbol=sym,
                    bank=sym.bank,
                )
            )
        else:  # constant
            dest = draw(st.sampled_from(float_regs))
            ops.append(
                Operation(
                    OpCode.FCONST,
                    dest=dest,
                    sources=(Immediate(float(draw(st.integers(0, 9)))),),
                )
            )
    block = BasicBlock("prop")
    block.ops = ops
    return block


def _instruction_of(instructions):
    """Map id(op) -> instruction index."""
    placed = {}
    for idx, instruction in enumerate(instructions):
        for _unit, op in instruction:
            assert id(op) not in placed, "op placed twice"
            placed[id(op)] = idx
    return placed


@given(random_blocks(), st.booleans())
@settings(max_examples=150, deadline=None)
def test_schedule_is_complete_and_legal(block, dual_ported):
    original_ops = list(block.ops)
    graph = build_dependence_graph(original_ops)
    instructions = compact_block(block, dual_ported=dual_ported)
    placed = _instruction_of(instructions)

    # 1. Completeness: every operation appears exactly once.
    assert len(placed) == len(original_ops)

    # 2. Unit legality: each op sits on a unit of its class, and memory
    #    ops sit on the unit wired to their bank (unless dual-ported).
    for instruction in instructions:
        for unit, op in instruction:
            assert unit in units_for_class(op.unit)
            if op.is_memory and not dual_ported:
                assert op.bank is bank_for_unit(unit)

    # 3. Dependence legality: flow/output edges strictly ordered; anti
    #    edges never inverted.
    for src in range(len(original_ops)):
        for dst, kinds in graph.succs[src].items():
            a = placed[id(original_ops[src])]
            b = placed[id(original_ops[dst])]
            if DepKind.FLOW in kinds or DepKind.OUTPUT in kinds:
                assert a < b, (src, dst, kinds)
            else:
                assert a <= b, (src, dst, kinds)


@given(random_blocks())
@settings(max_examples=100, deadline=None)
def test_dual_ported_never_slower(block):
    import copy

    ops = list(block.ops)
    block_a = BasicBlock("a")
    block_a.ops = list(ops)
    block_b = BasicBlock("b")
    block_b.ops = list(ops)
    banked = compact_block(block_a, dual_ported=False)
    ported = compact_block(block_b, dual_ported=True)
    assert len(ported) <= len(banked)
