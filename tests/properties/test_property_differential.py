"""Differential property test: every allocation strategy must compute
the same results, and none may be slower than the single-bank baseline.

Random DSL programs (loops, conditionals, array traffic, scalar
arithmetic) are generated from a seed recipe, then built once per
strategy (compilation consumes modules) and executed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from tests.conftest import compile_and_run


@st.composite
def program_recipes(draw):
    """A serializable recipe from which a program can be rebuilt."""
    statements = draw(
        st.lists(
            st.tuples(
                st.integers(0, 4),      # statement kind
                st.integers(0, 2),      # array choice
                st.integers(0, 2),      # second array choice
                st.integers(1, 7),      # scalar
                st.integers(2, 6),      # loop trips
            ),
            min_size=1,
            max_size=6,
        )
    )
    return statements


def _build(recipe):
    pb = ProgramBuilder("prop")
    arrays = [
        pb.global_array("arr%d" % i, 8, float, init=[float(i + 1)] * 8)
        for i in range(3)
    ]
    out = pb.global_array("out", 8, float)
    checksum = pb.global_scalar("checksum", float)
    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        for kind, a_i, b_i, scalar, trips in recipe:
            a = arrays[a_i]
            b = arrays[b_i]
            if kind == 0:  # dot-product style loop
                with f.loop(trips) as i:
                    f.assign(acc, acc + a[i] * b[i])
            elif kind == 1:  # same-array offset access (duplication case)
                with f.loop(trips) as i:
                    f.assign(acc, acc + a[i] * a[i + 1])
            elif kind == 2:  # array update loop
                with f.loop(trips) as i:
                    f.assign(a[i], b[i] + float(scalar))
            elif kind == 3:  # conditional accumulation
                with f.loop(trips) as i:
                    v = f.float_var()
                    f.assign(v, a[i])
                    with f.if_(v > float(scalar) * 0.5):
                        f.assign(acc, acc + v)
                    with f.else_():
                        f.assign(acc, acc - 1.0)
            else:  # strided writeback
                with f.loop(trips) as i:
                    f.assign(out[i], acc + b[i])
        f.assign(checksum[0], acc)
    return pb.build()


@given(program_recipes())
@settings(max_examples=40, deadline=None)
def test_all_strategies_agree_and_baseline_is_slowest(recipe):
    from repro.ir.interp import IRInterpreter

    results = {}
    cycles = {}
    for strategy in Strategy:
        counts = {} if strategy is Strategy.CB_PROFILE else None
        sim, result = compile_and_run(
            _build(recipe), strategy=strategy, profile_counts=counts
        )
        results[strategy] = (
            sim.read_global("checksum"),
            tuple(sim.read_global("out")),
        )
        cycles[strategy] = result.cycles

    # The sequential IR walker is the independent oracle.
    interp = IRInterpreter(_build(recipe)).run()
    reference = (
        interp.read_global("checksum"),
        tuple(interp.read_global("out")),
    )
    for strategy, observed in results.items():
        assert observed == reference, strategy

    # Partitioning may never lose to the baseline, and ideal dual-ported
    # memory bounds the partitioned configurations from below.
    assert cycles[Strategy.CB] <= cycles[Strategy.SINGLE_BANK]
    assert cycles[Strategy.IDEAL] <= cycles[Strategy.CB]
    assert cycles[Strategy.IDEAL] <= cycles[Strategy.CB_DUP]
