"""Differential property test: every allocation strategy must compute
the same results, both simulator backends must be bit-identical, and no
strategy may lose to the single-bank baseline.

Programs are drawn from the fuzzing subsystem's recipe grammar
(:mod:`repro.fuzz.generator` — nested loops, conditionals, calls, local
arrays, duplicated-array store patterns, interrupt toggling) and checked
by the full differential oracle (:mod:`repro.fuzz.oracle`).  Hypothesis
explores the seed/size space and shrinks over it; for a minimal
*recipe-level* reproducer of a failure, feed the printed seed to
``python -m repro fuzz`` (whose delta debugger minimizes the recipe
itself).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.generator import Recipe, generate_recipe
from repro.fuzz.oracle import check_recipe
from repro.partition.strategies import Strategy


@given(
    seed=st.integers(0, 2**32 - 1),
    max_statements=st.integers(1, 6),
)
@settings(max_examples=25, deadline=None)
def test_oracle_holds_on_random_programs(seed, max_statements):
    recipe = generate_recipe(seed, max_statements=max_statements)
    report = check_recipe(recipe)
    assert Strategy.SINGLE_BANK in report.cycles
    assert report.cycles[Strategy.IDEAL] <= report.cycles[Strategy.CB]


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_recipes_round_trip_through_json(seed):
    recipe = generate_recipe(seed)
    assert Recipe.from_json(recipe.to_json()) == recipe
