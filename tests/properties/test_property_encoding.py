"""Property test: instruction encoding round-trips arbitrary schedules."""

from hypothesis import given, settings

from repro.compiler.compaction import compact_block
from repro.machine.encoding import Decoder, Encoder
from tests.properties.test_property_scheduler import random_blocks


def _ops_equal(a, b):
    if a.opcode is not b.opcode:
        return False
    if (a.dest is None) != (b.dest is None):
        return False
    if a.dest is not None and (
        a.dest.rclass is not b.dest.rclass
        or (a.dest.physical or 0) != (b.dest.physical or 0)
    ):
        return False
    if len(a.sources) != len(b.sources):
        return False
    for sa, sb in zip(a.sources, b.sources):
        if type(sa) is not type(sb):
            return False
        if hasattr(sa, "value"):
            if sa.value != sb.value:
                return False
        else:
            if sa.rclass is not sb.rclass:
                return False
            if (sa.physical or 0) != (sb.physical or 0):
                return False
    return (
        a.symbol is b.symbol
        and a.bank is b.bank
        and a.locked == b.locked
        and a.shadow == b.shadow
    )


@given(random_blocks())
@settings(max_examples=120, deadline=None)
def test_encode_decode_round_trip(block):
    instructions = compact_block(block)
    encoder = Encoder()
    encoded_bits = [
        encoder.encode_instruction(instruction) for instruction in instructions
    ]
    from repro.machine.encoding import EncodedProgram

    encoded = EncodedProgram(
        encoded_bits, encoder.pool, encoder.symbols, encoder.names
    )
    decoder = Decoder(encoded)
    for bits, original in zip(encoded_bits, instructions):
        decoded = decoder.decode_instruction(bits)
        assert set(decoded.slots) == set(original.slots)
        for unit, op in original:
            assert _ops_equal(op, decoded.slots[unit]), (unit, op)


@given(random_blocks())
@settings(max_examples=60, deadline=None)
def test_encoding_is_deterministic(block):
    instructions = compact_block(block)
    first = Encoder()
    second = Encoder()
    bits_a = [first.encode_instruction(i) for i in instructions]
    bits_b = [second.encode_instruction(i) for i in instructions]
    assert bits_a == bits_b
    assert first.pool == second.pool
