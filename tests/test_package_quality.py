"""Package-level quality gates: documentation and API hygiene."""

import importlib
import pkgutil

import pytest

import repro


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


MODULES = _walk_modules()


def test_every_module_importable_and_documented():
    undocumented = []
    for name in MODULES:
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            undocumented.append(name)
    assert not undocumented, "modules without docstrings: %s" % undocumented


def test_all_exports_resolve():
    for name in MODULES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", ()):
            assert hasattr(module, symbol), "%s.%s missing" % (name, symbol)


def test_public_classes_documented():
    undocumented = []
    for name in MODULES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", ()):
            obj = getattr(module, symbol)
            if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                undocumented.append("%s.%s" % (name, symbol))
    assert not undocumented, undocumented


def test_version_string():
    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_no_module_shadows_stdlib():
    stdlib = {"types", "enum", "math", "statistics", "encodings"}
    leaf_names = {name.rsplit(".", 1)[-1] for name in MODULES}
    # `types` and `statistics` exist as leaves but under the repro
    # namespace only; they must not be importable bare from src layout.
    import types as stdlib_types

    assert not stdlib_types.__file__.startswith("src")


def test_quickstart_doctest_runs():
    import doctest

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
