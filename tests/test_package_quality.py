"""Package-level quality gates: documentation and API hygiene."""

import importlib
import pkgutil

import pytest

import repro


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


MODULES = _walk_modules()


def test_every_module_importable_and_documented():
    undocumented = []
    for name in MODULES:
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            undocumented.append(name)
    assert not undocumented, "modules without docstrings: %s" % undocumented


def test_all_exports_resolve():
    for name in MODULES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", ()):
            assert hasattr(module, symbol), "%s.%s missing" % (name, symbol)


def test_public_classes_documented():
    undocumented = []
    for name in MODULES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", ()):
            obj = getattr(module, symbol)
            if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                undocumented.append("%s.%s" % (name, symbol))
    assert not undocumented, undocumented


def test_public_callables_documented_in_obs_and_evaluation():
    """Every public callable the observability and evaluation layers
    export must carry a docstring — these are the surfaces docs/
    observability.md teaches from."""
    import inspect

    undocumented = []
    for name in MODULES:
        if not (
            name.startswith("repro.obs") or name.startswith("repro.evaluation")
        ):
            continue
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            exported = [n for n in dir(module) if not n.startswith("_")]
        for symbol in exported:
            obj = getattr(module, symbol)
            if not callable(obj):
                continue
            if getattr(obj, "__module__", None) not in (None, name):
                continue  # re-export; documented at its home
            if not (getattr(obj, "__doc__", "") or "").strip():
                undocumented.append("%s.%s" % (name, symbol))
            if inspect.isclass(obj):
                for attr, member in vars(obj).items():
                    if attr.startswith("_"):
                        continue
                    if not callable(member) and not isinstance(
                        member, property
                    ):
                        continue
                    doc = getattr(member, "__doc__", "")
                    if not (doc or "").strip():
                        undocumented.append(
                            "%s.%s.%s" % (name, symbol, attr)
                        )
    assert not undocumented, (
        "public callables without docstrings: %s" % undocumented
    )


def test_key_entry_points_documented():
    """The entry points the docs walk through must stay documented."""
    from repro.evaluation.parallel import parallel_map
    from repro.fuzz.campaign import fuzz_campaign
    from repro.partition.strategies import run_allocation
    from repro.sim.fastsim import make_simulator

    for obj in (make_simulator, parallel_map, fuzz_campaign, run_allocation):
        assert (obj.__doc__ or "").strip(), obj


def test_version_string():
    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_no_module_shadows_stdlib():
    stdlib = {"types", "enum", "math", "statistics", "encodings"}
    leaf_names = {name.rsplit(".", 1)[-1] for name in MODULES}
    # `types` and `statistics` exist as leaves but under the repro
    # namespace only; they must not be importable bare from src layout.
    import types as stdlib_types

    assert not stdlib_types.__file__.startswith("src")


def test_quickstart_doctest_runs():
    import doctest

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
