"""Loop-specializing codegen backend: whole hardware loops per dispatch.

The threaded-code :class:`~repro.sim.fastsim.FastSimulator` still pays
one Python closure call per simulated cycle and re-enters the dispatch
loop on every zero-overhead hardware-loop back-edge, so the hottest
cycles of the paper's loop-dominated DSP kernels are the most expensive
to simulate.  This backend generates Python source per hardware-loop
*region*: an entire loop nest executes as native ``for`` loops over the
armed trip count, with

* **register promotion** — every register slot (and stack pointer) the
  nest touches becomes a Python local, loaded once at loop entry and
  written back when the loop completes (or faults), so the inner loop
  runs on locals instead of list indexing;
* **bulk accounting** — ``pc_counts[pc] += iterations`` per nesting
  level and one cycle-counter update per level, so profiling stays
  bit-identical to the reference interpreter without per-cycle work;
* **interrupt-cadence-aware chunking** — with a hook that advertises an
  integer ``cadence`` (see :class:`~repro.sim.interrupts
  .InterruptInjector`), a loop runs ``min(remaining iterations,
  iterations before the next delivery)`` at full speed per chunk, then
  single-steps the one iteration containing the delivery cycle, calling
  the hook with synchronized state exactly when the reference
  interpreter would deliver (including the dynamic store-lock check
  that skips delivery inside a locked window).

Specializability analysis (per loop region ``[start, end]``):

* no control operation in the body except ``LOOP_BEGIN`` of a properly
  nested loop (body starts right after its ``LOOP_BEGIN``, ends before
  the parent's end);
* the region's end pc is unique program-wide — a shared end would make
  the back-edge cascade through several loop records at one pc, which
  the structural ``for`` translation cannot express.

Everything else falls back: unspecializable loops run on the inherited
fused-superblock path, hooks without a ``cadence`` run on the inherited
per-cycle step path (bit-exact hook visibility), and a loop record that
does not match a compiled entry is simply dispatched normally.  The
guard rails of :mod:`repro.sim.fastsim` carry over unchanged — control
transfers override the loop back-edge, and loop-final instructions keep
their back-edge-vs-taken-branch semantics — because unspecializable
shapes never reach the generated loop bodies.

Error-path divergence (same contract as the fast backend, documented
there): on ``max_cycles`` overruns and machine faults the cycle counter
and per-pc counts may overshoot by up to the remaining iterations of
the specialized loop, and ``pc`` settles on the loop entry rather than
the exact faulting instruction.  Completed runs are bit-identical —
cycles, operations, ``pc_counts``, memory, registers, and the
full-state digest — which is what the differential fuzz oracle and the
equivalence suites verify.

Interrupt protocol for cadence hooks: the hook promises to be a no-op
whenever ``cycle % cadence != 0`` (so skipped calls are unobservable),
may read and write memory and registers at delivery points, but must
not redirect ``pc`` — a redirect inside a specialized loop raises
:class:`~repro.sim.simulator.SimulationError`.  Hooks that need to
redirect, or to observe every cycle, simply do not advertise a cadence.
During specialized execution only the *armed* (top-of-stack) loop
record is maintained; records of inlined inner loops are not pushed,
and the armed record's count is refreshed at chunk boundaries, so
cadence hooks must not inspect ``loop_stack`` beyond the documented
fields.
"""

import re

from repro.ir.operations import OpCode
from repro.sim.fastsim import (
    BACKENDS,
    FastSimulator,
    _CodeBuilder,
    _FIXED_PARAMS,
)
from repro.sim.simulator import (
    CycleLimitError,
    SimulationError,
    SimulationResult,
    _BANK_X,
    _BANK_Y,
)

#: register / stack-pointer references in generated code, for promotion
_REG_REF = re.compile(r"\b(RA|RI|RF|SP)\[(\d+)\]")

_PROMOTED_PREFIX = {"RA": "pa", "RI": "pi", "RF": "pf", "SP": "sp"}


class _Nest:
    """One specializable loop: body range plus properly nested children."""

    __slots__ = ("begin_pc", "start", "end", "children", "index")

    def __init__(self, begin_pc, start, end, children):
        #: pc of the LOOP_BEGIN arming this loop (None for a root entry)
        self.begin_pc = begin_pc
        self.start = start
        self.end = end
        self.children = children
        #: preorder position in the nest (assigned at codegen time)
        self.index = -1


class LoopJitSimulator(FastSimulator):
    """Drop-in replacement for :class:`FastSimulator` that executes
    whole hardware loops per dispatch.

    Three execution modes, chosen by the installed interrupt hook:

    * no hook — fused superblocks plus a loop-entry overlay: when the
      dispatch loop reaches a compiled loop's start pc with that loop's
      record armed on top of the stack, one closure call consumes every
      remaining iteration;
    * hook with an integer ``cadence`` attribute — the per-instruction
      step table plus chunked loop closures that fast-forward between
      delivery cycles;
    * any other hook — the inherited per-cycle
      :meth:`FastSimulator.run` path (hook sees every cycle).
    """

    backend_name = "jit"

    #: generated closures additionally see the pc-count table and the
    #: shared cycle cell (kept in lockstep with :meth:`_fixed_args`)
    _FIXED = _FIXED_PARAMS + ", PCC, CY"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: one-element list holding the running cycle count; generated
        #: loop closures and the dispatch loop share it
        self._cycle_cell = [0]
        #: pc -> loop closure (hook-free mode), parallel end-pc table
        self._entries = None
        self._entry_ends = None
        #: pc -> chunked loop closure (cadence mode), compiled per hook
        self._chunk_entries = None
        self._chunk_ends = None
        self._chunk_sig = None
        self._nest_cache = None
        #: pc -> register refs ("RA[3]", "SP[0]", ...) that pc touches;
        #: shared by every promotion map built for this simulator
        self._ref_cache = {}

    def _fixed_args(self):
        return super()._fixed_args() + (self.pc_counts, self._cycle_cell)

    # ------------------------------------------------------------------
    # Specializability analysis
    # ------------------------------------------------------------------
    def _unique_regions(self):
        """Deduplicated loop regions whose end pc no other region shares
        (a shared end makes the back-edge cascade at one pc)."""
        regions = set(self.program.loops.values())
        by_end = {}
        for region in regions:
            by_end.setdefault(region[1], []).append(region)
        return {r for r in regions if len(by_end[r[1]]) == 1}

    def _analyze_region(self, start, end, regions):
        """Children of a specializable body ``[start, end]``, or None.

        A region qualifies when its only control operations are
        ``LOOP_BEGIN`` of properly nested, recursively specializable
        loops (body starting right after the arming pc, ending strictly
        before *end*).  Branches, calls, returns, and HALT disqualify
        the region — those shapes keep the fused-superblock semantics.
        """
        instructions = self.program.instructions
        loops = self.program.loops
        children = []
        pc = start
        while pc <= end:
            control = [
                op
                for op in instructions[pc].slots.values()
                if op.info.kind.value == "control"
            ]
            if len(control) > 1:
                return None
            if control:
                op = control[0]
                if op.opcode is not OpCode.LOOP_BEGIN:
                    return None
                s2, e2 = loops[op.target.name]
                if s2 != pc + 1 or e2 < s2 or e2 >= end:
                    return None
                if (s2, e2) not in regions:
                    return None
                sub = self._analyze_region(s2, e2, regions)
                if sub is None:
                    return None
                children.append(_Nest(pc, s2, e2, sub))
                pc = e2 + 1
            else:
                pc += 1
        return children

    def _nests(self):
        """start pc -> specializable :class:`_Nest`, every loop counted.

        Inner loops appear independently too: when an outer loop is
        unspecializable the inner loop still specializes the moment its
        own record tops the stack, and the cadence-chunked path keys
        its chunks off the innermost nests.  (Hook-free entry emission
        filters this dict down to top-level nests — inner bodies are
        inlined into the enclosing closure.)
        """
        if self._nest_cache is None:
            regions = self._unique_regions()
            nests = {}
            for start, end in sorted(regions):
                if start > end:
                    continue
                children = self._analyze_region(start, end, regions)
                if children is not None and start not in nests:
                    nests[start] = _Nest(None, start, end, children)
            self._nest_cache = nests
        return self._nest_cache

    def _level_pcs(self, node):
        """The pcs executed once per iteration of *node* itself — its
        body minus nested children's bodies (children's LOOP_BEGIN pcs
        belong to this level)."""
        pcs = []
        cursor = node.start
        for child in node.children:
            pcs.extend(range(cursor, child.begin_pc + 1))
            cursor = child.end + 1
        pcs.extend(range(cursor, node.end + 1))
        return pcs

    def _collect_levels(self, node, levels):
        node.index = len(levels)
        levels.append(node)
        for child in node.children:
            self._collect_levels(child, levels)

    # ------------------------------------------------------------------
    # Code generation helpers
    # ------------------------------------------------------------------
    def _emit_instruction(self, pc, cb, out, pad, count_var=None):
        """Emit one instruction's read-before-write body at *pad* indent.

        With *count_var*, the instruction's LOOP_BEGIN trip count is
        read into that name during the read phase — before the cycle's
        writes commit, exactly as the reference interpreter reads it.
        """
        saved, cb.lines = cb.lines, []
        control_op, width = self._instruction_body(pc, cb)
        if count_var is not None:
            cb.reads.append(
                "%s = %s"
                % (count_var, self._operand_expr(control_op.sources[0], cb))
            )
        cb.flush()
        out.extend(pad + line for line in cb.lines)
        cb.lines = saved
        self._op_widths[pc] = width
        return control_op

    def _pc_refs(self, pc):
        """Register (and stack-pointer) slots *pc* touches, as sorted
        ``"RA[3]"``-style refs, found via one cached scratch emission."""
        refs = self._ref_cache.get(pc)
        if refs is None:
            scratch = _CodeBuilder()
            lines = []
            control_op = self._emit_instruction(pc, scratch, lines, "")
            if control_op is not None and control_op.opcode is OpCode.LOOP_BEGIN:
                lines.append(
                    "_ = %s" % self._operand_expr(control_op.sources[0], scratch)
                )
            refs = tuple(
                sorted(
                    {m.group(0) for m in _REG_REF.finditer("\n".join(lines))}
                )
            )
            self._ref_cache[pc] = refs
        return refs

    def _promotion_map(self, start, end):
        """``"RA[3]" -> "pa3"`` for every register (and stack-pointer)
        slot referenced in ``[start, end]``."""
        promoted = {}
        for pc in range(start, end + 1):
            for ref in self._pc_refs(pc):
                if ref not in promoted:
                    match = _REG_REF.match(ref)
                    promoted[ref] = "%s%s" % (
                        _PROMOTED_PREFIX[match.group(1)],
                        match.group(2),
                    )
        return promoted

    @staticmethod
    def _promotion_loads(cb):
        return sorted(cb.promoted.items())

    @staticmethod
    def _promotion_stores(cb):
        """Promoted slots written back on exit (the stack pointer is
        read-only inside a specialized body — no CALL/RET can occur)."""
        return [
            (ref, local)
            for ref, local in sorted(cb.promoted.items())
            if not ref.startswith("SP")
        ]

    def _emit_body(self, node, cb, out, depth, pad_cache=None):
        """Straight-line body of *node* with nested loops inlined."""
        pad = "    " * depth
        before = len(out)
        cursor = node.start
        for child in node.children:
            for pc in range(cursor, child.begin_pc):
                self._emit_instruction(pc, cb, out, pad)
            count_var = "n%d" % child.index
            self._emit_instruction(
                child.begin_pc, cb, out, pad, count_var=count_var
            )
            out.append(pad + "if %s > 0:" % count_var)
            self._emit_counted(child, cb, out, depth + 1, count_var)
            cursor = child.end + 1
        for pc in range(cursor, node.end + 1):
            self._emit_instruction(pc, cb, out, pad)
        if len(out) == before:
            out.append(pad + "pass")

    def _emit_counted(self, node, cb, out, depth, count_expr):
        """Clamped native ``for`` over *count_expr* iterations of *node*.

        The clamp keeps a register-supplied trip count from running past
        ``max_cycles`` unchecked: at most enough iterations to exceed
        the budget execute, then the post-loop check faults.  ``B`` is
        the static per-iteration cycle cost of this level (inner loops
        account for their own, dynamically).
        """
        pad = "    " * depth
        rv, itv = "r%d" % node.index, "it%d" % node.index
        b = len(self._level_pcs(node))
        maxc = self.max_cycles
        out.append(pad + "%s = %s" % (rv, count_expr))
        out.append(pad + "if cy + %s * %d > %d:" % (rv, b, maxc))
        out.append(pad + "    %s = (%d - cy) // %d + 1" % (rv, maxc, b))
        out.append(pad + "    if %s < 0:" % rv)
        out.append(pad + "        %s = 0" % rv)
        out.append(pad + "%s += %s" % (itv, rv))
        out.append(pad + "cy += %s * %d" % (rv, b))
        out.append(pad + "for _ in range(%s):" % rv)
        self._emit_body(node, cb, out, depth + 1)
        out.append(pad + "if cy > %d:" % maxc)
        out.append(pad + "    SIM._jit_max_cycles()")

    def _nest_builder(self, nest):
        """Builder for the hook-free loop closure of one nest: run every
        remaining iteration of the armed record, pop it, return the
        loop-exit pc."""
        cb = _CodeBuilder()
        cb.promoted = self._promotion_map(nest.start, nest.end)
        levels = []
        self._collect_levels(nest, levels)
        out = cb.lines
        out.append("rec = LS[-1]")
        out.append("cy = CY[0]")
        for node in levels:
            out.append("it%d = 0" % node.index)
        for ref, local in self._promotion_loads(cb):
            out.append("%s = %s" % (local, ref))
        out.append("try:")
        self._emit_counted(nest, cb, out, 1, "rec[2]")
        out.append("finally:")
        for ref, local in self._promotion_stores(cb):
            out.append("    %s = %s" % (ref, local))
        out.append("    CY[0] = cy")
        for node in levels:
            itv = "it%d" % node.index
            for pc in self._level_pcs(node):
                out.append("    PCC[%d] += %s" % (pc, itv))
        out.append("LS.pop()")
        out.append("return %d" % (nest.end + 1))
        return cb

    def _compile_loops(self):
        count = len(self.program.instructions)
        cache = self._codegen_cache()
        # max_cycles is baked into the generated clamps and check_bounds
        # changes the emitted source, so both key the cached batch
        # alongside the program itself.
        cache_key = (
            type(self).__qualname__,
            "loops",
            self.max_cycles,
            self.check_bounds,
        )
        entry = cache.get(cache_key)
        if entry is None:
            keys = [None] * count
            ends = [0] * count
            pieces = []
            bindings = []
            nests = self._nests()
            inlined = set()
            for nest in nests.values():
                stack = list(nest.children)
                while stack:
                    child = stack.pop()
                    inlined.add(child.start)
                    stack.extend(child.children)
            for start, nest in nests.items():
                if start in inlined:
                    # Consumed natively by an enclosing entry; a jump
                    # straight into that region (never emitted by the
                    # compiler) falls back to fused-superblock speed.
                    continue
                key = "loop_%d" % start
                cb = self._nest_builder(nest)
                pieces.append(self._factory(key, cb))
                bindings.append((key, cb.args))
                keys[start] = key
                ends[start] = nest.end
            code = (
                compile("\n".join(pieces), "<loopjit>", "exec")
                if pieces
                else None
            )
            entry = (code, bindings, tuple(keys), tuple(ends))
            cache[cache_key] = entry
        code, bindings, keys, ends = entry
        closures = self._exec_code(code, bindings) if code is not None else {}
        self._entries = [closures[k] if k is not None else None for k in keys]
        self._entry_ends = ends

    # ------------------------------------------------------------------
    # Cadence-chunked code generation (interrupt mode)
    # ------------------------------------------------------------------
    def _emit_instrumented(self, nest, cb, out, depth, period, hook_name):
        """One per-cycle iteration containing a delivery point: after
        every instruction the cycle counter advances and, on a delivery
        cycle, the hook runs against synchronized simulator state — the
        same pc, cycle, lock-window gate, and committed writes the
        reference interpreter would present."""
        pad = "    " * depth
        pad2 = "    " * (depth + 1)
        pad3 = "    " * (depth + 2)
        start, end = nest.start, nest.end
        stores = self._promotion_stores(cb)
        for pc in range(start, end + 1):
            last = pc == end
            self._emit_instruction(pc, cb, out, pad)
            if last:
                # The back-edge decrements the armed count before the
                # end-of-body delivery can observe it.
                out.append(pad + "q -= 1")
                out.append(pad + "rec[2] = q")
            out.append(pad + "cy += 1")
            out.append(pad + "if not cy %% %d:" % period)
            for ref, local in stores:
                out.append(pad2 + "%s = %s" % (ref, local))
            out.append(pad2 + "SIM.cycle = cy")
            if last:
                out.append(pad2 + "np = %d if q else %d" % (start, end + 1))
            else:
                out.append(pad2 + "np = %d" % (pc + 1))
            out.append(pad2 + "SIM.pc = np")
            out.append(pad2 + "if not SIM.locked:")
            out.append(pad3 + "%s(SIM, cy)" % hook_name)
            out.append(pad3 + "if SIM.pc != np:")
            out.append(pad3 + "    SIM._jit_redirected(SIM.pc)")
            for ref, local in stores:
                out.append(pad2 + "%s = %s" % (local, ref))

    def _emit_fast_iterations(self, nest, cb, out, depth):
        before = len(out)
        pad = "    " * depth
        for pc in range(nest.start, nest.end + 1):
            self._emit_instruction(pc, cb, out, pad)
        if len(out) == before:
            out.append(pad + "pass")

    def _chunk_builder(self, nest, hook, period):
        """Builder for one cadence-chunked (innermost) loop closure."""
        cb = _CodeBuilder()
        cb.promoted = self._promotion_map(nest.start, nest.end)
        hook_name = cb.const(hook)
        out = cb.lines
        b = nest.end - nest.start + 1
        maxc = self.max_cycles
        out.append("rec = LS[-1]")
        out.append("q = rec[2]")
        out.append("cy = CY[0]")
        out.append("it = 0")
        for ref, local in self._promotion_loads(cb):
            out.append("%s = %s" % (local, ref))
        out.append("try:")
        out.append("    while q > 0:")
        out.append("        if cy > %d:" % maxc)
        out.append("            SIM._jit_max_cycles()")
        out.append("        d = cy - cy %% %d + %d" % (period, period))
        out.append("        k = (d - cy - 1) // %d" % b)
        # Every remaining iteration completes before the next delivery:
        # run them all at full speed and return.
        out.append("        if k >= q:")
        out.append("            if cy + q * %d > %d:" % (b, maxc))
        out.append("                q = (%d - cy) // %d + 1" % (maxc, b))
        out.append("            it += q")
        out.append("            cy += q * %d" % b)
        out.append("            for _ in range(q):")
        self._emit_fast_iterations(nest, cb, out, 4)
        out.append("            break")
        # Fast-forward the iterations that fit before the delivery...
        out.append("        if k:")
        out.append("            if cy + k * %d > %d:" % (b, maxc))
        out.append("                k = (%d - cy) // %d + 1" % (maxc, b))
        out.append("            it += k")
        out.append("            cy += k * %d" % b)
        out.append("            for _ in range(k):")
        self._emit_fast_iterations(nest, cb, out, 4)
        out.append("            q -= k")
        out.append("            if cy > %d:" % maxc)
        out.append("                SIM._jit_max_cycles()")
        # ...then single-step the iteration containing the delivery.
        out.append("        it += 1")
        out.append("        rec[2] = q")
        self._emit_instrumented(nest, cb, out, 2, period, hook_name)
        out.append("    if cy > %d:" % maxc)
        out.append("        SIM._jit_max_cycles()")
        out.append("finally:")
        for ref, local in self._promotion_stores(cb):
            out.append("    %s = %s" % (ref, local))
        out.append("    CY[0] = cy")
        for pc in range(nest.start, nest.end + 1):
            out.append("    PCC[%d] += it" % pc)
        out.append("LS.pop()")
        out.append("return %d" % (nest.end + 1))
        return cb

    def _compile_chunk_loops(self, hook, period):
        count = len(self.program.instructions)
        keys = [None] * count
        ends = [0] * count
        pieces = []
        bindings = []
        for start, nest in self._nests().items():
            if nest.children:
                # Outer levels of a nest run per-cycle under a hook;
                # the innermost loops still chunk via their own entry.
                continue
            key = "chunk_%d" % start
            cb = self._chunk_builder(nest, hook, period)
            pieces.append(self._factory(key, cb))
            bindings.append((key, cb.args))
            keys[start] = key
            ends[start] = nest.end
        closures = self._exec_batch(pieces, bindings) if pieces else {}
        self._chunk_entries = [
            closures[k] if k is not None else None for k in keys
        ]
        self._chunk_ends = ends
        # Hold the hook itself (not id(hook)): a recycled id after the
        # original hook is garbage-collected must not satisfy the
        # signature check and reuse closures bound to the dead hook.
        self._chunk_sig = (hook, period)

    # ------------------------------------------------------------------
    # Faults raised from generated code
    # ------------------------------------------------------------------
    def _jit_max_cycles(self):
        raise CycleLimitError("exceeded max_cycles=%d" % self.max_cycles)

    def _jit_redirected(self, pc):
        raise SimulationError(
            "interrupt hook redirected pc to %d inside a specialized "
            "loop; cadence hooks must not transfer control (install a "
            "hook without a cadence to use the per-cycle path)" % pc
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self):
        """Execute until HALT; returns a :class:`SimulationResult`."""
        hook = self.interrupt_hook
        if hook is not None:
            cadence = getattr(hook, "cadence", None)
            if (
                isinstance(cadence, int)
                and not isinstance(cadence, bool)
                and cadence > 0
            ):
                return self._run_cadence(hook, cadence)
            # Arbitrary hooks see every cycle: inherit the per-cycle
            # step path, bit-exact with the reference interpreter.
            return super().run()
        return self._run_fused()

    def _run_fused(self):
        if self._blocks is None:
            self._compile_blocks()
        if self._entries is None:
            self._compile_loops()
        self._enter_main()
        count = len(self.program.instructions)
        pc_counts = self.pc_counts
        max_cycles = self.max_cycles
        blocks = self._blocks
        lens = self._block_lens
        entries = self._entries
        ends = self._entry_ends
        cell = self._cycle_cell
        cell[0] = self.cycle
        LS = self.loop_stack
        pc = self.pc
        try:
            while True:
                if pc < 0 or pc >= count:
                    raise SimulationError("pc %d out of range" % pc)
                entry = entries[pc]
                if entry is not None and LS:
                    rec = LS[-1]
                    if rec[0] == pc and rec[1] == ends[pc]:
                        pc = entry()
                        continue
                step = blocks[pc]
                if step is None:
                    raise SimulationError("pc %d out of range" % pc)
                cell[0] += lens[pc]
                if cell[0] > max_cycles:
                    raise CycleLimitError(
                        "exceeded max_cycles=%d" % max_cycles
                    )
                pc_counts[pc] += 1
                next_pc = step()
                if next_pc is None:
                    break
                pc = next_pc
        except SimulationError as fault:
            self.pc = pc
            self.cycle = cell[0]
            self.locked = False
            self._settle_counts(True)
            self._annotate_fault(fault)
            raise
        self.cycle = cell[0]
        self.locked = False
        self._settle_counts(True)
        return SimulationResult(
            self.cycle,
            self.op_count,
            pc_counts,
            self.mem_top[_BANK_X] - self.sp_min[_BANK_X],
            self.mem_top[_BANK_Y] - self.sp_min[_BANK_Y],
        )

    def _run_cadence(self, hook, period):
        if self._steps is None:
            self._compile_steps()
        sig = self._chunk_sig
        if sig is None or sig[0] is not hook or sig[1] != period:
            self._compile_chunk_loops(hook, period)
        self._enter_main()
        count = len(self.program.instructions)
        pc_counts = self.pc_counts
        max_cycles = self.max_cycles
        steps = self._steps
        entries = self._chunk_entries
        ends = self._chunk_ends
        cell = self._cycle_cell
        LS = self.loop_stack
        cycle = self.cycle
        pc = self.pc
        try:
            while True:
                if pc < 0 or pc >= count:
                    raise SimulationError("pc %d out of range" % pc)
                entry = entries[pc]
                if entry is not None and LS:
                    rec = LS[-1]
                    if rec[0] == pc and rec[1] == ends[pc]:
                        cell[0] = cycle
                        pc = entry()
                        cycle = cell[0]
                        continue
                pc_counts[pc] += 1
                cycle += 1
                self.cycle = cycle
                if cycle > max_cycles:
                    raise CycleLimitError(
                        "exceeded max_cycles=%d" % max_cycles
                    )
                self.pc = pc
                next_pc = steps[pc]()
                if next_pc is None:
                    break
                pc = next_pc
                if not self.locked:
                    self.pc = pc
                    hook(self, cycle)
                    pc = self.pc
        except SimulationError as fault:
            self.pc = pc
            self.cycle = max(cycle, cell[0])
            self.locked = False
            self._settle_counts(False)
            self._annotate_fault(fault)
            raise
        self.cycle = cycle
        self.locked = False
        self._settle_counts(False)
        return SimulationResult(
            self.cycle,
            self.op_count,
            pc_counts,
            self.mem_top[_BANK_X] - self.sp_min[_BANK_X],
            self.mem_top[_BANK_Y] - self.sp_min[_BANK_Y],
        )


BACKENDS["jit"] = LoopJitSimulator
