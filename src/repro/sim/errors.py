"""Structured simulator-error taxonomy for supervised campaigns.

The raw :class:`~repro.sim.simulator.SimulationError` carries only a
message (plus the ``pc``/``cycle``/``backend`` attributes the backends
attach in flight).  Long-running campaigns — the fuzzer, the resilience
runner — need more: a worker process must ship the failure across a pipe
as plain data, and the parent must re-raise something a human can read
without a twelve-frame remote traceback in their face.

This module defines that contract:

* :class:`SimError` and its three subclasses — :class:`ProgramError`
  (the *input program* is malformed: unallocated registers, unknown
  opcodes, unresolved banks — compiler bugs), :class:`MachineError`
  (the *machine* faulted while executing a well-formed program: bad
  address, stack overflow, runaway, wild pc — what fault injection
  provokes on purpose), and :class:`InternalError` (anything else:
  a bug in the harness itself);
* :func:`classify_fault` maps any exception onto the taxonomy,
  preserving the attached context;
* :func:`describe_fault` / :func:`from_description` round-trip a fault
  through a JSON-able dict, which is how
  :func:`repro.evaluation.parallel.supervised_map` re-raises worker
  failures cleanly in the parent.
"""

from repro.sim.simulator import SimulationError


class SimError(Exception):
    """Structured simulator failure with attached context.

    ``category`` is one of ``"program"``, ``"machine"``, ``"internal"``;
    ``pc``/``cycle``/``backend``/``seed`` locate the failure;
    ``remote_traceback`` holds the formatted worker-side traceback when
    the error crossed a process boundary.
    """

    category = "internal"

    def __init__(self, message, pc=None, cycle=None, backend=None, seed=None,
                 remote_traceback=None):
        super().__init__(message)
        self.pc = pc
        self.cycle = cycle
        self.backend = backend
        self.seed = seed
        self.remote_traceback = remote_traceback

    def __str__(self):
        parts = [super().__str__()]
        context = []
        if self.backend is not None:
            context.append("backend=%s" % self.backend)
        if self.pc is not None:
            context.append("pc=%s" % self.pc)
        if self.cycle is not None:
            context.append("cycle=%s" % self.cycle)
        if self.seed is not None:
            context.append("seed=%s" % self.seed)
        if context:
            parts.append("[%s: %s]" % (self.category, ", ".join(context)))
        return " ".join(parts)


class ProgramError(SimError):
    """The simulated *program* is malformed (a compiler bug reached the
    simulator): unallocated register, unexpected opcode, unresolved
    bank."""

    category = "program"


class MachineError(SimError):
    """The machine faulted executing a well-formed program: bad address,
    stack overflow, cycle-limit runaway, wild pc, call-stack underflow —
    the faults that injection campaigns provoke deliberately."""

    category = "machine"


class InternalError(SimError):
    """Anything that is neither a program nor a machine fault: a bug in
    the harness, the workload, or the campaign plumbing itself."""

    category = "internal"


_BY_CATEGORY = {
    "program": ProgramError,
    "machine": MachineError,
    "internal": InternalError,
}

#: message fragments identifying a malformed input program (the compiler
#: let something through that the simulator cannot execute)
_PROGRAM_MARKERS = (
    "unallocated register",
    "unexpected opcode",
    "unresolved bank",
)


def categorize(exc):
    """Taxonomy category of *exc*: ``"program"``/``"machine"`` for
    simulator faults, ``"internal"`` for :class:`SimError` fallbacks,
    ``None`` for exceptions outside the simulator entirely."""
    if isinstance(exc, SimError):
        return exc.category
    if isinstance(exc, SimulationError):
        message = str(exc)
        if any(marker in message for marker in _PROGRAM_MARKERS):
            return "program"
        return "machine"
    return None


def classify_fault(exc, seed=None, backend=None):
    """Wrap *exc* in the matching :class:`SimError` subclass.

    Context attached by the backends (``pc``, ``cycle``, ``backend``)
    is carried over; *seed*/*backend* fill gaps the exception itself
    does not know about.  A :class:`SimError` passed in is returned
    as-is (with missing context filled), so classification is
    idempotent.
    """
    if isinstance(exc, SimError):
        if exc.seed is None:
            exc.seed = seed
        if exc.backend is None:
            exc.backend = backend
        return exc
    category = categorize(exc) or "internal"
    cls = _BY_CATEGORY[category]
    wrapped = cls(
        str(exc) or type(exc).__name__,
        pc=getattr(exc, "pc", None),
        cycle=getattr(exc, "cycle", None),
        backend=getattr(exc, "backend", None) or backend,
        seed=getattr(exc, "seed", None) if seed is None else seed,
    )
    wrapped.__cause__ = exc
    return wrapped


def describe_fault(exc, seed=None, backend=None):
    """JSON-able description of *exc* for shipping across a pipe.

    The inverse of :func:`from_description`; ``category`` is ``None``
    for exceptions that are not simulator faults (the supervisor
    re-raises those as generic task errors instead).
    """
    import traceback

    return {
        "kind": type(exc).__name__,
        "message": str(exc),
        "category": categorize(exc),
        "pc": getattr(exc, "pc", None),
        "cycle": getattr(exc, "cycle", None),
        "backend": getattr(exc, "backend", None) or backend,
        "seed": getattr(exc, "seed", None) if seed is None else seed,
        "traceback": traceback.format_exc(),
    }


def from_description(description):
    """Rebuild the :class:`SimError` a :func:`describe_fault` dict
    encodes (used by the supervisor to re-raise worker failures with
    their context, not their raw traceback)."""
    cls = _BY_CATEGORY.get(description.get("category"), InternalError)
    return cls(
        description.get("message", "simulator fault"),
        pc=description.get("pc"),
        cycle=description.get("cycle"),
        backend=description.get("backend"),
        seed=description.get("seed"),
        remote_traceback=description.get("traceback"),
    )
