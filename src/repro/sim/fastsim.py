"""Threaded-code fast backend for the instruction-set simulator.

The reference :class:`~repro.sim.simulator.Simulator` re-dispatches on
micro-operation kind strings and calls per-operand reader closures every
cycle.  This backend instead compiles each :class:`LongInstruction` into a
single specialized Python closure when ``run()`` first touches the
program: operand reads, effective-address computation, bounds checks,
evaluator arithmetic, and commit logic are generated as straight-line
source (one function per instruction, bound constants become closure
cells), and the whole program is ``exec``-compiled in a single batch.
The run loop then threads through those closures — one call per cycle,
no dispatch, no tuple unpacking.

Semantics are bit-identical to the reference interpreter by construction
and verified by ``tests/sim/test_fastsim_equivalence.py``:

* all operand and memory reads happen before any register/memory write of
  the cycle (read-before-write);
* control operations execute after all reads but before the writes, so
  CALL/RET stack adjustments never disturb same-cycle addressing;
* the hardware-loop back-edge, the store-lock window (instruction-wide
  net transition), interrupt delivery, ``pc_counts``, cycle and operation
  accounting all match the reference backend exactly.

Profiling (:mod:`repro.obs.profile`) is a post-run analysis over the
settled ``pc_counts``, so the fused superblock path stays fused whether
or not a run is later profiled: during the run only superblock leaders
are counted, and ``_settle_counts`` propagates the interior counts
before ``run()`` returns.
"""

import math

from repro.ir.operations import OpCode
from repro.ir.types import RegClass
from repro.ir.values import Immediate
from repro.sim.simulator import (
    CycleLimitError,
    SimulationError,
    SimulationResult,
    Simulator,
    _BANK_X,
    _BANK_Y,
)

#: register-file local names used inside generated code
_RFILE = {RegClass.ADDR: "RA", RegClass.INT: "RI", RegClass.FLOAT: "RF"}

_MEM = {_BANK_X: "MX", _BANK_Y: "MY"}

#: parameter list shared by every generated step factory; subclasses
#: extend :attr:`FastSimulator._FIXED` and :meth:`FastSimulator._fixed_args`
#: in lockstep to thread extra state into their generated code
_FIXED_PARAMS = "SIM, RA, RI, RF, MX, MY, SP, LS"

#: opcodes whose evaluators are inlined as expressions (the hot set);
#: anything absent falls back to calling the bound ``OpInfo.evaluate``.
_BINARY_EXPR = {
    OpCode.ADD: "({a} + {b})",
    OpCode.SUB: "({a} - {b})",
    OpCode.MUL: "({a} * {b})",
    OpCode.AND: "({a} & {b})",
    OpCode.OR: "({a} | {b})",
    OpCode.XOR: "({a} ^ {b})",
    OpCode.SHL: "({a} << {b})",
    OpCode.SHR: "({a} >> {b})",
    OpCode.MIN: "min({a}, {b})",
    OpCode.MAX: "max({a}, {b})",
    OpCode.CMPEQ: "(1 if {a} == {b} else 0)",
    OpCode.CMPNE: "(1 if {a} != {b} else 0)",
    OpCode.CMPLT: "(1 if {a} < {b} else 0)",
    OpCode.CMPLE: "(1 if {a} <= {b} else 0)",
    OpCode.CMPGT: "(1 if {a} > {b} else 0)",
    OpCode.CMPGE: "(1 if {a} >= {b} else 0)",
    OpCode.FADD: "({a} + {b})",
    OpCode.FSUB: "({a} - {b})",
    OpCode.FMUL: "({a} * {b})",
    OpCode.FDIV: "({a} / {b})",
    OpCode.FMIN: "min({a}, {b})",
    OpCode.FMAX: "max({a}, {b})",
    OpCode.FCMPEQ: "(1 if {a} == {b} else 0)",
    OpCode.FCMPNE: "(1 if {a} != {b} else 0)",
    OpCode.FCMPLT: "(1 if {a} < {b} else 0)",
    OpCode.FCMPLE: "(1 if {a} <= {b} else 0)",
    OpCode.FCMPGT: "(1 if {a} > {b} else 0)",
    OpCode.FCMPGE: "(1 if {a} >= {b} else 0)",
    OpCode.AADD: "({a} + {b})",
    OpCode.ASUB: "({a} - {b})",
    OpCode.AMUL: "({a} * {b})",
    OpCode.ACMPEQ: "(1 if {a} == {b} else 0)",
    OpCode.ACMPNE: "(1 if {a} != {b} else 0)",
    OpCode.ACMPLT: "(1 if {a} < {b} else 0)",
    OpCode.ACMPLE: "(1 if {a} <= {b} else 0)",
    OpCode.ACMPGT: "(1 if {a} > {b} else 0)",
    OpCode.ACMPGE: "(1 if {a} >= {b} else 0)",
}

_UNARY_EXPR = {
    OpCode.NEG: "(-{a})",
    OpCode.FNEG: "(-{a})",
    OpCode.ABS: "abs({a})",
    OpCode.FABS: "abs({a})",
    OpCode.NOT: "(~{a})",
    OpCode.MOV: "{a}",
    OpCode.CONST: "{a}",
    OpCode.FMOV: "{a}",
    OpCode.FCONST: "{a}",
    OpCode.AMOV: "{a}",
    OpCode.ACONST: "{a}",
    OpCode.MOVIA: "{a}",
    OpCode.MOVAI: "{a}",
    OpCode.ITOF: "float({a})",
    OpCode.FTOI: "int({a})",
    OpCode.FSQRT: "({a} ** 0.5)",
}


class _CodeBuilder:
    """Accumulates source lines and bound constants for one step closure.

    One builder spans a whole superblock: ``flush()`` seals the current
    instruction's read-before-write grouping (reads, then control, then
    writes) into ``lines`` so the next instruction's reads come after this
    one's writes.  Temp names may be reused across instructions (a temp
    never carries a value past its own instruction); bound-constant names
    are unique for the whole block.
    """

    def __init__(self):
        self.lines = []
        self.reads = []
        self.control = []
        self.writes = []
        self.tail = []
        self.params = []
        self.args = []
        self.counter = 0
        #: optional ``"RA[3]" -> "pa3"`` map; when set, register (and
        #: stack-pointer) references resolve to promoted local names
        self.promoted = None

    def temp(self):
        self.counter += 1
        return "t%d" % self.counter

    def const(self, value):
        name = "k%d" % len(self.params)
        self.params.append(name)
        self.args.append(value)
        return name

    def flush(self):
        self.lines += self.reads + self.control + self.writes
        self.reads = []
        self.control = []
        self.writes = []
        self.counter = 0

    def body(self):
        return self.lines + self.reads + self.control + self.writes + self.tail


class FastSimulator(Simulator):
    """Drop-in replacement for :class:`Simulator` using threaded code.

    Shares the whole :class:`Simulator` state and helper surface
    (``read_global``/``write_global``, call/return bookkeeping, interrupt
    hooks) — only decoding and the run loop differ.
    """

    backend_name = "fast"

    #: opcode -> expression template tables; class attributes so
    #: subclasses (the batch backend) can substitute vector-safe forms
    #: while reusing the whole codegen pipeline
    _binary_expr = _BINARY_EXPR
    _unary_expr = _UNARY_EXPR

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        count = len(self.program.instructions)
        #: per-pc compiled step closure (hook mode; :meth:`_compile_steps`)
        self._steps = None
        #: per-leader compiled superblock closure (:meth:`_compile_blocks`)
        self._blocks = None
        #: per-leader cycle length of the superblock
        self._block_lens = None
        #: leader pc -> [member pcs] of its superblock
        self._block_members = None
        #: per-pc executed-operation count (for operation accounting)
        self._op_widths = [0] * count
        #: instruction indices that terminate at least one hardware loop
        self._loop_end_pcs = frozenset(
            end for _start, end in self.program.loops.values()
        )

    def _leaders(self):
        """Superblock leader pcs: every possible control-transfer target
        plus every pc that follows a control operation or a loop end."""
        program = self.program
        count = len(program.instructions)
        leaders = {0}
        leaders.update(program.labels.values())
        leaders.update(program.function_entries.values())
        for start, end in program.loops.values():
            leaders.add(start)
            leaders.add(end + 1)
        for pc, instruction in enumerate(program.instructions):
            if pc in self._loop_end_pcs:
                leaders.add(pc + 1)
                continue
            for op in instruction.slots.values():
                if op.info.kind.value == "control":
                    leaders.add(pc + 1)
                    break
        return sorted(p for p in leaders if 0 <= p < count)

    #: generated-code parameter list; kept in lockstep with _fixed_args
    _FIXED = _FIXED_PARAMS

    def _fixed_args(self):
        """Values bound to :attr:`_FIXED` when closures are instantiated."""
        registers = self.registers
        return (
            self,
            registers[RegClass.ADDR],
            registers[RegClass.INT],
            registers[RegClass.FLOAT],
            self.memory[_BANK_X],
            self.memory[_BANK_Y],
            self.sp,
            self.loop_stack,
        )

    # ------------------------------------------------------------------
    # Code generation
    # ------------------------------------------------------------------
    def _reg_ref(self, rclass, physical, cb):
        """Expression for one register slot, honouring promotion."""
        ref = "%s[%d]" % (_RFILE[rclass], physical)
        if cb.promoted is not None:
            return cb.promoted.get(ref, ref)
        return ref

    def _operand_expr(self, operand, cb):
        if isinstance(operand, Immediate):
            value = operand.value
            if isinstance(value, int):
                return "(%r)" % value
            if isinstance(value, float) and math.isfinite(value):
                return "(%r)" % value
            return cb.const(value)
        if operand.physical is None:
            raise SimulationError(
                "unallocated register %r reached the simulator" % operand
            )
        return self._reg_ref(operand.rclass, operand.physical, cb)

    def _index_expr(self, op, cb):
        """Expression for the effective index: base plus optional offset."""
        expr = self._operand_expr(op.index_operand(), cb)
        offset = op.offset_operand()
        if offset is not None:
            expr = "(%s + %s)" % (expr, self._operand_expr(offset, cb))
        return expr

    def _guard_uniform(self, name, cb):
        """Hook: validate a scalar-only value (an effective address, a
        branch condition, a loop trip count) right after its read.  The
        scalar backends need no guard; the batch backend overrides this
        to collapse uniform vectors and trigger lane splits on
        divergence."""

    def _address_expr(self, op, pc, cb):
        """Emit index + bounds check reads; return the address expression."""
        bank_index, base, frame_offset = self._resolve_symbol(op)
        index = cb.temp()
        cb.reads.append("%s = %s" % (index, self._index_expr(op, cb)))
        self._guard_uniform(index, cb)
        if self.check_bounds:
            symbol = op.symbol
            cb.reads.append(
                "if %s < 0 or %s >= %d: SIM._fault_oob(%s, %r, %d, %d)"
                % (index, index, symbol.size, index, symbol.name, symbol.size, pc)
            )
        if base is not None:
            address = "(%d + %s)" % (base, index)
        else:
            sp_ref = "SP[%d]" % bank_index
            if cb.promoted is not None:
                sp_ref = cb.promoted.get(sp_ref, sp_ref)
            address = "(%s + %d + %s)" % (sp_ref, frame_offset, index)
        return _MEM[bank_index], address

    def _fault_oob(self, index, name, size, pc):
        raise SimulationError(
            "index %d out of bounds for %s[%d] at pc=%d" % (index, name, size, pc)
        )

    def _fast_call(self, callee, frame, entry, return_pc):
        """CALL with the return address baked in at compile time."""
        sp = self.sp
        sp[_BANK_X] -= 1
        self.memory[_BANK_X][sp[_BANK_X]] = return_pc
        sp[_BANK_X] -= frame.size_x
        sp[_BANK_Y] -= frame.size_y
        self._note_stack()
        self.call_stack.append((callee, frame))
        return entry

    def _emit_fallthrough(self, pc, cb, halt=False):
        """Fall-through tail: the hardware-loop back-edge (when this pc
        ends a loop) and the next-pc return."""
        next_pc = pc + 1
        tail = cb.tail
        if pc not in self._loop_end_pcs:
            if halt:
                tail.append("SIM.pc = %d" % next_pc)
                tail.append("return None")
            else:
                tail.append("return %d" % next_pc)
            return
        if halt:
            tail.append("np = %d" % next_pc)
        tail.append("while LS and LS[-1][1] == %d:" % pc)
        tail.append("    rec = LS[-1]")
        tail.append("    c = rec[2] - 1")
        tail.append("    rec[2] = c")
        tail.append("    if c > 0:")
        if halt:
            tail.append("        np = rec[0]")
            tail.append("        break")
        else:
            tail.append("        return rec[0]")
        tail.append("    LS.pop()")
        if halt:
            tail.append("SIM.pc = np")
            tail.append("return None")
        else:
            tail.append("return %d" % next_pc)

    def _emit_control(self, op, pc, cb):
        opcode = op.opcode
        labels = self.program.labels
        if opcode is OpCode.BR:
            # a control transfer overrides the loop back-edge (see the
            # reference interpreter), so no fall-through tail is emitted.
            cb.tail.append("return %d" % labels[op.target.name])
        elif opcode is OpCode.BRT or opcode is OpCode.BRF:
            condition = cb.temp()
            cb.reads.append(
                "%s = %s" % (condition, self._operand_expr(op.sources[0], cb))
            )
            self._guard_uniform(condition, cb)
            test = condition if opcode is OpCode.BRT else "not %s" % condition
            cb.tail.append("if %s:" % test)
            cb.tail.append("    return %d" % labels[op.target.name])
            self._emit_fallthrough(pc, cb)
        elif opcode is OpCode.LOOP_BEGIN:
            count = cb.temp()
            cb.reads.append(
                "%s = %s" % (count, self._operand_expr(op.sources[0], cb))
            )
            self._guard_uniform(count, cb)
            start, end = self.program.loops[op.target.name]
            cb.tail.append("if %s <= 0:" % count)
            cb.tail.append("    return %d" % (end + 1))
            cb.tail.append("LS.append([%d, %d, %s])" % (start, end, count))
            self._emit_fallthrough(pc, cb)
        elif opcode is OpCode.CALL:
            frame = cb.const(self.program.frames[op.callee])
            entry = self.program.function_entries[op.callee]
            cb.control.append(
                "np = SIM._fast_call(%r, %s, %d, %d)"
                % (op.callee, frame, entry, pc + 1)
            )
            cb.tail.append("return np")
        elif opcode is OpCode.RET:
            cb.control.append("np = SIM._do_ret()")
            cb.tail.append("return np")
        elif opcode is OpCode.HALT:
            cb.control.append("SIM.halted = True")
            self._emit_fallthrough(pc, cb, halt=True)
        else:
            raise SimulationError("unexpected opcode %s" % opcode)

    def _fallback_expr(self, info, sources, cb):
        """Expression for an opcode outside the inlined hot set: call the
        bound ``OpInfo.evaluate``.  The batch backend overrides this to
        force the operands scalar first (the generic evaluators are not
        vector-safe)."""
        evaluate = cb.const(info.evaluate)
        return "%s(%s)" % (evaluate, ", ".join(sources))

    def _instruction_body(self, pc, cb):
        """Emit one instruction's reads/control/writes into *cb*.

        Returns ``(control_op, width)``; the caller decides the tail
        (control transfer or fall-through) so instructions can be fused
        into superblocks.
        """
        instruction = self.program.instructions[pc]
        lock_transition = self._lock_transition(instruction)
        control_op = None
        width = 0

        for op in instruction.slots.values():
            opcode = op.opcode
            info = op.info
            if opcode is OpCode.NOP or opcode is OpCode.LOOP_END:
                continue
            width += 1
            if opcode is OpCode.LOAD:
                mem, address = self._address_expr(op, pc, cb)
                value = cb.temp()
                cb.reads.append("%s = %s[%s]" % (value, mem, address))
                cb.writes.append(
                    "%s = %s"
                    % (self._reg_ref(op.dest.rclass, op.dest.physical, cb), value)
                )
            elif opcode is OpCode.STORE:
                mem, address = self._address_expr(op, pc, cb)
                value = cb.temp()
                slot = cb.temp()
                cb.reads.append(
                    "%s = %s" % (value, self._operand_expr(op.sources[0], cb))
                )
                cb.reads.append("%s = %s" % (slot, address))
                cb.writes.append("%s[%s] = %s" % (mem, slot, value))
            elif opcode is OpCode.FMAC:
                value = cb.temp()
                dest = self._reg_ref(op.dest.rclass, op.dest.physical, cb)
                cb.reads.append(
                    "%s = %s + %s * %s"
                    % (
                        value,
                        dest,
                        self._operand_expr(op.sources[0], cb),
                        self._operand_expr(op.sources[1], cb),
                    )
                )
                cb.writes.append("%s = %s" % (dest, value))
            elif info.kind.value == "control":
                control_op = op
            else:
                sources = [self._operand_expr(s, cb) for s in op.sources]
                binary = self._binary_expr
                unary = self._unary_expr
                if len(sources) == 2 and opcode in binary:
                    expr = binary[opcode].format(a=sources[0], b=sources[1])
                elif len(sources) == 1 and opcode in unary:
                    expr = unary[opcode].format(a=sources[0])
                else:
                    expr = self._fallback_expr(info, sources, cb)
                value = cb.temp()
                cb.reads.append("%s = %s" % (value, expr))
                cb.writes.append(
                    "%s = %s"
                    % (self._reg_ref(op.dest.rclass, op.dest.physical, cb), value)
                )

        if lock_transition is not None:
            cb.writes.append("SIM.locked = %r" % lock_transition)
        return control_op, width

    def _exec_batch(self, pieces, bindings):
        """One ``compile()``/``exec`` for a whole table of step factories.

        Batch compilation amortizes the CPython parser/codegen overhead
        that would otherwise dominate per-instruction compilation; the
        returned dict maps each key in *bindings* to its bound closure.
        """
        code = compile("\n".join(pieces), "<fastsim>", "exec")
        return self._exec_code(code, bindings)

    def _exec_namespace(self):
        """Globals visible to generated code (helper functions for
        subclasses; the scalar backends need none)."""
        return {}

    def _exec_code(self, code, bindings):
        """Bind a compiled factory batch to *this* simulator's state."""
        namespace = self._exec_namespace()
        exec(code, namespace)
        fixed_args = self._fixed_args()
        return {
            key: namespace["_make_%s" % key](*fixed_args, *args)
            for key, args in bindings
        }

    def _codegen_cache(self):
        """Per-program cache of compiled factory batches.

        Generated source depends only on the program (plus, for
        subclasses, constants like ``max_cycles`` that cache keys must
        include), while the *closures* bind per-simulator state — so
        the parse/compile work is shared across every simulator of the
        same program and only the cheap ``exec``/bind step runs per
        instance.  The cache lives on the program object and is
        collected with it.
        """
        cache = getattr(self.program, "_codegen_cache", None)
        if cache is None:
            cache = {}
            self.program._codegen_cache = cache
        return cache

    @classmethod
    def _factory(cls, key, cb):
        params = cls._FIXED
        if cb.params:
            params = "%s, %s" % (params, ", ".join(cb.params))
        return "def _make_%s(%s):\n    def step():\n%s\n    return step\n" % (
            key,
            params,
            "\n".join("        " + line for line in cb.body()),
        )

    def _compile_steps(self):
        """Per-instruction step table (used when an interrupt hook needs
        control between every cycle)."""
        cache = self._codegen_cache()
        # check_bounds changes the emitted source (the bounds-check reads
        # are conditional), so it must key the cached batch: two
        # simulators of the same program with different settings would
        # otherwise silently share closures and add or drop checks.
        key = (type(self).__qualname__, "steps", self.check_bounds)
        entry = cache.get(key)
        if entry is None:
            pieces = []
            bindings = []
            widths = [0] * len(self.program.instructions)
            for pc in range(len(self.program.instructions)):
                cb = _CodeBuilder()
                control_op, width = self._instruction_body(pc, cb)
                if control_op is not None:
                    self._emit_control(control_op, pc, cb)
                else:
                    self._emit_fallthrough(pc, cb)
                pieces.append(self._factory(pc, cb))
                bindings.append((pc, cb.args))
                widths[pc] = width
            code = compile("\n".join(pieces), "<fastsim>", "exec")
            entry = (code, bindings, tuple(widths))
            cache[key] = entry
        code, bindings, widths = entry
        self._op_widths = list(widths)
        closures = self._exec_code(code, bindings)
        self._steps = [closures[pc] for pc in range(len(closures))]

    def _compile_blocks(self):
        """Superblock table: maximal straight-line instruction runs fused
        into single closures (used on the hook-free fast path).

        Each block executes atomically from its leader; per-pc execution
        counts for the interior follow from the leader's count, so the
        dispatch loop does one closure call, one count increment, and one
        cycle check per *block* instead of per cycle.
        """
        count = len(self.program.instructions)
        cache = self._codegen_cache()
        key = (type(self).__qualname__, "blocks", self.check_bounds)
        entry = cache.get(key)
        if entry is None:
            leaders = self._leaders()
            lens = [0] * count
            members = {}
            pieces = []
            bindings = []
            widths = [0] * count
            boundaries = leaders[1:] + [count]
            for leader, bound in zip(leaders, boundaries):
                cb = _CodeBuilder()
                control_op = None
                for pc in range(leader, bound):
                    if pc > leader:
                        cb.flush()
                    control_op, width = self._instruction_body(pc, cb)
                    widths[pc] = width
                last = bound - 1
                if control_op is not None:
                    self._emit_control(control_op, last, cb)
                else:
                    self._emit_fallthrough(last, cb)
                pieces.append(self._factory(leader, cb))
                bindings.append((leader, cb.args))
                lens[leader] = bound - leader
                members[leader] = tuple(range(leader, bound))
            code = compile("\n".join(pieces), "<fastsim>", "exec")
            entry = (code, bindings, tuple(lens), members, tuple(widths))
            cache[key] = entry
        code, bindings, lens, members, widths = entry
        self._op_widths = list(widths)
        closures = self._exec_code(code, bindings)
        blocks = [None] * count
        for leader, _args in bindings:
            blocks[leader] = closures[leader]
        self._blocks = blocks
        self._block_lens = lens
        self._block_members = members

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self):
        """Execute until HALT; returns a :class:`SimulationResult`."""
        fused = self.interrupt_hook is None
        if fused and self._blocks is None:
            self._compile_blocks()
        elif not fused and self._steps is None:
            self._compile_steps()
        self._enter_main()
        count = len(self.program.instructions)
        pc_counts = self.pc_counts
        hook = self.interrupt_hook
        max_cycles = self.max_cycles
        cycle = 0
        pc = self.pc
        try:
            if fused:
                # Tight path: one closure call per superblock.  ``self.pc``
                # and ``self.cycle`` are only observable through hooks and
                # faults, so both live in locals and settle on exit.  The
                # max_cycles check runs per block, so the error can fire up
                # to one block early relative to the reference interpreter
                # (error path only; completed runs are cycle-exact).
                blocks = self._blocks
                lens = self._block_lens
                while True:
                    if pc < 0 or pc >= count:
                        raise SimulationError("pc %d out of range" % pc)
                    step = blocks[pc]
                    if step is None:
                        raise SimulationError("pc %d out of range" % pc)
                    cycle += lens[pc]
                    if cycle > max_cycles:
                        raise CycleLimitError(
                            "exceeded max_cycles=%d" % max_cycles
                        )
                    pc_counts[pc] += 1
                    next_pc = step()
                    if next_pc is None:
                        break
                    pc = next_pc
            else:
                steps = self._steps
                while True:
                    if pc < 0 or pc >= count:
                        raise SimulationError("pc %d out of range" % pc)
                    pc_counts[pc] += 1
                    cycle += 1
                    self.cycle = cycle
                    if cycle > max_cycles:
                        raise CycleLimitError(
                            "exceeded max_cycles=%d" % max_cycles
                        )
                    self.pc = pc
                    next_pc = steps[pc]()
                    if next_pc is None:
                        break
                    pc = next_pc
                    if not self.locked:
                        self.pc = pc
                        hook(self, cycle)
                        pc = self.pc
        except SimulationError as fault:
            self.pc = pc
            self.cycle = cycle
            self.locked = False
            self._settle_counts(fused)
            self._annotate_fault(fault)
            raise
        self.cycle = cycle
        self.locked = False
        self._settle_counts(fused)
        return SimulationResult(
            self.cycle,
            self.op_count,
            pc_counts,
            self.mem_top[_BANK_X] - self.sp_min[_BANK_X],
            self.mem_top[_BANK_Y] - self.sp_min[_BANK_Y],
        )

    def _settle_counts(self, fused):
        """Settle per-pc execution counts and the operation total.

        In fused mode only block leaders were counted during the run; the
        interior of a straight-line block executes exactly as often as its
        leader, so the per-pc counts follow by propagation.  The per-pc
        operation width is fixed, so the running operation total the
        reference interpreter maintains per cycle reduces to one dot
        product at the end of the run."""
        pc_counts = self.pc_counts
        if fused:
            for leader, members in self._block_members.items():
                executed = pc_counts[leader]
                if executed:
                    for pc in members[1:]:
                        pc_counts[pc] = executed
        widths = self._op_widths
        self.op_count = sum(
            executed * widths[index]
            for index, executed in enumerate(pc_counts)
            if executed
        )


#: backend name -> simulator class (``jit`` self-registers on import below)
BACKENDS = {"interp": Simulator, "fast": FastSimulator}


def make_simulator(program, backend="interp", **kwargs):
    """Instantiate the simulator backend named *backend*.

    ``interp`` is the reference per-cycle
    :class:`~repro.sim.simulator.Simulator`; ``fast`` is the
    threaded-code :class:`FastSimulator`; ``jit`` is the
    loop-specializing :class:`~repro.sim.loopjit.LoopJitSimulator`.
    All honour the same constructor keywords (``stack_words``,
    ``max_cycles``, ``interrupt_hook``, ``check_bounds``) and produce
    bit-identical :class:`~repro.sim.simulator.SimulationResult`, per-pc
    counts, and final machine state, so callers may switch freely.
    Raises :class:`ValueError` for an unknown backend name;
    :data:`BACKENDS` lists the valid ones.
    """
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            "unknown simulator backend %r (choose from: %s)"
            % (backend, ", ".join(sorted(BACKENDS)))
        )
    return cls(program, **kwargs)


# Imported for its side effect: repro.sim.loopjit adds "jit" to BACKENDS.
# A plain (not from-) import keeps the circular dependency benign no
# matter which of the two modules is imported first.
import repro.sim.loopjit  # noqa: E402,F401
import repro.sim.batchsim  # noqa: E402,F401  (adds "batch" to BACKENDS)
