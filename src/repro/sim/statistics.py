"""Post-run statistics: functional-unit utilization and memory traffic.

The paper's motivation is bandwidth: two banks exist so that two memory
operations can issue per cycle.  These statistics make that visible —
how busy each of the nine units actually was, how memory operations
split across MU0/MU1, and how much achieved parallelism each schedule
reached — computed from a finished simulation's per-pc execution counts
(so cold code does not distort the picture).
"""

from repro.machine.resources import ALL_UNITS, FunctionalUnit


class UtilizationReport:
    """Per-unit busy counts over an executed program."""

    def __init__(self, cycles, busy, memory_ops):
        #: total executed cycles
        self.cycles = cycles
        #: FunctionalUnit -> cycles the unit had an operation
        self.busy = busy
        #: total dynamic memory operations
        self.memory_ops = memory_ops

    def utilization(self, unit):
        """Fraction of cycles *unit* was busy (0.0 - 1.0)."""
        if self.cycles == 0:
            return 0.0
        return self.busy.get(unit, 0) / self.cycles

    @property
    def memory_balance(self):
        """MU1's share of all memory operations (0.5 = perfectly split).

        The single-bank baseline scores 0.0 — every access goes through
        MU0 — while a good partitioning approaches 0.5.
        """
        total = self.busy.get(FunctionalUnit.MU0, 0) + self.busy.get(
            FunctionalUnit.MU1, 0
        )
        if total == 0:
            return 0.0
        return self.busy.get(FunctionalUnit.MU1, 0) / total

    @property
    def dual_issue_headroom(self):
        """Memory operations per cycle actually achieved (0.0 - 2.0)."""
        if self.cycles == 0:
            return 0.0
        return self.memory_ops / self.cycles

    def describe(self):
        lines = ["unit utilization over %d cycles" % self.cycles]
        for unit in ALL_UNITS:
            fraction = self.utilization(unit)
            bar = "#" * int(round(fraction * 40))
            lines.append("  %-5s %5.1f%%  |%s" % (unit.name, 100 * fraction, bar))
        lines.append(
            "  memory ops: %d (%.2f/cycle, MU1 share %.2f)"
            % (self.memory_ops, self.dual_issue_headroom, self.memory_balance)
        )
        return "\n".join(lines)


def utilization(program, result):
    """Compute a :class:`UtilizationReport` from a finished run.

    ``program`` is the executed :class:`MachineProgram`; ``result`` the
    :class:`SimulationResult` carrying per-pc execution counts.
    """
    busy = {unit: 0 for unit in ALL_UNITS}
    memory_ops = 0
    for index, instruction in enumerate(program.instructions):
        executed = result.pc_counts[index]
        if not executed:
            continue
        for unit, op in instruction:
            busy[unit] += executed
            if op.is_memory:
                memory_ops += executed
    return UtilizationReport(result.cycles, busy, memory_ops)
