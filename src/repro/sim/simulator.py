"""The cycle-counting VLIW instruction-set simulator.

Execution model
---------------
* one :class:`LongInstruction` per cycle; performance *is* the cycle count
  (paper Section 4.1 measures performance as the number of cycles);
* within a cycle, every operation reads its sources from the
  pre-instruction machine state and all writes are applied together at
  the end of the cycle (read-before-write), which is what lets the
  compaction pass pack anti-dependent operations into one instruction;
* memory: two word-addressed banks (X and Y), each holding its static
  data at low addresses and its stack at high addresses, growing down;
* calls: the CALL operation pushes the return address on the X stack and
  opens the callee's two frame regions; RET unwinds them;
* hardware loops: ``LOOP_BEGIN`` arms a loop record; after executing the
  loop's final body instruction the counter is decremented and, while
  positive, control returns to the body head in the same cycle — the
  zero-overhead looping of DSPs like the DSP56001;
* interrupts: an optional hook fires between instructions, but never
  between a store-lock and its store-unlock (paper Section 3.2's
  mechanism for keeping duplicated data consistent).
"""

from repro.ir.operations import OpCode
from repro.ir.symbols import MemoryBank, Storage
from repro.ir.types import RegClass
from repro.ir.values import Immediate


class SimulationError(Exception):
    """Raised on machine faults: bad address, stack overflow, runaway.

    Every backend annotates the exception in flight with the faulting
    ``pc``, ``cycle``, and ``backend`` name (see
    :meth:`Simulator._annotate_fault`); :mod:`repro.sim.errors` builds
    the structured program/machine/internal taxonomy on top of these.
    """


class CycleLimitError(SimulationError):
    """The ``max_cycles`` runaway guard tripped.

    A distinct subclass so callers (the fault-injection outcome
    classifier, campaign supervisors) can tell an apparent *hang* from
    other machine faults without parsing the message.
    """


class SimulationResult:
    """Outcome of one program run."""

    def __init__(self, cycles, operations, pc_counts, stack_peak_x, stack_peak_y):
        #: executed long instructions == elapsed cycles
        self.cycles = cycles
        #: total machine operations executed (incl. parallel ones)
        self.operations = operations
        #: instruction index -> execution count.  One instruction costs
        #: one cycle, so this is also the exact per-pc cycle attribution
        #: the profiling layer (:mod:`repro.obs.profile`) reads.
        self.pc_counts = pc_counts
        #: peak stack usage in words, per bank
        self.stack_peak_x = stack_peak_x
        self.stack_peak_y = stack_peak_y

    @property
    def parallelism(self):
        """Mean operations per cycle actually achieved."""
        return self.operations / self.cycles if self.cycles else 0.0

    def __repr__(self):
        return "<SimulationResult cycles=%d ops=%d>" % (self.cycles, self.operations)


_BANK_X = 0
_BANK_Y = 1

_BANK_INDEX = {MemoryBank.X: _BANK_X, MemoryBank.Y: _BANK_Y}


class Simulator:
    """Executes a compiled :class:`MachineProgram`.

    Parameters
    ----------
    program:
        The output of :func:`repro.compiler.compile_module`.
    stack_words:
        Stack region size per bank.
    max_cycles:
        Runaway guard.
    interrupt_hook:
        Optional callable ``hook(simulator, cycle) -> None`` invoked
        between instructions (except while a locked store pair is open).
    check_bounds:
        Verify every memory access stays inside its symbol — catches
        compiler bugs at the cost of some simulation speed.
    """

    #: backend identifier attached to faults (subclasses override)
    backend_name = "interp"

    def __init__(
        self,
        program,
        stack_words=16384,
        max_cycles=200_000_000,
        interrupt_hook=None,
        check_bounds=True,
    ):
        self.program = program
        self.stack_words = stack_words
        self.max_cycles = max_cycles
        self.interrupt_hook = interrupt_hook
        self.check_bounds = check_bounds

        layout = program.layout
        self.data_size = [layout.data_size_x, layout.data_size_y]
        self.mem_top = [
            self.data_size[_BANK_X] + stack_words,
            self.data_size[_BANK_Y] + stack_words,
        ]
        self.memory = [
            [0] * self.mem_top[_BANK_X],
            [0] * self.mem_top[_BANK_Y],
        ]
        self.sp = [self.mem_top[_BANK_X], self.mem_top[_BANK_Y]]
        self.sp_min = list(self.sp)
        self.registers = {
            RegClass.ADDR: [0] * 32,
            RegClass.INT: [0] * 32,
            RegClass.FLOAT: [0.0] * 32,
        }
        self.pc = 0
        self.cycle = 0
        self.op_count = 0
        self.halted = False
        self.locked = False
        self.loop_stack = []
        self.call_stack = []
        self.pc_counts = [0] * len(program.instructions)
        self._decoded = [None] * len(program.instructions)
        self._init_globals()

    # ------------------------------------------------------------------
    # Data access helpers (also used by tests and the workload harness)
    # ------------------------------------------------------------------
    def _global_location(self, name):
        bank, base = self.program.layout.address_of(name)
        return bank, base

    def read_global(self, name):
        """Current contents of a global symbol (X copy for duplicated)."""
        symbol = self.program.module.globals.get(name)
        bank, base = self._global_location(name)
        index = _BANK_X if bank in (MemoryBank.X, MemoryBank.BOTH) else _BANK_Y
        values = self.memory[index][base : base + symbol.size]
        return values[0] if symbol.size == 1 else values

    def read_global_copy(self, name, bank):
        """One specific copy of a (possibly duplicated) global."""
        symbol = self.program.module.globals.get(name)
        _bank, base = self._global_location(name)
        return self.memory[_BANK_INDEX[bank]][base : base + symbol.size]

    def write_global(self, name, values):
        """Overwrite a global before (or between) runs; updates all copies."""
        symbol = self.program.module.globals.get(name)
        if not isinstance(values, (list, tuple)):
            values = [values]
        if len(values) > symbol.size:
            raise ValueError(
                "%d values for %s[%d]" % (len(values), name, symbol.size)
            )
        bank, base = self._global_location(name)
        targets = (
            (_BANK_X, _BANK_Y) if bank is MemoryBank.BOTH else (_BANK_INDEX[bank],)
        )
        for target in targets:
            memory = self.memory[target]
            for i, value in enumerate(values):
                memory[base + i] = value

    def _init_globals(self):
        for symbol in self.program.module.globals:
            if symbol.initializer:
                self.write_global(symbol.name, symbol.initializer)

    def state_digest(self):
        """SHA-256 over the complete architectural state.

        Covers both memory banks, all three register files, stack
        pointers and their minima, pc, cycle, and the halt flag — two
        runs are bit-identical iff their digests match.  Used by the
        observability identity tests (profiled vs. unprofiled) and
        available to any cross-backend comparison.
        """
        import hashlib

        digest = hashlib.sha256()
        for part in (
            self.memory[_BANK_X],
            self.memory[_BANK_Y],
            self.registers[RegClass.ADDR],
            self.registers[RegClass.INT],
            self.registers[RegClass.FLOAT],
            self.sp,
            self.sp_min,
            [self.pc, self.cycle, int(self.halted)],
        ):
            digest.update(repr(part).encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _address_reader(self, op):
        """Reader for the effective index: base plus optional (Rn+Nn)
        offset operand."""
        base_reader = self._operand_reader(op.index_operand())
        offset = op.offset_operand()
        if offset is None:
            return base_reader
        offset_reader = self._operand_reader(offset)
        return lambda regs: base_reader(regs) + offset_reader(regs)

    def _operand_reader(self, operand):
        if isinstance(operand, Immediate):
            value = operand.value
            return lambda regs: value
        if operand.physical is None:
            raise SimulationError("unallocated register %r reached the simulator" % operand)
        rfile = self.registers[operand.rclass]
        index = operand.physical
        return lambda regs: rfile[index]

    def _resolve_symbol(self, op):
        """(bank_index, static_base or None, frame_offset or None)."""
        symbol = op.symbol
        bank = op.bank
        if bank not in _BANK_INDEX:
            raise SimulationError(
                "memory op on %s has unresolved bank %r" % (symbol.name, bank)
            )
        bank_index = _BANK_INDEX[bank]
        if symbol.storage is Storage.GLOBAL:
            _b, base = self.program.layout.address_of(symbol.name)
            return bank_index, base, None
        frame = self.program.frames[symbol.function]
        _b, offset = frame.offset_of(symbol.name)
        return bank_index, None, offset

    def _lock_transition(self, instruction):
        """Net store-lock state change of one long instruction, or None.

        Computed at decode time over the whole instruction so the result
        cannot depend on slot iteration order: a lock and its unlock
        (shadow) landing in the same instruction cancel out, a lone lock
        opens the window, a lone unlock closes it.
        """
        locks = unlocks = 0
        for op in instruction.slots.values():
            if op.opcode is OpCode.STORE and op.locked:
                if op.shadow:
                    unlocks += 1
                else:
                    locks += 1
        if locks and unlocks:
            return None
        if locks:
            return True
        if unlocks:
            return False
        return None

    def _decode(self, instruction):
        # Control operations are decoded last so that CALL/RET stack-pointer
        # updates never disturb the address computations of memory
        # operations packed into the same instruction.
        micro = []
        control = []
        lock_transition = self._lock_transition(instruction)
        for unit, op in instruction.slots.items():
            opcode = op.opcode
            info = op.info
            if opcode is OpCode.LOAD:
                bank_index, base, offset = self._resolve_symbol(op)
                reader = self._address_reader(op)
                micro.append(
                    (
                        "ld",
                        self.registers[op.dest.rclass],
                        op.dest.physical,
                        bank_index,
                        base,
                        offset,
                        reader,
                        op,
                    )
                )
            elif opcode is OpCode.STORE:
                bank_index, base, offset = self._resolve_symbol(op)
                value_reader = self._operand_reader(op.sources[0])
                index_reader = self._address_reader(op)
                micro.append(
                    (
                        "st",
                        value_reader,
                        bank_index,
                        base,
                        offset,
                        index_reader,
                        op,
                        lock_transition if op.locked else None,
                    )
                )
                if op.locked:
                    # only the first locked store carries the (instruction-
                    # wide) transition; applying it once is enough.
                    lock_transition = None
            elif opcode is OpCode.FMAC:
                rfile = self.registers[RegClass.FLOAT]
                micro.append(
                    (
                        "mac",
                        rfile,
                        op.dest.physical,
                        self._operand_reader(op.sources[0]),
                        self._operand_reader(op.sources[1]),
                    )
                )
            elif info.kind.value == "control":
                control.append(("ctl", op))
            elif opcode is OpCode.NOP or opcode is OpCode.LOOP_END:
                continue
            else:
                readers = tuple(self._operand_reader(s) for s in op.sources)
                micro.append(
                    (
                        "c",
                        self.registers[op.dest.rclass],
                        op.dest.physical,
                        info.evaluate,
                        readers,
                    )
                )
        micro.extend(control)
        return micro

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _address(self, bank_index, base, offset, index, op):
        if base is None:
            address = self.sp[bank_index] + offset + index
        else:
            address = base + index
        if self.check_bounds:
            symbol = op.symbol
            if not 0 <= index < symbol.size:
                raise SimulationError(
                    "index %d out of bounds for %s[%d] at pc=%d"
                    % (index, symbol.name, symbol.size, self.pc)
                )
        return address

    def _enter_main(self):
        frame = self.program.frames["main"]
        self.sp[_BANK_X] -= frame.size_x
        self.sp[_BANK_Y] -= frame.size_y
        self._note_stack()
        self.call_stack.append(("main", frame))
        self.pc = self.program.function_entries["main"]

    def _note_stack(self):
        if self.sp[_BANK_X] < self.sp_min[_BANK_X]:
            self.sp_min[_BANK_X] = self.sp[_BANK_X]
        if self.sp[_BANK_Y] < self.sp_min[_BANK_Y]:
            self.sp_min[_BANK_Y] = self.sp[_BANK_Y]
        if (
            self.sp[_BANK_X] < self.data_size[_BANK_X]
            or self.sp[_BANK_Y] < self.data_size[_BANK_Y]
        ):
            raise SimulationError("stack overflow at cycle %d" % self.cycle)

    def _do_call(self, op):
        callee = op.callee
        frame = self.program.frames[callee]
        self.sp[_BANK_X] -= 1
        self.memory[_BANK_X][self.sp[_BANK_X]] = self.pc + 1
        self.sp[_BANK_X] -= frame.size_x
        self.sp[_BANK_Y] -= frame.size_y
        self._note_stack()
        self.call_stack.append((callee, frame))
        return self.program.function_entries[callee]

    def _do_ret(self):
        if len(self.call_stack) <= 1:
            raise SimulationError("RET with empty call stack at pc=%d" % self.pc)
        _name, frame = self.call_stack.pop()
        self.sp[_BANK_X] += frame.size_x
        self.sp[_BANK_Y] += frame.size_y
        return_pc = self.memory[_BANK_X][self.sp[_BANK_X]]
        self.sp[_BANK_X] += 1
        return return_pc

    def _annotate_fault(self, fault):
        """Attach fault context (``pc``, ``cycle``, ``backend``) in flight.

        Existing values win, so a fault annotated deeper in the stack
        keeps its innermost (most precise) location.  The structured
        taxonomy in :mod:`repro.sim.errors` reads these attributes when
        wrapping the raw :class:`SimulationError`.
        """
        if getattr(fault, "pc", None) is None:
            fault.pc = self.pc
        if getattr(fault, "cycle", None) is None:
            fault.cycle = self.cycle
        if getattr(fault, "backend", None) is None:
            fault.backend = self.backend_name

    def run(self):
        """Execute until HALT; returns a :class:`SimulationResult`."""
        try:
            return self._run()
        except SimulationError as fault:
            # A machine fault aborts any open store-lock window: the
            # machine is dead, so the window must not linger into
            # post-mortem inspection or a subsequent interrupt probe.
            self.locked = False
            self._annotate_fault(fault)
            raise

    def _run(self):
        self._enter_main()
        instructions = self.program.instructions
        decoded = self._decoded
        registers = self.registers
        int_file = registers[RegClass.INT]
        labels = self.program.labels
        loops = self.program.loops
        pc_counts = self.pc_counts

        while not self.halted:
            pc = self.pc
            if pc < 0 or pc >= len(instructions):
                raise SimulationError("pc %d out of range" % pc)
            micro = decoded[pc]
            if micro is None:
                micro = self._decode(instructions[pc])
                decoded[pc] = micro
            pc_counts[pc] += 1
            self.cycle += 1
            if self.cycle > self.max_cycles:
                raise CycleLimitError("exceeded max_cycles=%d" % self.max_cycles)
            next_pc = pc + 1
            transferred = False
            reg_writes = []
            mem_writes = []
            self.op_count += len(micro)

            for entry in micro:
                kind = entry[0]
                if kind == "c":
                    _k, rfile, index, evaluate, readers = entry
                    if len(readers) == 2:
                        value = evaluate(readers[0](None), readers[1](None))
                    elif len(readers) == 1:
                        value = evaluate(readers[0](None))
                    else:
                        value = evaluate()
                    reg_writes.append((rfile, index, value))
                elif kind == "mac":
                    _k, rfile, index, read_a, read_b = entry
                    value = rfile[index] + read_a(None) * read_b(None)
                    reg_writes.append((rfile, index, value))
                elif kind == "ld":
                    (_k, rfile, rindex, bank_index, base, offset, reader, op) = entry
                    address = self._address(
                        bank_index, base, offset, reader(None), op
                    )
                    reg_writes.append(
                        (rfile, rindex, self.memory[bank_index][address])
                    )
                elif kind == "st":
                    (
                        _k,
                        value_reader,
                        bank_index,
                        base,
                        offset,
                        index_reader,
                        op,
                        lock_transition,
                    ) = entry
                    address = self._address(
                        bank_index, base, offset, index_reader(None), op
                    )
                    mem_writes.append(
                        (self.memory[bank_index], address, value_reader(None))
                    )
                    if lock_transition is not None:
                        # store-lock opens the window; store-unlock (the
                        # shadow copy) closes it.  The transition is the
                        # instruction-wide net effect, so a lock/unlock
                        # pair sharing this instruction never leaves the
                        # window open regardless of slot order.
                        self.locked = lock_transition
                else:  # control
                    op = entry[1]
                    opcode = op.opcode
                    if opcode is OpCode.BR:
                        next_pc = labels[op.target.name]
                        transferred = True
                    elif opcode is OpCode.BRT:
                        if self._read_control_source(op):
                            next_pc = labels[op.target.name]
                            transferred = True
                    elif opcode is OpCode.BRF:
                        if not self._read_control_source(op):
                            next_pc = labels[op.target.name]
                            transferred = True
                    elif opcode is OpCode.LOOP_BEGIN:
                        count = self._read_control_source(op)
                        start, end = loops[op.target.name]
                        if count <= 0:
                            next_pc = end + 1
                            transferred = True
                        else:
                            self.loop_stack.append([start, end, count])
                    elif opcode is OpCode.CALL:
                        next_pc = self._do_call(op)
                        transferred = True
                    elif opcode is OpCode.RET:
                        next_pc = self._do_ret()
                        transferred = True
                    elif opcode is OpCode.HALT:
                        self.halted = True
                    else:
                        raise SimulationError("unexpected opcode %s" % opcode)

            for rfile, index, value in reg_writes:
                rfile[index] = value
            for memory, address, value in mem_writes:
                memory[address] = value

            # Zero-overhead hardware-loop back-edge.  A control transfer
            # (taken branch, CALL, RET, zero-trip loop skip) in this same
            # instruction overrides the loop hardware's end-of-body
            # detection for the cycle: the counter is neither decremented
            # nor the back-edge taken.  (Real DSPs forbid a CALL as the
            # final loop instruction for exactly this reason.)
            if not transferred:
                while self.loop_stack and self.loop_stack[-1][1] == pc:
                    record = self.loop_stack[-1]
                    record[2] -= 1
                    if record[2] > 0:
                        next_pc = record[0]
                        break
                    self.loop_stack.pop()

            self.pc = next_pc

            if self.interrupt_hook is not None and not self.locked and not self.halted:
                self.interrupt_hook(self, self.cycle)

        # HALT closes any open lock window: nothing can unlock it anymore.
        self.locked = False
        return SimulationResult(
            self.cycle,
            self.op_count,
            self.pc_counts,
            self.mem_top[_BANK_X] - self.sp_min[_BANK_X],
            self.mem_top[_BANK_Y] - self.sp_min[_BANK_Y],
        )

    def _read_control_source(self, op):
        source = op.sources[0]
        if isinstance(source, Immediate):
            return source.value
        return self.registers[source.rclass][source.physical]
