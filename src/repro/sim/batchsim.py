"""Batched lockstep backend: N instances of one program per dispatch.

Fuzz, fault, and sweep campaigns run thousands of *near-identical*
simulations: the same compiled program over different input data.  The
scalar backends pay full price per instance — simulator construction,
closure binding, and one Python dispatch per instruction per instance.
This backend executes N instances ("lanes") of the same program in
lockstep with structure-of-arrays state: every memory cell and register
slot holds either a plain Python scalar (all lanes agree — the common
case) or a NumPy array of shape ``[N]`` holding one value per lane.
One generated step closure then executes each instruction once for all
lanes, turning per-lane arithmetic into array operations the way
:mod:`repro.sim.loopjit` turns per-cycle dispatch into native loops.

Bit-identity with the reference interpreter is non-negotiable (the fuzz
oracle diffs final state down to ``repr``), which dictates the value
model:

* integer/address lanes vectorize as ``dtype=object`` arrays of Python
  ints — unbounded precision, no silent int64 wraparound;
* float lanes vectorize as ``float64`` arrays — IEEE-754 doubles, the
  exact representation of a Python float, with ``+ - * /`` bit-equal to
  the scalar operators;
* every vector-hostile form in the generated code (``1 if a < b else
  0``, ``min``/``max``, ``int()``/``float()`` casts, shifts, ``**
  0.5``) is replaced by a helper that reproduces exact Python scalar
  semantics elementwise (see ``_HELPERS``);
* scalars extracted from arrays always pass through ``ndarray.item``,
  which returns genuine Python objects, so ``np.float64`` never leaks
  into scalar state (it would survive ``==`` but break digests).

Divergence protocol (peel-off / rejoin): control flow must stay uniform
inside a lane group.  Control inputs — branch conditions, loop trip
counts, effective addresses, return addresses, operands of non-inlined
evaluators — are guarded: a uniform vector collapses back to a scalar,
a truly divergent one raises :class:`_LaneSplit` *during the read
phase*, before anything commits.  The dispatcher rolls the cycle and
pc count back, partitions the lanes by the offending value, slices the
group into child groups (a single-lane child collapses to all-scalar
state, i.e. the "peel" is the same step table running at scalar
types), and re-dispatches the same instruction in each child, where
the guard now collapses.  While several groups are in flight the
dispatcher advances them one instruction per round, so groups that
reach the same pc with equal cycle count, loop/call stacks, and lock
state — balanced branch arms meeting at the superblock join — are
coalesced back into one vectorized group.  Lanes with an interrupt
hook never enter lockstep at all: each runs on its own scalar
:class:`~repro.sim.loopjit.LoopJitSimulator` seeded with that lane's
initial state (fault-arming and cadence-mismatched lanes take this
path), which keeps hook visibility bit-exact by construction.

Cycle and pc-count accounting across splits and merges: every group
counts from zero; when a group is split, merged, or retired its counts
are folded into per-lane accumulators, so a lane's final ``pc_counts``
is the sum over the chain of groups it travelled through.  Cycle
counts stay uniform within a group (control is uniform), so the
group's ``cycle`` field is exact for all its lanes.
"""

import numpy as np

from repro.ir.operations import OpCode
from repro.ir.symbols import MemoryBank
from repro.ir.types import RegClass
from repro.sim.fastsim import (
    BACKENDS,
    FastSimulator,
    _BINARY_EXPR,
    _UNARY_EXPR,
)
from repro.sim.loopjit import LoopJitSimulator
from repro.sim.simulator import (
    SimulationError,
    SimulationResult,
    Simulator,
    _BANK_X,
    _BANK_Y,
)

_ndarray = np.ndarray


class _LaneSplit(Exception):
    """Lanes disagreed on a control input; carries the per-lane values.

    Deliberately *not* a :class:`SimulationError`: this is a dispatcher
    signal, never a machine fault, and must not be annotated or
    reported.  Raised only during an instruction's read phase, so the
    dispatcher can rewind the cycle accounting and re-execute the
    instruction in the split-off groups.
    """

    def __init__(self, vector):
        self.vector = vector


def _collapse(vector):
    """Uniform vector -> its scalar value; divergent -> :class:`_LaneSplit`.

    ``item()`` (not ``[0]``) so floats come back as Python floats, ints
    as Python ints.  An all-NaN vector never collapses (NaN != NaN) and
    splits down to single lanes, which run at scalar types — the exact
    per-lane semantics, just slower.
    """
    first = vector.item(0)
    if (vector == first).all():
        return first
    raise _LaneSplit(vector)


def _ceq(a, b):
    if a.__class__ is _ndarray or b.__class__ is _ndarray:
        return np.where(a == b, 1, 0).astype(object)
    return 1 if a == b else 0


def _cne(a, b):
    if a.__class__ is _ndarray or b.__class__ is _ndarray:
        return np.where(a != b, 1, 0).astype(object)
    return 1 if a != b else 0


def _clt(a, b):
    if a.__class__ is _ndarray or b.__class__ is _ndarray:
        return np.where(a < b, 1, 0).astype(object)
    return 1 if a < b else 0


def _cle(a, b):
    if a.__class__ is _ndarray or b.__class__ is _ndarray:
        return np.where(a <= b, 1, 0).astype(object)
    return 1 if a <= b else 0


def _cgt(a, b):
    if a.__class__ is _ndarray or b.__class__ is _ndarray:
        return np.where(a > b, 1, 0).astype(object)
    return 1 if a > b else 0


def _cge(a, b):
    if a.__class__ is _ndarray or b.__class__ is _ndarray:
        return np.where(a >= b, 1, 0).astype(object)
    return 1 if a >= b else 0


def _vmin(a, b):
    # np.where(b < a, b, a) reproduces Python min exactly, including
    # min(0.0, -0.0) == 0.0 (first argument wins on ties) and NaN
    # propagation from the first argument only.
    if a.__class__ is _ndarray or b.__class__ is _ndarray:
        return np.where(b < a, b, a)
    return min(a, b)


def _vmax(a, b):
    if a.__class__ is _ndarray or b.__class__ is _ndarray:
        return np.where(b > a, b, a)
    return max(a, b)


def _vshl(a, b):
    if b.__class__ is _ndarray:
        b = _collapse(b)
    if b < 0 and a.__class__ is _ndarray:
        # object arrays raise one array-wide error; pre-empt it with the
        # exact per-lane scalar exception (uniform across the group).
        raise ValueError("negative shift count")
    return a << b


def _vshr(a, b):
    if b.__class__ is _ndarray:
        b = _collapse(b)
    if b < 0 and a.__class__ is _ndarray:
        raise ValueError("negative shift count")
    return a >> b


def _vfdiv(a, b):
    if b.__class__ is _ndarray:
        # a divergent divisor must split (some lanes would raise, some
        # not); a uniform zero divisor raises for every lane, exactly
        # like the scalar backends.
        b = _collapse(b)
    if b == 0 and a.__class__ is _ndarray:
        raise ZeroDivisionError("float division by zero")
    return a / b


def _vftoi(a):
    if a.__class__ is not _ndarray:
        return int(a)
    return np.array([int(v) for v in a.tolist()], dtype=object)


def _vitof(a):
    if a.__class__ is not _ndarray:
        return float(a)
    return np.array([float(v) for v in a.tolist()], dtype=np.float64)


def _vfsqrt(a):
    if a.__class__ is not _ndarray:
        return a ** 0.5
    values = [v ** 0.5 for v in a.tolist()]
    # a negative input yields a complex result in Python (float ** 0.5
    # falls back to complex pow); keep it, on an object array.
    if any(v.__class__ is complex for v in values):
        out = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            out[i] = v
        return out
    return np.array(values, dtype=np.float64)


#: globals injected into every generated-code namespace
_HELPERS = {
    "_ND": _ndarray,
    "_ck": _collapse,
    "_ceq": _ceq,
    "_cne": _cne,
    "_clt": _clt,
    "_cle": _cle,
    "_cgt": _cgt,
    "_cge": _cge,
    "_vmin": _vmin,
    "_vmax": _vmax,
    "_vshl": _vshl,
    "_vshr": _vshr,
    "_vfdiv": _vfdiv,
    "_vftoi": _vftoi,
    "_vitof": _vitof,
    "_vfsqrt": _vfsqrt,
}


def _batch_tables():
    """Vector-safe variants of the scalar expression tables."""
    binary = dict(_BINARY_EXPR)
    unary = dict(_UNARY_EXPR)
    comparators = {
        "_ceq": (OpCode.CMPEQ, OpCode.FCMPEQ, OpCode.ACMPEQ),
        "_cne": (OpCode.CMPNE, OpCode.FCMPNE, OpCode.ACMPNE),
        "_clt": (OpCode.CMPLT, OpCode.FCMPLT, OpCode.ACMPLT),
        "_cle": (OpCode.CMPLE, OpCode.FCMPLE, OpCode.ACMPLE),
        "_cgt": (OpCode.CMPGT, OpCode.FCMPGT, OpCode.ACMPGT),
        "_cge": (OpCode.CMPGE, OpCode.FCMPGE, OpCode.ACMPGE),
    }
    for helper, opcodes in comparators.items():
        for opcode in opcodes:
            binary[opcode] = "%s({a}, {b})" % helper
    for opcode in (OpCode.MIN, OpCode.FMIN):
        binary[opcode] = "_vmin({a}, {b})"
    for opcode in (OpCode.MAX, OpCode.FMAX):
        binary[opcode] = "_vmax({a}, {b})"
    binary[OpCode.SHL] = "_vshl({a}, {b})"
    binary[OpCode.SHR] = "_vshr({a}, {b})"
    binary[OpCode.FDIV] = "_vfdiv({a}, {b})"
    unary[OpCode.ITOF] = "_vitof({a})"
    unary[OpCode.FTOI] = "_vftoi({a})"
    unary[OpCode.FSQRT] = "_vfsqrt({a})"
    return binary, unary


def _lane_scalar(cell, position):
    if cell.__class__ is _ndarray:
        return cell.item(position)
    return cell


class LaneOutcome:
    """Result of one lane of a :meth:`BatchSimulator.run_batch` run.

    Exactly one of ``result`` (a :class:`SimulationResult`) and
    ``error`` (the exception the scalar backend would have raised) is
    set; ``state`` exposes the lane's final architectural state with
    the usual ``read_global`` / ``state_digest`` surface.
    """

    __slots__ = ("lane", "result", "error", "state")

    def __init__(self, lane):
        self.lane = lane
        self.result = None
        self.error = None
        self.state = None

    def __repr__(self):
        status = "error=%r" % self.error if self.error else repr(self.result)
        return "<LaneOutcome lane=%d %s>" % (self.lane, status)


class _LaneView:
    """Scalar projection of one lane of a finished multi-lane group.

    ``read_global`` extracts just the requested cells; the full
    ``memory`` / ``registers`` projections (and therefore
    ``state_digest``) materialize lazily on first touch.
    """

    def __init__(self, group, position):
        self._group = group
        self._position = position
        self.program = group.program
        self.sp = list(group.sp)
        self.sp_min = list(group.sp_min)
        self.pc = group.pc
        self.cycle = group.cycle
        self.halted = group.halted
        self._memory = None
        self._registers = None

    @property
    def memory(self):
        if self._memory is None:
            position = self._position
            self._memory = [
                [_lane_scalar(cell, position) for cell in bank]
                for bank in self._group.memory
            ]
        return self._memory

    @property
    def registers(self):
        if self._registers is None:
            position = self._position
            self._registers = {
                rclass: [_lane_scalar(cell, position) for cell in rfile]
                for rclass, rfile in self._group.registers.items()
            }
        return self._registers

    def read_global(self, name):
        symbol = self.program.module.globals.get(name)
        bank, base = self.program.layout.address_of(name)
        index = _BANK_X if bank in (MemoryBank.X, MemoryBank.BOTH) else _BANK_Y
        position = self._position
        values = [
            _lane_scalar(cell, position)
            for cell in self._group.memory[index][base : base + symbol.size]
        ]
        return values[0] if symbol.size == 1 else values

    def read_global_copy(self, name, bank):
        symbol = self.program.module.globals.get(name)
        _bank, base = self.program.layout.address_of(name)
        position = self._position
        index = {MemoryBank.X: _BANK_X, MemoryBank.Y: _BANK_Y}[bank]
        return [
            _lane_scalar(cell, position)
            for cell in self._group.memory[index][base : base + symbol.size]
        ]

    state_digest = Simulator.state_digest


class BatchSimulator(FastSimulator):
    """Lockstep simulator over ``lanes`` instances of one program.

    With the default ``lanes=1`` this is a drop-in scalar backend (the
    guards never fire on scalar state, so ``run()`` is bit-identical to
    the interpreter by the same construction as the fast backend); with
    ``lanes=N`` seed per-lane inputs via :meth:`write_global_lane` and
    collect per-lane results from :meth:`run_batch`.
    """

    backend_name = "batch"

    _binary_expr, _unary_expr = _batch_tables()

    def __init__(self, program, lanes=1, **kwargs):
        if lanes < 1:
            raise ValueError("lanes must be >= 1, got %d" % lanes)
        super().__init__(program, **kwargs)
        self.lanes = lanes
        self.lane_ids = list(range(lanes))
        self._lane_hooks = {}

    # ------------------------------------------------------------------
    # Codegen hooks (see fastsim)
    # ------------------------------------------------------------------
    def _exec_namespace(self):
        return dict(_HELPERS)

    def _guard_uniform(self, name, cb):
        cb.reads.append(
            "if %s.__class__ is _ND: %s = _ck(%s)" % (name, name, name)
        )

    def _fallback_expr(self, info, sources, cb):
        # Generic OpInfo.evaluate callables are scalar-only; force each
        # operand uniform (collapse or split) before the call.
        guarded = []
        for source in sources:
            temp = cb.temp()
            cb.reads.append("%s = %s" % (temp, source))
            self._guard_uniform(temp, cb)
            guarded.append(temp)
        return super()._fallback_expr(info, guarded, cb)

    def _do_ret(self):
        # Peek the return-address cell before super() mutates sp and the
        # call stack: a divergent return address must split with the
        # machine state untouched.
        if len(self.call_stack) > 1:
            frame = self.call_stack[-1][1]
            slot = self.sp[_BANK_X] + frame.size_x
            cell = self.memory[_BANK_X][slot]
            if cell.__class__ is _ndarray:
                self.memory[_BANK_X][slot] = _collapse(cell)
        return super()._do_ret()

    # ------------------------------------------------------------------
    # Per-lane input
    # ------------------------------------------------------------------
    def set_lane_hook(self, lane, hook):
        """Install an interrupt hook for one lane.

        Hooked lanes are peeled to a scalar jit simulator by
        :meth:`run_batch` (hook delivery is inherently per-instance),
        while the remaining lanes run in lockstep.
        """
        if not 0 <= lane < self.lanes:
            raise ValueError("lane %d out of range" % lane)
        self._lane_hooks[lane] = hook

    def write_global_lane(self, lane, name, values):
        """Per-lane :meth:`write_global`: set one lane's copy of *name*.

        The touched cells broadcast to ``[lanes]`` vectors on first
        per-lane write; untouched cells stay scalar.
        """
        if not 0 <= lane < self.lanes:
            raise ValueError("lane %d out of range" % lane)
        symbol = self.program.module.globals.get(name)
        if not isinstance(values, (list, tuple)):
            values = [values]
        if len(values) > symbol.size:
            raise ValueError(
                "%d values for %s[%d]" % (len(values), name, symbol.size)
            )
        bank, base = self._global_location(name)
        if bank is MemoryBank.BOTH:
            targets = (_BANK_X, _BANK_Y)
        else:
            targets = (_BANK_X if bank is MemoryBank.X else _BANK_Y,)
        for target in targets:
            memory = self.memory[target]
            for i, value in enumerate(values):
                address = base + i
                cell = memory[address]
                if cell.__class__ is not _ndarray:
                    if self.lanes == 1:
                        memory[address] = value
                        continue
                    cell = self._broadcast(cell, value)
                    memory[address] = cell
                elif cell.dtype is not np.dtype(object) and type(
                    value
                ) is not float:
                    # keep exact types: a non-float landing in a float64
                    # vector would be coerced, so widen to object first
                    widened = np.empty(self.lanes, dtype=object)
                    for j, v in enumerate(cell.tolist()):
                        widened[j] = v
                    cell = widened
                    memory[address] = cell
                cell[lane] = value

    def write_global_lanes(self, name, rows):
        """Write a different value set into every lane: ``rows[lane]``."""
        if len(rows) != self.lanes:
            raise ValueError(
                "%d rows for %d lanes" % (len(rows), self.lanes)
            )
        for lane, values in enumerate(rows):
            self.write_global_lane(lane, name, values)

    def _broadcast(self, current, incoming):
        if type(current) is float and type(incoming) is float:
            return np.full(self.lanes, current)
        cell = np.empty(self.lanes, dtype=object)
        cell[:] = current
        return cell

    # ------------------------------------------------------------------
    # Peeling (hooked lanes run on the scalar jit path)
    # ------------------------------------------------------------------
    def _peel(self, lane, hook):
        peer = LoopJitSimulator(
            self.program,
            stack_words=self.stack_words,
            max_cycles=self.max_cycles,
            interrupt_hook=hook,
            check_bounds=self.check_bounds,
        )
        for bank in (_BANK_X, _BANK_Y):
            source = self.memory[bank]
            target = peer.memory[bank]
            for address, cell in enumerate(source):
                target[address] = _lane_scalar(cell, lane)
        for rclass, rfile in self.registers.items():
            target = peer.registers[rclass]
            for index, cell in enumerate(rfile):
                target[index] = _lane_scalar(cell, lane)
        return peer

    def _adopt_state(self, peer):
        self.memory = peer.memory
        self.registers = peer.registers
        self.sp = peer.sp
        self.sp_min = peer.sp_min
        self.pc = peer.pc
        self.cycle = peer.cycle
        self.op_count = peer.op_count
        self.halted = peer.halted
        self.locked = peer.locked
        self.loop_stack = peer.loop_stack
        self.call_stack = peer.call_stack
        self.pc_counts = peer.pc_counts

    # ------------------------------------------------------------------
    # Group management
    # ------------------------------------------------------------------
    def _shell(self, lane_ids):
        """A new group sharing this one's program and uniform state."""
        twin = object.__new__(type(self))
        twin.program = self.program
        twin.stack_words = self.stack_words
        twin.max_cycles = self.max_cycles
        twin.interrupt_hook = None
        twin.check_bounds = self.check_bounds
        twin.data_size = self.data_size
        twin.mem_top = self.mem_top
        twin.lanes = len(lane_ids)
        twin.lane_ids = lane_ids
        twin._lane_hooks = {}
        twin.sp = list(self.sp)
        twin.sp_min = list(self.sp_min)
        twin.pc = self.pc
        twin.cycle = self.cycle
        twin.op_count = 0
        twin.halted = self.halted
        twin.locked = self.locked
        twin.loop_stack = [list(record) for record in self.loop_stack]
        twin.call_stack = list(self.call_stack)
        twin.pc_counts = [0] * len(self.program.instructions)
        twin._decoded = self._decoded
        twin._steps = None
        twin._blocks = None
        twin._block_lens = None
        twin._block_members = None
        twin._op_widths = list(self._op_widths)
        twin._loop_end_pcs = self._loop_end_pcs
        return twin

    def _slice_group(self, positions):
        """Child group holding the given vector positions of this one.

        A single-position child collapses every vector cell to its
        scalar value — the peeled lane then runs the same step table on
        pure scalar state.
        """
        child = self._shell([self.lane_ids[p] for p in positions])
        if len(positions) > 1:
            take = np.array(positions)
            position = None
        else:
            take = None
            position = positions[0]

        def cut(cell):
            if cell.__class__ is not _ndarray:
                return cell
            if take is None:
                return cell.item(position)
            return cell[take]

        child.memory = [[cut(cell) for cell in bank] for bank in self.memory]
        child.registers = {
            rclass: [cut(cell) for cell in rfile]
            for rclass, rfile in self.registers.items()
        }
        return child

    @staticmethod
    def _join_cells(cells, sizes, total):
        first = cells[0]
        if first.__class__ is not _ndarray and all(
            cell is first for cell in cells
        ):
            return first
        values = []
        for cell, size in zip(cells, sizes):
            if cell.__class__ is _ndarray:
                values.extend(cell.tolist())
            else:
                values.extend([cell] * size)
        head = values[0]
        if head == head and all(
            type(v) is type(head) and v == head for v in values[1:]
        ):
            return head
        if all(type(v) is float for v in values):
            return np.array(values, dtype=np.float64)
        out = np.empty(total, dtype=object)
        for i, v in enumerate(values):
            out[i] = v
        return out

    def _merge_groups(self, peers):
        base = peers[0]
        lane_ids = [lane for peer in peers for lane in peer.lane_ids]
        merged = base._shell(lane_ids)
        sizes = [peer.lanes for peer in peers]
        total = merged.lanes
        merged.memory = [
            [
                self._join_cells(
                    [peer.memory[bank][address] for peer in peers],
                    sizes,
                    total,
                )
                for address in range(len(base.memory[bank]))
            ]
            for bank in (_BANK_X, _BANK_Y)
        ]
        merged.registers = {
            rclass: [
                self._join_cells(
                    [peer.registers[rclass][index] for peer in peers],
                    sizes,
                    total,
                )
                for index in range(len(rfile))
            ]
            for rclass, rfile in base.registers.items()
        }
        return merged

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _ensure_steps(self):
        if self._steps is None:
            self._compile_steps()

    def _advance(self, budget=None):
        """Run this group until halt, fault, or lane split.

        With *budget*, stop after that many instructions and report
        ``("run", None)`` — the round-lockstep mode the dispatcher uses
        while several groups are in flight, so balanced divergent arms
        stay cycle-aligned and can rejoin.
        """
        self._ensure_steps()
        steps = self._steps
        count = len(self.program.instructions)
        pc_counts = self.pc_counts
        max_cycles = self.max_cycles
        cycle = self.cycle
        pc = self.pc
        remaining = budget
        try:
            while True:
                if pc < 0 or pc >= count:
                    raise SimulationError("pc %d out of range" % pc)
                pc_counts[pc] += 1
                cycle += 1
                self.cycle = cycle
                if cycle > max_cycles:
                    from repro.sim.simulator import CycleLimitError

                    raise CycleLimitError(
                        "exceeded max_cycles=%d" % max_cycles
                    )
                self.pc = pc
                try:
                    next_pc = steps[pc]()
                except _LaneSplit as split:
                    # the split fired in the read phase: nothing has
                    # committed, so rewind the accounting and let the
                    # dispatcher re-execute in the child groups.
                    pc_counts[pc] -= 1
                    cycle -= 1
                    self.cycle = cycle
                    return ("split", split.vector)
                if next_pc is None:
                    self.locked = False
                    return ("halt", None)
                pc = next_pc
                if remaining is not None:
                    remaining -= 1
                    if remaining <= 0:
                        self.pc = pc
                        return ("run", None)
        except SimulationError as fault:
            self.pc = pc
            self.cycle = cycle
            self.locked = False
            self._annotate_fault(fault)
            return ("fault", fault)
        except Exception as fault:  # noqa: BLE001 — raw machine faults
            # Non-simulation Python faults (ZeroDivisionError from FDIV,
            # negative shifts, ...) propagate unannotated from the
            # scalar backends; report them per group the same way.
            return ("fault", fault)

    def _fold_counts(self, group, carry):
        counts = group.pc_counts
        for lane in group.lane_ids:
            acc = carry.get(lane)
            if acc is None:
                carry[lane] = list(counts)
            else:
                for index, value in enumerate(counts):
                    if value:
                        acc[index] += value

    def _split_group(self, group, vector, carry):
        self._fold_counts(group, carry)
        buckets = {}
        for position in range(group.lanes):
            buckets.setdefault(vector.item(position), []).append(position)
        return [
            group._slice_group(positions) for positions in buckets.values()
        ]

    def _rejoin_key(self, group):
        return (
            group.pc,
            group.cycle,
            group.locked,
            tuple(group.sp),
            tuple(group.sp_min),
            tuple(tuple(record) for record in group.loop_stack),
            tuple((name, id(frame)) for name, frame in group.call_stack),
        )

    def _coalesce(self, groups, carry):
        if len(groups) < 2:
            return groups
        merged = {}
        for group in groups:
            merged.setdefault(self._rejoin_key(group), []).append(group)
        out = []
        for peers in merged.values():
            if len(peers) == 1:
                out.append(peers[0])
            else:
                for peer in peers:
                    self._fold_counts(peer, carry)
                out.append(self._merge_groups(peers))
        return out

    def _dispatch(self, groups, carry):
        """Drive lane groups to completion; returns ``[(group, error)]``."""
        finished = []
        while groups:
            if len(groups) == 1:
                group = groups.pop()
                status, payload = group._advance()
                if status == "split":
                    groups.extend(self._split_group(group, payload, carry))
                else:
                    self._fold_counts(group, carry)
                    finished.append((group, payload))
                continue
            advancing = []
            for group in groups:
                status, payload = group._advance(budget=1)
                if status == "run":
                    advancing.append(group)
                elif status == "split":
                    advancing.extend(
                        self._split_group(group, payload, carry)
                    )
                else:
                    self._fold_counts(group, carry)
                    finished.append((group, payload))
            groups = self._coalesce(advancing, carry)
        return finished

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _settle_ops(self):
        widths = self._op_widths
        self.op_count = sum(
            executed * widths[index]
            for index, executed in enumerate(self.pc_counts)
            if executed
        )

    def _result(self):
        return SimulationResult(
            self.cycle,
            self.op_count,
            self.pc_counts,
            self.mem_top[_BANK_X] - self.sp_min[_BANK_X],
            self.mem_top[_BANK_Y] - self.sp_min[_BANK_Y],
        )

    def run(self):
        """Single-instance entry, bit-identical to the interpreter.

        Usable only with ``lanes=1`` (the default, which every generic
        backend-selection path uses); multi-lane batches return their
        per-lane results through :meth:`run_batch`.
        """
        if self.lanes != 1:
            raise ValueError(
                "run() drives a single instance; use run_batch() for "
                "%d lanes" % self.lanes
            )
        hook = self._lane_hooks.get(0, self.interrupt_hook)
        if hook is not None:
            # hook delivery is per-instance by nature: run on the scalar
            # jit path against this simulator's initial state, then
            # mirror the final state back.
            peer = self._peel(0, hook)
            try:
                return peer.run()
            finally:
                self._adopt_state(peer)
        self._ensure_steps()
        self._enter_main()
        status, payload = self._advance()
        if status == "fault":
            if isinstance(payload, SimulationError):
                self._settle_ops()
            raise payload
        self._settle_ops()
        return self._result()

    def run_batch(self):
        """Run every lane; returns one :class:`LaneOutcome` per lane."""
        lanes = self.lanes
        outcomes = [None] * lanes
        base_hook = self.interrupt_hook
        peeled = {}
        for lane in range(lanes):
            hook = self._lane_hooks.get(lane, base_hook)
            if hook is not None:
                peeled[lane] = hook
        for lane, hook in peeled.items():
            peer = self._peel(lane, hook)
            outcome = LaneOutcome(lane)
            try:
                outcome.result = peer.run()
            except Exception as error:
                outcome.error = error
            outcome.state = peer
            outcomes[lane] = outcome
        rest = [lane for lane in range(lanes) if lane not in peeled]
        if not rest:
            return outcomes
        if len(rest) == lanes:
            root = self
        else:
            root = self._slice_group(rest)
        root._ensure_steps()
        root._enter_main()
        carry = {}
        finished = self._dispatch([root], carry)
        widths = root._op_widths
        for group, error in finished:
            for position, lane in enumerate(group.lane_ids):
                outcome = LaneOutcome(lane)
                counts = carry[lane]
                if error is None:
                    operations = sum(
                        executed * widths[index]
                        for index, executed in enumerate(counts)
                        if executed
                    )
                    outcome.result = SimulationResult(
                        group.cycle,
                        operations,
                        counts,
                        self.mem_top[_BANK_X] - group.sp_min[_BANK_X],
                        self.mem_top[_BANK_Y] - group.sp_min[_BANK_Y],
                    )
                else:
                    outcome.error = error
                if group.lanes == 1:
                    group.pc_counts = counts
                    group.op_count = (
                        outcome.result.operations if error is None else 0
                    )
                    outcome.state = group
                else:
                    outcome.state = _LaneView(group, position)
                outcomes[lane] = outcome
        return outcomes


BACKENDS["batch"] = BatchSimulator
