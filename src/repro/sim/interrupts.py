"""Interrupt injection for validating duplicated-data consistency.

Paper Section 3.2 observes that an interrupt arriving between the two
stores of a duplicated-data update could observe (or create) divergent
copies, and proposes a store-lock / store-unlock pair.  The duplication
transform emits exactly that pair when ``interrupt_safe`` is set, and the
simulator refuses to deliver interrupts while the lock window is open.

:class:`InterruptInjector` is a test harness: installed as the simulator's
``interrupt_hook``, it fires at a configurable cadence and, on each
delivery, checks that every duplicated global's X and Y copies agree —
and can optionally *write* to a duplicated global through both copies,
modelling an interrupt handler that feeds external data to the program.
"""

from repro.ir.symbols import MemoryBank


class DuplicateDivergenceError(AssertionError):
    """Two copies of a duplicated symbol were observed out of sync."""


class InterruptInjector:
    """Fires every *period* cycles; verifies duplicated-copy coherence."""

    def __init__(self, module, period=7, writer=None):
        self.period = period
        #: optional callable ``writer(simulator, cycle)`` run on delivery
        self.writer = writer
        self.delivered = 0
        self.checked_symbols = [
            s.name
            for s in module.globals
            if s.bank is MemoryBank.BOTH
        ]

    def __call__(self, simulator, cycle):
        if cycle % self.period:
            return
        self.delivered += 1
        for name in self.checked_symbols:
            copy_x = simulator.read_global_copy(name, MemoryBank.X)
            copy_y = simulator.read_global_copy(name, MemoryBank.Y)
            if copy_x != copy_y:
                raise DuplicateDivergenceError(
                    "interrupt at cycle %d observed %s diverged" % (cycle, name)
                )
        if self.writer is not None:
            self.writer(simulator, cycle)
