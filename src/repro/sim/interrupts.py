"""Interrupt injection for validating duplicated-data consistency.

Paper Section 3.2 observes that an interrupt arriving between the two
stores of a duplicated-data update could observe (or create) divergent
copies, and proposes a store-lock / store-unlock pair.  The duplication
transform emits exactly that pair when ``interrupt_safe`` is set, and the
simulator refuses to deliver interrupts while the lock window is open.

:class:`InterruptInjector` is a test harness: installed as the simulator's
``interrupt_hook``, it fires at a configurable cadence and, on each
delivery, checks that every duplicated global's X and Y copies agree —
and can optionally *write* to a duplicated global through both copies,
modelling an interrupt handler that feeds external data to the program.

Cadence protocol (used by the ``jit`` backend, see
:mod:`repro.sim.loopjit`): a hook may advertise an integer ``cadence``
attribute, promising that calls on cycles where
``cycle % cadence != 0`` are no-ops.  A cadence-advertising hook lets
the loop-specializing backend fast-forward whole loop iterations
between delivery cycles, synchronizing simulator state only at the
cycles where the hook can actually observe something.  Such hooks may
read and write memory and registers at delivery points but must not
redirect ``pc``; hooks without a cadence get the per-cycle path on
every backend.
"""

from repro.ir.symbols import MemoryBank


class DuplicateDivergenceError(AssertionError):
    """Two copies of a duplicated symbol were observed out of sync."""


class InterruptInjector:
    """Fires every *period* cycles; verifies duplicated-copy coherence."""

    def __init__(self, module, period=7, writer=None):
        self.period = period
        #: optional callable ``writer(simulator, cycle)`` run on delivery
        self.writer = writer
        self.delivered = 0
        self.checked_symbols = [
            s.name
            for s in module.globals
            if s.bank is MemoryBank.BOTH
        ]

    @property
    def cadence(self):
        """Delivery period advertised to cadence-aware backends: this
        hook is a no-op whenever ``cycle % period != 0`` (the early
        return in :meth:`__call__`), never redirects ``pc``, and only
        reads state — exactly the contract :mod:`repro.sim.loopjit`
        requires to skip the intervening cycles."""
        return self.period

    def __call__(self, simulator, cycle):
        if cycle % self.period:
            return
        self.delivered += 1
        for name in self.checked_symbols:
            copy_x = simulator.read_global_copy(name, MemoryBank.X)
            copy_y = simulator.read_global_copy(name, MemoryBank.Y)
            if copy_x != copy_y:
                raise DuplicateDivergenceError(
                    "interrupt at cycle %d observed %s diverged" % (cycle, name)
                )
        if self.writer is not None:
            self.writer(simulator, cycle)
