"""Instruction-set simulator for the VLIW model architecture.

Executes a compiled :class:`~repro.machine.instruction.MachineProgram`
cycle by cycle: one long instruction per cycle (every functional unit has
single-cycle latency), with register/memory reads happening before writes
within a cycle, dual single-ported data banks with independent stacks,
zero-overhead hardware loops, and optional interrupt injection for
validating the store-lock/store-unlock protocol on duplicated data.
"""

from repro.sim.simulator import (
    CycleLimitError,
    SimulationError,
    SimulationResult,
    Simulator,
)
from repro.sim.errors import (
    InternalError,
    MachineError,
    ProgramError,
    SimError,
    classify_fault,
)
from repro.sim.fastsim import BACKENDS, FastSimulator, make_simulator
from repro.sim.loopjit import LoopJitSimulator
from repro.sim.batchsim import BatchSimulator, LaneOutcome
from repro.sim.tracing import collect_block_counts, profile_module
from repro.sim.interrupts import InterruptInjector
from repro.sim.statistics import UtilizationReport, utilization

__all__ = [
    "BACKENDS",
    "BatchSimulator",
    "LaneOutcome",
    "CycleLimitError",
    "FastSimulator",
    "InternalError",
    "InterruptInjector",
    "LoopJitSimulator",
    "MachineError",
    "ProgramError",
    "SimError",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "UtilizationReport",
    "classify_fault",
    "collect_block_counts",
    "make_simulator",
    "profile_module",
    "utilization",
]
