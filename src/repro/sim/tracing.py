"""Profiling support: basic-block execution counts.

The ``Pr`` configuration of paper Figure 8 replaces the static loop-depth
edge weights with profile-driven ones.  The natural profile is the number
of times each basic block executed in the *baseline* (single-bank) binary:
``profile_module`` compiles a module that way, simulates it, and maps the
per-instruction execution counts back to source-block labels.
"""


def collect_block_counts(program, result):
    """Aggregate per-pc counts from *result* to basic-block labels."""
    counts = {}
    for index, instruction in enumerate(program.instructions):
        label = instruction.block_label
        if label is None:
            continue
        executed = result.pc_counts[index]
        # Every instruction of a block runs the same number of times, so
        # keeping the maximum is robust even if decoding skipped some.
        if executed > counts.get(label, 0):
            counts[label] = executed
    return counts


def profile_module(module_factory, setup=None, stack_words=16384):
    """Profile a benchmark: returns block label -> execution count.

    ``module_factory`` builds a fresh module (the baseline compile consumes
    it); ``setup(simulator)`` may preload input data before the run.
    """
    from repro.compiler import compile_module
    from repro.partition.strategies import Strategy
    from repro.sim.simulator import Simulator

    compiled = compile_module(module_factory(), strategy=Strategy.SINGLE_BANK)
    simulator = Simulator(compiled.program, stack_words=stack_words)
    if setup is not None:
        setup(simulator)
    result = simulator.run()
    return collect_block_counts(compiled.program, result)
