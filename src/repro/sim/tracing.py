"""Profiling support: post-run attribution over ``pc_counts``.

This module is the simulators' profiling hook surface: every backend
records per-pc execution counts during every run (the fast backend
settles its fused superblocks' interior counts before returning; the
jit backend adds whole-loop iteration counts in bulk), and
everything else — block counts for the ``Pr`` configuration, hot-block
rollups, the :mod:`repro.obs.profile` conflict ledger — is derived here
*after* the run from ``(program, result)``.  Keeping attribution
post-run means profiling can never perturb what it measures and the
fast backend's fused path stays fused.

The ``Pr`` configuration of paper Figure 8 replaces the static loop-depth
edge weights with profile-driven ones.  The natural profile is the number
of times each basic block executed in the *baseline* (single-bank) binary:
``profile_module`` compiles a module that way, simulates it, and maps the
per-instruction execution counts back to source-block labels.
"""


def collect_block_counts(program, result):
    """Aggregate per-pc counts from *result* to basic-block labels."""
    counts = {}
    for index, instruction in enumerate(program.instructions):
        label = instruction.block_label
        if label is None:
            continue
        executed = result.pc_counts[index]
        # Every instruction of a block runs the same number of times, so
        # keeping the maximum is robust even if decoding skipped some.
        if executed > counts.get(label, 0):
            counts[label] = executed
    return counts


def collect_hot_blocks(program, result, n=10):
    """Top-*n* basic blocks by attributed cycles.

    Returns ``(label, cycles, instructions)`` triples, heaviest first
    (ties broken by label for determinism).  A block's cycles are the
    sum of its instructions' execution counts — the block-level rollup
    of the per-pc attribution :mod:`repro.obs.profile` reports.
    """
    cycles = {}
    sizes = {}
    for index, instruction in enumerate(program.instructions):
        label = instruction.block_label
        if label is None:
            continue
        cycles[label] = cycles.get(label, 0) + result.pc_counts[index]
        sizes[label] = sizes.get(label, 0) + 1
    ranked = sorted(cycles, key=lambda label: (-cycles[label], label))
    return [(label, cycles[label], sizes[label]) for label in ranked[:n]]


def profile_module(module_factory, setup=None, stack_words=16384):
    """Profile a benchmark: returns block label -> execution count.

    ``module_factory`` builds a fresh module (the baseline compile consumes
    it); ``setup(simulator)`` may preload input data before the run.
    """
    from repro.compiler import compile_module
    from repro.partition.strategies import Strategy
    from repro.sim.simulator import Simulator

    compiled = compile_module(module_factory(), strategy=Strategy.SINGLE_BANK)
    simulator = Simulator(compiled.program, stack_words=stack_words)
    if setup is not None:
        setup(simulator)
    result = simulator.run()
    return collect_block_counts(compiled.program, result)
