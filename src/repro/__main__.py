"""Command-line driver:  python -m repro <command> ...

Commands
--------
list
    List every workload in the suite (paper Tables 1 and 2).
run WORKLOAD [--strategy S] [--pipeline] [--dump] [--stats]
    Compile one workload under one configuration, simulate, verify, and
    report cycles (optionally the disassembly and unit utilization).
compare WORKLOAD [--strategies S1,S2,...]
    Run one workload under several configurations side by side.
figure7 / figure8 / table3
    Regenerate the corresponding paper artifact.
report [--workload W --strategy S --baseline B --top N --json PATH]
    Without --workload: the full reproduced evaluation as markdown.
    With --workload: the observability report for one configuration —
    per-pass compile timings, hot pcs, bank histograms, and the
    bank-conflict table (markdown + embedded JSON; --json also writes
    the JSON document to a file, "-" for stdout).
fuzz [--runs N] [--seed S] [--jobs J] [--journal PATH] [--timeout SEC]
    Differential fuzzing: random programs through every allocation
    strategy, every simulator backend, and every partitioner; failures
    are shrunk and archived under tests/fuzz_corpus/.  With
    --journal/--timeout the seeds run supervised and the campaign is
    resumable.
faults [--runs N] [--seed S] [--jobs J] [--journal PATH] ...
    Resilience campaign: seeded fault plans (bit flips, register
    corruption, stuck banks, delivery jitter) injected into the
    workloads under SINGLE_BANK/CB/CB_DUP; emits the markdown
    resilience report (fault-masking and dup-detection rates), with
    checkpoint/resume via --journal.
partition-gap [--workload W ...] [--backend B] [--jobs J] [--json PATH]
    Gap-to-optimal evaluation: every registry workload partitioned by
    every registered partitioner, reporting final interference cost,
    the greedy-vs-exact cost ratio, and the realized cycles/PCR.
serve [--host H] [--port P] [--workers N] [--cache-dir DIR]
      [--journal PATH] [--scrub-cache] ...
    Async compile-and-simulate service: JSON job submissions over a
    socket, bounded-queue admission control, compatible jobs coalesced
    onto the lockstep batch backend, results streamed back (see
    docs/serving.md for the protocol).  With --journal the service is
    crash-safe: accepted jobs are write-ahead logged, restarts recover
    unfinished work, and resubmissions deduplicate; per-compile-key
    circuit breakers and deadline propagation ride along.
chaos [--seed S] [--cycles N] [--jobs-per-cycle K] [--budget SEC] ...
    Deterministic chaos campaign against a live serve subprocess:
    seeded kill/restart cycles, artifact-store sabotage, oversized and
    stalled submissions — asserting no accepted job is lost, no job
    runs twice, and replays stay bit-identical (docs/serving.md).

Every command that compiles under a CB-family strategy accepts
``--partitioner`` (greedy | exact | anneal | kl) selecting the
interference-graph partitioner from the registry
(:data:`repro.partition.registry.PARTITIONERS`).  The evaluation
commands (run, compare, figure7, figure8, table3, report) and serve
also accept ``--cache-dir DIR``: a persistent on-disk artifact store
(:mod:`repro.serve.store`) that compiles read through, so repeated
invocations skip recompilation; fuzz, faults, graph, and partition-gap
bypass it by design (random or partitioner-swept content would only
churn the store).
"""

import argparse
import sys

from repro.compiler import CompileOptions, compile_module
from repro.partition.registry import PARTITIONERS
from repro.partition.strategies import PAPER_LABELS, Strategy
from repro.sim.fastsim import BACKENDS, make_simulator
from repro.sim.simulator import Simulator
from repro.sim.statistics import utilization
from repro.sim.tracing import collect_block_counts


def _jobs(args):
    """Resolve --jobs: None = serial, 0 = all cores, N = exactly N
    workers — an explicit request is honoured even past the detected
    core count, with the decision surfaced instead of silently clamped."""
    from repro.evaluation.parallel import resolve_jobs
    from repro.obs.core import Recorder

    recorder = Recorder()
    resolved = resolve_jobs(getattr(args, "jobs", None), observe=recorder)
    if recorder.counters.get("jobs.oversubscribed"):
        print(
            "note: --jobs %d exceeds the %d detected core(s); honouring "
            "the explicit request"
            % (resolved, recorder.counters["jobs.cores"]),
            file=sys.stderr,
        )
    return resolved


def _strategy(name):
    try:
        return Strategy[name.upper()]
    except KeyError:
        choices = ", ".join(s.name for s in Strategy)
        raise SystemExit("unknown strategy %r (choose from: %s)" % (name, choices))


def _workload(name):
    from repro.workloads.registry import all_workloads

    table = all_workloads()
    if name not in table:
        raise SystemExit(
            "unknown workload %r (run `python -m repro list`)" % name
        )
    return table[name]


def _cli_cache(args):
    """Resolve --cache-dir to a persistent compile cache (None without)."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        return None
    from repro.serve.store import process_compile_cache

    return process_compile_cache(cache_dir)


def _profile(workload, cache=None, partitioner="greedy"):
    from repro.evaluation.runner import _compile_cached

    compiled = _compile_cached(
        workload, Strategy.SINGLE_BANK, None, cache, partitioner=partitioner
    )
    simulator = Simulator(compiled.program)
    result = simulator.run()
    return collect_block_counts(compiled.program, result)


def _run_one(workload, strategy, software_pipelining=False, backend="interp",
             partitioner="greedy", cache=None):
    if software_pipelining:
        # Pipelined schedules are not part of the persistent cache key
        # (options_signature covers them, but the in-memory runner key
        # does not), so compile them directly rather than risk serving
        # a non-pipelined artifact.
        cache = None
    counts = (
        _profile(workload, cache=cache, partitioner=partitioner)
        if strategy.needs_profile
        else None
    )
    if cache is None:
        compiled = compile_module(
            workload.build(),
            CompileOptions(
                strategy=strategy,
                profile_counts=counts,
                software_pipelining=software_pipelining,
                partitioner=partitioner,
            ),
        )
    else:
        from repro.evaluation.runner import _compile_cached

        compiled = _compile_cached(
            workload, strategy, counts, cache, partitioner=partitioner
        )
    simulator = make_simulator(compiled.program, backend=backend)
    result = simulator.run()
    workload.verify(simulator)
    return compiled, simulator, result


def cmd_list(_args):
    from repro.workloads.registry import APPLICATIONS, KERNELS

    print("kernels (paper Table 1):")
    for name in KERNELS:
        print("  %s" % name)
    print("applications (paper Table 2):")
    for name in APPLICATIONS:
        print("  %s" % name)
    return 0


def cmd_run(args):
    workload = _workload(args.workload)
    strategy = _strategy(args.strategy)
    compiled, simulator, result = _run_one(
        workload, strategy, args.pipeline, backend=args.backend,
        partitioner=args.partitioner, cache=_cli_cache(args),
    )
    print(
        "%s under %s: %d cycles (%d ops, %.2f ops/cycle), verified OK"
        % (
            workload.name,
            PAPER_LABELS[strategy],
            result.cycles,
            result.operations,
            result.parallelism,
        )
    )
    if compiled.allocation.graph is not None:
        print(compiled.allocation.graph.describe())
        print("banks:", compiled.allocation.bank_summary(compiled.program.module))
    if compiled.allocation.duplicated:
        print("duplicated:", [s.name for s in compiled.allocation.duplicated])
    if args.stats:
        print(utilization(compiled.program, result).describe())
    if args.dump:
        print(compiled.program.dump())
    if args.asm:
        from repro.machine.asm import format_asm

        print(format_asm(compiled.program))
    return 0


def cmd_compare(args):
    workload = _workload(args.workload)
    names = args.strategies.split(",")
    strategies = [_strategy(n) for n in names]
    if Strategy.SINGLE_BANK not in strategies:
        strategies.insert(0, Strategy.SINGLE_BANK)
    baseline = None
    cache = _cli_cache(args)
    print("%-14s %10s %8s" % ("configuration", "cycles", "gain"))
    for strategy in strategies:
        _compiled, _sim, result = _run_one(
            workload, strategy, args.pipeline, backend=args.backend,
            partitioner=args.partitioner, cache=cache,
        )
        if baseline is None:
            baseline = result.cycles
        gain = 100.0 * (baseline / result.cycles - 1.0)
        print(
            "%-14s %10d %+7.1f%%"
            % (PAPER_LABELS[strategy], result.cycles, gain)
        )
    return 0


def cmd_figure7(args):
    from repro.evaluation import figure7, render_figure7

    print(render_figure7(figure7(
        jobs=_jobs(args), backend=args.backend, partitioner=args.partitioner,
        cache_dir=args.cache_dir,
    )))
    return 0


def cmd_figure8(args):
    from repro.evaluation import figure8, render_figure8

    print(render_figure8(figure8(
        jobs=_jobs(args), backend=args.backend, partitioner=args.partitioner,
        cache_dir=args.cache_dir,
    )))
    return 0


def cmd_table3(args):
    from repro.evaluation import render_table3, table3

    print(render_table3(table3(
        jobs=_jobs(args), backend=args.backend, partitioner=args.partitioner,
        cache_dir=args.cache_dir,
    )))
    return 0


def cmd_report(args):
    if args.workload is not None:
        return _cmd_observability_report(args)
    from repro.evaluation import figure7, figure8, table3
    from repro.evaluation.reporting import render_markdown

    jobs, backend = _jobs(args), args.backend
    partitioner, cache_dir = args.partitioner, args.cache_dir
    print(
        render_markdown(
            figure7(jobs=jobs, backend=backend, partitioner=partitioner,
                    cache_dir=cache_dir),
            figure8(jobs=jobs, backend=backend, partitioner=partitioner,
                    cache_dir=cache_dir),
            table3(jobs=jobs, backend=backend, partitioner=partitioner,
                   cache_dir=cache_dir),
        )
    )
    return 0


def _cmd_observability_report(args):
    """`report --workload W`: the per-configuration observability report."""
    import json

    from repro.evaluation.reporting import render_observability
    from repro.obs.report import build_report

    workload = _workload(args.workload)
    report = build_report(
        workload,
        strategy=_strategy(args.strategy),
        baseline=_strategy(args.baseline),
        backend=args.backend,
        top=args.top,
        partitioner=args.partitioner,
    )
    print(render_observability(report))
    if args.json:
        document = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(document)
        else:
            with open(args.json, "w") as handle:
                handle.write(document + "\n")
    return 0


def cmd_fuzz(args):
    from repro.fuzz.campaign import fuzz_campaign

    backends = None
    if args.backend is not None:
        # the reference interpreter plus the backend under test
        backends = tuple(dict.fromkeys(("interp", args.backend)))
    partitioners = None
    if args.partitioner is not None:
        # the greedy reference plus the partitioner under test
        partitioners = tuple(dict.fromkeys(("greedy", args.partitioner)))
    failures = fuzz_campaign(
        args.runs,
        seed=args.seed,
        jobs=_jobs(args),
        max_statements=args.max_statements,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus,
        log=print,
        journal=args.journal,
        timeout=args.timeout,
        backends=backends,
        partitioners=partitioners,
    )
    return 1 if failures else 0


def cmd_faults(args):
    import json

    from repro.faults.campaign import fault_campaign
    from repro.faults.report import render_resilience
    from repro.obs.core import Recorder

    workloads = args.workloads.split(",") if args.workloads else None
    strategies = None
    if args.strategies:
        strategies = [_strategy(name).name for name in args.strategies.split(",")]
    try:
        report = fault_campaign(
            args.runs,
            seed=args.seed,
            jobs=_jobs(args),
            workloads=workloads,
            strategies=strategies,
            backend=args.backend,
            journal=args.journal,
            timeout=args.timeout,
            retries=args.retries,
            log=print,
            observe=Recorder(),
            partitioner=args.partitioner,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    print(render_resilience(report))
    if args.json:
        document = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(document)
        else:
            with open(args.json, "w") as handle:
                handle.write(document + "\n")
    return 0


def cmd_graph(args):
    workload = _workload(args.workload)
    compiled = compile_module(
        workload.build(), strategy=Strategy.CB, partitioner=args.partitioner
    )
    allocation = compiled.allocation
    print(allocation.graph.to_dot(allocation.partition))
    return 0


def cmd_serve(args):
    from repro.evaluation.parallel import resolve_jobs
    from repro.serve.service import run_service

    return run_service(
        host=args.host,
        port=args.port,
        workers=resolve_jobs(args.workers),
        cache_dir=args.cache_dir,
        queue_limit=args.queue_limit,
        batch_window=args.batch_window,
        lanes=args.lanes,
        timeout=args.timeout,
        retries=args.retries,
        journal=args.journal,
        dedup_window=args.dedup_window,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        scrub_cache=args.scrub_cache,
    )


def cmd_chaos(args):
    import json
    import tempfile

    from repro.chaos import ChaosPlan, generate_plan, render_chaos, run_chaos

    if args.plan:
        with open(args.plan) as handle:
            plan = ChaosPlan.from_json(handle.read())
    else:
        plan = generate_plan(
            args.seed, cycles=args.cycles, jobs_per_cycle=args.jobs_per_cycle
        )
    work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    report = run_chaos(
        plan,
        work_dir,
        workers=args.workers,
        recovery_budget_s=args.budget,
        log=print,
    )
    print(render_chaos(report))
    if args.json:
        document = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(document)
        else:
            with open(args.json, "w") as handle:
                handle.write(document + "\n")
    return 0 if report["ok"] else 1


def cmd_partition_gap(args):
    import json

    from repro.evaluation.partition_gap import partition_gap
    from repro.evaluation.reporting import render_partition_gap

    workloads = tuple(args.workload) if args.workload else None
    try:
        report = partition_gap(
            jobs=_jobs(args), backend=args.backend, workloads=workloads,
        )
    except ValueError as error:
        raise SystemExit(str(error))
    print(render_partition_gap(report))
    if args.json:
        document = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(document)
        else:
            with open(args.json, "w") as handle:
                handle.write(document + "\n")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Dual data-memory bank compiler reproduction (ASPLOS 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend(command):
        command.add_argument(
            "--backend",
            default="interp",
            choices=sorted(BACKENDS),
            help="simulator backend: reference interpreter, threaded code, "
            "loop-specializing codegen, or batched lockstep lanes",
        )

    def add_partitioner(command):
        command.add_argument(
            "--partitioner",
            default="greedy",
            choices=sorted(PARTITIONERS),
            help="interference-graph partitioner: the paper's greedy "
            "heuristic, branch-and-bound exact max-cut, seeded simulated "
            "annealing, or Kernighan-Lin refinement",
        )

    def nonnegative_int(text):
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError("must be >= 0, got %d" % value)
        return value

    def add_jobs(command):
        command.add_argument(
            "--jobs",
            type=nonnegative_int,
            default=None,
            metavar="N",
            help="fan evaluations out over exactly N worker processes "
            "(0 = all cores; explicit counts are honoured as given)",
        )

    def add_cache_dir(command):
        command.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persistent compiled-program artifact store: compiles "
            "read through DIR, so identical builds across invocations "
            "skip the pipeline (layout and eviction in docs/serving.md)",
        )

    sub.add_parser("list", help="list all workloads").set_defaults(func=cmd_list)

    run = sub.add_parser("run", help="compile+simulate one workload")
    run.add_argument("workload")
    run.add_argument("--strategy", default="CB")
    run.add_argument("--pipeline", action="store_true", help="software pipelining")
    run.add_argument("--dump", action="store_true", help="print the VLIW schedule")
    run.add_argument("--asm", action="store_true", help="DSP-style assembly listing")
    run.add_argument("--stats", action="store_true", help="unit utilization")
    add_backend(run)
    add_partitioner(run)
    add_cache_dir(run)
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="compare configurations")
    compare.add_argument("workload")
    compare.add_argument(
        "--strategies", default="CB,CB_DUP,IDEAL", help="comma-separated names"
    )
    compare.add_argument("--pipeline", action="store_true")
    add_backend(compare)
    add_partitioner(compare)
    add_cache_dir(compare)
    compare.set_defaults(func=cmd_compare)

    for name, func in (
        ("figure7", cmd_figure7),
        ("figure8", cmd_figure8),
        ("table3", cmd_table3),
    ):
        artifact = sub.add_parser(name, help="regenerate paper %s" % name)
        add_backend(artifact)
        add_jobs(artifact)
        add_partitioner(artifact)
        add_cache_dir(artifact)
        artifact.set_defaults(func=func)

    report = sub.add_parser(
        "report",
        help="full evaluation as markdown; with --workload, the "
        "observability report (compile timings, hot pcs, conflicts)",
    )
    report.add_argument(
        "--workload", default=None, metavar="W",
        help="emit the per-configuration observability report instead",
    )
    report.add_argument(
        "--strategy", default="CB",
        help="configuration the observability report studies",
    )
    report.add_argument(
        "--baseline", default="SINGLE_BANK",
        help="configuration the observability report compares against",
    )
    report.add_argument(
        "--top", type=nonnegative_int, default=10, metavar="N",
        help="hot pcs to list per configuration (default 10)",
    )
    report.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the JSON document to PATH ('-' for stdout)",
    )
    add_backend(report)
    add_jobs(report)
    add_partitioner(report)
    add_cache_dir(report)
    report.set_defaults(func=cmd_report)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: strategies x backends on random programs",
    )
    fuzz.add_argument(
        "--runs", type=nonnegative_int, default=100, metavar="N",
        help="number of seeded oracle runs (default 100)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="first seed; run i uses seed S+i (default 0)",
    )
    fuzz.add_argument(
        "--max-statements", type=nonnegative_int, default=6, metavar="K",
        help="top-level statement budget per generated program (default 6)",
    )
    fuzz.add_argument(
        "--corpus", default="tests/fuzz_corpus", metavar="DIR",
        help="directory for shrunk failing recipes and their regressions",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="archive failures without delta-debugging them first",
    )
    fuzz.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint completed seeds to PATH; rerunning with the "
        "same arguments resumes where the campaign stopped",
    )
    fuzz.add_argument(
        "--backend", default=None, choices=sorted(BACKENDS),
        help="restrict the oracle's backend-identity stage to the "
        "reference interpreter plus this backend (default: all "
        "registered backends)",
    )
    fuzz.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-seed wall-clock budget; overrunning workers are "
        "terminated and the seed retried (supervised runner)",
    )
    fuzz.add_argument(
        "--partitioner", default=None, choices=sorted(PARTITIONERS),
        help="restrict the oracle's partitioner-identity stage to the "
        "greedy reference plus this partitioner (default: the full "
        "registry)",
    )
    add_jobs(fuzz)
    fuzz.set_defaults(func=cmd_fuzz)

    faults = sub.add_parser(
        "faults",
        help="fault-injection resilience campaign: masking/detection "
        "rates per allocation strategy",
    )
    faults.add_argument(
        "--runs", type=nonnegative_int, default=25, metavar="N",
        help="fault plans per (workload, strategy) pair (default 25)",
    )
    faults.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="first fault-plan seed; run i uses seed S+i (default 0)",
    )
    faults.add_argument(
        "--workloads", default=None, metavar="W1,W2,...",
        help="comma-separated workload names (default: the campaign "
        "trio including the Fig-6 autocorrelation)",
    )
    faults.add_argument(
        "--strategies", default=None, metavar="S1,S2,...",
        help="comma-separated strategy names (default: SINGLE_BANK,CB,CB_DUP)",
    )
    faults.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint completed runs to PATH; rerunning with the "
        "same arguments resumes and converges to the same report",
    )
    faults.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-run wall-clock budget enforced by the supervisor",
    )
    faults.add_argument(
        "--retries", type=nonnegative_int, default=2, metavar="K",
        help="retry budget per run for timeouts and worker deaths "
        "(default 2)",
    )
    faults.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the JSON report to PATH ('-' for stdout)",
    )
    add_backend(faults)
    add_jobs(faults)
    add_partitioner(faults)
    faults.set_defaults(func=cmd_faults)

    graph = sub.add_parser(
        "graph", help="interference graph of a workload in DOT format"
    )
    graph.add_argument("workload")
    add_partitioner(graph)
    graph.set_defaults(func=cmd_graph)

    gap = sub.add_parser(
        "partition-gap",
        help="gap-to-optimal study: every workload under every "
        "partitioner, with greedy-vs-exact cost ratios",
    )
    gap.add_argument(
        "--workload", action="append", default=None, metavar="W",
        help="restrict the study to workload W (repeatable; "
        "default: the whole registry)",
    )
    gap.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the JSON report to PATH ('-' for stdout)",
    )
    add_backend(gap)
    add_jobs(gap)
    gap.set_defaults(func=cmd_partition_gap)

    serve = sub.add_parser(
        "serve",
        help="async compile-and-simulate service over a JSON-lines socket",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=nonnegative_int, default=7421, metavar="P",
        help="port to bind; 0 picks an ephemeral port, printed on "
        "startup (default 7421)",
    )
    serve.add_argument(
        "--workers", type=nonnegative_int, default=None, metavar="N",
        help="supervised worker processes for job execution (0 = all "
        "cores; default: serial in-process execution, lowest latency)",
    )
    serve.add_argument(
        "--queue-limit", type=nonnegative_int, default=256, metavar="N",
        help="bounded job queue depth; submissions past it are "
        "rejected immediately instead of buffered (default 256)",
    )
    serve.add_argument(
        "--batch-window", type=nonnegative_int, default=32, metavar="N",
        help="max queued jobs drained per dispatch round, the "
        "coalescing opportunity window (default 32)",
    )
    serve.add_argument(
        "--lanes", type=nonnegative_int, default=64, metavar="N",
        help="max lockstep lanes per batched simulation (default 64)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-group wall-clock budget enforced by the supervisor "
        "(requires --workers)",
    )
    serve.add_argument(
        "--retries", type=nonnegative_int, default=2, metavar="K",
        help="retry budget per group for timeouts and worker deaths "
        "(default 2)",
    )
    serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="write-ahead job log: accepted jobs are journaled before "
        "they are acknowledged, terminals on completion; a restart "
        "re-executes unfinished jobs and replays completed ones on "
        "resubmission (idempotency keyed on id + payload)",
    )
    serve.add_argument(
        "--dedup-window", type=nonnegative_int, default=1024, metavar="N",
        help="completed terminals kept in memory for idempotent "
        "resubmission replay (default 1024)",
    )
    serve.add_argument(
        "--breaker-threshold", type=nonnegative_int, default=3, metavar="N",
        help="consecutive compile failures per compile key that open "
        "its circuit breaker; 0 disables the breaker (default 3)",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=5.0, metavar="SEC",
        help="base seconds an open breaker fails fast before admitting "
        "a half-open probe (jittered per key; default 5.0)",
    )
    serve.add_argument(
        "--scrub-cache", action="store_true",
        help="verify every artifact-store entry before serving, "
        "purging corrupt objects up front instead of at first read",
    )
    add_cache_dir(serve)
    serve.set_defaults(func=cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="chaos campaign against a live serve process: seeded "
        "kill/restart cycles, store sabotage, and protocol abuse, "
        "with crash-safety invariants checked",
    )
    chaos.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="chaos plan seed (default 0); same seed, same campaign",
    )
    chaos.add_argument(
        "--cycles", type=nonnegative_int, default=3, metavar="N",
        help="kill/restart cycles to run (default 3)",
    )
    chaos.add_argument(
        "--jobs-per-cycle", type=nonnegative_int, default=4, metavar="K",
        help="fresh job submissions per cycle (default 4)",
    )
    chaos.add_argument(
        "--workers", type=nonnegative_int, default=None, metavar="N",
        help="run the service under test with N supervised workers "
        "(enables worker-kill events; default: serial)",
    )
    chaos.add_argument(
        "--budget", type=float, default=30.0, metavar="SEC",
        help="recovery budget: worst restart-to-full-recovery time "
        "allowed before the campaign fails (default 30.0)",
    )
    chaos.add_argument(
        "--plan", default=None, metavar="PATH",
        help="replay a serialized chaos plan from PATH instead of "
        "generating one from --seed",
    )
    chaos.add_argument(
        "--work-dir", default=None, metavar="DIR",
        help="directory for the journal and caches (default: a fresh "
        "temporary directory)",
    )
    chaos.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the JSON report to PATH ('-' for stdout)",
    )
    chaos.set_defaults(func=cmd_chaos)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
