"""Assemble the observability report for one workload configuration.

:func:`build_report` runs the full instrumented pipeline twice — once
under a baseline configuration (single-bank unless overridden) and once
under the strategy being studied — and packages, per configuration:

* the per-pass compile-time breakdown (from the
  :class:`~repro.obs.core.Recorder` the compiler pipeline fills in),
  with each pass's IR-delta metrics (instruction count, operation
  count, long-instruction fill rate);
* the run profile (top-N hot pcs, per-bank access histogram, and the
  bank-conflict ledger from :mod:`repro.obs.profile`);
* headline numbers (cycles, operations, parallelism, code size,
  duplicated symbols);

plus a ``deltas`` section comparing the two configurations: cycle gain,
conflict cycles removed, and code-size change.  The result is plain
JSON-ready data; ``python -m repro report --workload ...`` renders it
through :func:`repro.evaluation.reporting.render_observability`.
"""

from repro.obs.core import Recorder
from repro.obs.profile import profile_run

# The compiler itself imports repro.obs.core (every pass is
# instrumented), so pulling the pipeline in at module-import time would
# be circular; resolve it on first use instead.
from repro.partition.strategies import PAPER_LABELS, Strategy

__all__ = ["build_report"]


def _resolve_strategy(strategy):
    if isinstance(strategy, Strategy):
        return strategy
    try:
        return Strategy[str(strategy).upper()]
    except KeyError:
        raise ValueError(
            "unknown strategy %r (choose from: %s)"
            % (strategy, ", ".join(s.name for s in Strategy))
        )


def _resolve_workload(workload):
    if isinstance(workload, str):
        from repro.workloads.registry import all_workloads

        table = all_workloads()
        if workload not in table:
            raise ValueError(
                "unknown workload %r (run `python -m repro list`)" % workload
            )
        return table[workload]
    return workload


def _measure(workload, strategy, backend, profile_counts=None, verify=True,
             partitioner="greedy"):
    """One instrumented compile + simulate + verify + profile."""
    from repro.compiler import CompileOptions, compile_module
    from repro.sim.fastsim import make_simulator

    recorder = Recorder()
    compiled = compile_module(
        workload.build(),
        CompileOptions(
            strategy=strategy,
            profile_counts=profile_counts,
            observe=recorder,
            partitioner=partitioner,
        ),
    )
    simulator = make_simulator(compiled.program, backend=backend)
    result = simulator.run()
    if verify:
        workload.verify(simulator)
    return recorder, compiled, result


def _pass_rows(recorder):
    """Flatten the compile span's children into per-pass rows."""
    compile_span = recorder.find("compile")
    if compile_span is None:
        return []
    rows = []
    for child in compile_span.children:
        row = {"pass": child.name, "seconds": child.duration}
        row.update(child.metrics)
        if child.counters:
            row.update(child.counters)
        rows.append(row)
    return rows


def _configuration(workload, strategy, backend, top, profile_counts=None,
                   verify=True, partitioner="greedy"):
    recorder, compiled, result = _measure(
        workload, strategy, backend, profile_counts=profile_counts,
        verify=verify, partitioner=partitioner,
    )
    profile = profile_run(compiled.program, result)
    compile_span = recorder.find("compile")
    return {
        "strategy": strategy.name,
        "label": PAPER_LABELS[strategy],
        "partitioner": compiled.allocation.partitioner,
        "cycles": result.cycles,
        "operations": result.operations,
        "parallelism": result.parallelism,
        "code_size": compiled.code_size,
        "duplicated": [s.name for s in compiled.allocation.duplicated],
        "compile_seconds": (
            compile_span.duration if compile_span is not None else None
        ),
        "compile_passes": _pass_rows(recorder),
        "nodes": getattr(compiled.program.module, "node_stats", None),
        "profile": profile.to_dict(top),
    }


def build_report(workload, strategy=Strategy.CB,
                 baseline=Strategy.SINGLE_BANK, backend="interp", top=10,
                 verify=True, partitioner="greedy"):
    """Build the observability report as a JSON-ready dict.

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.base.Workload` or a registry name.
    strategy, baseline:
        :class:`Strategy` members or their names; the report contrasts
        *strategy* against *baseline* (single-bank by default, matching
        how the paper normalizes every figure).
    backend:
        Simulator backend name (``interp`` or ``fast``).
    top:
        How many hot pcs to keep per configuration.
    verify:
        Check each run against the workload's reference model.
    partitioner:
        Interference-graph partitioner name for the CB-family
        configurations (:data:`~repro.partition.registry.PARTITIONERS`);
        the ``partition`` compile pass row carries the name, so reports
        under different partitioners stay distinguishable.
    """
    from repro.sim.tracing import collect_block_counts

    workload = _resolve_workload(workload)
    strategy = _resolve_strategy(strategy)
    baseline = _resolve_strategy(baseline)

    profile_counts = None
    if strategy.needs_profile or baseline.needs_profile:
        _recorder, compiled, result = _measure(
            workload, Strategy.SINGLE_BANK, backend, verify=False
        )
        profile_counts = collect_block_counts(compiled.program, result)

    base = _configuration(
        workload, baseline, backend, top,
        profile_counts=profile_counts if baseline.needs_profile else None,
        verify=verify, partitioner=partitioner,
    )
    target = _configuration(
        workload, strategy, backend, top,
        profile_counts=profile_counts if strategy.needs_profile else None,
        verify=verify, partitioner=partitioner,
    )

    base_cycles = base["cycles"]
    target_cycles = target["cycles"]
    gain = (
        100.0 * (base_cycles / target_cycles - 1.0) if target_cycles else 0.0
    )
    base_conflicts = base["profile"]["conflict_cycles"]
    target_conflicts = target["profile"]["conflict_cycles"]
    return {
        "workload": workload.name,
        "category": workload.category,
        "backend": backend,
        "partitioner": partitioner,
        "top": top,
        "baseline": base,
        "strategy": target,
        "deltas": {
            "cycles_baseline": base_cycles,
            "cycles_strategy": target_cycles,
            "gain_percent": gain,
            "conflict_cycles_baseline": base_conflicts,
            "conflict_cycles_strategy": target_conflicts,
            "conflict_cycles_removed": base_conflicts - target_conflicts,
            "code_size_delta": target["code_size"] - base["code_size"],
        },
    }
