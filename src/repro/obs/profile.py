"""Post-run profiling: hot pcs, bank histograms, the conflict ledger.

Both simulator backends already produce the complete dynamic record a
profile needs — per-pc execution counts (``SimulationResult.pc_counts``,
one cycle per executed instruction) — and the static schedule says which
memory operations, symbols, and banks live at each pc.  Profiling is
therefore a *post-run analysis* over ``(program, result)``, exactly like
:func:`repro.sim.tracing.collect_block_counts`: the simulators' hot
paths (including the fast backend's fused superblocks) are untouched,
and a profiled run is bit-identical to an unprofiled one by
construction.

The **conflict ledger** attributes serialized memory pairs to variable
pairs.  Two memory operations in *adjacent* instructions of the same
basic block that target the *same* bank were serialized by the bank
constraint: had their variables lived in different banks, the compaction
pass could have packed them into one long instruction (this is the
schedule-level mirror of the interference edges the allocation pass
derives — see ``tests/obs/test_profile.py`` for the correspondence).
Each executed occurrence costs one cycle, so a pair's ledger weight is
the execution count of the later instruction.  Same-variable pairs are
exactly the paper's duplication candidates (partitioning cannot separate
a variable from itself).
"""

from repro.ir.symbols import MemoryBank

__all__ = ["ConflictEntry", "RunProfile", "profile_run"]

_CONCRETE_BANKS = (MemoryBank.X, MemoryBank.Y)


class ConflictEntry:
    """One (variable pair, bank) row of the conflict ledger.

    ``var_a <= var_b`` lexicographically; ``var_a == var_b`` marks a
    same-variable conflict (a duplication candidate, paper Section 3.2).
    ``cycles`` is the dynamic cost: executions of the serialized (later)
    instruction.  ``events`` counts the distinct static pc pairs.
    """

    __slots__ = ("var_a", "var_b", "bank", "cycles", "events", "pcs")

    def __init__(self, var_a, var_b, bank):
        self.var_a = var_a
        self.var_b = var_b
        #: bank label ("X" or "Y") both accesses were serialized on
        self.bank = bank
        self.cycles = 0
        self.events = 0
        #: static (earlier pc, later pc) pairs, in program order
        self.pcs = []

    @property
    def same_variable(self):
        """True for a same-array pair — partitioning cannot help it."""
        return self.var_a == self.var_b

    def to_dict(self):
        """This entry as JSON-ready plain data."""
        return {
            "var_a": self.var_a,
            "var_b": self.var_b,
            "bank": self.bank,
            "cycles": self.cycles,
            "events": self.events,
            "same_variable": self.same_variable,
            "pcs": [list(pair) for pair in self.pcs],
        }

    def __repr__(self):
        return "<ConflictEntry (%s, %s)@%s cycles=%d>" % (
            self.var_a, self.var_b, self.bank, self.cycles,
        )


def _memory_ops(instruction):
    return [
        op
        for op in instruction.slots.values()
        if op.is_memory and op.symbol is not None
    ]


class RunProfile:
    """Profile of one simulated run: cycle attribution and bank behaviour.

    Built by :func:`profile_run` from a :class:`MachineProgram` and the
    :class:`~repro.sim.simulator.SimulationResult` of executing it (any
    backend).  All views are derived lazily and cached.
    """

    def __init__(self, program, result):
        self.program = program
        self.result = result
        self._conflicts = None
        self._banks = None

    # ------------------------------------------------------------------
    def hot_pcs(self, n=10):
        """Top-*n* instructions by attributed cycles.

        Returns dicts with ``pc``, ``cycles``, ``share`` (of total
        cycles), ``block`` (source block label), and ``text`` (the long
        instruction's printed form).  One instruction costs one cycle
        per execution, so per-pc cycles are exactly
        ``result.pc_counts[pc]``.
        """
        counts = self.result.pc_counts
        total = self.result.cycles or 1
        ranked = sorted(
            (index for index, count in enumerate(counts) if count),
            key=lambda index: (-counts[index], index),
        )
        rows = []
        for pc in ranked[:n]:
            instruction = self.program.instructions[pc]
            rows.append(
                {
                    "pc": pc,
                    "cycles": counts[pc],
                    "share": counts[pc] / total,
                    "block": instruction.block_label,
                    "text": repr(instruction),
                }
            )
        return rows

    def bank_accesses(self):
        """Dynamic per-bank access histogram.

        ``{"X": {"loads": n, "stores": n}, "Y": ...}`` — each executed
        memory operation counts once, weighted by its instruction's
        execution count.
        """
        if self._banks is not None:
            return self._banks
        counts = self.result.pc_counts
        banks = {
            bank.value: {"loads": 0, "stores": 0} for bank in _CONCRETE_BANKS
        }
        for pc, instruction in enumerate(self.program.instructions):
            executed = counts[pc]
            if not executed:
                continue
            for op in _memory_ops(instruction):
                if op.bank not in _CONCRETE_BANKS:
                    continue
                kind = "loads" if op.is_load else "stores"
                banks[op.bank.value][kind] += executed
        self._banks = banks
        return banks

    def conflicts(self):
        """The conflict ledger, heaviest entries first.

        See the module docstring for the serialization model.  Only
        partitionable symbols participate: parameters and opaque symbols
        are pinned and never the allocation pass's decision to fix.
        """
        if self._conflicts is not None:
            return self._conflicts
        instructions = self.program.instructions
        counts = self.result.pc_counts
        ledger = {}
        for pc in range(len(instructions) - 1):
            later = pc + 1
            if not counts[later]:
                continue
            instr_a = instructions[pc]
            instr_b = instructions[later]
            if (
                instr_a.block_label is None
                or instr_a.block_label != instr_b.block_label
            ):
                continue
            for op_a in _memory_ops(instr_a):
                if op_a.bank not in _CONCRETE_BANKS:
                    continue
                if not op_a.symbol.is_partitionable:
                    continue
                for op_b in _memory_ops(instr_b):
                    if op_b.bank is not op_a.bank:
                        continue
                    if not op_b.symbol.is_partitionable:
                        continue
                    pair = tuple(sorted((op_a.symbol.name, op_b.symbol.name)))
                    key = (pair, op_a.bank.value)
                    entry = ledger.get(key)
                    if entry is None:
                        entry = ConflictEntry(pair[0], pair[1], op_a.bank.value)
                        ledger[key] = entry
                    entry.cycles += counts[later]
                    entry.events += 1
                    entry.pcs.append((pc, later))
        ranked = sorted(
            ledger.values(),
            key=lambda e: (-e.cycles, e.var_a, e.var_b, e.bank),
        )
        self._conflicts = ranked
        return ranked

    def conflict_cycles(self):
        """Total attributed serialization cycles across the ledger."""
        return sum(entry.cycles for entry in self.conflicts())

    def to_dict(self, top=10):
        """The whole profile as JSON-ready plain data."""
        return {
            "cycles": self.result.cycles,
            "operations": self.result.operations,
            "hot_pcs": self.hot_pcs(top),
            "bank_accesses": self.bank_accesses(),
            "conflicts": [entry.to_dict() for entry in self.conflicts()],
            "conflict_cycles": self.conflict_cycles(),
        }

    def __repr__(self):
        return "<RunProfile cycles=%d conflicts=%d>" % (
            self.result.cycles, len(self.conflicts()),
        )


def profile_run(program, result):
    """Profile one finished run; returns a :class:`RunProfile`.

    *program* is the executed :class:`MachineProgram`; *result* the
    :class:`SimulationResult` any backend returned.  Purely
    read-only: neither argument is mutated, so profiling never perturbs
    the run it describes.
    """
    return RunProfile(program, result)
