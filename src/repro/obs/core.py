"""The span/counter instrumentation core.

A :class:`Recorder` collects a tree of timed :class:`Span` objects plus
named counters.  Instrumented code holds a recorder (or the shared
:data:`NULL_RECORDER`) and wraps interesting regions::

    recorder = Recorder()
    with recorder.span("compile") as outer:
        with recorder.span("allocate") as inner:
            inner.set(edges=graph_edge_count)
        recorder.counter("modules", 1)
    recorder.spans[0].duration      # seconds, monotonic clock

Design constraints, in order:

* **near-zero overhead when disabled** — :data:`NULL_RECORDER` hands out
  one shared no-op span whose ``__enter__``/``set``/``count`` do
  nothing, so instrumented call sites never branch on an "enabled"
  flag themselves;
* **nestable** — spans opened inside an active span become its
  children; the tree mirrors the dynamic call structure;
* **serializable** — :meth:`Recorder.to_dict` produces plain dicts and
  lists, ready for ``json.dumps`` (used by the ``repro report`` JSON
  document).

Timing uses :func:`time.perf_counter` (monotonic, sub-microsecond).
"""

import time

__all__ = ["NULL_RECORDER", "NullRecorder", "Recorder", "Span"]


class Span:
    """One timed region: name, duration, metrics, counters, children.

    Created by :meth:`Recorder.span` and used as a context manager; the
    duration is measured from ``__enter__`` to ``__exit__``.  ``set``
    attaches point-in-time metrics (e.g. an instruction count after a
    pass); ``count`` accumulates a counter local to this span.
    """

    __slots__ = ("name", "duration", "metrics", "counters", "children",
                 "_recorder", "_start")

    def __init__(self, name, recorder=None):
        self.name = name
        #: elapsed seconds; None while the span is still open
        self.duration = None
        #: point-in-time metrics attached via :meth:`set`
        self.metrics = {}
        #: accumulated counters attached via :meth:`count`
        self.counters = {}
        #: child spans, in opening order
        self.children = []
        self._recorder = recorder
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        if self._recorder is not None:
            self._recorder._push(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration = time.perf_counter() - self._start
        if self._recorder is not None:
            self._recorder._pop(self)
        return False

    def set(self, **metrics):
        """Attach (or overwrite) point-in-time metrics on this span."""
        self.metrics.update(metrics)
        return self

    def count(self, name, amount=1):
        """Accumulate *amount* onto this span's counter *name*."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def find(self, name):
        """First descendant span (depth-first) named *name*, or None."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self):
        """This span and its subtree as JSON-ready plain data."""
        data = {"name": self.name, "seconds": self.duration}
        if self.metrics:
            data["metrics"] = dict(self.metrics)
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    def __repr__(self):
        timing = "open" if self.duration is None else "%.6fs" % self.duration
        return "<Span %s %s children=%d>" % (self.name, timing, len(self.children))


class _NullSpan:
    """Shared do-nothing span handed out by :class:`NullRecorder`."""

    __slots__ = ()
    name = None
    duration = None
    metrics = {}
    counters = {}
    children = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **_metrics):
        return self

    def count(self, name, amount=1):
        pass

    def find(self, name):
        return None

    def to_dict(self):
        return {"name": None, "seconds": None}


_NULL_SPAN = _NullSpan()


class Recorder:
    """Collects a tree of :class:`Span` objects plus top-level counters.

    One recorder observes one activity (a compile, a sweep, a report
    build).  Spans opened while another span is active nest under it;
    :attr:`spans` lists the roots.  Thread-unsafe by design: the
    pipeline is single-threaded per process, and the parallel runner
    keeps one recorder per worker.
    """

    enabled = True

    def __init__(self):
        #: root spans, in opening order
        self.spans = []
        #: counters recorded outside any span (or via :meth:`counter`)
        self.counters = {}
        self._stack = []

    def span(self, name):
        """A new :class:`Span` to be used as a context manager."""
        return Span(name, recorder=self)

    def counter(self, name, amount=1):
        """Accumulate a counter on the innermost open span (or globally)."""
        if self._stack:
            self._stack[-1].count(name, amount)
        else:
            self.counters[name] = self.counters.get(name, 0) + amount

    def absorb(self, counters):
        """Fold a ``{name: amount}`` counter snapshot into this recorder.

        The cross-process aggregation primitive: a worker (or a serve
        job result) ships its counters as plain data, and the parent
        recorder accumulates them under :meth:`counter` semantics —
        onto the innermost open span if one is active, globally
        otherwise.  Non-numeric values are skipped (snapshots may carry
        labels alongside tallies).
        """
        for name, amount in sorted(counters.items()):
            if isinstance(amount, bool) or not isinstance(
                amount, (int, float)
            ):
                continue
            self.counter(name, amount)

    def find(self, name):
        """First span named *name* anywhere in the recorded forest."""
        for root in self.spans:
            if root.name == name:
                return root
            found = root.find(name)
            if found is not None:
                return found
        return None

    def walk(self):
        """Yield ``(depth, span)`` pairs over the whole forest, pre-order."""
        stack = [(0, span) for span in reversed(self.spans)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            stack.extend((depth + 1, child) for child in reversed(span.children))

    def to_dict(self):
        """The whole recording as JSON-ready plain data."""
        data = {"spans": [span.to_dict() for span in self.spans]}
        if self.counters:
            data["counters"] = dict(self.counters)
        return data

    # ------------------------------------------------------------------
    def _push(self, span):
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)

    def _pop(self, span):
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                "span %r closed out of order (stack: %s)"
                % (span.name, [s.name for s in self._stack])
            )
        self._stack.pop()

    def __repr__(self):
        return "<Recorder spans=%d open=%d>" % (len(self.spans), len(self._stack))


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Instrumented code can unconditionally write
    ``with observe.span("pass"): ...`` — against this recorder the span
    is a shared singleton whose enter/exit do nothing, so the overhead
    is one attribute lookup and one method call per region.
    """

    enabled = False
    spans = ()
    counters = {}

    def span(self, name):
        """The shared no-op span, regardless of *name*."""
        return _NULL_SPAN

    def counter(self, name, amount=1):
        """Discard the count."""

    def absorb(self, counters):
        """Discard the snapshot."""

    def find(self, name):
        """Nothing is ever recorded, so nothing is ever found."""
        return None

    def walk(self):
        """An empty iteration."""
        return iter(())

    def to_dict(self):
        """An empty recording as JSON-ready plain data."""
        return {"spans": []}


#: the shared disabled recorder instrumented code defaults to
NULL_RECORDER = NullRecorder()
