"""Observability: pass-level compiler metrics, run profiling, reports.

The paper's whole argument is about *where* memory-bank conflicts arise
and which compiler decisions remove them, so this package makes every
stage of the reproduction inspectable:

* :mod:`repro.obs.core` — a lightweight span/counter instrumentation
  core (context-manager spans, monotonic timing, nestable, and a no-op
  null recorder so instrumented code pays nothing when observation is
  off).  The compiler pipeline threads a recorder through every pass.
* :mod:`repro.obs.profile` — post-run profiling over a simulated
  program: per-pc cycle attribution, per-bank access histograms, and
  the bank-conflict ledger attributing serialized memory pairs to the
  variable pairs that caused them.
* :mod:`repro.obs.report` — assembles both into one JSON-ready report
  for a (workload, strategy, backend) combination; rendered to
  markdown by :func:`repro.evaluation.reporting.render_observability`
  and exposed as ``python -m repro report --workload ...``.

See ``docs/observability.md`` for the full walkthrough.
"""

from repro.obs.core import NULL_RECORDER, Recorder, Span
from repro.obs.profile import ConflictEntry, RunProfile, profile_run
from repro.obs.report import build_report

__all__ = [
    "ConflictEntry",
    "NULL_RECORDER",
    "Recorder",
    "RunProfile",
    "Span",
    "build_report",
    "profile_run",
]
