"""Compaction-based interference-graph construction (paper Figure 3).

The data-allocation pass runs the compaction algorithm over every basic
block *in analysis mode*: banks are not yet assigned, so only one memory
operation can issue per long instruction.  Whenever a second memory
operation is data-ready in the same instruction but blocked behind the
first one, the pair could execute in parallel if their variables lived in
different banks — so an interference edge is added between the two
variables.  If both operations access the *same* variable or array, no
partitioning can separate them and the variable is marked for duplication.

Per the paper, blocked memory operations are *not* marked as scheduled:
they flow into the next data-ready set, so an edge is eventually added
between every pair of variables that could be accessed in parallel.
"""

from repro.analysis.dependence import build_dependence_graph
from repro.compiler.listsched import SchedulePolicy, run_list_schedule
from repro.ir.operations import UnitClass
from repro.partition.interference import InterferenceGraph
from repro.partition.weights import StaticDepthWeights

#: Functional-unit capacities in allocation mode: data banks are not yet
#: assigned, so memory behaves as a single unit (paper Section 3.1).
_ALLOCATION_CAPACITY = {
    UnitClass.PCU: 1,
    UnitClass.MU: 1,
    UnitClass.AU: 2,
    UnitClass.DU: 2,
    UnitClass.FPU: 2,
}


class _GraphBuildPolicy(SchedulePolicy):
    """Schedule policy that records interference instead of emitting code."""

    def __init__(self, graph, block, weights):
        self.graph = graph
        self.block = block
        self.weights = weights
        self._free = {}

    def begin_round(self):
        self._free = dict(_ALLOCATION_CAPACITY)

    def try_place(self, index, op):
        unit = op.unit
        if self._free.get(unit, 0) <= 0:
            return False
        self._free[unit] = self._free[unit] - 1
        return True

    def memory_blocked(self, index, op, first_index, first_op):
        sym_a = first_op.symbol
        sym_b = op.symbol
        if not (sym_a.is_partitionable and sym_b.is_partitionable):
            return
        weight = self.weights.weight(self.block)
        if sym_a is sym_b:
            self.graph.mark_duplication(sym_a, weight)
            self.graph.duplication_pairs.append((sym_a, first_op, op))
            return
        self.graph.add_edge(sym_a, sym_b, weight, accumulate=self.weights.accumulate)

    def end_round(self, placed):
        pass


def build_interference_graph(module, weights=None):
    """Build the interference graph for every function of *module*.

    ``weights`` is a weight policy (:class:`StaticDepthWeights` by
    default, or :class:`~repro.partition.weights.ProfileWeights`).
    Every partitionable symbol becomes a node even if it never interferes,
    so the partitioner can place all data deterministically.
    """
    if weights is None:
        weights = StaticDepthWeights()
    graph = InterferenceGraph()
    for symbol in module.partitionable_symbols():
        graph.add_node(symbol)
    for function in module.functions.values():
        for block in function.blocks:
            if not block.memory_ops():
                continue
            ddg = build_dependence_graph(block.ops)
            policy = _GraphBuildPolicy(graph, block, weights)
            run_list_schedule(ddg, policy)
    return graph
