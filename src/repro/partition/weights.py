"""Edge-weight policies for the interference graph.

The paper's heuristic (Section 3.1) weighs an edge by the loop-nesting
depth of the memory operations that could execute in parallel, giving the
highest priority to load/store parallelism inside inner loops.  The ``Pr``
configuration of Figure 8 replaces the heuristic with profile-driven
weights — execution counts gathered by simulating the baseline binary.
"""


class StaticDepthWeights:
    """The paper's loop-nesting-depth heuristic.

    A block outside any loop contributes weight 1, a block inside one loop
    weight 2, and so on (paper Figure 4 assigns weight 2 to the pair that
    is parallel inside the single loop and 1 to the pairs outside it).

    The paper leaves repeated occurrences of the same pair unspecified; we
    accumulate them, so a pair that could issue in parallel several times
    per iteration outweighs one that could pair only once.  Without
    accumulation, uniformly-weighted inner-loop graphs (e.g. an FFT
    butterfly) leave the greedy partitioner stuck in zero-gain ties.
    Set ``accumulate = False`` to study the max-weight variant (the
    ablation benchmark does exactly that).
    """

    def __init__(self, accumulate=True):
        self.accumulate = accumulate

    def weight(self, block):
        return block.loop_depth + 1


class ProfileWeights:
    """Profile-driven weights: the block's measured execution count.

    ``counts`` maps block label -> execution count, as collected by
    :func:`repro.sim.tracing.collect_block_counts`.  Occurrences of the
    same pair accumulate, so an edge's weight approximates the number of
    dynamic opportunities for a parallel access.  Blocks never executed in
    the profiling run still contribute a weight of 1 so that cold code is
    partitioned rather than ignored.
    """

    accumulate = True

    def __init__(self, counts):
        self.counts = dict(counts)

    def weight(self, block):
        return max(1, self.counts.get(block.label, 0))
