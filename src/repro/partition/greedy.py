"""Greedy minimum-cost partitioning of the interference graph (Figure 5).

Finding the minimum-cost two-way partition is NP-complete; the paper uses
a greedy algorithm that the authors found to yield near-ideal performance:

1. start with every node in the first set (cost = total weight of edges
   internal to it, i.e. every edge);
2. repeatedly move the node whose transfer to the second set gives the
   greatest *net* decrease in cost — the decrease from edges leaving the
   first set minus the increase from edges now internal to the second set;
3. stop when no move strictly decreases the cost.

The paper's Figure 5 example (complete graph on A,B,C,D with edge (A,D)
weighted 2 and the rest 1) traces cost 7 -> 3 -> 2, ending with {A, B} and
{C, D}; ``tests/partition/test_greedy.py`` checks exactly that trace.
"""


class PartitionResult:
    """Outcome of partitioning: the two symbol sets and the cost trace.

    Every registry partitioner (:mod:`repro.partition.registry`) returns
    this same shape: ``cost_trace`` starts at the everything-in-X cost
    and records each strict improvement, so ``final_cost`` is always the
    cost of the returned assignment and the trace is non-increasing.
    """

    def __init__(self, set_x, set_y, cost_trace, proved_optimal=None):
        #: Symbols assigned to the X bank (the initial, first set).
        self.set_x = list(set_x)
        #: Symbols assigned to the Y bank (the second set).
        self.set_y = list(set_y)
        #: Cost after initialization and after every accepted move.
        self.cost_trace = list(cost_trace)
        #: True when the producing partitioner proved this assignment
        #: minimum-cost (the exact solver within its node limit); False
        #: when it explicitly could not; None for heuristics that never
        #: make the claim.
        self.proved_optimal = proved_optimal
        # O(1) membership for bank_of (symbol names are unique per scope).
        self._y_names = frozenset(s.name for s in self.set_y)

    @property
    def final_cost(self):
        return self.cost_trace[-1]

    @property
    def initial_cost(self):
        return self.cost_trace[0]

    def bank_of(self, symbol):
        from repro.ir.symbols import MemoryBank

        if symbol.name in self._y_names:
            return MemoryBank.Y
        return MemoryBank.X

    def __repr__(self):
        return "<PartitionResult X=%d Y=%d cost=%s>" % (
            len(self.set_x),
            len(self.set_y),
            self.final_cost,
        )


class GreedyPartitioner:
    """The paper's greedy node-moving partitioner.

    Time complexity is O(v^2) in the number of interference-graph nodes
    (paper Section 3.1): each accepted move scans all candidates, and at
    most v moves are accepted because a node never moves back.

    Determinism: when several moves give the same (best) cost decrease,
    the node with the smallest tie-break key moves — so the partition
    depends only on the graph's content (and the seed), never on node
    insertion order, and repeated runs are identical.

    With the default ``seed=0`` the tie-break key is the node name
    itself (lexicographically smallest name moves first, the documented
    paper-faithful order).  Any other seed derives a deterministic
    permutation of the node names from ``random.Random(seed)`` and
    breaks ties along it instead — the hook campaign drivers use to
    explore the tie space from one campaign seed (every registry
    partitioner shares the same ``(graph, *, seed)`` signature).
    """

    partitioner_name = "greedy"

    def __init__(self, graph, *, seed=0):
        self.graph = graph
        self.seed = seed

    def _tiebreak_key(self):
        """Map node name -> comparison key implementing the seed policy."""
        names = sorted(node.name for node in self.graph.nodes)
        if not self.seed:
            return {name: name for name in names}
        import random

        shuffled = list(names)
        random.Random(self.seed).shuffle(shuffled)
        return {name: rank for rank, name in enumerate(shuffled)}

    def partition(self, observe=None):
        """Partition the graph; returns a :class:`PartitionResult`.

        ``observe`` is an optional :class:`~repro.obs.core.Recorder`:
        every accepted move bumps its ``moves`` counter and the cost
        trajectory lands in the result's ``cost_trace`` either way —
        the one debugging surface for the greedy descent (this replaces
        any ad-hoc trace printing; render the trace from the result).
        """
        if observe is None:
            from repro.obs.core import NULL_RECORDER as observe
        tiebreak = self._tiebreak_key()
        nodes = self.graph.nodes
        set_x = list(nodes)
        set_y = []
        in_y = set()

        # For each node, track the weight of its edges into each set.
        weight_to_x = {}
        weight_to_y = {}
        for node in nodes:
            weight_to_x[node.name] = sum(self.graph.neighbors(node).values())
            weight_to_y[node.name] = 0

        cost = self.graph.internal_cost(set_x)
        trace = [cost]

        while True:
            best_node = None
            best_delta = 0
            for node in set_x:
                # Moving `node` to Y removes its X-internal edges from the
                # cost and adds its Y-internal edges.  Ties break on the
                # smallest tie-break key (the node name under seed 0) — a
                # stable order independent of how the graph was built.
                delta = weight_to_y[node.name] - weight_to_x[node.name]
                if delta < best_delta or (
                    delta == best_delta
                    and best_node is not None
                    and tiebreak[node.name] < tiebreak[best_node.name]
                ):
                    best_delta = delta
                    best_node = node
            if best_node is None:
                break
            set_x.remove(best_node)
            set_y.append(best_node)
            in_y.add(best_node.name)
            cost += best_delta
            trace.append(cost)
            observe.counter("moves")
            for neighbor_name, weight in self.graph.neighbors(best_node).items():
                # The edge (best_node, neighbor) swapped sides for the
                # neighbor's bookkeeping.
                weight_to_x[neighbor_name] -= weight
                weight_to_y[neighbor_name] += weight

        return PartitionResult(set_x, set_y, trace)
