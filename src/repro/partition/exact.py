"""Exact minimum-cost partitioning via branch and bound.

Two-way minimum-cost partitioning of the interference graph is the
complement of maximum cut (``cost = total_weight - cut_weight``), so it
is NP-complete — but the graphs this compiler actually partitions are
tiny: every workload in the registry and every program the fuzz grammar
emits produces well under 20 partitionable symbols (the paper's own
benchmarks are in the same range).  At that size an exact search with
interference-weight bounds answers in microseconds, which is what makes
"how far from optimal is greedy?" a measurable question
(:mod:`repro.evaluation.partition_gap`) instead of folklore.

The search assigns nodes to banks one at a time in decreasing order of
incident weight and prunes a subtree as soon as

    cost(assigned same-side edges)
      + sum over unassigned nodes of min(weight to X side, weight to Y side)

reaches the incumbent: the second term is a valid lower bound because a
node must eventually join one side and then pays at least its lighter
connection to the already-assigned nodes, while edges between two
unassigned nodes are (optimistically) assumed cut.  The incumbent starts
at the greedy partition, so the exact result can never be worse than
greedy, and the first-node-stays-in-X convention halves the 2^n space.

Beyond :data:`ExactPartitioner.NODE_LIMIT` nodes the solver does not
attempt the search at all: it returns the Kernighan-Lin refinement of
greedy (:mod:`repro.partition.kl`) with ``proved_optimal=False`` so
callers can still ask for "exact" uniformly and read the flag.
"""

from repro.partition.greedy import GreedyPartitioner, PartitionResult


class ExactPartitioner:
    """Branch-and-bound minimum-cost (maximum-cut) partitioner.

    Worst case O(2^v), but the weight-based lower bound and the greedy
    incumbent prune the search to a small fraction of that on real
    interference graphs.  Fully deterministic: node order, the bound,
    and the side convention are all content-derived, so *seed* only
    influences the greedy incumbent's tie-breaks (which cannot change
    the proved-optimal cost, merely which optimal assignment is found
    first).
    """

    partitioner_name = "exact"

    #: Largest graph the exponential search is attempted on.  24 nodes
    #: is an order of magnitude above anything the workload registry or
    #: the fuzz grammar produces, and still bounded in the worst case.
    NODE_LIMIT = 24

    def __init__(self, graph, *, seed=0, node_limit=None):
        self.graph = graph
        self.seed = seed
        self.node_limit = self.NODE_LIMIT if node_limit is None else node_limit

    def partition(self, observe=None):
        """Partition the graph; returns a :class:`PartitionResult`.

        ``observe`` (an optional :class:`~repro.obs.core.Recorder`)
        collects the search effort: ``bnb.explored`` counts visited
        tree nodes, ``bnb.pruned`` bound cut-offs, ``bnb.incumbents``
        improvements over the greedy seed.  ``proved_optimal`` is True
        on the result whenever the search ran to completion.
        """
        if observe is None:
            from repro.obs.core import NULL_RECORDER as observe
        nodes = self.graph.nodes
        if len(nodes) > self.node_limit:
            from repro.partition.kl import KLPartitioner

            observe.counter("bnb.skipped_too_large")
            result = KLPartitioner(self.graph, seed=self.seed).partition(
                observe=observe
            )
            result.proved_optimal = False
            return result

        seeded = GreedyPartitioner(self.graph, seed=self.seed).partition()
        if len(nodes) <= 1:
            seeded.proved_optimal = True
            return seeded

        # Dense index ordered by total incident weight (heaviest first)
        # so high-impact decisions happen near the root where pruning
        # pays most; ties break on the node name for determinism.
        ordered = sorted(
            nodes,
            key=lambda node: (
                -sum(self.graph.neighbors(node).values()),
                node.name,
            ),
        )
        index_of = {node.name: i for i, node in enumerate(ordered)}
        adjacency = [[] for _ in ordered]
        for a, b, weight in self.graph.edges():
            ia, ib = index_of[a.name], index_of[b.name]
            adjacency[ia].append((ib, weight))
            adjacency[ib].append((ia, weight))
        for row in adjacency:
            row.sort()

        count = len(ordered)
        in_y = {symbol.name for symbol in seeded.set_y}
        best_sides = [1 if node.name in in_y else 0 for node in ordered]
        best_cost = seeded.final_cost

        # weight_to[s][i]: weight from unassigned node i to the nodes
        # already assigned to side s.
        weight_to = ([0] * count, [0] * count)
        sides = [None] * count
        stats = {"explored": 0, "pruned": 0, "incumbents": 0}
        improvements = []

        def descend(position, cost):
            nonlocal best_cost, best_sides
            stats["explored"] += 1
            if position == count:
                if cost < best_cost:
                    best_cost = cost
                    best_sides = sides[:]
                    stats["incumbents"] += 1
                    improvements.append(cost)
                return
            bound = cost
            for i in range(position, count):
                bound += min(weight_to[0][i], weight_to[1][i])
                if bound >= best_cost:
                    stats["pruned"] += 1
                    return
            # Side 0 first keeps the all-X prefix explored before its
            # mirror; the root is pinned to side 0 (bank symmetry).
            for side in (0,) if position == 0 else (0, 1):
                sides[position] = side
                for neighbor, weight in adjacency[position]:
                    if neighbor > position:
                        weight_to[side][neighbor] += weight
                descend(position + 1, cost + weight_to[side][position])
                for neighbor, weight in adjacency[position]:
                    if neighbor > position:
                        weight_to[side][neighbor] -= weight
            sides[position] = None

        descend(0, 0)
        observe.counter("bnb.explored", stats["explored"])
        observe.counter("bnb.pruned", stats["pruned"])
        observe.counter("bnb.incumbents", stats["incumbents"])

        set_x = [node for node in nodes if best_sides[index_of[node.name]] == 0]
        set_y = [node for node in nodes if best_sides[index_of[node.name]] == 1]
        trace = list(seeded.cost_trace)
        for cost in improvements:
            if cost < trace[-1]:
                trace.append(cost)
        return PartitionResult(set_x, set_y, trace, proved_optimal=True)
