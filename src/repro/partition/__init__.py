"""Data allocation for dual data-memory banks (the paper's contribution).

This package implements the two algorithms of paper Section 3:

* **Compaction-based (CB) data partitioning** — build a weighted
  interference graph over program variables by running the compaction
  algorithm in analysis mode (:mod:`repro.partition.graph_builder`), then
  split the nodes across the X and Y banks with a minimum-cost
  partitioner.  The paper's greedy algorithm
  (:mod:`repro.partition.greedy`) is the default of an interchangeable
  registry (:mod:`repro.partition.registry`) that also offers an exact
  branch-and-bound solver, simulated annealing, and Kernighan-Lin
  refinement — see ``--partitioner`` on the CLI.
* **Partial data duplication** — duplicate arrays that are accessed twice
  in potentially-parallel memory operations, inserting integrity stores to
  keep both copies coherent (:mod:`repro.partition.duplication`).

:func:`repro.partition.strategies.run_allocation` is the pass entry point,
covering all the paper's configurations (single bank, CB, CB with profile
weights, CB + partial duplication, full duplication, and the dual-ported
Ideal reference).
"""

from repro.partition.interference import InterferenceGraph
from repro.partition.graph_builder import build_interference_graph
from repro.partition.greedy import GreedyPartitioner, PartitionResult
from repro.partition.exact import ExactPartitioner
from repro.partition.anneal import AnnealPartitioner
from repro.partition.kl import KLPartitioner
from repro.partition.registry import (
    DEFAULT_PARTITIONER,
    PARTITIONERS,
    make_partitioner,
)
from repro.partition.weights import ProfileWeights, StaticDepthWeights
from repro.partition.duplication import (
    duplicate_symbols,
    full_duplication_symbols,
)
from repro.partition.strategies import AllocationResult, Strategy, run_allocation

__all__ = [
    "AllocationResult",
    "AnnealPartitioner",
    "DEFAULT_PARTITIONER",
    "ExactPartitioner",
    "GreedyPartitioner",
    "InterferenceGraph",
    "KLPartitioner",
    "PARTITIONERS",
    "PartitionResult",
    "ProfileWeights",
    "StaticDepthWeights",
    "Strategy",
    "build_interference_graph",
    "duplicate_symbols",
    "full_duplication_symbols",
    "make_partitioner",
    "run_allocation",
]
