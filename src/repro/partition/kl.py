"""Kernighan-Lin / Fiduccia-Mattheyses style pass refinement.

Starts from the greedy partition (:mod:`repro.partition.greedy`) and
runs KL passes over it: within a pass every node is tentatively moved
exactly once — always the unmoved node with the best (possibly negative)
gain — while recording the running cumulative gain; the pass then
commits the prefix of moves with the highest cumulative gain and starts
over.  Accepting locally-negative moves inside a pass is what lets KL
climb out of the single-move local minima the greedy descent stops in;
the bank-assignment problem has no balance constraint (banks are not
size-limited in the paper's machine model), so the classic pairwise-swap
formulation degenerates cleanly to single-node moves, exactly the FM
variant.

Each committed pass strictly decreases the cost, so termination is
guaranteed and the cost trace stays monotone: the result's
``cost_trace`` is the greedy trace extended by one entry per committed
pass.  Complexity is O(passes * v^2) with the same O(v^2) inner
bookkeeping as greedy; in practice a couple of passes suffice on
interference graphs.
"""

from repro.partition.greedy import GreedyPartitioner, PartitionResult


class KLPartitioner:
    """Greedy partitioning followed by Kernighan-Lin pass refinement.

    Shares the registry's uniform ``(graph, *, seed)`` signature: the
    seed steers the greedy seeding's tie-breaks (see
    :class:`~repro.partition.greedy.GreedyPartitioner`); the refinement
    itself is deterministic, breaking gain ties on the node name.
    """

    partitioner_name = "kl"

    #: Hard cap on committed passes — each strictly improves the cost,
    #: so this never binds on integer weights; it bounds pathological
    #: float-weight inputs.
    MAX_PASSES = 32

    def __init__(self, graph, *, seed=0):
        self.graph = graph
        self.seed = seed

    def partition(self, observe=None):
        """Partition the graph; returns a :class:`PartitionResult`.

        ``observe`` (an optional :class:`~repro.obs.core.Recorder`)
        counts committed refinement passes (``kl.passes``) and total
        committed moves (``kl.moves``) on top of the greedy seeding's
        own counters.
        """
        if observe is None:
            from repro.obs.core import NULL_RECORDER as observe
        seeded = GreedyPartitioner(self.graph, seed=self.seed).partition(
            observe=observe
        )
        nodes = self.graph.nodes
        if len(nodes) < 2:
            return seeded

        side = {node.name: 0 for node in nodes}
        for symbol in seeded.set_y:
            side[symbol.name] = 1
        neighbors = {
            node.name: self.graph.neighbors(node) for node in nodes
        }
        names = sorted(side)
        trace = list(seeded.cost_trace)

        def gain(name, sides):
            """Cost decrease from flipping *name* under *sides*."""
            same = other = 0
            mine = sides[name]
            for neighbor, weight in neighbors[name].items():
                if sides[neighbor] == mine:
                    same += weight
                else:
                    other += weight
            return same - other

        for _pass in range(self.MAX_PASSES):
            working = dict(side)
            unmoved = set(names)
            cumulative = 0
            best_prefix_gain = 0
            best_prefix_length = 0
            sequence = []
            while unmoved:
                best_name = None
                best_gain = None
                for name in sorted(unmoved):
                    candidate = gain(name, working)
                    if best_gain is None or candidate > best_gain:
                        best_gain = candidate
                        best_name = name
                unmoved.remove(best_name)
                working[best_name] = 1 - working[best_name]
                sequence.append(best_name)
                cumulative += best_gain
                if cumulative > best_prefix_gain:
                    best_prefix_gain = cumulative
                    best_prefix_length = len(sequence)
            if best_prefix_gain <= 0:
                break
            for name in sequence[:best_prefix_length]:
                side[name] = 1 - side[name]
            observe.counter("kl.passes")
            observe.counter("kl.moves", best_prefix_length)
            trace.append(trace[-1] - best_prefix_gain)

        set_x = [node for node in nodes if side[node.name] == 0]
        set_y = [node for node in nodes if side[node.name] == 1]
        return PartitionResult(set_x, set_y, trace)
