"""Data duplication transforms (paper Section 3.2).

*Partial* duplication replicates only the symbols that the interference
graph marked as being accessed twice in a potentially-parallel pair.
*Full* duplication replicates every partitionable symbol, which the paper
evaluates as a costly straw man (Table 3).

For every duplicated symbol:

* loads are tagged ``MemoryBank.BOTH`` so the compaction pass may serve
  them from whichever memory unit is free;
* every store gets a *shadow* store that writes the Y-bank copy, keeping
  both copies coherent.  For stack-resident locals, an additional address
  operation computes the second stack's location (the paper's "additional
  stack operation"), feeding the shadow store's index;
* when ``interrupt_safe`` is set, the primary store locks interrupts and
  the shadow store unlocks them (the paper's store-lock / store-unlock
  pair), so an injected interrupt can never observe the copies out of
  sync — :mod:`repro.sim.interrupts` exercises this.
"""

from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import MemoryBank, Storage
from repro.ir.types import RegClass
from repro.ir.values import Immediate


def _expand_store(function, op, interrupt_safe):
    """Expand one store to a duplicated symbol into its coherent pair."""
    symbol = op.symbol
    value = op.sources[0]
    index = op.sources[1]
    offset = op.sources[2] if len(op.sources) > 2 else None
    op.bank = MemoryBank.X
    op.locked = interrupt_safe
    new_ops = [op]
    shadow_index = index
    if symbol.storage is Storage.LOCAL:
        # The second copy lives on the other stack: one extra address
        # operation computes its location.
        addr = function.new_register(RegClass.ADDR)
        if isinstance(index, Immediate):
            new_ops.append(Operation(OpCode.ACONST, dest=addr, sources=(index,)))
        else:
            new_ops.append(Operation(OpCode.AMOV, dest=addr, sources=(index,)))
        shadow_index = addr
    shadow_sources = (
        (value, shadow_index)
        if offset is None
        else (value, shadow_index, offset)
    )
    shadow = Operation(
        OpCode.STORE,
        sources=shadow_sources,
        symbol=symbol,
        bank=MemoryBank.Y,
        locked=interrupt_safe,
        shadow=True,
    )
    new_ops.append(shadow)
    return new_ops


def _apply_duplication(module, symbols, interrupt_safe):
    chosen = [s for s in symbols if s.is_partitionable]
    for symbol in chosen:
        symbol.bank = MemoryBank.BOTH
        symbol.duplicated = True
    chosen_ids = {id(s) for s in chosen}
    for function in module.functions.values():
        for block in function.blocks:
            if not any(
                op.is_store and id(op.symbol) in chosen_ids for op in block.ops
            ):
                continue
            new_ops = []
            for op in block.ops:
                if op.is_store and id(op.symbol) in chosen_ids:
                    new_ops.extend(_expand_store(function, op, interrupt_safe))
                else:
                    new_ops.append(op)
            block.ops = new_ops
    return chosen


def duplicate_symbols(module, symbols, interrupt_safe=True):
    """Partial data duplication: replicate *symbols* into both banks.

    Returns the symbols actually duplicated (non-partitionable symbols are
    skipped).  Stores to the chosen symbols are rewritten in place.
    """
    return _apply_duplication(module, symbols, interrupt_safe)


def full_duplication_symbols(module, interrupt_safe=True):
    """Full duplication: replicate every partitionable symbol."""
    return _apply_duplication(
        module, module.partitionable_symbols(), interrupt_safe
    )


def estimate_store_penalty(module, symbol, weights):
    """Estimated per-run cost of keeping *symbol*'s copies coherent.

    Every store to a duplicated symbol gains an integrity store (plus a
    stack-address operation for locals); each may cost up to one cycle
    when the compaction pass cannot hide it.  The estimate sums the
    weight-policy value of each store's block — the same currency the
    duplication benefit is accumulated in.
    """
    penalty = 0
    for function in module.functions.values():
        for block in function.blocks:
            for op in block.ops:
                if op.is_store and op.symbol is symbol:
                    penalty += weights.weight(block)
    return penalty


def select_beneficial(module, graph, weights):
    """The paper's suggested refinement (Section 5): duplicate only the
    candidates whose estimated parallel-access benefit exceeds their
    integrity-store penalty.

    Returns the selected subset of ``graph.duplication_candidates``, with
    a per-candidate decision log in the second return value:
    ``[(symbol, benefit, penalty, selected), ...]``.
    """
    selected = []
    decisions = []
    for symbol in graph.duplication_candidates:
        benefit = graph.duplication_benefit(symbol)
        penalty = estimate_store_penalty(module, symbol, weights)
        keep = benefit > penalty
        decisions.append((symbol, benefit, penalty, keep))
        if keep:
            selected.append(symbol)
    return selected, decisions
