"""Name -> partitioner registry, mirroring the simulator ``BACKENDS``.

Every entry is a class with the uniform signature

    Partitioner(graph, *, seed=0).partition(observe=None) -> PartitionResult

so allocation strategies, the CLI's ``--partitioner`` flag, the fuzz
oracle's partitioner stage, and the gap-to-optimal evaluation can all
swap algorithms freely — one campaign seed steers greedy tie-breaks and
annealing alike.  The registered algorithms:

``greedy``
    the paper's O(v^2) node-moving descent (Figure 5) — the default;
``exact``
    branch-and-bound minimum cost with interference-weight bounds,
    provably optimal up to :data:`~repro.partition.exact.
    ExactPartitioner.NODE_LIMIT` nodes (KL fallback beyond, flagged via
    ``proved_optimal=False``);
``anneal``
    seeded simulated annealing started from the greedy partition;
``kl``
    Kernighan-Lin/FM pass refinement of the greedy partition.

Adding an entry here is deliberately load-bearing:
``tests/test_partitioner_registry.py`` asserts every registered name is
selectable from every CLI command with a ``--partitioner`` flag and is
covered by the fuzz oracle's partitioner stage, so a partitioner cannot
ship without differential coverage.
"""

from repro.partition.anneal import AnnealPartitioner
from repro.partition.exact import ExactPartitioner
from repro.partition.greedy import GreedyPartitioner
from repro.partition.kl import KLPartitioner

#: name -> partitioner class; keep the paper's greedy first as default.
PARTITIONERS = {
    "greedy": GreedyPartitioner,
    "exact": ExactPartitioner,
    "anneal": AnnealPartitioner,
    "kl": KLPartitioner,
}

#: the paper's algorithm, used wherever no explicit choice is made
DEFAULT_PARTITIONER = "greedy"


def make_partitioner(graph, partitioner=DEFAULT_PARTITIONER, seed=0):
    """Instantiate the partitioner named *partitioner* over *graph*.

    All registered classes honour the same constructor keywords and
    return the same :class:`~repro.partition.greedy.PartitionResult`
    shape (disjoint X/Y covering all nodes, non-increasing cost trace),
    so callers may switch freely.  Raises :class:`ValueError` for an
    unknown name; :data:`PARTITIONERS` lists the valid ones.
    """
    try:
        cls = PARTITIONERS[partitioner]
    except KeyError:
        raise ValueError(
            "unknown partitioner %r (choose from: %s)"
            % (partitioner, ", ".join(sorted(PARTITIONERS)))
        )
    return cls(graph, seed=seed)
