"""The interference graph over program variables (paper Section 3.1).

Nodes are :class:`~repro.ir.symbols.Symbol` objects; an edge between two
nodes means the corresponding variables may be accessed in parallel and
should therefore live in different memory banks.  The edge weight
represents the performance degradation if the two variables are *not*
accessed in parallel.
"""


class InterferenceGraph:
    """Undirected weighted graph over partitionable symbols."""

    def __init__(self):
        self._nodes = []
        self._node_set = set()
        self._edges = {}
        self._adjacency = {}
        #: Symbols accessed twice in a potentially-parallel pair; data
        #: partitioning cannot help these — they are candidates for
        #: partial data duplication (paper Section 3.2).
        self.duplication_candidates = []
        #: symbol name -> accumulated weight of its same-array parallel
        #: opportunities (the estimated benefit of duplicating it)
        self.duplication_weights = {}
        #: (symbol, op_a, op_b) triples for every same-array blocked pair,
        #: kept for further analyses (e.g. low-order interleaving parity)
        self.duplication_pairs = []

    # ------------------------------------------------------------------
    @staticmethod
    def _key(a, b):
        return (a, b) if id(a) <= id(b) else (b, a)

    def add_node(self, symbol):
        if id(symbol) not in self._node_set:
            self._node_set.add(id(symbol))
            self._nodes.append(symbol)
            self._adjacency[symbol.name] = {}
        return symbol

    def add_edge(self, a, b, weight, accumulate=False):
        """Add or strengthen the edge between symbols *a* and *b*.

        With ``accumulate=False`` (the static heuristic) the edge keeps the
        maximum weight seen; with ``accumulate=True`` (profile weights)
        occurrences add up.
        """
        if a is b:
            raise ValueError("no self-edges: %s" % a.name)
        self.add_node(a)
        self.add_node(b)
        key = self._key(a, b)
        old = self._edges.get(key, 0)
        new = old + weight if accumulate else max(old, weight)
        self._edges[key] = new
        self._adjacency[a.name][b.name] = new
        self._adjacency[b.name][a.name] = new

    def mark_duplication(self, symbol, weight=1):
        self.add_node(symbol)
        if symbol not in self.duplication_candidates:
            self.duplication_candidates.append(symbol)
        self.duplication_weights[symbol.name] = (
            self.duplication_weights.get(symbol.name, 0) + weight
        )

    def duplication_benefit(self, symbol):
        """Accumulated weight of *symbol*'s same-array parallel pairs."""
        return self.duplication_weights.get(symbol.name, 0)

    # ------------------------------------------------------------------
    @property
    def nodes(self):
        return list(self._nodes)

    def edges(self):
        """Iterate ``(symbol_a, symbol_b, weight)`` triples."""
        for (a, b), weight in self._edges.items():
            yield a, b, weight

    def weight(self, a, b):
        return self._edges.get(self._key(a, b), 0)

    def neighbors(self, symbol):
        return dict(self._adjacency.get(symbol.name, {}))

    def degree(self, symbol):
        return len(self._adjacency.get(symbol.name, {}))

    def total_weight(self):
        return sum(self._edges.values())

    def internal_cost(self, symbols):
        """Sum of edge weights whose endpoints are both inside *symbols*.

        This is the greedy partitioner's cost function: edges internal to
        one set correspond to parallel accesses that cannot happen.
        """
        inside = {id(s) for s in symbols}
        cost = 0
        for (a, b), weight in self._edges.items():
            if id(a) in inside and id(b) in inside:
                cost += weight
        return cost

    def __len__(self):
        return len(self._nodes)

    def __repr__(self):
        return "<InterferenceGraph nodes=%d edges=%d dup=%d>" % (
            len(self._nodes),
            len(self._edges),
            len(self.duplication_candidates),
        )

    def to_dot(self, partition=None):
        """Render the graph in Graphviz DOT format.

        With a :class:`~repro.partition.greedy.PartitionResult`, nodes are
        colored by their assigned bank and cut edges drawn dashed — paste
        the output into any DOT viewer to see the partition.
        """
        lines = ["graph interference {"]
        lines.append('  graph [label="interference graph", overlap=false];')
        in_y = set()
        if partition is not None:
            in_y = {id(s) for s in partition.set_y}
        for node in self._nodes:
            color = "lightskyblue" if id(node) in in_y else "palegreen"
            shape = "box" if node.is_array else "ellipse"
            extra = ', style=filled, fillcolor="%s"' % color if partition else ""
            dup = " (dup)" if node in self.duplication_candidates else ""
            lines.append(
                '  "%s" [shape=%s, label="%s%s"%s];'
                % (node.name, shape, node.name, dup, extra)
            )
        for (a, b), weight in self._edges.items():
            cut = partition is not None and (id(a) in in_y) != (id(b) in in_y)
            style = ', style=dashed, color=gray40' if cut else ""
            lines.append(
                '  "%s" -- "%s" [label="%s"%s];' % (a.name, b.name, weight, style)
            )
        lines.append("}")
        return "\n".join(lines)

    def describe(self):
        """Multi-line human-readable dump (for examples and debugging)."""
        lines = ["interference graph: %d nodes, %d edges" % (len(self._nodes), len(self._edges))]
        rendered = [
            (tuple(sorted((a.name, b.name))), w) for a, b, w in self.edges()
        ]
        for (name_a, name_b), w in sorted(rendered, key=lambda e: (-e[1], e[0])):
            lines.append("  (%s, %s) weight %s" % (name_a, name_b, w))
        if self.duplication_candidates:
            lines.append(
                "  duplication candidates: %s"
                % ", ".join(s.name for s in self.duplication_candidates)
            )
        return "\n".join(lines)
