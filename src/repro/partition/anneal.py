"""Seeded simulated annealing over bank assignments.

The metaheuristic complement to the exact solver: a random walk over
single-node bank flips that accepts every improving move and accepts a
worsening move of size ``delta`` with probability ``exp(-delta / T)``
under a geometrically cooling temperature ``T``.  The walk starts from
the greedy partition, so the returned assignment — always the *best*
state visited, not the last — can never be worse than greedy; on graphs
where greedy parks in a local minimum the uphill acceptances let the
walk cross the ridge the same way KL's negative-gain prefixes do, but
stochastically.

Everything is driven by one ``random.Random(seed)`` stream (move
selection, acceptance draws, and the greedy seeding's tie-breaks), so a
fixed seed reproduces the annealing schedule bit for bit — the property
campaign journals rely on.  The iteration budget scales linearly with
the node count and is capped, keeping the partitioner safe to call from
compile pipelines: cost is O(iterations * degree), comfortably below
one millisecond on interference-graph sizes.
"""

import math
import random

from repro.partition.greedy import GreedyPartitioner, PartitionResult


class AnnealPartitioner:
    """Simulated annealing refinement of the greedy partition."""

    partitioner_name = "anneal"

    #: Flip attempts per node (the budget scales with graph size).
    ITERATIONS_PER_NODE = 150
    #: Absolute ceiling on flip attempts, whatever the graph size.
    MAX_ITERATIONS = 6000
    #: Final temperature the geometric schedule cools down to.
    FINAL_TEMPERATURE = 1e-3

    def __init__(self, graph, *, seed=0):
        self.graph = graph
        self.seed = seed

    def partition(self, observe=None):
        """Partition the graph; returns a :class:`PartitionResult`.

        ``observe`` (an optional :class:`~repro.obs.core.Recorder`)
        counts accepted flips (``anneal.accepted``), accepted uphill
        flips (``anneal.uphill``), and improvements over the greedy
        seed (``anneal.improvements``).
        """
        if observe is None:
            from repro.obs.core import NULL_RECORDER as observe
        seeded = GreedyPartitioner(self.graph, seed=self.seed).partition()
        nodes = self.graph.nodes
        if len(nodes) < 2:
            return seeded

        rng = random.Random(self.seed)
        side = {node.name: 0 for node in nodes}
        for symbol in seeded.set_y:
            side[symbol.name] = 1
        neighbors = {
            node.name: self.graph.neighbors(node) for node in nodes
        }
        names = sorted(side)

        def exact_cost(sides):
            in_y = {name for name, value in sides.items() if value}
            set_y = [node for node in nodes if node.name in in_y]
            set_x = [node for node in nodes if node.name not in in_y]
            return self.graph.internal_cost(set_x) + self.graph.internal_cost(
                set_y
            )

        cost = float(seeded.final_cost)
        best_sides = dict(side)
        # Improvements are re-measured with the graph's exact integer
        # arithmetic so the trace never drifts from the assignment it
        # describes, even if the walk's incremental floats round.
        best_cost = seeded.final_cost
        trace = list(seeded.cost_trace)

        heaviest = max(
            (weight for _a, _b, weight in self.graph.edges()), default=0
        )
        temperature = max(1.0, 2.0 * heaviest)
        iterations = min(
            self.MAX_ITERATIONS, self.ITERATIONS_PER_NODE * len(nodes)
        )
        cooling = (self.FINAL_TEMPERATURE / temperature) ** (
            1.0 / max(1, iterations)
        )

        for _step in range(iterations):
            name = names[rng.randrange(len(names))]
            mine = side[name]
            same = other = 0
            for neighbor, weight in neighbors[name].items():
                if side[neighbor] == mine:
                    same += weight
                else:
                    other += weight
            delta = other - same  # cost change if we flip
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                side[name] = 1 - mine
                cost += delta
                observe.counter("anneal.accepted")
                if delta > 0:
                    observe.counter("anneal.uphill")
                if cost < best_cost:
                    measured = exact_cost(side)
                    if measured < best_cost:
                        best_cost = measured
                        best_sides = dict(side)
                        observe.counter("anneal.improvements")
                        trace.append(measured)
                    cost = float(measured)
            temperature *= cooling

        set_x = [node for node in nodes if best_sides[node.name] == 0]
        set_y = [node for node in nodes if best_sides[node.name] == 1]
        return PartitionResult(set_x, set_y, trace)
