"""The data-allocation pass: one entry point for every paper configuration.

==============  ======================================================
Strategy        Meaning (paper labels in parentheses)
==============  ======================================================
``SINGLE_BANK`` allocation pass disabled; all data in the X bank — the
                baseline every figure normalizes against
``CB``          compaction-based partitioning, static loop-depth edge
                weights (figures' *CB*)
``CB_PROFILE``  CB with profile-driven edge weights (Figure 8's *Pr*)
``CB_DUP``      CB plus partial data duplication (Figure 8's *Dup*)
``FULL_DUP``    every variable duplicated into both banks (Table 3's
                *Full Duplication*)
``IDEAL``       dual-ported memory: placement does not constrain
                parallel access (figures' *Ideal*)
==============  ======================================================

The pass runs once per compiled module: it assigns every partitionable
symbol a bank, optionally rewrites stores for duplication, and tags every
memory operation with the bank holding its data — the tag the compaction
pass uses to route the operation to MU0 or MU1.
"""

import enum

from repro.ir.symbols import MemoryBank
from repro.partition.duplication import (
    duplicate_symbols,
    full_duplication_symbols,
    select_beneficial,
)
from repro.partition.graph_builder import build_interference_graph
from repro.partition.registry import (
    DEFAULT_PARTITIONER,
    PARTITIONERS,
    make_partitioner,
)
from repro.partition.weights import ProfileWeights, StaticDepthWeights


class Strategy(enum.Enum):
    """The data-allocation configurations (paper labels in the module
    docstring table above)."""

    SINGLE_BANK = "single"
    CB = "cb"
    CB_PROFILE = "cb_profile"
    CB_DUP = "cb_dup"
    #: Partial duplication restricted to candidates whose estimated
    #: benefit exceeds their integrity-store penalty — the refinement
    #: the paper's Section 5 proposes for low-PCR cases like spectral.
    CB_DUP_SELECTIVE = "cb_dup_selective"
    FULL_DUP = "full_dup"
    IDEAL = "ideal"
    #: The simple greedy baseline the paper's Section 2 attributes to
    #: Sudarsanam & Malik: allocate variables to alternating banks in
    #: order, with no interference analysis.  Used by the ablation
    #: benchmarks to show what the interference graph buys.
    ALTERNATING = "alternating"

    @property
    def needs_profile(self):
        return self is Strategy.CB_PROFILE

    def __repr__(self):
        return "Strategy.%s" % self.name


#: Display labels matching the paper's figures.
PAPER_LABELS = {
    Strategy.SINGLE_BANK: "baseline",
    Strategy.CB: "CB",
    Strategy.CB_PROFILE: "Pr",
    Strategy.CB_DUP: "Dup",
    Strategy.CB_DUP_SELECTIVE: "SelDup",
    Strategy.FULL_DUP: "FullDup",
    Strategy.IDEAL: "Ideal",
    Strategy.ALTERNATING: "Alt",
}


class AllocationResult:
    """What the allocation pass decided, for inspection and reporting."""

    def __init__(
        self,
        strategy,
        graph=None,
        partition=None,
        duplicated=(),
        duplication_decisions=(),
        partitioner=None,
    ):
        self.strategy = strategy
        #: The interference graph (None for SINGLE_BANK / IDEAL / FULL_DUP).
        self.graph = graph
        #: The :class:`PartitionResult` (None when not partitioned).
        self.partition = partition
        #: Registry name of the partitioner that produced ``partition``
        #: (None when the strategy does not partition).
        self.partitioner = partitioner
        #: Symbols replicated into both banks.
        self.duplicated = list(duplicated)
        #: Selective-duplication log: (symbol, benefit, penalty, selected).
        self.duplication_decisions = list(duplication_decisions)

    @property
    def dual_ported(self):
        """Whether the scheduler should ignore banks (Ideal memory)."""
        return self.strategy is Strategy.IDEAL

    def bank_summary(self, module):
        """Map bank label -> sorted symbol names, for reports."""
        summary = {"X": [], "Y": [], "XY": []}
        for symbol in module.all_symbols():
            if symbol.bank is not None:
                summary[symbol.bank.value].append(symbol.name)
        for names in summary.values():
            names.sort()
        return summary


def _tag_memory_ops(module):
    for op in module.operations():
        if op.is_memory and op.bank is None:
            op.bank = op.symbol.bank


def run_allocation(module, strategy, profile_counts=None, interrupt_safe=True,
                   observe=None, partitioner=DEFAULT_PARTITIONER,
                   partitioner_seed=0):
    """Run the data-allocation pass over *module* under *strategy*.

    The module is mutated (symbol banks, memory-op tags, and — for the
    duplication strategies — rewritten stores), so each module instance
    may be allocated only once; build a fresh module per configuration.

    ``partitioner`` names the interference-graph partitioner
    (:data:`~repro.partition.registry.PARTITIONERS`; the paper's greedy
    by default) used by the CB-family strategies; ``partitioner_seed``
    is the one seed steering greedy tie-breaks and annealing alike.
    Partitioners only move the cut cost, never program semantics, so
    every choice compiles to a correct program (the fuzz oracle's
    partitioner stage checks exactly that).

    ``observe`` is an optional :class:`~repro.obs.core.Recorder`; when
    given, the graph build and the partition each get a timed span
    (``graph_build`` / ``partition``) with their headline metrics, the
    latter tagged with the partitioner name.
    """
    if observe is None:
        from repro.obs.core import NULL_RECORDER as observe
    if partitioner not in PARTITIONERS:
        raise ValueError(
            "unknown partitioner %r (choose from: %s)"
            % (partitioner, ", ".join(sorted(PARTITIONERS)))
        )
    if getattr(module, "_allocated", None) is not None:
        raise RuntimeError(
            "module %r was already allocated with %s; rebuild it before "
            "allocating again" % (module.name, module._allocated)
        )
    module._allocated = strategy

    for symbol in module.all_symbols():
        symbol.bank = MemoryBank.X

    if strategy in (Strategy.SINGLE_BANK, Strategy.IDEAL):
        _tag_memory_ops(module)
        return AllocationResult(strategy)

    if strategy is Strategy.FULL_DUP:
        duplicated = full_duplication_symbols(module, interrupt_safe)
        _tag_memory_ops(module)
        return AllocationResult(strategy, duplicated=duplicated)

    if strategy is Strategy.ALTERNATING:
        for position, symbol in enumerate(module.partitionable_symbols()):
            symbol.bank = MemoryBank.X if position % 2 == 0 else MemoryBank.Y
        _tag_memory_ops(module)
        return AllocationResult(strategy)

    if strategy is Strategy.CB_PROFILE:
        if profile_counts is None:
            raise ValueError("CB_PROFILE requires profile_counts")
        weights = ProfileWeights(profile_counts)
    elif strategy is Strategy.CB_DUP_SELECTIVE and profile_counts is not None:
        # Selective duplication estimates benefit vs penalty; measured
        # execution counts sharpen both estimates when available.
        weights = ProfileWeights(profile_counts)
    else:
        weights = StaticDepthWeights()

    with observe.span("graph_build") as span:
        graph = build_interference_graph(module, weights)
        span.set(
            nodes=len(graph),
            edges=sum(1 for _edge in graph.edges()),
            total_weight=graph.total_weight(),
            duplication_candidates=len(graph.duplication_candidates),
        )
    with observe.span("partition") as span:
        partition = make_partitioner(
            graph, partitioner, seed=partitioner_seed
        ).partition(observe=observe)
        span.set(
            partitioner=partitioner,
            initial_cost=partition.initial_cost,
            final_cost=partition.final_cost,
            moves=len(partition.cost_trace) - 1,
        )
    for symbol in partition.set_x:
        symbol.bank = MemoryBank.X
    for symbol in partition.set_y:
        symbol.bank = MemoryBank.Y

    duplicated = []
    decisions = []
    if strategy is Strategy.CB_DUP:
        duplicated = duplicate_symbols(
            module, graph.duplication_candidates, interrupt_safe
        )
    elif strategy is Strategy.CB_DUP_SELECTIVE:
        chosen, decisions = select_beneficial(module, graph, weights)
        duplicated = duplicate_symbols(module, chosen, interrupt_safe)
    _tag_memory_ops(module)
    return AllocationResult(
        strategy, graph, partition, duplicated, decisions,
        partitioner=partitioner,
    )
