"""Run one faulted simulation and classify its outcome.

The outcome taxonomy (ISSUE 5):

``masked``
    the run completed and every global — both bank images of duplicated
    ones — matches the fault-free reference: the fault had no observable
    architectural effect;
``detected``
    the run completed and the injector's dup cross-check caught at least
    one divergence between a duplicated global's X and Y copies (the
    paper's redundancy paying off as error detection);
``silent``
    the run completed, nothing was detected, but the final globals
    differ from the reference — silent data corruption, the outcome
    duplication exists to prevent;
``crash``
    the machine faulted (:class:`~repro.sim.simulator.SimulationError`:
    bad address, wild pc, stack overflow, …);
``hang``
    the run exceeded its cycle budget
    (:class:`~repro.sim.simulator.CycleLimitError` with
    ``max_cycles`` set to a multiple of the fault-free cycle count).

Cross-backend contract: for the same program and
:class:`~repro.faults.plan.FaultPlan`, all three backends classify
identically, and *completed* runs (masked/detected/silent) are
bit-identical in architectural state and injector record.  Error paths
may legitimately differ in cycle/pc detail (the fast backends check
``max_cycles`` at block granularity and settle ``pc`` on loop entries —
documented in :mod:`repro.sim.fastsim`), so crash/hang runs compare by
outcome and error category only.  :func:`comparable` projects a result
onto exactly the fields the identity suite may assert.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import generate_plan
from repro.ir.symbols import MemoryBank
from repro.sim.errors import classify_fault
from repro.sim.fastsim import make_simulator
from repro.sim.simulator import CycleLimitError, SimulationError

#: outcome classes, worst first (report columns render in this order)
OUTCOMES = ("hang", "crash", "silent", "detected", "masked")

#: faulted runs get this many times the fault-free cycle count (plus
#: slack for tiny programs) before they classify as ``hang``
CYCLE_BUDGET_FACTOR = 4
CYCLE_BUDGET_SLACK = 1024


def _global_state(simulator, module):
    """Every global's observable value(s): the X image, plus the Y image
    for duplicated symbols — so a corruption hiding in either copy makes
    the state differ from the reference."""
    state = {}
    for symbol in module.globals:
        if symbol.bank is MemoryBank.BOTH:
            state[symbol.name] = (
                list(simulator.read_global_copy(symbol.name, MemoryBank.X)),
                list(simulator.read_global_copy(symbol.name, MemoryBank.Y)),
            )
        else:
            values = simulator.read_global(symbol.name)
            state[symbol.name] = values if isinstance(values, list) else [values]
    return state


def reference_run(program, backend="interp"):
    """Fault-free run of *program*: ``(cycles, global state)``.

    The cycle count seeds plan horizons and the faulted run's cycle
    budget; the state is the masked/silent discriminator.
    """
    simulator = make_simulator(program, backend=backend)
    result = simulator.run()
    return result.cycles, _global_state(simulator, program.module)


def run_with_plan(program, plan, backend="interp", reference=None,
                  max_cycles=None, repair=True):
    """Execute *program* with *plan* armed; classify the outcome.

    *reference* is a ``(cycles, state)`` pair from :func:`reference_run`
    (computed here when omitted); *max_cycles* defaults to
    ``reference cycles * CYCLE_BUDGET_FACTOR + CYCLE_BUDGET_SLACK``.
    Returns a JSON-able result dict (see the module docstring for the
    ``outcome`` values); ``digest`` is the full architectural
    :meth:`~repro.sim.simulator.Simulator.state_digest` for completed
    runs and ``None`` on error paths.
    """
    if reference is None:
        reference = reference_run(program, backend=backend)
    reference_cycles, reference_state = reference
    budget = max_cycles
    if budget is None:
        budget = reference_cycles * CYCLE_BUDGET_FACTOR + CYCLE_BUDGET_SLACK
    injector = FaultInjector.for_plan(plan, repair=repair)
    simulator = make_simulator(
        program, backend=backend, interrupt_hook=injector, max_cycles=budget
    )
    error = None
    cycles = None
    digest = None
    try:
        result = simulator.run()
    except CycleLimitError as fault:
        outcome = "hang"
        error = classify_fault(fault, backend=backend)
    except SimulationError as fault:
        outcome = "crash"
        error = classify_fault(fault, backend=backend)
    else:
        cycles = result.cycles
        digest = simulator.state_digest()
        if injector is not None and injector.detections:
            outcome = "detected"
        elif _global_state(simulator, program.module) == reference_state:
            outcome = "masked"
        else:
            outcome = "silent"
    record = injector.record() if injector is not None else {
        "delivered": 0,
        "suppressed": 0,
        "applied": [],
        "detections": [],
        "repairs": 0,
    }
    return {
        "outcome": outcome,
        "backend": backend,
        "cycles": cycles,
        "digest": digest,
        "budget": budget,
        "reference_cycles": reference_cycles,
        "error": None if error is None else {
            "category": error.category,
            "message": str(error),
        },
        **record,
    }


def comparable(result):
    """Projection of a :func:`run_with_plan` result onto the fields the
    cross-backend identity contract covers: everything except
    ``backend`` for completed runs, outcome + error category for
    crash/hang runs (whose cycle/pc detail may differ by design)."""
    if result["outcome"] in ("crash", "hang"):
        error = result.get("error") or {}
        return {
            "outcome": result["outcome"],
            "category": error.get("category"),
        }
    return {
        key: value
        for key, value in result.items()
        if key not in ("backend", "error")
    }


def run_experiment(workload, strategy, seed, backend="interp", events=3,
                   cache=None, repair=True, partitioner="greedy"):
    """One campaign data point: compile *workload* under *strategy*,
    draw a plan from *seed* with the fault-free cycle count as horizon,
    run, classify.

    *cache* (a dict) memoizes compiled programs and reference runs
    across a worker's tasks; *partitioner* selects the
    interference-graph partitioner the CB-family strategies compile
    with.  Returns a flat JSON-able row consumed by
    :func:`repro.faults.campaign.aggregate`.
    """
    from repro.evaluation.runner import _compile_cached
    from repro.sim.tracing import collect_block_counts

    counts = None
    if strategy.needs_profile:
        profile_key = ("faults-profile", workload.name)
        counts = None if cache is None else cache.get(profile_key)
        if counts is None:
            from repro.partition.strategies import Strategy

            baseline = _compile_cached(workload, Strategy.SINGLE_BANK, None, cache)
            counts = collect_block_counts(
                baseline.program, make_simulator(baseline.program).run()
            )
            if cache is not None:
                cache[profile_key] = counts
    compiled = _compile_cached(
        workload, strategy, counts, cache, partitioner=partitioner
    )
    reference_key = (
        "faults-reference", workload.name, strategy.name, backend, partitioner
    )
    reference = None if cache is None else cache.get(reference_key)
    if reference is None:
        reference = reference_run(compiled.program, backend=backend)
        if cache is not None:
            cache[reference_key] = reference
    plan = generate_plan(seed, events=events, horizon=reference[0])
    result = run_with_plan(
        compiled.program, plan, backend=backend, reference=reference,
        repair=repair,
    )
    result.update(
        workload=workload.name,
        strategy=strategy.name,
        seed=seed,
        cadence=plan.cadence,
        duplicated=[symbol.name for symbol in compiled.allocation.duplicated],
    )
    return result
