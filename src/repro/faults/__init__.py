"""Deterministic fault injection and resilience campaigns.

The subsystem ISSUE 5 adds on top of the paper's duplication story:

* :mod:`repro.faults.plan` — seeded, JSON-serializable
  :class:`~repro.faults.plan.FaultPlan` schedules (bank/global bit
  flips, register corruption, stuck-bank windows, delivery jitter);
* :mod:`repro.faults.injector` — delivers a plan through the simulator's
  cadence-aware interrupt-hook protocol (bit-identical on the
  ``interp``/``fast``/``jit`` backends) and cross-checks duplicated
  copies at every delivery;
* :mod:`repro.faults.experiment` — classifies each faulted run
  (masked / detected / silent / crash / hang) against a fault-free
  reference;
* :mod:`repro.faults.campaign` / :mod:`repro.faults.report` — the
  supervised, journal-resumable campaign behind ``repro faults`` and
  its markdown/JSON resilience report.
"""

from repro.faults.injector import FaultInjector, perturb
from repro.faults.plan import FaultPlan, generate_plan

__all__ = ["FaultInjector", "FaultPlan", "generate_plan", "perturb"]
