"""Render a resilience campaign's aggregate report as markdown.

The tables answer the campaign's question directly: per strategy (and
per workload × strategy), how often did an injected fault end up
masked, detected by the duplicated copy, silently corrupting data,
crashing, or hanging — i.e. what does the paper's partial-duplication
redundancy buy as an error-detection mechanism, compared to plain
partitioning (CB) and no partitioning at all (SINGLE_BANK).
"""

from repro.faults.experiment import OUTCOMES
from repro.partition.strategies import PAPER_LABELS, Strategy


def _label(strategy_name):
    """Paper-style label for a strategy name (falls back to the raw
    name for strategies without one)."""
    strategy = Strategy[strategy_name]
    return PAPER_LABELS.get(strategy, strategy_name)


def _rate(value):
    """Percentage with one decimal, e.g. ``'83.3%'``."""
    return "%.1f%%" % (100.0 * value)


def _histogram_row(label, entry):
    cells = [label, str(entry["runs"])]
    cells += [str(entry[outcome]) for outcome in OUTCOMES]
    cells += [
        _rate(entry["masked_rate"]),
        _rate(entry["detection_rate"]),
        _rate(entry["coverage"]),
    ]
    return "| " + " | ".join(cells) + " |"


def _histogram_header(first_column):
    names = " | ".join(OUTCOMES)
    head = "| %s | runs | %s | masked%% | detected%% | coverage%% |" % (
        first_column, names,
    )
    rule = "|" + "---|" * (len(OUTCOMES) + 5)
    return head + "\n" + rule


def render_resilience(report):
    """Markdown resilience report for one campaign's aggregate dict
    (the output of :func:`repro.faults.campaign.aggregate`)."""
    lines = ["# Resilience report", ""]
    lines.append(
        "%d faulted runs, backend `%s`.  Outcomes: **hang** (cycle "
        "budget exceeded), **crash** (machine fault), **silent** "
        "(wrong data, nothing noticed), **detected** (dup cross-check "
        "caught it), **masked** (no observable effect)."
        % (report["runs"], report["backend"])
    )
    lines.append("")
    lines.append("## Per strategy")
    lines.append("")
    lines.append(_histogram_header("strategy"))
    for name, entry in sorted(report["strategies"].items()):
        lines.append(_histogram_row(_label(name), entry))
    lines.append("")
    lines.append("## Per workload")
    for workload, strategies in sorted(report["workloads"].items()):
        lines.append("")
        lines.append("### %s" % workload)
        lines.append("")
        lines.append(_histogram_header("strategy"))
        for name, entry in sorted(strategies.items()):
            lines.append(_histogram_row(_label(name), entry))
    lines.append("")
    return "\n".join(lines)
