"""Resilience campaigns: seeded fault experiments over the workloads.

A campaign is a grid of :func:`repro.faults.experiment.run_experiment`
tasks — ``workloads × strategies × runs`` — pushed through
:func:`repro.evaluation.parallel.supervised_map`, so it survives hung
tasks (per-task timeout), crashed workers (replacement + bounded
retry), and interruption (checkpoint journal: rerun the same command
and it resumes, converging to the same aggregate report).

The default strategy set is the paper's resilience-relevant triple —
``SINGLE_BANK`` (no partitioning), ``CB`` (partitioned, no redundancy),
``CB_DUP`` (partitioned + partial duplication) — because the question
the report answers is *what does the duplicated copy buy you when bits
flip* (detection, per :mod:`repro.faults.injector`).
"""

from repro.evaluation.parallel import supervised_map
from repro.faults.experiment import OUTCOMES, run_experiment
from repro.obs.core import NULL_RECORDER
from repro.partition.strategies import Strategy

#: strategies a campaign runs by default: none / partitioned / duplicated
DEFAULT_STRATEGIES = ("SINGLE_BANK", "CB", "CB_DUP")

#: workloads a campaign runs by default: the registry kernels whose
#: arrays duplication actually touches, plus the Fig-6 autocorrelation
DEFAULT_WORKLOADS = ("autocorr_24_4", "iir_1_1", "fir_32_1")

#: per-worker compile/reference cache (module-level so forked workers
#: accumulate across their tasks)
_WORKER_CACHE = {}


def campaign_workloads():
    """Workload table campaigns draw from: the full registry plus the
    Fig-6 :class:`~repro.workloads.kernels.autocorr.Autocorr` workload
    (which is not in the registry proper — the paper's figure/table
    sets are frozen)."""
    from repro.workloads.kernels.autocorr import Autocorr
    from repro.workloads.registry import all_workloads

    table = dict(all_workloads())
    autocorr = Autocorr()
    table[autocorr.name] = autocorr
    return table


def run_task(workload_name, strategy_name, backend, seed,
             partitioner="greedy"):
    """Worker entry point: one fault experiment, returned as a JSON-able
    row (the unit :func:`supervised_map` journals and retries)."""
    workload = campaign_workloads()[workload_name]
    return run_experiment(
        workload, Strategy[strategy_name], seed, backend=backend,
        cache=_WORKER_CACHE, partitioner=partitioner,
    )


def aggregate(rows, backend="interp"):
    """Fold experiment rows into the resilience report.

    Order-independent (a resumed campaign interleaves journaled and
    fresh rows arbitrarily): per-(workload, strategy) and per-strategy
    outcome histograms plus the headline rates —

    ``masked_rate``
        runs with no observable effect,
    ``detection_rate``
        runs where the dup cross-check caught the corruption,
    ``coverage``
        masked + detected: runs that did **not** end in silent
        corruption, a crash, or a hang.
    """
    per_pair = {}
    for row in rows:
        key = (row["workload"], row["strategy"])
        entry = per_pair.setdefault(
            key,
            {outcome: 0 for outcome in OUTCOMES}
            | {"runs": 0, "detections": 0, "applied": 0, "repairs": 0},
        )
        entry[row["outcome"]] += 1
        entry["runs"] += 1
        entry["detections"] += len(row["detections"])
        entry["applied"] += len(row["applied"])
        entry["repairs"] += row["repairs"]

    def rates(entry):
        runs = entry["runs"] or 1
        entry["masked_rate"] = entry["masked"] / runs
        entry["detection_rate"] = entry["detected"] / runs
        entry["coverage"] = (entry["masked"] + entry["detected"]) / runs
        return entry

    workloads = {}
    strategies = {}
    for (workload, strategy), entry in sorted(per_pair.items()):
        workloads.setdefault(workload, {})[strategy] = rates(dict(entry))
        total = strategies.setdefault(
            strategy,
            {outcome: 0 for outcome in OUTCOMES}
            | {"runs": 0, "detections": 0, "applied": 0, "repairs": 0},
        )
        for key, value in entry.items():
            total[key] += value
    strategies = {name: rates(entry) for name, entry in strategies.items()}
    return {
        "backend": backend,
        "runs": sum(entry["runs"] for entry in strategies.values()),
        "outcomes": list(OUTCOMES),
        "strategies": strategies,
        "workloads": workloads,
    }


def fault_campaign(runs, seed=0, jobs=None, workloads=None, strategies=None,
                   backend="interp", journal=None, timeout=None, retries=2,
                   backoff=0.25, log=None, observe=NULL_RECORDER,
                   partitioner="greedy"):
    """Run a resilience campaign and return its aggregate report.

    *runs* seeded experiments (seeds ``seed .. seed+runs-1``) per
    (workload, strategy) pair; *workloads*/*strategies* default to
    :data:`DEFAULT_WORKLOADS`/:data:`DEFAULT_STRATEGIES`.  *journal*,
    *timeout*, *retries*, *backoff*, *jobs*, and *log* are passed to
    :func:`~repro.evaluation.parallel.supervised_map` — worker deaths
    and timeouts retry, everything completed lands in the journal, and
    an interrupted campaign rerun with the same journal resumes and
    converges to the same report.  The report embeds *observe*'s
    counters under ``"obs"`` when a real recorder is supplied.

    *partitioner* selects the interference-graph partitioner the
    CB-family strategies compile with; a non-default choice becomes part
    of each task (and so of its journal key), while the default keeps
    the historical task shape so existing greedy journals resume.
    """
    table = campaign_workloads()
    if workloads is None:
        workloads = DEFAULT_WORKLOADS
    unknown = [name for name in workloads if name not in table]
    if unknown:
        raise ValueError(
            "unknown workload(s) %s (choose from: %s)"
            % (", ".join(unknown), ", ".join(sorted(table)))
        )
    if strategies is None:
        strategies = DEFAULT_STRATEGIES
    strategies = [Strategy[name].name for name in strategies]
    extra = () if partitioner == "greedy" else (partitioner,)
    tasks = [
        (workload, strategy, backend, seed + run) + extra
        for workload in workloads
        for strategy in strategies
        for run in range(runs)
    ]
    with observe.span("faults.campaign"):
        rows = supervised_map(
            run_task, tasks, jobs=jobs, timeout=timeout, retries=retries,
            backoff=backoff, journal=journal, log=log, observe=observe,
        )
    report = aggregate(rows, backend=backend)
    report["partitioner"] = partitioner
    observe.counter("faults.rows", len(rows))
    if observe is not NULL_RECORDER:
        report["obs"] = observe.to_dict()
    return report
