"""Seeded, serializable fault plans.

A :class:`FaultPlan` is to the fault injector what a
:class:`~repro.fuzz.generator.Recipe` is to the fuzzer: a small,
JSON-serializable value that *deterministically* describes one faulted
run.  Same plan + same program + same backend ⇒ bit-identical run, which
is what lets the identity suite assert that all three simulator backends
classify every fault the same way.

Events are plain lists (JSON-stable, like recipe statements) tagged by
kind:

``["bank", cycle, bank, address, bit]``
    flip *bit* of the word at *address* in data bank *bank* (0=X, 1=Y);
``["glob", cycle, symbol, element, bit, copy]``
    flip a bit inside global number *symbol* (module order); for a
    duplicated global *copy* picks the X or Y image — the shape that
    exercises the paper's dup-copy redundancy directly;
``["reg", cycle, rclass, index, bit]``
    corrupt one register slot (rclass 0=ADDR, 1=INT, 2=FLOAT);
``["stuck", cycle, bank, address, length, window]``
    bank *bank* returns stale values for the region
    ``[address, address+length)`` for *window* cycles: the injector
    snapshots the region when the window opens and re-imposes the
    snapshot at every delivery inside the window (delivery-point
    granularity — see :mod:`repro.faults.injector`);
``["jitter", cycle, skip]``
    delivery jitter: the next ``1 + skip % 4`` hook deliveries are
    suppressed (their injections and coherence checks do not happen).

All integers are clamped on *arm* (modulo the target program's actual
sizes), never on construction — any plan is valid for any program, the
way recipe statements clamp on build.
"""

import json
import random

#: bump when the serialized format changes incompatibly
VERSION = 1

#: event kinds a plan may contain, in generation-weight order
EVENT_KINDS = ("glob", "bank", "reg", "stuck", "jitter")

#: hook cadences plans draw from (small primes, like the fuzzer's
#: interrupt periods — coprime to most loop trip counts)
CADENCES = (3, 5, 7, 11, 13)


class FaultPlan:
    """One deterministic fault schedule: a seed, a hook cadence, and a
    list of per-cycle fault events (see the module docstring for the
    event grammar)."""

    def __init__(self, seed, cadence=7, events=None):
        self.seed = seed
        self.cadence = cadence
        self.events = [list(event) for event in (events or [])]

    # -- serialization (mirrors fuzz.generator.Recipe) -----------------
    def to_dict(self):
        """Plain-data form (JSON-stable)."""
        return {
            "version": VERSION,
            "seed": self.seed,
            "cadence": self.cadence,
            "events": [list(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a plan from :meth:`to_dict` output."""
        if data.get("version") != VERSION:
            raise ValueError(
                "fault plan version %r != supported %d"
                % (data.get("version"), VERSION)
            )
        return cls(
            seed=data["seed"],
            cadence=data["cadence"],
            events=data["events"],
        )

    def to_json(self):
        """Serialize to a JSON string (sorted keys, so equal plans
        serialize identically)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text):
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def __eq__(self, other):
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(self.to_json())

    def __repr__(self):
        return "<FaultPlan seed=%r cadence=%d events=%d>" % (
            self.seed,
            self.cadence,
            len(self.events),
        )


def generate_plan(seed, events=3, horizon=1000, cadence=None):
    """Draw a :class:`FaultPlan` from *seed*.

    *events* faults are scheduled uniformly over ``[1, horizon]``
    (pass the fault-free run's cycle count as *horizon* so faults land
    while the program is actually executing).  *cadence* defaults to a
    seed-chosen small prime.  Deterministic: same arguments ⇒ equal
    plans, the property the resume/identity tests lean on.
    """
    rng = random.Random((seed & 0xFFFFFFFF) ^ 0x5EED_FA17)
    if cadence is None:
        cadence = rng.choice(CADENCES)
    horizon = max(2, horizon)
    drawn = []
    for _ in range(max(1, events)):
        kind = rng.choices(
            EVENT_KINDS, weights=(5, 3, 2, 1, 1), k=1
        )[0]
        cycle = rng.randrange(1, horizon)
        if kind == "glob":
            drawn.append(
                ["glob", cycle, rng.randrange(64), rng.randrange(4096),
                 rng.randrange(16), rng.randrange(2)]
            )
        elif kind == "bank":
            drawn.append(
                ["bank", cycle, rng.randrange(2), rng.randrange(4096),
                 rng.randrange(16)]
            )
        elif kind == "reg":
            drawn.append(
                ["reg", cycle, rng.randrange(3), rng.randrange(32),
                 rng.randrange(16)]
            )
        elif kind == "stuck":
            drawn.append(
                ["stuck", cycle, rng.randrange(2), rng.randrange(4096),
                 1 + rng.randrange(8), cadence * (1 + rng.randrange(4))]
            )
        else:
            drawn.append(["jitter", cycle, rng.randrange(4)])
    drawn.sort(key=lambda event: (event[1], EVENT_KINDS.index(event[0])))
    return FaultPlan(seed=seed, cadence=cadence, events=drawn)
