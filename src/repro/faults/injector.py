"""The fault injector: a cadence-advertising interrupt hook.

:class:`FaultInjector` delivers the events of one
:class:`~repro.faults.plan.FaultPlan` through the simulator's existing
interrupt-hook protocol (documented in :mod:`repro.sim.interrupts`): it
advertises an integer ``cadence``, is a strict no-op off-cadence, reads
and writes memory/registers at delivery points, and never redirects
``pc``.  Riding the hook protocol is what makes injection bit-identical
on all three backends — the ``jit`` backend synchronizes its promoted
state around exactly these delivery points, and the delivery cycles
themselves are already proven identical by the interrupt test suite.

Semantics per delivery (in order, all deterministic):

1. *stuck windows*: every open window re-imposes its snapshot on its
   bank region (the bank "returns stale values"); expired windows close.
   Delivery-point granularity: between deliveries the bank behaves
   normally — the model is a periodic-refresh corruption, not a
   cycle-accurate bus fault;
2. *due events*: every plan event with ``event cycle <= current cycle``
   that has not fired yet fires now (first delivery at or after its
   scheduled cycle), clamped to the program's real sizes;
3. *dup cross-check*: the X and Y images of every duplicated global are
   compared.  A divergence is recorded as a *detection* and — by
   default — repaired by copying X over Y (a deterministic recovery
   policy standing in for the paper's redundant-copy readback).

Because faults land only at delivery points and hooks never fire inside
a store-lock window, injection composes with the paper's
store-lock/store-unlock protocol exactly like a real interrupt would.
"""

from repro.faults.plan import FaultPlan
from repro.ir.symbols import MemoryBank
from repro.ir.types import RegClass
from repro.sim.simulator import _BANK_INDEX, _BANK_X, _BANK_Y

#: register classes addressable by ``reg`` events, in event order
_REG_CLASSES = (RegClass.ADDR, RegClass.INT, RegClass.FLOAT)


def perturb(value, bit):
    """Deterministically corrupt one machine word.

    Integers get a genuine single-bit flip (XOR with ``1 << bit``).
    Floats are Python doubles standing in for DSP accumulator words, so
    a literal bit flip is not portable; instead bit 15 flips the sign
    and any other bit adds ``2**bit`` — a fixed, architecture-neutral
    perturbation of comparable magnitude.  Non-numeric values (never
    produced by the simulator, but journals may replay odd states) pass
    through unchanged.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    if isinstance(value, int):
        return value ^ (1 << bit)
    if bit == 15:
        return -value
    return value + float(1 << bit)


class FaultInjector:
    """Delivers one :class:`~repro.faults.plan.FaultPlan` through the
    cadence hook protocol and cross-checks duplicated copies.

    One injector serves one run: it binds to the first simulator it is
    called with and accumulates that run's delivery/application/
    detection record (read by the outcome classifier in
    :mod:`repro.faults.experiment`).
    """

    def __init__(self, plan, repair=True):
        self.plan = plan
        #: copy X over Y when a dup divergence is detected (keeps the
        #: run deterministic after detection; False leaves the
        #: corruption in place so it can propagate)
        self.repair = repair
        #: hook deliveries that actually ran (on-cadence calls)
        self.delivered = 0
        #: deliveries suppressed by jitter events
        self.suppressed = 0
        #: events applied, as ``[cycle, kind, detail...]`` records
        self.applied = []
        #: dup divergences observed, as ``[cycle, symbol]`` records
        self.detections = []
        #: divergences repaired (== detections when ``repair``)
        self.repairs = 0
        self._events = sorted(
            (list(event) for event in plan.events),
            key=lambda event: event[1],
        )
        self._cursor = 0
        self._skip = 0
        #: open stuck windows: [expires_cycle, bank_index, base, snapshot]
        self._windows = []
        self._simulator = None
        self._checked = ()

    @classmethod
    def for_plan(cls, plan, repair=True):
        """Injector for *plan*, or ``None`` when the plan is disarmed.

        ``None`` / event-less plans install **no hook at all**, so the
        simulator keeps its fused no-hook fast path — the structural
        guarantee behind the <2% fault-off overhead gate in
        ``benchmarks/bench_simspeed.py``.
        """
        if plan is None or not plan.events:
            return None
        return cls(plan, repair=repair)

    @property
    def cadence(self):
        """Delivery cadence advertised to cadence-aware backends: this
        hook is a strict no-op whenever ``cycle % cadence != 0`` and
        never redirects ``pc`` (the loopjit contract)."""
        return self.plan.cadence

    # ------------------------------------------------------------------
    def _bind(self, simulator):
        self._simulator = simulator
        module = simulator.program.module
        self._symbols = list(module.globals)
        self._checked = [
            symbol.name
            for symbol in self._symbols
            if symbol.bank is MemoryBank.BOTH
        ]

    def __call__(self, simulator, cycle):
        if cycle % self.plan.cadence:
            return
        if self._simulator is not simulator:
            self._bind(simulator)
        self.delivered += 1
        if self._skip:
            self._skip -= 1
            self.suppressed += 1
            return
        self._refresh_windows(simulator, cycle)
        events = self._events
        while self._cursor < len(events) and events[self._cursor][1] <= cycle:
            self._apply(simulator, cycle, events[self._cursor])
            self._cursor += 1
        self._check_duplicates(simulator, cycle)

    # ------------------------------------------------------------------
    def _refresh_windows(self, simulator, cycle):
        """Re-impose every open stuck window's snapshot; close expired
        ones."""
        if not self._windows:
            return
        live = []
        for window in self._windows:
            expires, bank_index, base, snapshot = window
            if cycle <= expires:
                simulator.memory[bank_index][base : base + len(snapshot)] = (
                    snapshot
                )
                live.append(window)
        self._windows = live

    def _apply(self, simulator, cycle, event):
        """Arm one plan event against the bound simulator, clamping all
        coordinates to the program's actual sizes."""
        kind = event[0]
        if kind == "glob":
            symbols = self._symbols
            if not symbols:
                return
            symbol = symbols[int(event[2]) % len(symbols)]
            element = int(event[3]) % symbol.size
            bit = int(event[4]) % 16
            bank, base = simulator.program.layout.address_of(symbol.name)
            if bank is MemoryBank.BOTH:
                bank_index = int(event[5]) % 2
            else:
                bank_index = _BANK_INDEX[bank]
            memory = simulator.memory[bank_index]
            address = base + element
            memory[address] = perturb(memory[address], bit)
            self.applied.append(
                [cycle, "glob", symbol.name, element, bit, bank_index]
            )
        elif kind == "bank":
            bank_index = int(event[2]) % 2
            size = simulator.data_size[bank_index]
            if not size:
                return
            address = int(event[3]) % size
            bit = int(event[4]) % 16
            memory = simulator.memory[bank_index]
            memory[address] = perturb(memory[address], bit)
            self.applied.append([cycle, "bank", bank_index, address, bit])
        elif kind == "reg":
            rclass = _REG_CLASSES[int(event[2]) % len(_REG_CLASSES)]
            index = int(event[3]) % 32
            bit = int(event[4]) % 16
            rfile = simulator.registers[rclass]
            rfile[index] = perturb(rfile[index], bit)
            self.applied.append([cycle, "reg", rclass.name, index, bit])
        elif kind == "stuck":
            bank_index = int(event[2]) % 2
            size = simulator.data_size[bank_index]
            if not size:
                return
            base = int(event[3]) % size
            length = max(1, min(int(event[4]), size - base))
            window = max(self.plan.cadence, int(event[5]))
            snapshot = list(
                simulator.memory[bank_index][base : base + length]
            )
            self._windows.append([cycle + window, bank_index, base, snapshot])
            self.applied.append([cycle, "stuck", bank_index, base, length])
        elif kind == "jitter":
            skip = 1 + int(event[2]) % 4
            self._skip += skip
            self.applied.append([cycle, "jitter", skip])

    def _check_duplicates(self, simulator, cycle):
        """Cross-check (and optionally repair) every duplicated global's
        two bank images — the detection layer the resilience report
        scores."""
        for name in self._checked:
            copy_x = simulator.read_global_copy(name, MemoryBank.X)
            copy_y = simulator.read_global_copy(name, MemoryBank.Y)
            if copy_x != copy_y:
                self.detections.append([cycle, name])
                if self.repair:
                    _bank, base = simulator.program.layout.address_of(name)
                    size = len(copy_x)
                    simulator.memory[_BANK_Y][base : base + size] = (
                        simulator.memory[_BANK_X][base : base + size]
                    )
                    self.repairs += 1

    def record(self):
        """JSON-able summary of what this run's injector observed."""
        return {
            "delivered": self.delivered,
            "suppressed": self.suppressed,
            "applied": [list(entry) for entry in self.applied],
            "detections": [list(entry) for entry in self.detections],
            "repairs": self.repairs,
        }


# re-exported for callers that build plans and injectors together
__all__ = ["FaultInjector", "FaultPlan", "perturb"]
