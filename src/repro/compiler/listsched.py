"""The list-scheduling core shared by graph construction and compaction.

This implements the operation-compaction algorithm of paper Figure 3,
which is based on local microcode compaction [Landskov et al. 1980]:

* a data-dependence graph is built for the basic block;
* each operation's priority is its number of descendants;
* the data-ready set (DRS) — operations whose flow/output predecessors
  have all been scheduled in earlier instructions — is processed in
  priority order, packing operations into the current long instruction;
* an operation with an *anti*-dependence on an operation already placed in
  the current instruction may still join it (reads happen before writes
  within a cycle), which is the paper's data-compatibility rule;
* function-unit compatibility is delegated to a policy object, so the same
  engine serves two masters:

  - **allocation mode** (:class:`repro.partition.graph_builder`): one
    memory unit is assumed, and each memory operation that is data-ready
    but blocked behind an already-placed memory operation contributes an
    interference edge (or a duplication mark);
  - **schedule mode** (:class:`repro.compiler.compaction`): the real nine
    units are modelled and bank tags route memory operations to MU0/MU1.

Terminators and pseudo operations (``LOOP_END``, ``NOP``) are excluded
from scheduling; the compaction pass re-attaches them to the block's final
instruction.
"""

from repro.ir.operations import OpCode


class SchedulePolicy:
    """Callbacks customizing one run of the list scheduler."""

    def begin_round(self):
        """Called when a new (virtual) long instruction is opened."""

    def try_place(self, index, op):
        """Attempt to place *op*; return True when a unit accepted it."""
        raise NotImplementedError

    def memory_blocked(self, index, op, first_index, first_op):
        """Called when a data-ready memory op cannot issue because the
        memory resource is held by *first_op*, the first memory operation
        placed in the current instruction (paper Figure 3 italics)."""

    def end_round(self, placed):
        """Called when the current instruction closes; *placed* lists the
        ``(index, op)`` pairs it contains."""


def schedulable_indices(graph):
    """Indices of operations that participate in list scheduling.

    Terminators and ``LOOP_BEGIN`` are excluded: both must end up in the
    block's final instruction (a zero-trip hardware loop *skips* every
    instruction after the one holding its ``LOOP_BEGIN``, so nothing may
    be scheduled behind it), and the compaction pass attaches them after
    the normal operations are placed.
    """
    indices = []
    for i, op in enumerate(graph.ops):
        if op.is_terminator or op.opcode is OpCode.LOOP_BEGIN:
            continue
        if op.opcode in (OpCode.LOOP_END, OpCode.NOP):
            continue
        indices.append(i)
    return indices


def run_list_schedule(graph, policy):
    """Run the compaction algorithm over *graph* using *policy*.

    Returns the number of (virtual) instructions formed.  Raises
    ``RuntimeError`` if no progress can be made (which would indicate a
    cyclic dependence graph or a policy that refuses every op).
    """
    candidates = schedulable_indices(graph)
    priorities = graph.priorities()
    scheduled = set()
    remaining = set(candidates)
    rounds = 0

    def ready(index):
        # Flow/output predecessors must sit in strictly earlier
        # instructions; ops placed in the current instruction are still in
        # `remaining`, so they correctly block their hard successors.
        for pred in graph.hard_preds(index):
            if pred in remaining:
                return False
        return True

    def anti_ok(index, in_current):
        for pred, kinds in graph.preds[index].items():
            if pred in remaining and pred not in in_current:
                return False
        return True

    while remaining:
        rounds += 1
        policy.begin_round()
        in_current = set()
        placed = []
        first_mem = None
        blocked_reported = set()

        # Data-ready set: flow/output predecessors all in earlier
        # instructions; sorted by priority (descendants), ties by
        # program order for determinism.
        drs = [i for i in remaining if ready(i)]
        drs.sort(key=lambda i: (-priorities[i], i))
        if not drs:
            raise RuntimeError("list scheduler made no progress (cyclic graph?)")

        # Two passes: the DRS proper, then the anti-extension — operations
        # whose only outstanding predecessors are anti-dependences on
        # operations placed in this very instruction.
        progress = True
        considered = set(drs)
        while progress:
            progress = False
            for index in drs:
                if index in in_current:
                    continue
                if not anti_ok(index, in_current):
                    continue
                op = graph.ops[index]
                if policy.try_place(index, op):
                    in_current.add(index)
                    placed.append((index, op))
                    progress = True
                    if op.is_memory and first_mem is None:
                        first_mem = (index, op)
                elif (
                    op.is_memory
                    and first_mem is not None
                    and index not in blocked_reported
                ):
                    blocked_reported.add(index)
                    policy.memory_blocked(index, op, first_mem[0], first_mem[1])
            if progress:
                # Recompute the extension: anti-only followers of ops just
                # placed become eligible for this same instruction.
                extension = [
                    i
                    for i in remaining
                    if i not in considered
                    and i not in in_current
                    and ready(i)
                    and anti_ok(i, in_current)
                ]
                if extension:
                    extension.sort(key=lambda i: (-priorities[i], i))
                    drs = drs + extension
                    considered.update(extension)

        if not in_current:
            raise RuntimeError(
                "list scheduler stalled with %d ops remaining" % len(remaining)
            )
        remaining -= in_current
        scheduled |= in_current
        policy.end_round(placed)

    return rounds
