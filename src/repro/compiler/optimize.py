"""Machine-independent cleanup: dead-code elimination.

The DSL's lowering is careful (destination hints, hoisted constants,
induction reduction), but dead operations can still arise — an unused
loop index's initialization, a value computed for a branch arm that
every path overwrites, or user-level scaffolding.  This pass removes
side-effect-free operations whose results are never read.

It is conservative and function-global: a register counts as *used* if
any operation anywhere in the function reads it (control-flow paths are
not analyzed), so no live value can ever be removed.  Memory and control
operations are never candidates.

Enabled with ``CompileOptions(optimize=True)``; it runs after the
data-allocation pass (removal never changes bank decisions already
made — the paper's pass order computes allocation from the optimized
stream, and our builders emit effectively dead-code-free IR, so the
default stays off to keep measured configurations exactly reproducible).
"""

from repro.ir.operations import OpKind


def _is_removable(op):
    return (
        op.info.kind is OpKind.COMPUTE
        and op.dest is not None
    )


def eliminate_dead_code(module):
    """Remove dead computations from every function of *module*.

    Returns the total number of operations removed.
    """
    removed_total = 0
    for function in module.functions.values():
        removed_total += _eliminate_in_function(function)
    return removed_total


def _eliminate_in_function(function):
    removed_total = 0
    while True:
        use_counts = {}
        for op in function.operations():
            for reg in op.reads():
                use_counts[reg] = use_counts.get(reg, 0) + 1

        removed_this_round = 0
        for block in function.blocks:
            kept = []
            for op in block.ops:
                if _is_removable(op):
                    uses = use_counts.get(op.dest, 0)
                    # FMAC reads its own destination; discount self-reads.
                    self_reads = sum(1 for r in op.reads() if r is op.dest)
                    if uses - self_reads == 0:
                        removed_this_round += 1
                        continue
                kept.append(op)
            block.ops = kept
        removed_total += removed_this_round
        if removed_this_round == 0:
            return removed_total
