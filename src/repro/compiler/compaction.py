"""The operation-compaction pass: packing operations into long instructions.

This is the scheduling-mode twin of the allocation-mode run in
:mod:`repro.partition.graph_builder`: the same list-scheduling engine, but
with the real nine functional units and with memory operations routed by
the bank tags the allocation pass attached:

* a bank-X operation may only use MU0, a bank-Y operation only MU1;
* a load of a *duplicated* symbol (bank ``BOTH``) may use whichever memory
  unit is free — the tag is narrowed to the chosen copy's bank so the
  simulator reads a concrete location;
* under the Ideal (dual-ported) configuration banks do not constrain unit
  choice at all.

Terminators are appended after scheduling: they share the block's final
instruction when the PCU is free and no operation in that instruction
feeds them; otherwise they occupy a new instruction.  ``LOOP_END``
markers attach to the block's final instruction, making it the
zero-overhead back-edge point of the enclosing hardware loop.
"""

from repro.analysis.dependence import build_dependence_graph
from repro.compiler.listsched import SchedulePolicy, run_list_schedule
from repro.ir.operations import OpCode
from repro.ir.symbols import MemoryBank
from repro.machine.instruction import LongInstruction
from repro.machine.resources import FunctionalUnit, units_for_class


class _EmitPolicy(SchedulePolicy):
    """Packs operations into :class:`LongInstruction` bundles."""

    def __init__(self, block, dual_ported, bank_pressure):
        self.block = block
        self.dual_ported = dual_ported
        #: remaining unscheduled memory ops per concrete bank, used to
        #: steer duplicated loads towards the less-contended memory unit
        self.bank_pressure = dict(bank_pressure)
        self.instructions = []
        self.round_of = {}
        self._current = None
        # Store-lock pairing: each locked primary store opens an interrupt
        # lock that its shadow store closes.  The dependence graph leaves
        # the pair deliberately unordered (so both can pack into one
        # instruction), which means placement must enforce the protocol:
        # a shadow may not issue before its primary, and a second pair may
        # not open while an earlier pair is still half-placed — otherwise
        # the lone unlock of the first pair would expose the second pair's
        # half-updated copies to an interrupt.
        self._shadow_primary = {}
        self._primary_shadow = {}
        open_primary = {}
        for i, op in enumerate(block.ops):
            if op.is_store and op.locked:
                if op.shadow:
                    primary = open_primary.pop(id(op.symbol), None)
                    if primary is not None:
                        self._shadow_primary[i] = primary
                        self._primary_shadow[primary] = i
                else:
                    open_primary[id(op.symbol)] = i
        self._open_pairs = set()

    def begin_round(self):
        self._current = LongInstruction(self.block.label)

    def _lock_ok(self, index):
        primary = self._shadow_primary.get(index)
        if primary is not None:
            # Shadow: its primary must already be placed (this round or an
            # earlier one — same-instruction pairs cancel and are safe).
            return primary in self.round_of
        if index in self._primary_shadow and self._open_pairs:
            # Primary: no other pair may be mid-flight.
            return False
        return True

    def _memory_unit(self, op):
        if self.dual_ported:
            for unit in (FunctionalUnit.MU0, FunctionalUnit.MU1):
                if self._current.unit_free(unit):
                    return unit, None
            return None, None
        bank = op.bank
        if bank is MemoryBank.X:
            unit = FunctionalUnit.MU0
            return (unit, None) if self._current.unit_free(unit) else (None, None)
        if bank is MemoryBank.Y:
            unit = FunctionalUnit.MU1
            return (unit, None) if self._current.unit_free(unit) else (None, None)
        # Duplicated load: either copy works; prefer the bank with fewer
        # outstanding concrete-bank operations in this block.
        order = (
            (FunctionalUnit.MU1, MemoryBank.Y, FunctionalUnit.MU0, MemoryBank.X)
            if self.bank_pressure.get(MemoryBank.Y, 0)
            <= self.bank_pressure.get(MemoryBank.X, 0)
            else (FunctionalUnit.MU0, MemoryBank.X, FunctionalUnit.MU1, MemoryBank.Y)
        )
        first_unit, first_bank, second_unit, second_bank = order
        if self._current.unit_free(first_unit):
            return first_unit, first_bank
        if self._current.unit_free(second_unit):
            return second_unit, second_bank
        return None, None

    def try_place(self, index, op):
        if op.is_memory:
            if not self._lock_ok(index):
                return False
            unit, narrowed_bank = self._memory_unit(op)
            if unit is None:
                return False
            if narrowed_bank is not None:
                op.bank = narrowed_bank
            elif not self.dual_ported and op.bank in (MemoryBank.X, MemoryBank.Y):
                self.bank_pressure[op.bank] = self.bank_pressure.get(op.bank, 1) - 1
            self._current.add(unit, op)
            self.round_of[index] = len(self.instructions)
            if index in self._primary_shadow:
                self._open_pairs.add(index)
            else:
                self._open_pairs.discard(self._shadow_primary.get(index))
            return True
        for unit in units_for_class(op.unit):
            if self._current.unit_free(unit):
                self._current.add(unit, op)
                self.round_of[index] = len(self.instructions)
                return True
        return False

    def end_round(self, placed):
        self.instructions.append(self._current)
        self._current = None


def _bank_pressure(ops):
    pressure = {MemoryBank.X: 0, MemoryBank.Y: 0}
    for op in ops:
        if op.is_memory and op.bank in pressure:
            pressure[op.bank] += 1
    return pressure


def compact_block(block, dual_ported=False):
    """Schedule one block into a list of :class:`LongInstruction`.

    Hardware-loop end markers are attached to the final instruction's
    ``loop_ends`` so the assembler can record the back-edge address.
    """
    graph = build_dependence_graph(block.ops)
    policy = _EmitPolicy(block, dual_ported, _bank_pressure(block.ops))

    has_schedulable = any(
        not (
            op.is_terminator
            or op.opcode in (OpCode.LOOP_END, OpCode.NOP, OpCode.LOOP_BEGIN)
        )
        for op in block.ops
    )
    if has_schedulable:
        run_list_schedule(graph, policy)
    instructions = policy.instructions

    # Tail operations — LOOP_BEGIN then the terminator — must close the
    # block, in program order, one PCU slot each.
    tail_indices = [
        i
        for i, op in enumerate(block.ops)
        if op.opcode is OpCode.LOOP_BEGIN or op.is_terminator
    ]
    for t_index in tail_indices:
        tail_op = block.ops[t_index]
        placed = False
        if instructions:
            last = instructions[-1]
            last_round = len(instructions) - 1
            feeds_tail = any(
                policy.round_of.get(pred) == last_round
                for pred in graph.hard_preds(t_index)
            )
            if last.unit_free(FunctionalUnit.PCU) and not feeds_tail:
                last.add(FunctionalUnit.PCU, tail_op)
                placed = True
        if not placed:
            extra = LongInstruction(block.label)
            extra.add(FunctionalUnit.PCU, tail_op)
            instructions.append(extra)
        policy.round_of[t_index] = len(instructions) - 1

    loop_end_ids = [
        op.target.name for op in block.ops if op.opcode is OpCode.LOOP_END
    ]
    if loop_end_ids and not instructions:
        # A latch block with nothing but the marker still needs a real
        # instruction for the hardware loop's back-edge test.
        instructions.append(LongInstruction(block.label))
    if instructions:
        instructions[-1].loop_ends.extend(loop_end_ids)
    return instructions
