"""Inner-loop unrolling.

Counted hardware loops with a compile-time trip count divisible by the
unroll factor get their body replicated: the replicas keep sequential
semantics (each copy sees the index registers after the previous copy's
increments), so no register renaming is needed — the compaction pass
then overlaps the copies wherever dependences allow, which raises
memory-level parallelism across iterations without software pipelining's
prologue/epilogue restructuring.

Opt-in via ``CompileOptions(unroll_factor=k)``; an accompanying ablation
benchmark compares it against (and combined with) software pipelining.
"""

from repro.ir.operations import OpCode, Operation
from repro.ir.values import Immediate


class UnrollReport:
    def __init__(self):
        #: (function name, loop id, factor)
        self.unrolled = []

    def __repr__(self):
        return "<UnrollReport loops=%d>" % len(self.unrolled)


def _clone(op):
    return Operation(
        op.opcode,
        dest=op.dest,
        sources=op.sources,
        symbol=op.symbol,
        target=op.target,
        callee=op.callee,
        bank=op.bank,
        locked=op.locked,
        shadow=op.shadow,
    )


def _loop_begin(preheader, loop_id):
    for op in preheader.ops:
        if op.opcode is OpCode.LOOP_BEGIN and op.target.name == loop_id:
            return op
    return None


def _unroll_one(preheader, body, factor, report, function_name):
    loop_id = body.hw_loop
    begin = _loop_begin(preheader, loop_id)
    if begin is None:
        return False
    count = begin.sources[0]
    if not isinstance(count, Immediate):
        return False
    if count.value < factor or count.value % factor != 0:
        return False
    if any(
        op.opcode in (OpCode.CALL, OpCode.LOOP_BEGIN) or op.is_terminator
        for op in body.ops
    ):
        return False

    kernel = [op for op in body.ops if op.opcode is not OpCode.LOOP_END]
    marker = [op for op in body.ops if op.opcode is OpCode.LOOP_END]
    new_ops = list(kernel)
    for _ in range(factor - 1):
        new_ops.extend(_clone(op) for op in kernel)
    new_ops.extend(marker)
    body.ops = new_ops
    begin.sources = (Immediate(count.value // factor),)
    report.unrolled.append((function_name, loop_id, factor))
    return True


def unroll_inner_loops(module, factor):
    """Unroll every eligible single-block hardware loop by *factor*."""
    report = UnrollReport()
    if factor <= 1:
        return report
    for function in module.functions.values():
        for index, block in enumerate(function.blocks):
            if block.hw_loop is None or index == 0:
                continue
            has_end = any(
                op.opcode is OpCode.LOOP_END
                and op.target.name == block.hw_loop
                for op in block.ops
            )
            if not has_end:
                continue
            _unroll_one(
                function.blocks[index - 1],
                block,
                factor,
                report,
                function.name,
            )
    return report
