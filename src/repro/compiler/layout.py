"""Static data layout: placing global symbols at bank addresses.

Each bank has its own independent word-addressed space.  Duplicated
globals are allocated *before* other globals so the same address accesses
either copy (paper Section 3.2); then X-resident and Y-resident globals
follow in their banks.
"""

from repro.ir.symbols import MemoryBank


class DataLayout:
    """Addresses of global symbols, plus total static sizes per bank."""

    def __init__(self):
        #: symbol name -> (bank, address); duplicated symbols have bank
        #: BOTH and one address valid in both banks
        self.addresses = {}
        self.data_size_x = 0
        self.data_size_y = 0

    def address_of(self, symbol_name):
        return self.addresses[symbol_name]

    def __repr__(self):
        return "<DataLayout X=%d Y=%d words>" % (self.data_size_x, self.data_size_y)


def layout_globals(module):
    """Compute the :class:`DataLayout` for *module*'s globals."""
    layout = DataLayout()
    symbols = list(module.globals)
    duplicated = [s for s in symbols if s.bank is MemoryBank.BOTH]
    x_only = [s for s in symbols if s.bank is MemoryBank.X]
    y_only = [s for s in symbols if s.bank is MemoryBank.Y]

    address_x = 0
    address_y = 0
    for symbol in duplicated:
        common = max(address_x, address_y)
        layout.addresses[symbol.name] = (MemoryBank.BOTH, common)
        address_x = common + symbol.size
        address_y = common + symbol.size
    for symbol in x_only:
        layout.addresses[symbol.name] = (MemoryBank.X, address_x)
        address_x += symbol.size
    for symbol in y_only:
        layout.addresses[symbol.name] = (MemoryBank.Y, address_y)
        address_y += symbol.size
    layout.data_size_x = address_x
    layout.data_size_y = address_y
    return layout
