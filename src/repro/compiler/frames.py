"""Dual program stacks: frame layout and callee save/restore.

To allow parallel accesses to local variables, the compiler maintains two
program stacks — one per memory bank, each with its own stack pointer
(paper Section 3.1).  A function's frame is therefore a pair of regions,
one on each stack; local symbols are placed at offsets within the region
of their assigned bank.

Duplicated locals are allocated *first* so that the same offset addresses
the variable on both stacks (paper Section 3.2), and callee save/restore
operations are dealt to alternating banks so that register saves and
restores pair up into single long instructions.
"""

from repro.compiler.regalloc import ALLOCATABLE, phys
from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import MemoryBank, Storage, Symbol
from repro.ir.types import DataType, RegClass
from repro.ir.values import Immediate


class FrameLayout:
    """Per-function frame metadata consumed by the simulator."""

    def __init__(self, function_name):
        self.function_name = function_name
        #: words of frame on the X / Y stacks
        self.size_x = 0
        self.size_y = 0
        #: symbol name -> (bank, offset); duplicated locals appear with
        #: bank BOTH and a single offset valid on both stacks
        self.offsets = {}

    def place(self, symbol, bank, offset):
        self.offsets[symbol.name] = (bank, offset)

    def offset_of(self, symbol_name):
        return self.offsets[symbol_name]

    def __repr__(self):
        return "<FrameLayout %s X=%d Y=%d>" % (
            self.function_name,
            self.size_x,
            self.size_y,
        )


def layout_frame(function):
    """Assign every local symbol a (bank, offset) within the frame."""
    layout = FrameLayout(function.name)
    locals_ = function.local_symbols()
    duplicated = [s for s in locals_ if s.bank is MemoryBank.BOTH]
    x_only = [s for s in locals_ if s.bank is MemoryBank.X]
    y_only = [s for s in locals_ if s.bank is MemoryBank.Y]

    offset_x = 0
    offset_y = 0
    # Duplicated locals first, at identical offsets on both stacks.
    for symbol in duplicated:
        common = max(offset_x, offset_y)
        layout.place(symbol, MemoryBank.BOTH, common)
        offset_x = common + symbol.size
        offset_y = common + symbol.size
    for symbol in x_only:
        layout.place(symbol, MemoryBank.X, offset_x)
        offset_x += symbol.size
    for symbol in y_only:
        layout.place(symbol, MemoryBank.Y, offset_y)
        offset_y += symbol.size
    layout.size_x = offset_x
    layout.size_y = offset_y
    return layout


def insert_save_restore(function, record, dual_stacks):
    """Insert callee save/restore code for the registers *function* writes.

    ``record`` is the :class:`~repro.compiler.regalloc.AllocationRecord`.
    Saves go at the top of the entry block; restores immediately before
    every RET.  Successive save slots alternate between the X and Y banks
    when dual stacks are enabled, exposing store/store (and load/load)
    parallelism to the compaction pass.

    ``main`` has no caller, so it saves nothing.
    """
    if function.name == "main":
        return []
    to_save = []
    for rclass in (RegClass.ADDR, RegClass.INT, RegClass.FLOAT):
        for number in sorted(record.written[rclass]):
            if number in ALLOCATABLE:
                to_save.append(phys(rclass, number))
    if not to_save:
        return []

    slots = []
    saves = []
    restores = []
    zero = Immediate(0, DataType.INT)
    for position, reg in enumerate(to_save):
        bank = (
            MemoryBank.X
            if (not dual_stacks or position % 2 == 0)
            else MemoryBank.Y
        )
        slot = Symbol(
            "__save_%s%d" % (reg.rclass.name.lower(), reg.physical),
            data_type=reg.data_type,
            size=1,
            storage=Storage.LOCAL,
        )
        slot.bank = bank
        function.add_symbol(slot)
        slots.append(slot)
        saves.append(
            Operation(
                OpCode.STORE, sources=(reg, zero), symbol=slot, bank=bank
            )
        )
        restores.append(
            Operation(OpCode.LOAD, dest=reg, sources=(zero,), symbol=slot, bank=bank)
        )

    function.blocks[0].ops[:0] = saves
    for block in function.blocks:
        new_ops = []
        for op in block.ops:
            if op.opcode is OpCode.RET:
                new_ops.extend(
                    Operation(
                        OpCode.LOAD,
                        dest=r.dest,
                        sources=r.sources,
                        symbol=r.symbol,
                        bank=r.bank,
                    )
                    for r in restores
                )
            new_ops.append(op)
        block.ops = new_ops
    return slots
