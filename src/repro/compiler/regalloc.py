"""Linear-scan register allocation onto the three 32-register files.

The model architecture places no constraints linking registers to memory
banks (paper Section 2), so register allocation and data partitioning are
orthogonal; allocation runs after the data-allocation pass and before
compaction.

Register-file convention (per class — ADDR, INT, FLOAT):

========  =====================================================
register  role
========  =====================================================
0         return value (volatile across calls)
1..22     allocatable
23..25    spill scratch (reserved)
26..31    argument registers ARG0..ARG5 (volatile across calls)
========  =====================================================

Functions are callee-save: the frame pass (:mod:`repro.compiler.frames`)
saves every allocatable register a function writes in its prologue and
restores it before returning — with successive save/restore operations
assigned to alternating memory banks, as in paper Section 3.1.

Spilled virtual registers get one-word stack slots, also assigned to
alternating banks when dual stacks are enabled.
"""

from repro.analysis.liveness import compute_liveness
from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import MemoryBank, Storage, Symbol
from repro.ir.types import DataType, RegClass
from repro.ir.values import Immediate, VirtualRegister, is_register

RETURN_REG = 0
ALLOCATABLE = tuple(range(1, 23))
SCRATCH_REGS = (23, 24, 25)
ARG_REGS = tuple(range(26, 32))

_MOVE_OPCODE = {
    RegClass.INT: OpCode.MOV,
    RegClass.FLOAT: OpCode.FMOV,
    RegClass.ADDR: OpCode.AMOV,
}

_phys_cache = {}


def phys(rclass, number):
    """The canonical physical-register object ``rclass[number]``.

    After allocation every operand is rewritten to one of these interned
    objects, so object identity equals storage identity — which is what
    the dependence analysis relies on.
    """
    key = (rclass, number)
    reg = _phys_cache.get(key)
    if reg is None:
        reg = VirtualRegister(1000000 + number, rclass, name=None)
        reg.physical = number
        _phys_cache[key] = reg
    return reg


def arg_register(rclass, position):
    if position >= len(ARG_REGS):
        raise ValueError("at most %d arguments supported" % len(ARG_REGS))
    return phys(rclass, ARG_REGS[position])


def return_register(rclass):
    return phys(rclass, RETURN_REG)


class AllocationRecord:
    """Result of allocating one function."""

    def __init__(self):
        #: physical registers written, per class (for callee saves)
        self.written = {rc: set() for rc in RegClass}
        #: spill-slot symbols created
        self.spill_slots = []
        self.spill_count = 0


class _BankAlternator:
    """Deal out X, Y, X, Y, ... (or all X when dual stacks are off)."""

    def __init__(self, dual_stacks):
        self.dual_stacks = dual_stacks
        self._next = 0

    def take(self):
        if not self.dual_stacks:
            return MemoryBank.X
        bank = MemoryBank.X if self._next % 2 == 0 else MemoryBank.Y
        self._next += 1
        return bank


def _insert_abi_moves(function, module):
    """Make the calling convention explicit with register-register moves.

    * entry: copy each argument register into the parameter's vreg;
    * before CALL: copy argument values into the argument registers;
    * after CALL: copy the return register into the call's destination;
    * before RET: copy the returned value into the return register.
    """
    entry_moves = []
    for position, vreg in enumerate(function.param_registers):
        src = arg_register(vreg.rclass, position)
        entry_moves.append(
            Operation(_MOVE_OPCODE[vreg.rclass], dest=vreg, sources=(src,))
        )
    function.blocks[0].ops[:0] = entry_moves

    for b_index, block in enumerate(function.blocks):
        new_ops = []
        pending_result = None
        for op in block.ops:
            if op.opcode is OpCode.CALL:
                new_sources = []
                for position, src in enumerate(op.sources):
                    if isinstance(src, Immediate):
                        rclass = (
                            RegClass.FLOAT
                            if src.data_type is DataType.FLOAT
                            else RegClass.INT
                        )
                        const_op = {
                            RegClass.INT: OpCode.CONST,
                            RegClass.FLOAT: OpCode.FCONST,
                        }[rclass]
                        areg = arg_register(rclass, position)
                        new_ops.append(
                            Operation(const_op, dest=areg, sources=(src,))
                        )
                        new_sources.append(areg)
                        continue
                    areg = arg_register(src.rclass, position)
                    new_ops.append(
                        Operation(_MOVE_OPCODE[src.rclass], dest=areg, sources=(src,))
                    )
                    new_sources.append(areg)
                dest = op.dest
                op.dest = None
                op.sources = tuple(new_sources)
                new_ops.append(op)
                if dest is not None:
                    pending_result = Operation(
                        _MOVE_OPCODE[dest.rclass],
                        dest=dest,
                        sources=(return_register(dest.rclass),),
                    )
            elif op.opcode is OpCode.RET and op.sources:
                src = op.sources[0]
                rreg = return_register(src.rclass)
                new_ops.append(
                    Operation(_MOVE_OPCODE[src.rclass], dest=rreg, sources=(src,))
                )
                op.sources = (rreg,)
                new_ops.append(op)
            else:
                new_ops.append(op)
        block.ops = new_ops
        if pending_result is not None:
            # The builder always starts a fresh block right after a call.
            function.blocks[b_index + 1].ops.insert(0, pending_result)


def _linear_scan(intervals, candidates):
    """Classic linear scan; returns (assignment, spilled_set)."""
    assignment = {}
    spilled = set()
    by_class = {}
    for reg in candidates:
        by_class.setdefault(reg.rclass, []).append(reg)
    for rclass, regs in by_class.items():
        regs.sort(key=lambda r: (intervals[r][0], intervals[r][1], r.index))
        free = list(ALLOCATABLE)
        active = []  # (end, reg, phys_number)
        for reg in regs:
            start, end = intervals[reg]
            active = [entry for entry in active if not _expire(entry, start, free)]
            if free:
                number = free.pop(0)
                assignment[reg] = number
                active.append((end, reg, number))
                active.sort(key=lambda entry: entry[0])
            else:
                # Spill the interval that ends last.
                last_end, last_reg, last_number = active[-1]
                if last_end > end:
                    spilled.add(last_reg)
                    del assignment[last_reg]
                    assignment[reg] = last_number
                    active[-1] = (end, reg, last_number)
                    active.sort(key=lambda entry: entry[0])
                else:
                    spilled.add(reg)
    return assignment, spilled


def _expire(entry, start, free):
    end, _reg, number = entry
    if end < start:
        free.append(number)
        return True
    return False


def allocate_registers(function, module, dual_stacks):
    """Allocate *function*'s virtual registers; returns an
    :class:`AllocationRecord`.  Operands are rewritten in place to
    canonical physical-register objects; spill code uses the reserved
    scratch registers and stack slots on alternating banks."""
    record = AllocationRecord()
    _insert_abi_moves(function, module)

    liveness = compute_liveness(function)
    candidates = [
        reg for reg in liveness.intervals if reg.physical is None
    ]
    assignment, spilled = _linear_scan(liveness.intervals, candidates)

    alternator = _BankAlternator(dual_stacks)
    slot_of = {}
    for reg in sorted(spilled, key=lambda r: r.index):
        slot = Symbol(
            "__spill%d_%s" % (record.spill_count, reg.rclass.name.lower()),
            data_type=reg.data_type,
            size=1,
            storage=Storage.LOCAL,
        )
        slot.bank = alternator.take()
        function.add_symbol(slot)
        record.spill_slots.append(slot)
        record.spill_count += 1
        slot_of[reg] = slot

    def rewrite_reg(reg):
        if reg.physical is not None:
            return phys(reg.rclass, reg.physical)
        return phys(reg.rclass, assignment[reg])

    zero_index = Immediate(0, DataType.INT)
    for block in function.blocks:
        new_ops = []
        for op in block.ops:
            scratch_in_use = {}
            post_stores = []
            new_sources = []
            for src in op.sources:
                if not is_register(src):
                    new_sources.append(src)
                    continue
                if src in slot_of:
                    key = (src.rclass, src.index)
                    if key in scratch_in_use:
                        new_sources.append(scratch_in_use[key])
                        continue
                    taken = sum(
                        1 for k, v in scratch_in_use.items() if k[0] is src.rclass
                    )
                    scratch = phys(src.rclass, SCRATCH_REGS[taken])
                    slot = slot_of[src]
                    new_ops.append(
                        Operation(
                            OpCode.LOAD,
                            dest=scratch,
                            sources=(zero_index,),
                            symbol=slot,
                            bank=slot.bank,
                        )
                    )
                    scratch_in_use[key] = scratch
                    new_sources.append(scratch)
                else:
                    new_sources.append(rewrite_reg(src))
            dest = op.dest
            if dest is not None:
                if dest in slot_of:
                    key = (dest.rclass, dest.index)
                    if key in scratch_in_use:
                        scratch = scratch_in_use[key]
                    else:
                        taken = sum(
                            1
                            for k, v in scratch_in_use.items()
                            if k[0] is dest.rclass
                        )
                        scratch = phys(dest.rclass, SCRATCH_REGS[taken])
                    slot = slot_of[dest]
                    if op.opcode is OpCode.FMAC:
                        # FMAC reads its destination (the accumulator), so
                        # the spilled value must be reloaded first.
                        new_ops.append(
                            Operation(
                                OpCode.LOAD,
                                dest=scratch,
                                sources=(zero_index,),
                                symbol=slot,
                                bank=slot.bank,
                            )
                        )
                    post_stores.append(
                        Operation(
                            OpCode.STORE,
                            sources=(scratch, zero_index),
                            symbol=slot,
                            bank=slot.bank,
                        )
                    )
                    dest = scratch
                else:
                    dest = rewrite_reg(dest)
                record.written[dest.rclass].add(dest.physical)
            op.dest = dest
            op.sources = tuple(new_sources)
            new_ops.append(op)
            new_ops.extend(post_stores)
        block.ops = new_ops
    return record
