"""Compiler back-end: list scheduling, register allocation, code emission.

The pass order follows the paper's optimizing back-end: the data-allocation
pass (:mod:`repro.partition`) runs first and tags every memory operation
with the bank that stores its data; the operation-compaction pass then
packs operations into long (VLIW) instructions using those tags.
"""

from repro.compiler.pipeline import CompileOptions, compile_module

__all__ = ["CompileOptions", "compile_module"]
