"""The compiler driver: allocation -> register allocation -> compaction.

``compile_module`` reproduces the paper's back-end pass order:

1. validate the incoming operation stream;
2. run the **data-allocation pass** (:mod:`repro.partition`) under the
   chosen strategy, tagging every memory operation with a bank;
3. allocate registers (linear scan; orthogonal to banks, paper Section 2)
   and insert callee save/restore on alternating banks;
4. lay out stack frames (dual stacks) and global data (per-bank spaces);
5. run the **operation-compaction pass** per basic block, emitting long
   instructions, and assemble them into a flat
   :class:`~repro.machine.instruction.MachineProgram`.
"""

from repro.compiler.compaction import compact_block
from repro.compiler.frames import insert_save_restore, layout_frame
from repro.compiler.layout import layout_globals
from repro.compiler.regalloc import allocate_registers
from repro.ir.validate import validate_module
from repro.machine.instruction import MachineProgram
from repro.partition.strategies import Strategy, run_allocation


class CompileOptions:
    """Knobs for :func:`compile_module`."""

    def __init__(
        self,
        strategy=Strategy.CB,
        profile_counts=None,
        interrupt_safe=True,
        validate=True,
        software_pipelining=False,
        optimize=False,
        unroll_factor=1,
    ):
        self.strategy = strategy
        self.profile_counts = profile_counts
        self.interrupt_safe = interrupt_safe
        self.validate = validate
        #: Run dead-code elimination before register allocation.
        self.optimize = optimize
        #: Replicate eligible inner-loop bodies this many times.
        self.unroll_factor = unroll_factor
        #: Pre-load inner-loop operands across iterations (paper Figure 1
        #: style).  Off by default: the paper's measured configurations
        #: use the plain compaction schedule.
        self.software_pipelining = software_pipelining


class CompileResult:
    """A compiled program plus the decisions that produced it."""

    def __init__(self, program, allocation, register_records, pipelining=None):
        self.program = program
        #: the :class:`~repro.partition.strategies.AllocationResult`
        self.allocation = allocation
        #: function name -> :class:`~repro.compiler.regalloc.AllocationRecord`
        self.register_records = register_records
        #: :class:`~repro.compiler.pipelining.PipelineReport` or None
        self.pipelining = pipelining

    @property
    def code_size(self):
        return self.program.size


def compile_module(module, options=None, **kwargs):
    """Compile *module*; returns a :class:`CompileResult`.

    Either pass a :class:`CompileOptions` or keyword arguments accepted by
    its constructor.  The module is consumed: compile each freshly built
    module exactly once.
    """
    if options is None:
        options = CompileOptions(**kwargs)
    elif kwargs:
        raise TypeError("pass either options or keyword arguments, not both")

    if options.validate:
        validate_module(module)

    allocation = run_allocation(
        module,
        options.strategy,
        profile_counts=options.profile_counts,
        interrupt_safe=options.interrupt_safe,
    )
    dual_stacks = options.strategy is not Strategy.SINGLE_BANK

    if options.unroll_factor > 1:
        from repro.compiler.unroll import unroll_inner_loops

        unroll_inner_loops(module, options.unroll_factor)

    pipelining = None
    if options.software_pipelining:
        from repro.compiler.pipelining import pipeline_inner_loops

        pipelining = pipeline_inner_loops(module)

    if options.optimize:
        from repro.compiler.optimize import eliminate_dead_code

        eliminate_dead_code(module)

    register_records = {}
    ordered = [module.main] + [
        f for name, f in module.functions.items() if name != "main"
    ]
    for function in ordered:
        record = allocate_registers(function, module, dual_stacks)
        insert_save_restore(function, record, dual_stacks)
        register_records[function.name] = record

    program = MachineProgram()
    program.module = module
    program.layout = layout_globals(module)

    loop_starts = {}
    for function in ordered:
        program.function_entries[function.name] = len(program.instructions)
        for block in function.blocks:
            program.labels[block.label] = len(program.instructions)
            if block.hw_loop is not None and block.hw_loop not in loop_starts:
                loop_starts[block.hw_loop] = len(program.instructions)
            program.instructions.extend(
                compact_block(block, dual_ported=allocation.dual_ported)
            )
        program.frames[function.name] = layout_frame(function)

    for index, instruction in enumerate(program.instructions):
        for loop_id in instruction.loop_ends:
            start = loop_starts.get(loop_id)
            if start is None:
                raise RuntimeError("LOOP_END without body for %r" % loop_id)
            program.loops[loop_id] = (start, index)

    return CompileResult(program, allocation, register_records, pipelining)
