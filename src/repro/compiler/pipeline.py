"""The compiler driver: allocation -> register allocation -> compaction.

``compile_module`` reproduces the paper's back-end pass order:

1. validate the incoming operation stream;
2. run the **data-allocation pass** (:mod:`repro.partition`) under the
   chosen strategy, tagging every memory operation with a bank;
3. allocate registers (linear scan; orthogonal to banks, paper Section 2)
   and insert callee save/restore on alternating banks;
4. lay out stack frames (dual stacks) and global data (per-bank spaces);
5. run the **operation-compaction pass** per basic block, emitting long
   instructions, and assemble them into a flat
   :class:`~repro.machine.instruction.MachineProgram`.

Every pass is wrapped in an instrumentation span (see
:mod:`repro.obs.core`): pass a :class:`~repro.obs.core.Recorder` via
``CompileOptions(observe=...)`` to collect per-pass wall time plus IR
deltas (operation counts, emitted instruction count, long-instruction
fill rate).  Without a recorder the spans are shared no-ops.
"""

from repro.compiler.compaction import compact_block
from repro.compiler.frames import insert_save_restore, layout_frame
from repro.compiler.layout import layout_globals
from repro.compiler.regalloc import allocate_registers
from repro.ir.validate import validate_module
from repro.machine.instruction import MachineProgram
from repro.machine.resources import ALL_UNITS
from repro.obs.core import NULL_RECORDER
from repro.partition.registry import DEFAULT_PARTITIONER
from repro.partition.strategies import Strategy, run_allocation


class CompileOptions:
    """Knobs for :func:`compile_module`."""

    def __init__(
        self,
        strategy=Strategy.CB,
        profile_counts=None,
        interrupt_safe=True,
        validate=True,
        software_pipelining=False,
        optimize=False,
        unroll_factor=1,
        observe=None,
        partitioner=DEFAULT_PARTITIONER,
        partitioner_seed=0,
    ):
        self.strategy = strategy
        self.profile_counts = profile_counts
        self.interrupt_safe = interrupt_safe
        self.validate = validate
        #: Interference-graph partitioner name for the CB-family
        #: strategies (:data:`~repro.partition.registry.PARTITIONERS`).
        self.partitioner = partitioner
        #: One seed for partitioner tie-breaks and annealing schedules.
        self.partitioner_seed = partitioner_seed
        #: Optional :class:`~repro.obs.core.Recorder` collecting per-pass
        #: spans; None means the shared no-op recorder.
        self.observe = observe
        #: Run dead-code elimination before register allocation.
        self.optimize = optimize
        #: Replicate eligible inner-loop bodies this many times.
        self.unroll_factor = unroll_factor
        #: Pre-load inner-loop operands across iterations (paper Figure 1
        #: style).  Off by default: the paper's measured configurations
        #: use the plain compaction schedule.
        self.software_pipelining = software_pipelining


class CompileResult:
    """A compiled program plus the decisions that produced it."""

    def __init__(self, program, allocation, register_records, pipelining=None):
        self.program = program
        #: the :class:`~repro.partition.strategies.AllocationResult`
        self.allocation = allocation
        #: function name -> :class:`~repro.compiler.regalloc.AllocationRecord`
        self.register_records = register_records
        #: :class:`~repro.compiler.pipelining.PipelineReport` or None
        self.pipelining = pipelining

    @property
    def code_size(self):
        return self.program.size


def options_signature(options):
    """The cache-relevant projection of a :class:`CompileOptions`.

    Returns a tuple of ``(name, value)`` pairs covering every option
    that changes the emitted program: the strategy, the partitioner and
    its tie-break seed (two seeds can legally produce two different
    optimal partitions, so they must never share a cache entry), and
    the optional passes.  ``profile_counts`` and ``observe`` are
    deliberately absent — profile counts are keyed separately (they are
    inputs, not options) and a recorder never changes the output.

    This is the canonical compile half of a persistent artifact-store
    key (:mod:`repro.serve.store`); any new ``CompileOptions`` field
    that affects codegen must be added here, which the cache-key drift
    tests in ``tests/serve/test_store.py`` hold.
    """
    return (
        ("strategy", options.strategy.name),
        ("interrupt_safe", bool(options.interrupt_safe)),
        ("software_pipelining", bool(options.software_pipelining)),
        ("optimize", bool(options.optimize)),
        ("unroll_factor", int(options.unroll_factor)),
        ("partitioner", options.partitioner),
        ("partitioner_seed", int(options.partitioner_seed)),
    )


def compile_module(module, options=None, **kwargs):
    """Compile *module*; returns a :class:`CompileResult`.

    Either pass a :class:`CompileOptions` or keyword arguments accepted by
    its constructor.  The module is consumed: compile each freshly built
    module exactly once.
    """
    if options is None:
        options = CompileOptions(**kwargs)
    elif kwargs:
        raise TypeError("pass either options or keyword arguments, not both")
    observe = options.observe if options.observe is not None else NULL_RECORDER

    with observe.span("compile") as compile_span:
        node_stats = getattr(module, "node_stats", None)
        if node_stats is not None and observe is not NULL_RECORDER:
            # Front-end hash-consing statistics, recorded by the
            # ProgramBuilder's build context (see repro.ir.intern).
            observe.counter("nodes.created", node_stats["nodes_created"])
            observe.counter("nodes.cons_hits", node_stats["cons_hits"])
            observe.counter("nodes.cons_entries", node_stats["cons_entries"])
            observe.counter(
                "nodes.interned_immediates", node_stats["immediate_entries"]
            )
            observe.counter(
                "nodes.interned_labels", node_stats["label_entries"]
            )
        if options.validate:
            with observe.span("validate"):
                validate_module(module)

        with observe.span("allocate") as span:
            allocation = run_allocation(
                module,
                options.strategy,
                profile_counts=options.profile_counts,
                interrupt_safe=options.interrupt_safe,
                observe=observe,
                partitioner=options.partitioner,
                partitioner_seed=options.partitioner_seed,
            )
            span.set(
                strategy=options.strategy.name,
                partitioner=options.partitioner,
                graph_nodes=(
                    len(allocation.graph) if allocation.graph is not None else 0
                ),
                duplicated=len(allocation.duplicated),
            )
        dual_stacks = options.strategy is not Strategy.SINGLE_BANK

        if options.unroll_factor > 1:
            from repro.compiler.unroll import unroll_inner_loops

            with observe.span("unroll") as span:
                before = _operation_count(module)
                unroll_inner_loops(module, options.unroll_factor)
                span.set(
                    factor=options.unroll_factor,
                    operations_before=before,
                    operations_after=_operation_count(module),
                )

        pipelining = None
        if options.software_pipelining:
            from repro.compiler.pipelining import pipeline_inner_loops

            with observe.span("pipelining") as span:
                before = _operation_count(module)
                pipelining = pipeline_inner_loops(module)
                span.set(
                    operations_before=before,
                    operations_after=_operation_count(module),
                )

        if options.optimize:
            from repro.compiler.optimize import eliminate_dead_code

            with observe.span("optimize") as span:
                before = _operation_count(module)
                eliminate_dead_code(module)
                span.set(
                    operations_before=before,
                    operations_after=_operation_count(module),
                )

        register_records = {}
        ordered = [module.main] + [
            f for name, f in module.functions.items() if name != "main"
        ]
        with observe.span("regalloc") as span:
            before = _operation_count(module)
            for function in ordered:
                record = allocate_registers(function, module, dual_stacks)
                insert_save_restore(function, record, dual_stacks)
                register_records[function.name] = record
            span.set(
                functions=len(ordered),
                operations_before=before,
                operations_after=_operation_count(module),
            )

        program = MachineProgram()
        program.module = module
        with observe.span("layout") as span:
            program.layout = layout_globals(module)
            span.set(
                data_words_x=program.layout.data_size_x,
                data_words_y=program.layout.data_size_y,
            )

        with observe.span("compaction") as span:
            loop_starts = {}
            for function in ordered:
                program.function_entries[function.name] = len(
                    program.instructions
                )
                for block in function.blocks:
                    program.labels[block.label] = len(program.instructions)
                    if (
                        block.hw_loop is not None
                        and block.hw_loop not in loop_starts
                    ):
                        loop_starts[block.hw_loop] = len(program.instructions)
                    program.instructions.extend(
                        compact_block(
                            block, dual_ported=allocation.dual_ported
                        )
                    )
                program.frames[function.name] = layout_frame(function)

            for index, instruction in enumerate(program.instructions):
                for loop_id in instruction.loop_ends:
                    start = loop_starts.get(loop_id)
                    if start is None:
                        raise RuntimeError(
                            "LOOP_END without body for %r" % loop_id
                        )
                    program.loops[loop_id] = (start, index)
            scheduled = sum(len(i.slots) for i in program.instructions)
            span.set(
                instructions=len(program.instructions),
                scheduled_operations=scheduled,
                fill_rate=(
                    scheduled / (len(program.instructions) * len(ALL_UNITS))
                    if program.instructions
                    else 0.0
                ),
            )

        compile_span.set(
            strategy=options.strategy.name,
            instructions=len(program.instructions),
        )
    return CompileResult(program, allocation, register_records, pipelining)


def _operation_count(module):
    """Total unpacked operations currently in *module* (an IR delta
    metric: passes report it before and after rewriting)."""
    return sum(1 for _op in module.operations())
