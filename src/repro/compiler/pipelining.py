"""Software pipelining of innermost hardware loops (paper Figure 1).

The paper's hand-written FIR loop is software-pipelined: elements of both
arrays are *pre-loaded* in the iteration before the one that uses them,
so the steady-state loop body is a single long instruction —

    MAC  X0,Y0,A   X:(R0)+,X0   Y:(R4)+,Y0

the multiply-accumulate reads the registers' old values while the two
parallel moves overwrite them with the next iteration's operands
(within-cycle read-before-write).  This pass reproduces that structure
mechanically for eligible counted loops:

* the loop's first-iteration loads are cloned into the preheader;
* the in-loop loads are re-addressed one step ahead using the indexed
  ``(Rn+Nn)`` addressing mode and re-ordered so they share a cycle with
  the compute that consumes the previous values (an anti-dependence,
  which the compaction pass may pack);
* the trip count drops by one and the final iteration's compute runs in
  a cloned epilogue.

Eligibility (checked conservatively):

* single-block hardware-loop body with a compile-time trip count >= 1;
* no calls and no branches in the body;
* a pipelined load's destination is written exactly once, its symbol is
  never stored in the body (no aliasing hazard), and its address
  registers are either loop-invariant or self-incremented by an
  immediate step (the post-increment idiom).

The pass is **off by default** (``CompileOptions(software_pipelining=
True)`` enables it): the paper's measured results come from the plain
compaction schedule, and the reproduction keeps that configuration;
``benchmarks/bench_pipelining.py`` quantifies what the optimization adds.
"""

from repro.ir.operations import OpCode, Operation
from repro.ir.values import Immediate, is_register


class PipelineReport:
    """What the pass did, for tests and reporting."""

    def __init__(self):
        #: (function name, loop id, number of pipelined loads)
        self.pipelined = []

    def __repr__(self):
        return "<PipelineReport loops=%d>" % len(self.pipelined)


def _find_hw_loops(function):
    """Yield (preheader_idx, body_idx) for single-block hardware loops."""
    for index, block in enumerate(function.blocks):
        if block.hw_loop is None or index == 0:
            continue
        has_end = any(
            op.opcode is OpCode.LOOP_END and op.target.name == block.hw_loop
            for op in block.ops
        )
        if has_end:
            yield index - 1, index


def _loop_begin(preheader, loop_id):
    for op in preheader.ops:
        if op.opcode is OpCode.LOOP_BEGIN and op.target.name == loop_id:
            return op
    return None


def _self_increments(body):
    """Map register -> immediate step for `AADD r, r, #imm` ops."""
    steps = {}
    writers = {}
    for op in body.ops:
        for reg in op.writes():
            writers.setdefault(reg, []).append(op)
    for reg, ops in writers.items():
        if len(ops) != 1:
            continue
        op = ops[0]
        if (
            op.opcode is OpCode.AADD
            and op.dest is reg
            and op.sources[0] is reg
            and isinstance(op.sources[1], Immediate)
        ):
            steps[reg] = op.sources[1].value
    return steps


def _clone_memory_op(op, sources):
    return Operation(
        op.opcode,
        dest=op.dest,
        sources=sources,
        symbol=op.symbol,
        bank=op.bank,
        locked=op.locked,
        shadow=op.shadow,
    )


def _clone_op(op):
    return Operation(
        op.opcode,
        dest=op.dest,
        sources=op.sources,
        symbol=op.symbol,
        target=op.target,
        callee=op.callee,
        bank=op.bank,
        locked=op.locked,
        shadow=op.shadow,
    )


def _pipeline_one(function, preheader, body, report):
    loop_id = body.hw_loop
    begin = _loop_begin(preheader, loop_id)
    if begin is None:
        return False
    count = begin.sources[0]
    if not isinstance(count, Immediate) or count.value < 1:
        return False
    if any(op.opcode is OpCode.CALL or op.is_terminator for op in body.ops):
        return False
    if any(
        op.opcode is OpCode.LOOP_BEGIN for op in body.ops
    ):
        return False

    steps = _self_increments(body)
    written = set()
    for op in body.ops:
        written.update(op.writes())
    stored_symbols = {id(op.symbol) for op in body.ops if op.is_store}
    write_counts = {}
    for op in body.ops:
        for reg in op.writes():
            write_counts[reg] = write_counts.get(reg, 0) + 1

    def advanced(op):
        index = op.index_operand()
        offset = op.offset_operand()
        if not is_register(index):
            return None
        if offset is not None and not isinstance(offset, Immediate):
            return None
        if index in steps:
            step = steps[index]
        elif index in written:
            return None  # address computed per-iteration: not rotatable
        else:
            step = 0
        ahead = step + (offset.value if offset is not None else 0)
        if ahead == 0 and step == 0 and offset is None:
            ahead_sources = (index,)
        else:
            ahead_sources = (index, Immediate(ahead))
        return ahead_sources

    candidates = []
    for op in body.ops:
        if not op.is_load:
            continue
        if op.symbol.opaque or id(op.symbol) in stored_symbols:
            continue
        if write_counts.get(op.dest, 0) != 1:
            continue
        new_sources = advanced(op)
        if new_sources is None:
            continue
        candidates.append((op, new_sources))
    if not candidates:
        return False

    chosen = {id(op) for op, _s in candidates}

    # Build the rotated body: drop the loads from their original slots
    # and re-insert the one-iteration-ahead versions just before the
    # first self-increment (so they read pre-increment indices and can
    # pack with the compute that consumes the previous values).
    remaining = [op for op in body.ops if id(op) not in chosen]
    increment_regs = set(steps)
    insert_at = len(remaining)
    for i, op in enumerate(remaining):
        if op.opcode is OpCode.LOOP_END or (
            op.opcode is OpCode.AADD and op.dest in increment_regs
        ):
            insert_at = i
            break
    ahead_loads = [
        _clone_memory_op(op, sources) for op, sources in candidates
    ]
    new_ops = remaining[:insert_at] + ahead_loads + remaining[insert_at:]

    # Profitability: the rotation must shorten the steady-state schedule
    # by enough to amortize the cloned epilogue (and the preheader loads)
    # over the loop's iterations.
    old_length = _schedule_length(body.ops)
    new_length = _schedule_length(new_ops)
    saved = (old_length - new_length) * (count.value - 1)
    overhead = old_length + 1
    if saved <= overhead:
        return False

    # Preheader: first-iteration loads, placed after the index/induction
    # initialization (i.e. at the end of the preheader block).
    for op, _sources in candidates:
        preheader.append(_clone_memory_op(op, op.sources))

    # Epilogue: the final iteration's compute (everything but the
    # pipelined loads and the LOOP_END marker), prepended to the block
    # following the body.
    body_index = function.blocks.index(body)
    after = function.blocks[body_index + 1]
    epilogue = [
        _clone_op(op)
        for op in body.ops
        if id(op) not in chosen and op.opcode is not OpCode.LOOP_END
    ]
    after.ops[:0] = epilogue

    body.ops = new_ops

    # One fewer steady-state iteration.
    begin.sources = (Immediate(count.value - 1),)
    report.pipelined.append((function.name, loop_id, len(candidates)))
    return True


def _schedule_length(ops):
    """Length in long instructions of a trial compaction of *ops*."""
    from repro.compiler.compaction import compact_block
    from repro.ir.block import BasicBlock

    trial = BasicBlock("__pipeline_trial__")
    trial.ops = [op for op in ops if op.opcode is not OpCode.LOOP_END]
    return len(compact_block(trial))


def pipeline_inner_loops(module):
    """Apply the transformation to every eligible loop in *module*.

    Runs after the data-allocation pass (bank tags are preserved on the
    cloned loads) and before register allocation.  Returns a
    :class:`PipelineReport`.
    """
    report = PipelineReport()
    for function in module.functions.values():
        for pre_idx, body_idx in list(_find_hw_loops(function)):
            _pipeline_one(
                function,
                function.blocks[pre_idx],
                function.blocks[body_idx],
                report,
            )
    return report
