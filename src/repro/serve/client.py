"""Synchronous client for the ``repro serve`` JSON-lines protocol.

The benchmark and the e2e tests drive the service through this; it is
also the reference implementation for anyone writing a client in
another language (the protocol is just newline-delimited JSON over
TCP, :mod:`repro.serve.protocol`).

    with ServeClient(host, port) as client:
        results = client.run_jobs([
            {"kind": "run", "workload": "fir_32_1", "strategy": "CB"},
            {"kind": "recipe", "recipe": recipe.to_dict()},
        ])

``run_jobs`` pipelines every submission before reading any terminal
event, so the service can coalesce compatible jobs into lockstep
batches; per-job wall-clock latency is recorded in each returned
event's ``latency_s`` (client-measured, submission to terminal event).
"""

import json
import socket
import time


class ServeClient:
    """One TCP connection to a :class:`~repro.serve.service.SimService`."""

    def __init__(self, host, port, timeout=60.0):
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")

    def close(self):
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        finally:
            try:
                self._socket.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        self.close()

    # -- low level -----------------------------------------------------
    def send(self, request):
        """Ship one request dict as a JSON line."""
        self._socket.sendall(
            (json.dumps(request, sort_keys=True) + "\n").encode()
        )

    def read_event(self):
        """Block for the next response event; None on EOF."""
        line = self._reader.readline()
        if not line:
            return None
        return json.loads(line)

    # -- conveniences --------------------------------------------------
    def stats(self):
        """The service's counter snapshot (the ``stats`` request)."""
        self.send({"kind": "stats"})
        while True:
            event = self.read_event()
            if event is None:
                raise ConnectionError("service closed during stats request")
            if event.get("event") == "stats":
                return event["counters"]

    def run_jobs(self, jobs):
        """Submit *jobs* (pipelined) and collect each one's terminal event.

        Returns terminal events (``result``/``error``/``rejected``) in
        submission order, each annotated with client-measured
        ``latency_s``.  Ids are assigned locally when absent so ordering
        can be reconstructed from the interleaved stream.
        """
        jobs = [dict(job) for job in jobs]
        submitted = {}
        for index, job in enumerate(jobs):
            job.setdefault("id", "client-%d" % index)
            submitted[job["id"]] = index
            self.send(job)
        start = {job["id"]: time.perf_counter() for job in jobs}
        terminal = {}
        while len(terminal) < len(jobs):
            event = self.read_event()
            if event is None:
                raise ConnectionError(
                    "service closed with %d job(s) outstanding"
                    % (len(jobs) - len(terminal))
                )
            job_id = event.get("id")
            if event.get("event") == "accepted" or job_id not in submitted:
                continue
            event["latency_s"] = round(
                time.perf_counter() - start[job_id], 6
            )
            terminal[job_id] = event
        return [terminal[job["id"]] for job in jobs]

    def try_run_jobs(self, jobs):
        """Disconnect-tolerant :meth:`run_jobs` (the chaos harness's
        submission path: the service may be killed mid-batch).

        Returns ``{"events": [...], "accepted": [...], "disconnected":
        bool}`` — ``events`` holds each job's terminal event in
        submission order (None for jobs still outstanding when the
        connection died), ``accepted`` the ids the service acknowledged
        (and therefore write-ahead journaled) before any disconnect.
        """
        jobs = [dict(job) for job in jobs]
        submitted = {}
        for index, job in enumerate(jobs):
            job.setdefault("id", "client-%d" % index)
            submitted[job["id"]] = index
        accepted = []
        terminal = {}
        disconnected = False
        try:
            for job in jobs:
                self.send(job)
            while len(terminal) < len(jobs):
                event = self.read_event()
                if event is None:
                    disconnected = True
                    break
                job_id = event.get("id")
                if job_id not in submitted:
                    continue
                if event.get("event") in ("accepted", "rejected"):
                    if event["event"] == "accepted":
                        accepted.append(job_id)
                    else:
                        terminal[job_id] = event
                    continue
                terminal[job_id] = event
        except (ConnectionError, OSError, ValueError):
            disconnected = True
        return {
            "events": [terminal.get(job["id"]) for job in jobs],
            "accepted": accepted,
            "disconnected": disconnected,
        }
