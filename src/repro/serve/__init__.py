"""Serving layer: persistent artifact store + async compile-and-simulate
service.

The scaling layer on top of the evaluation stack — the pieces that turn
"a library that can compile and simulate" into "a service that can keep
doing it under load":

* :mod:`repro.serve.store` — the content-addressed on-disk
  :class:`~repro.serve.store.ArtifactStore` (atomic writes, digest
  re-check on read, LRU size-capped eviction) and the
  :class:`~repro.serve.store.CompileCache` tier every compiling path
  reads through when a ``--cache-dir`` is given;
* :mod:`repro.serve.protocol` — the JSON-lines job schema, response
  events, and the error-taxonomy mapping from :mod:`repro.sim.errors`;
* :mod:`repro.serve.jobs` — job execution: compile through the store,
  coalesce compatible jobs onto the lockstep ``batch`` backend,
  summarize results (bit-identical to direct runs);
* :mod:`repro.serve.service` — the asyncio
  :class:`~repro.serve.service.SimService` behind ``repro serve``:
  bounded queue with admission control, coalescing dispatcher,
  supervised worker execution, streamed results;
* :mod:`repro.serve.client` — the synchronous reference
  :class:`~repro.serve.client.ServeClient`.

``docs/serving.md`` documents the protocol, the store layout, and the
operational knobs; ``benchmarks/bench_serve.py`` freezes the load-test
headline numbers in ``BENCH_serve.json``.
"""

from repro.serve.client import ServeClient
from repro.serve.jobs import execute_job, job_compile_key
from repro.serve.service import SimService, run_service
from repro.serve.store import (
    ArtifactStore,
    CompileCache,
    compile_key,
    process_compile_cache,
)

__all__ = [
    "ArtifactStore",
    "CompileCache",
    "ServeClient",
    "SimService",
    "compile_key",
    "execute_job",
    "job_compile_key",
    "process_compile_cache",
    "run_service",
]
