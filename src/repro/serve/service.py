"""The asyncio compile-and-simulate service behind ``repro serve``.

Architecture (one process, one event loop)::

    client --- JSON lines ---> handler --+--> bounded asyncio.Queue
    client <-- accepted/rejected --------+         |
                                                   v  (drain <= batch_window)
    client <-- result/error  <---- dispatcher -- coalesce by compile key
                                                   |
                                     run_in_executor(supervised_map)
                                                   |
                                  execute_group: artifact store -> batch_map

* **Admission control** — the job queue is bounded
  (``queue_limit``); a submission that finds it full is answered with a
  ``rejected`` event immediately instead of buffering without bound.
  Well-formed jobs get an ``accepted`` event carrying their id.
* **Coalescing** — the dispatcher drains up to ``batch_window`` queued
  jobs at a time and groups them by
  :func:`~repro.serve.jobs.job_compile_key`; each group compiles once
  (through the persistent artifact store when ``cache_dir`` is set) and
  groups of two or more execute as lanes of one lockstep ``batch``
  simulation.
* **Supervision** — groups run through
  :func:`~repro.evaluation.parallel.supervised_map`: ``workers=None``
  executes serially in the executor thread (lowest latency, the
  default), ``workers >= 1`` spawns the supervised process pool and
  buys per-group ``timeout`` termination, bounded ``retries``, and
  dead-worker replacement, at the cost of dispatch IPC.
* **Streaming** — each client connection receives its own jobs' events
  as they complete; unrelated jobs never block each other's responses
  beyond their shared dispatch round.

Counters land on the service :class:`~repro.obs.core.Recorder`
(``serve.accepted``, ``serve.rejected``, ``serve.results``,
``serve.errors``, ``serve.groups``, ``serve.coalesced`` …) and are
served to clients via the ``stats`` request.  See ``docs/serving.md``.
"""

import asyncio
import json

from repro.obs.core import NULL_RECORDER, Recorder
from repro.serve import protocol
from repro.serve.jobs import execute_group, job_compile_key, lighten_group


def _execute_groups(groups, cache_dir, workers, lanes, timeout, retries,
                    observe=NULL_RECORDER):
    """Blocking leg of one dispatch round (runs in the executor thread):
    every group through one :func:`supervised_map` call.

    Groups are lightened first (:func:`~repro.serve.jobs.lighten_group`):
    members past the head drop their compile fields and, when a store
    is configured, inline recipe bodies are swapped for content-address
    refs — so the per-task pipe payload carries hashes, not duplicated
    program sources.  Per-task pickled bytes land on *observe* as
    ``supervised.payload_bytes``.
    """
    from repro.evaluation.parallel import supervised_map
    from repro.serve.store import process_compile_cache

    store = process_compile_cache(cache_dir).store if cache_dir else None
    return supervised_map(
        execute_group,
        [
            (lighten_group(group, store=store), cache_dir, lanes)
            for group in groups
        ],
        jobs=workers,
        timeout=timeout,
        retries=retries,
        observe=observe,
    )


class SimService:
    """One ``repro serve`` instance: socket front-end, bounded queue,
    coalescing dispatcher, supervised execution (module docstring has
    the architecture)."""

    def __init__(self, host="127.0.0.1", port=0, workers=None,
                 cache_dir=None, queue_limit=256, batch_window=32,
                 lanes=64, timeout=None, retries=2, observe=None):
        self.host = host
        self.port = port
        self.workers = workers
        self.cache_dir = cache_dir
        self.queue_limit = queue_limit
        self.batch_window = batch_window
        self.lanes = lanes
        self.timeout = timeout
        self.retries = retries
        self.observe = observe if observe is not None else Recorder()
        self._queue = None
        self._server = None
        self._dispatcher = None
        self._sequence = 0
        #: test hook: a paused dispatcher leaves jobs in the queue so
        #: admission control is deterministically observable
        self.paused = False

    # -- lifecycle -----------------------------------------------------
    async def start(self):
        """Bind the socket and start the dispatcher; returns (host, port)
        actually bound (``port=0`` picks an ephemeral port)."""
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        return self.host, self.port

    async def serve_forever(self):
        """Run until cancelled (the CLI entry point's main await)."""
        async with self._server:
            await self._server.serve_forever()

    async def stop(self):
        """Tear the server and dispatcher down (idempotent)."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- client side ---------------------------------------------------
    async def _handle_client(self, reader, writer):
        self.observe.counter("serve.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > protocol.MAX_LINE_BYTES:
                    await self._send(writer, protocol.error_event(
                        None, protocol.JobError("request line too large")
                    ))
                    continue
                await self._handle_line(line, writer)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _handle_line(self, line, writer):
        request = None
        try:
            request = protocol.decode(line)
            if request.get("kind") == "stats":
                await self._send(writer, self._stats_event())
                return
            job = protocol.validate_job(request)
        except protocol.JobError as error:
            self.observe.counter("serve.protocol_errors")
            job_id = request.get("id") if isinstance(request, dict) else None
            await self._send(writer, protocol.error_event(job_id, error))
            return
        if "id" not in job:
            self._sequence += 1
            job["id"] = "job-%d" % self._sequence
        try:
            self._queue.put_nowait((job, writer))
        except asyncio.QueueFull:
            self.observe.counter("serve.rejected")
            await self._send(writer, {
                "event": "rejected",
                "id": job["id"],
                "reason": "queue full",
                "queued": self._queue.qsize(),
                "limit": self.queue_limit,
            })
            return
        self.observe.counter("serve.accepted")
        if "tenant" in job:
            self.observe.counter("serve.tenant.%s" % job["tenant"])
        await self._send(writer, {"event": "accepted", "id": job["id"]})

    async def _send(self, writer, event):
        if event is None:
            return
        try:
            writer.write(protocol.encode(event))
            await writer.drain()
        except (ConnectionResetError, OSError):
            pass  # client went away; results are recomputable by design

    def _stats_event(self):
        counters = dict(self.observe.counters)
        counters["queue_depth"] = self._queue.qsize() if self._queue else 0
        return {"event": "stats", "counters": counters}

    # -- dispatcher ----------------------------------------------------
    async def _dispatch_loop(self):
        loop = asyncio.get_event_loop()
        while True:
            if self.paused:
                await asyncio.sleep(0.01)
                continue
            entry = await self._queue.get()
            batch = [entry]
            while len(batch) < self.batch_window:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            groups = {}
            for job, writer in batch:
                groups.setdefault(job_compile_key(job), []).append(
                    (job, writer)
                )
            ordered = list(groups.values())
            self.observe.counter("serve.dispatches")
            self.observe.counter("serve.groups", len(ordered))
            self.observe.counter(
                "serve.coalesced",
                sum(len(g) - 1 for g in ordered if len(g) > 1),
            )
            try:
                results = await loop.run_in_executor(
                    None,
                    _execute_groups,
                    [[job for job, _writer in group] for group in ordered],
                    self.cache_dir,
                    self.workers,
                    self.lanes,
                    self.timeout,
                    self.retries,
                    self.observe,
                )
            except asyncio.CancelledError:
                raise
            except Exception as error:
                # Supervision exhausted (timeout/worker death past the
                # retry budget) or an infrastructure bug: every job in
                # the round gets a terminal error event.
                self.observe.counter("serve.dispatch_failures")
                for group in ordered:
                    for job, writer in group:
                        self.observe.counter("serve.errors")
                        await self._send(
                            writer, protocol.error_event(job["id"], error)
                        )
                continue
            for group, group_results in zip(ordered, results):
                group_obs = (group_results[0].get("obs") or {}) if group_results else {}
                self.observe.absorb({
                    "serve.compile_s": group_obs.get("compile_s") or 0.0,
                    "serve.sim_s": group_obs.get("sim_s") or 0.0,
                })
                if group_obs.get("cache") == "store":
                    self.observe.counter("serve.store_hits")
                elif group_obs.get("cache") == "compile":
                    self.observe.counter("serve.store_misses")
                for (job, writer), result in zip(group, group_results):
                    event = dict(result)
                    event["event"] = "result" if result.get("ok") else "error"
                    if not result.get("ok"):
                        fault = event.pop("fault", {})
                        event = protocol.error_event_from_description(
                            job["id"], fault
                        )
                        event["obs"] = result.get("obs")
                        self.observe.counter("serve.errors")
                    else:
                        self.observe.counter("serve.results")
                    await self._send(writer, event)


def run_service(host="127.0.0.1", port=0, workers=None, cache_dir=None,
                queue_limit=256, batch_window=32, lanes=64, timeout=None,
                retries=2, log=print):
    """Blocking CLI entry point: start a :class:`SimService` and serve
    until interrupted.  Prints the bound address (flushed, so wrappers
    and tests can parse the ephemeral port) before blocking."""
    service = SimService(
        host=host, port=port, workers=workers, cache_dir=cache_dir,
        queue_limit=queue_limit, batch_window=batch_window, lanes=lanes,
        timeout=timeout, retries=retries,
    )

    async def _main():
        bound_host, bound_port = await service.start()
        log("serving on %s:%d" % (bound_host, bound_port))
        if cache_dir:
            log("artifact store: %s" % cache_dir)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        log("interrupted; shutting down")
        counters = json.dumps(
            dict(service.observe.counters), sort_keys=True
        )
        log("final counters: %s" % counters)
    return 0
