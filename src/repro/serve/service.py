"""The asyncio compile-and-simulate service behind ``repro serve``.

Architecture (one process, one event loop)::

    client --- JSON lines ---> handler --+--> bounded asyncio.Queue
    client <-- accepted/rejected --------+         |
                 |                                 v  (drain <= batch_window)
          write-ahead journal            dispatcher -- coalesce by compile key
                 |                                 |
          (replay/recover on restart)   run_in_executor(supervised_map)
                                                   |
                                  execute_group: artifact store -> batch_map

* **Admission control** — the job queue is bounded (``queue_limit``); a
  submission that finds it full is shed with a ``rejected`` event
  carrying a ``retry_after_s`` hint instead of buffering without bound
  (``serve.shed.queue``).  Well-formed jobs get an ``accepted`` event
  carrying their id.
* **Durability** — with ``journal`` set, every accepted job is
  write-ahead logged (the :class:`~repro.evaluation.parallel.Journal`
  append-only JSON-lines format, torn-line healing included) *before*
  its ``accepted`` event is sent, and its terminal event is journaled
  when it completes.  A restarted service re-executes unfinished jobs
  (``serve.recovered``) and replays completed ones: resubmitting a job
  with the same client-supplied ``id`` and payload after a dropped
  connection never double-runs — the stored terminal event is replayed
  (``serve.deduped``, bounded by ``dedup_window``), and a resubmission
  that races an in-flight execution merges onto it (``serve.merged``).
* **Deadlines & cancellation** — a job's ``deadline_ms`` flows through
  dispatch into :func:`~repro.evaluation.parallel.supervised_map` as a
  per-group timeout (pool mode terminates the overrunning worker);
  expired jobs report ``deadline_exceeded`` instead of burning a
  worker.  A client disconnect cancels its queued-but-undispatched
  jobs (``serve.cancelled``).
* **Circuit breaker** — consecutive compile failures for one
  :func:`~repro.serve.jobs.job_compile_key` open a per-key breaker:
  further submissions fail fast with ``circuit_open`` errors until a
  seeded, jittered cooldown admits a half-open probe
  (``serve.breaker.*`` counters).
* **Coalescing** — the dispatcher drains up to ``batch_window`` queued
  jobs at a time and groups them by compile key; each group compiles
  once (through the persistent artifact store when ``cache_dir`` is
  set) and groups of two or more execute as lanes of one lockstep
  ``batch`` simulation.
* **Supervision** — groups run through ``supervised_map`` with
  ``on_error="return"``: a group that exhausts its budget surfaces as
  a per-group :class:`~repro.evaluation.parallel.TaskFailure` carrying
  its attempt count, so error events name exactly the jobs in the
  failed group instead of sharing one exception across the round.
* **Streaming** — each client connection receives its own jobs' events
  as they complete; unrelated jobs never block each other's responses
  beyond their shared dispatch round.

Counters land on the service :class:`~repro.obs.core.Recorder`
(``serve.accepted``, ``serve.rejected``, ``serve.results``,
``serve.errors``, ``serve.groups``, ``serve.coalesced``,
``serve.deduped``, ``serve.merged``, ``serve.recovered``,
``serve.cancelled``, ``serve.deadline_exceeded``, ``serve.breaker.*``,
``serve.shed.*`` …) and are served to clients via the ``stats``
request.  See ``docs/serving.md``.
"""

import asyncio
import json
import random
import uuid
from collections import OrderedDict, deque

from repro.evaluation.parallel import Journal, TaskFailure
from repro.obs.core import NULL_RECORDER, Recorder
from repro.serve import protocol
from repro.serve.jobs import execute_group, job_compile_key, lighten_group


def job_key(job):
    """Canonical journal/idempotency key of one validated job dict.

    The full job (including its ``id`` and ``deadline_ms``) is
    canonicalized, so a client resubmitting the same id with the same
    payload deduplicates, while the same id with a different payload is
    a distinct job (an id is only an idempotency key for the exact
    submission it first named)."""
    return Journal.key_for([job])


def _execute_groups(groups, cache_dir, workers, lanes, timeouts, retries,
                    observe=NULL_RECORDER):
    """Blocking leg of one dispatch round (runs in the executor thread):
    every group through one :func:`supervised_map` call.

    Groups are lightened first (:func:`~repro.serve.jobs.lighten_group`):
    members past the head drop their compile fields and, when a store
    is configured, inline recipe bodies are swapped for content-address
    refs — so the per-task pipe payload carries hashes, not duplicated
    program sources.  Per-task pickled bytes land on *observe* as
    ``supervised.payload_bytes``.

    ``timeouts`` supplies one deadline per group (None entries run
    unbounded); ``on_error="return"`` keeps one exhausted group from
    sinking the whole round — its slot holds a
    :class:`~repro.evaluation.parallel.TaskFailure` instead.
    """
    from repro.evaluation.parallel import supervised_map
    from repro.serve.store import process_compile_cache

    store = process_compile_cache(cache_dir).store if cache_dir else None
    return supervised_map(
        execute_group,
        [
            (lighten_group(group, store=store), cache_dir, lanes)
            for group in groups
        ],
        jobs=workers,
        timeout=timeouts,
        retries=retries,
        observe=observe,
        on_error="return",
    )


class _Entry:
    """One accepted job awaiting its terminal event.

    ``writers`` holds every connection owed the terminal event (one
    normally; more when resubmissions merged onto an in-flight
    execution; none for journal-recovered jobs).  ``deadline`` is an
    absolute loop-clock deadline or None; ``cancelled`` marks a job
    whose every client disconnected before dispatch."""

    __slots__ = ("job", "key", "writers", "deadline", "cancelled",
                 "dispatched")

    def __init__(self, job, key, writer=None, deadline=None):
        self.job = job
        self.key = key
        self.writers = [] if writer is None else [writer]
        self.deadline = deadline
        self.cancelled = False
        self.dispatched = False


class _Breaker:
    """Per-compile-key circuit breaker state (closed → open → half-open)."""

    __slots__ = ("failures", "state", "opened_at")

    def __init__(self):
        self.failures = 0
        self.state = "closed"
        self.opened_at = 0.0


class SimService:
    """One ``repro serve`` instance: socket front-end, bounded queue,
    durable write-ahead journal, coalescing dispatcher, circuit
    breaker, supervised execution (module docstring has the
    architecture)."""

    def __init__(self, host="127.0.0.1", port=0, workers=None,
                 cache_dir=None, queue_limit=256, batch_window=32,
                 lanes=64, timeout=None, retries=2, observe=None,
                 journal=None, dedup_window=1024, breaker_threshold=3,
                 breaker_cooldown=5.0, breaker_seed=0):
        self.host = host
        self.port = port
        self.workers = workers
        self.cache_dir = cache_dir
        self.queue_limit = queue_limit
        self.batch_window = batch_window
        self.lanes = lanes
        self.timeout = timeout
        self.retries = retries
        self.observe = observe if observe is not None else Recorder()
        self.dedup_window = dedup_window
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.breaker_seed = breaker_seed
        if isinstance(journal, str):
            self.journal_path = journal
            self._journal = None
        else:
            self._journal = journal
            self.journal_path = getattr(journal, "path", None)
        self._queue = None
        self._server = None
        self._dispatcher = None
        self._sequence = 0
        #: unique per-process tag so service-assigned ids never collide
        #: with journaled ids from an earlier incarnation
        self._run_tag = uuid.uuid4().hex[:8]
        #: journal key -> in-flight _Entry (accepted, no terminal yet)
        self._inflight = {}
        #: journal key -> terminal event, the bounded idempotency window
        self._completed = OrderedDict()
        #: journal-recovered entries, drained before the main queue
        self._recovery = deque()
        #: compile key -> _Breaker
        self._breakers = {}
        self._last_round_s = 0.05
        #: test hook: a paused dispatcher leaves jobs in the queue so
        #: admission control is deterministically observable
        self.paused = False

    # -- lifecycle -----------------------------------------------------
    async def start(self):
        """Bind the socket and start the dispatcher; returns (host, port)
        actually bound (``port=0`` picks an ephemeral port).

        With a journal, recovery happens here: completed records seed
        the idempotency window, and accepted-but-unfinished jobs are
        queued for re-execution ahead of fresh traffic."""
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        if self._journal is None and self.journal_path is not None:
            self._journal = Journal(self.journal_path)
        if self._journal is not None:
            for key, event in self._journal.completed.items():
                if isinstance(event, dict):
                    self._remember(key, event)
            for key in sorted(self._journal.started):
                job = self._job_from_key(key)
                if job is None:
                    continue
                entry = _Entry(job, key)
                self._inflight[key] = entry
                self._recovery.append(entry)
                self.observe.counter("serve.recovered")
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        return self.host, self.port

    async def serve_forever(self):
        """Run until cancelled (the CLI entry point's main await)."""
        async with self._server:
            await self._server.serve_forever()

    async def stop(self):
        """Tear the server and dispatcher down (idempotent)."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._journal is not None:
            self._journal.close()

    @staticmethod
    def _job_from_key(key):
        """Recover the job dict a journal key canonicalizes (None when
        the key is foreign — a corrupt line already healed past)."""
        try:
            jobs = json.loads(key)
        except ValueError:
            return None
        if isinstance(jobs, list) and jobs and isinstance(jobs[0], dict):
            return jobs[0]
        return None

    def _remember(self, key, event):
        """Admit one terminal event to the idempotency window.

        Deadline and circuit-open terminals are excluded: both are
        relative to *this* submission's timing, so a resubmission
        deserves a fresh run.  Cancellations likewise."""
        if event.get("event") == "cancelled":
            return
        if event.get("category") in ("deadline", "unavailable"):
            return
        self._completed[key] = event
        self._completed.move_to_end(key)
        while len(self._completed) > self.dedup_window:
            self._completed.popitem(last=False)

    # -- client side ---------------------------------------------------
    async def _handle_client(self, reader, writer):
        self.observe.counter("serve.connections")
        entries = []
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as error:
                    if error.partial:
                        # the connection dropped mid-line: the fragment
                        # is not a job, and must never crash the service
                        self.observe.counter("serve.protocol_errors")
                        self.observe.counter("serve.truncated_lines")
                        await self._send(writer, protocol.error_event(
                            None, protocol.JobError(
                                "truncated request line "
                                "(connection dropped mid-line)"
                            )
                        ))
                    break
                except asyncio.LimitOverrunError as error:
                    self.observe.counter("serve.protocol_errors")
                    self.observe.counter("serve.oversized_lines")
                    await self._send(writer, protocol.error_event(
                        None, protocol.JobError(
                            "request line exceeds %d bytes"
                            % protocol.MAX_LINE_BYTES
                        )
                    ))
                    if await self._drain_oversized(reader, error) is None:
                        break
                    continue
                except (ConnectionResetError, OSError):
                    break
                if not line:
                    break
                await self._handle_line(line, writer, entries)
        finally:
            # a disconnect cancels this client's queued-but-undispatched
            # jobs (unless another submission merged onto them)
            for entry in entries:
                if writer in entry.writers:
                    entry.writers.remove(writer)
                if not entry.writers and not entry.dispatched:
                    entry.cancelled = True
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    @staticmethod
    async def _drain_oversized(reader, error):
        """Consume the rest of an oversized line through its newline so
        the next request parses cleanly; returns the dropped byte count,
        or None when the connection closed mid-line."""
        dropped = 0
        consumed = error.consumed
        while True:
            chunk = await reader.read(consumed or 1)
            if not chunk:
                return None
            dropped += len(chunk)
            try:
                tail = await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError:
                return None
            except asyncio.LimitOverrunError as again:
                consumed = again.consumed
                continue
            except (ConnectionResetError, OSError):
                return None
            return dropped + len(tail)

    async def _handle_line(self, line, writer, entries):
        request = None
        try:
            request = protocol.decode(line)
            if request.get("kind") == "stats":
                await self._send(writer, self._stats_event())
                return
            job = protocol.validate_job(request)
        except protocol.JobError as error:
            self.observe.counter("serve.protocol_errors")
            job_id = request.get("id") if isinstance(request, dict) else None
            await self._send(writer, protocol.error_event(job_id, error))
            return
        deadline = None
        if "deadline_ms" in job:
            deadline = (
                asyncio.get_event_loop().time() + job["deadline_ms"] / 1000.0
            )
        if "id" not in job:
            self._sequence += 1
            job["id"] = "job-%s-%d" % (self._run_tag, self._sequence)
        key = job_key(job)
        stored = self._completed.get(key)
        if stored is not None:
            # idempotent resubmission: replay the journaled terminal
            self.observe.counter("serve.deduped")
            await self._send(
                writer, {"event": "accepted", "id": job["id"],
                         "deduplicated": True},
            )
            await self._send(writer, dict(stored, replayed=True))
            return
        entry = self._inflight.get(key)
        if entry is not None:
            # resubmission racing the original execution: merge onto it
            # instead of running the job twice
            self.observe.counter("serve.merged")
            if writer not in entry.writers:
                entry.writers.append(writer)
                entries.append(entry)
            await self._send(
                writer, {"event": "accepted", "id": job["id"], "merged": True},
            )
            return
        entry = _Entry(job, key, writer=writer, deadline=deadline)
        try:
            self._queue.put_nowait(entry)
        except asyncio.QueueFull:
            self.observe.counter("serve.rejected")
            self.observe.counter("serve.shed.queue")
            await self._send(writer, {
                "event": "rejected",
                "id": job["id"],
                "reason": "queue full",
                "queued": self._queue.qsize(),
                "limit": self.queue_limit,
                "retry_after_s": self._retry_after_hint(),
            })
            return
        self._inflight[key] = entry
        entries.append(entry)
        if self._journal is not None:
            # write-ahead: the job is durable before the client is told
            # it was accepted, so an accepted job survives a crash
            self._journal.mark_started(key, 1)
        self.observe.counter("serve.accepted")
        if "tenant" in job:
            self.observe.counter("serve.tenant.%s" % job["tenant"])
        await self._send(writer, {"event": "accepted", "id": job["id"]})

    def _retry_after_hint(self):
        """Seconds until shed traffic plausibly fits: queue depth in
        dispatch rounds times the last round's wall clock."""
        rounds = max(self._queue.qsize(), 1) / max(self.batch_window, 1)
        return round(rounds * max(self._last_round_s, 0.05), 3)

    async def _send(self, writer, event):
        if event is None or writer is None:
            return
        try:
            writer.write(protocol.encode(event))
        except (ConnectionResetError, OSError):
            return
        # A stalled client (full socket buffer, never reading) must not
        # wedge the dispatcher behind its drain.  asyncio.wait — unlike
        # 3.11's wait_for — never swallows a cancellation that races
        # the drain's completion, so stop() can always cancel the
        # dispatcher out of this await.
        drain = asyncio.ensure_future(writer.drain())
        try:
            done, _pending = await asyncio.wait({drain}, timeout=5.0)
        except asyncio.CancelledError:
            drain.cancel()
            raise
        if not done:
            drain.cancel()
            self.observe.counter("serve.stalled_clients")
            return
        try:
            drain.result()
        except (ConnectionResetError, OSError):
            pass  # client went away; results are recomputable by design

    def _stats_event(self):
        counters = dict(self.observe.counters)
        counters["queue_depth"] = self._queue.qsize() if self._queue else 0
        counters["inflight"] = len(self._inflight)
        counters["breakers_open"] = sum(
            1 for b in self._breakers.values() if b.state != "closed"
        )
        return {"event": "stats", "counters": counters}

    # -- terminal delivery ---------------------------------------------
    async def _finish(self, entry, event):
        """Deliver *entry*'s terminal event: journal it, admit it to
        the idempotency window, and stream it to every attached client."""
        self._inflight.pop(entry.key, None)
        if self._journal is not None:
            self._journal.record(entry.key, event)
        self._remember(entry.key, event)
        for writer in entry.writers:
            await self._send(writer, event)

    async def _finish_failure(self, entry, failure, now):
        """Terminal event for one member of a group whose supervision
        budget ran out — per-job id and attempt counts attached, so the
        client can tell which group poisoned the batch."""
        if (entry.deadline is not None and now >= entry.deadline
                and failure.kind == "TaskTimeout"):
            self.observe.counter("serve.deadline_exceeded")
            self.observe.counter("serve.errors")
            await self._finish(entry, protocol.deadline_event(
                entry.job["id"],
                "deadline_ms expired during execution; the running group "
                "was terminated",
                attempts=failure.attempts,
            ))
            return
        event = {
            "event": "error",
            "id": entry.job["id"],
            "kind": failure.kind,
            "message": failure.message,
            "category": failure.category or "internal",
            "attempts": failure.attempts,
        }
        self.observe.counter("serve.errors")
        await self._finish(entry, event)

    # -- circuit breaker -----------------------------------------------
    def _breaker_cooldown_for(self, compile_key):
        """This key's open-state cooldown: the configured base plus a
        deterministic per-key jitter (seeded, so chaos runs replay)."""
        jitter = random.Random(
            "%d:%s" % (self.breaker_seed, compile_key)
        ).uniform(0.0, 0.25)
        return self.breaker_cooldown * (1.0 + jitter)

    def _breaker_gate(self, compile_key, now):
        """None admits the group (closed, or promoted to a half-open
        probe); a float fails it fast with that many seconds to retry."""
        if not self.breaker_threshold:
            return None
        breaker = self._breakers.get(compile_key)
        if breaker is None or breaker.state == "closed":
            return None
        if breaker.state == "half-open":
            return None
        cooldown = self._breaker_cooldown_for(compile_key)
        elapsed = now - breaker.opened_at
        if elapsed >= cooldown:
            breaker.state = "half-open"
            self.observe.counter("serve.breaker.half_open")
            return None
        return max(cooldown - elapsed, 0.001)

    def _breaker_failure(self, compile_key, now):
        if not self.breaker_threshold:
            return
        breaker = self._breakers.get(compile_key)
        if breaker is None:
            breaker = self._breakers[compile_key] = _Breaker()
        breaker.failures += 1
        self.observe.counter("serve.breaker.failures")
        if (breaker.state == "half-open"
                or breaker.failures >= self.breaker_threshold):
            if breaker.state != "open":
                self.observe.counter("serve.breaker.open")
            breaker.state = "open"
            breaker.opened_at = now

    def _breaker_success(self, compile_key):
        breaker = self._breakers.pop(compile_key, None)
        if breaker is not None and breaker.state != "closed":
            self.observe.counter("serve.breaker.closed")

    # -- dispatcher ----------------------------------------------------
    def _group_timeout(self, members, now):
        """The supervision deadline for one group: the configured
        per-group ``timeout``, tightened to the *most patient* member's
        remaining ``deadline_ms`` when every member carries one (so a
        short-deadline job never terminates a deadline-free
        groupmate's shared work)."""
        limit = self.timeout
        deadlines = [e.deadline for e in members if e.deadline is not None]
        if deadlines and len(deadlines) == len(members):
            remaining = max(deadlines) - now
            limit = remaining if limit is None else min(limit, remaining)
        if limit is not None:
            limit = max(limit, 0.001)
        return limit

    async def _dispatch_loop(self):
        loop = asyncio.get_event_loop()
        while True:
            if self.paused:
                await asyncio.sleep(0.01)
                continue
            batch = []
            while self._recovery and len(batch) < self.batch_window:
                batch.append(self._recovery.popleft())
            if not batch:
                batch.append(await self._queue.get())
            while len(batch) < self.batch_window:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            now = loop.time()
            live = []
            for entry in batch:
                entry.dispatched = True
                if entry.cancelled and not entry.writers:
                    self.observe.counter("serve.cancelled")
                    await self._finish(entry, {
                        "event": "cancelled", "id": entry.job["id"],
                    })
                    continue
                if entry.deadline is not None and now >= entry.deadline:
                    self.observe.counter("serve.deadline_exceeded")
                    self.observe.counter("serve.errors")
                    await self._finish(entry, protocol.deadline_event(
                        entry.job["id"],
                        "deadline_ms expired before dispatch",
                    ))
                    continue
                live.append(entry)
            if not live:
                continue
            groups = {}
            for entry in live:
                groups.setdefault(job_compile_key(entry.job), []).append(entry)
            ordered = []
            for compile_key, members in groups.items():
                retry_after = self._breaker_gate(compile_key, now)
                if retry_after is not None:
                    for entry in members:
                        self.observe.counter("serve.breaker.fastfail")
                        self.observe.counter("serve.errors")
                        await self._finish(entry, protocol.circuit_open_event(
                            entry.job["id"], retry_after,
                        ))
                    continue
                ordered.append((compile_key, members))
            if not ordered:
                continue
            self.observe.counter("serve.dispatches")
            self.observe.counter("serve.groups", len(ordered))
            self.observe.counter(
                "serve.coalesced",
                sum(len(m) - 1 for _key, m in ordered if len(m) > 1),
            )
            timeouts = [
                self._group_timeout(members, now) for _key, members in ordered
            ]
            round_started = loop.time()
            try:
                results = await loop.run_in_executor(
                    None,
                    _execute_groups,
                    [[e.job for e in members] for _key, members in ordered],
                    self.cache_dir,
                    self.workers,
                    self.lanes,
                    timeouts,
                    self.retries,
                    self.observe,
                )
            except asyncio.CancelledError:
                raise
            except Exception as error:
                # An infrastructure bug in the dispatch machinery itself
                # (supervision failures come back in-slot): every job in
                # the round gets a terminal error event.
                self.observe.counter("serve.dispatch_failures")
                for _key, members in ordered:
                    for entry in members:
                        self.observe.counter("serve.errors")
                        await self._finish(
                            entry,
                            protocol.error_event(entry.job["id"], error),
                        )
                continue
            self._last_round_s = max(loop.time() - round_started, 0.001)
            now = loop.time()
            for (compile_key, members), group_results in zip(ordered, results):
                if isinstance(group_results, TaskFailure):
                    for entry in members:
                        await self._finish_failure(entry, group_results, now)
                    continue
                group_obs = (
                    (group_results[0].get("obs") or {}) if group_results
                    else {}
                )
                self.observe.absorb({
                    "serve.compile_s": group_obs.get("compile_s") or 0.0,
                    "serve.sim_s": group_obs.get("sim_s") or 0.0,
                })
                if group_obs.get("cache") == "store":
                    self.observe.counter("serve.store_hits")
                elif group_obs.get("cache") == "compile":
                    self.observe.counter("serve.store_misses")
                compile_failed = bool(group_results) and all(
                    not result.get("ok")
                    and (result.get("obs") or {}).get("stage") == "compile"
                    for result in group_results
                )
                if compile_failed:
                    self._breaker_failure(compile_key, now)
                else:
                    self._breaker_success(compile_key)
                for entry, result in zip(members, group_results):
                    if entry.deadline is not None and now >= entry.deadline:
                        self.observe.counter("serve.deadline_exceeded")
                        self.observe.counter("serve.errors")
                        await self._finish(entry, protocol.deadline_event(
                            entry.job["id"],
                            "deadline_ms expired before the result landed",
                        ))
                        continue
                    event = dict(result)
                    event["event"] = (
                        "result" if result.get("ok") else "error"
                    )
                    if not result.get("ok"):
                        fault = event.pop("fault", {})
                        event = protocol.error_event_from_description(
                            entry.job["id"], fault
                        )
                        event["obs"] = result.get("obs")
                        self.observe.counter("serve.errors")
                    else:
                        self.observe.counter("serve.results")
                    await self._finish(entry, event)


def run_service(host="127.0.0.1", port=0, workers=None, cache_dir=None,
                queue_limit=256, batch_window=32, lanes=64, timeout=None,
                retries=2, log=print, journal=None, dedup_window=1024,
                breaker_threshold=3, breaker_cooldown=5.0,
                scrub_cache=False):
    """Blocking CLI entry point: start a :class:`SimService` and serve
    until interrupted.  Prints the bound address (flushed, so wrappers
    and tests can parse the ephemeral port) before blocking.

    ``scrub_cache`` verifies every artifact-store entry up front
    (:meth:`~repro.serve.store.ArtifactStore.scrub`), purging corrupt
    objects before the first request instead of lazily at first read.
    """
    if scrub_cache and cache_dir:
        from repro.serve.store import process_compile_cache

        report = process_compile_cache(cache_dir).store.scrub()
        log(
            "scrubbed artifact store: %(checked)d checked, "
            "%(corrupt)d corrupt purged (%(purged_bytes)d bytes)" % report
        )
    service = SimService(
        host=host, port=port, workers=workers, cache_dir=cache_dir,
        queue_limit=queue_limit, batch_window=batch_window, lanes=lanes,
        timeout=timeout, retries=retries, journal=journal,
        dedup_window=dedup_window, breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
    )

    async def _main():
        bound_host, bound_port = await service.start()
        log("serving on %s:%d" % (bound_host, bound_port))
        if cache_dir:
            log("artifact store: %s" % cache_dir)
        if journal:
            log("journal: %s" % journal)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        log("interrupted; shutting down")
        counters = json.dumps(
            dict(service.observe.counters), sort_keys=True
        )
        log("final counters: %s" % counters)
    return 0
